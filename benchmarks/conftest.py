"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one figure or in-text claim of the paper
(see DESIGN.md section 3).  Tables are printed to stdout (visible with
``pytest -s`` or on the benchmark summary) and persisted under
``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name, title, headers, rows, notes=()):
    """Render an aligned text table; print it and save it to results/.

    Returns the rendered string.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h)
              for i, h in enumerate(headers)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in notes:
        lines.append("")
        lines.append(note)
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text)
    return text


def _fmt(cell):
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return "%.3e" % cell
        return "%.4g" % cell
    return str(cell)
