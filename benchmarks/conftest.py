"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one figure or in-text claim of the paper
(see DESIGN.md section 3).  Tables are printed to stdout (visible with
``pytest -s`` or on the benchmark summary) and persisted under
``benchmarks/results/`` -- both as the human-readable ``.txt`` table and
as a machine-readable ``.json`` document carrying the same rows plus a
snapshot of the telemetry registry that was live during the run, so
downstream tooling (``benchmarks/report.py``, EXPERIMENTS.md checks,
perf dashboards) never has to scrape text.

A per-test :class:`~repro.core.telemetry.MetricsRegistry` is installed
by an autouse fixture, so every benchmark runs fully instrumented; the
snapshot is also attached to pytest-benchmark's ``extra_info`` when the
``benchmark`` fixture is in play.
"""

import json
import os

import pytest

from repro.core import telemetry
from repro.core.provenance import host_provenance

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(autouse=True)
def telemetry_registry(request):
    """Fresh metrics registry per benchmark; snapshot attached afterwards."""
    registry = telemetry.MetricsRegistry()
    with telemetry.use_registry(registry):
        yield registry
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is not None:
        try:
            benchmark.extra_info["telemetry"] = registry.snapshot()
        except (AttributeError, TypeError):
            pass  # benchmark fixture disabled or incompatible


def bench_workers(maximum=4):
    """Worker counts for parallel-scaling sweeps: 1, 2, 4, ... up to
    ``maximum``.

    The ``REPRO_BENCH_MAX_WORKERS`` environment variable overrides the
    cap, so scaling studies can be re-run wider on bigger hosts (or
    narrowed to ``1`` on constrained CI) without editing the benchmark.
    """
    cap = int(os.environ.get("REPRO_BENCH_MAX_WORKERS", maximum))
    counts = [1]
    while counts[-1] * 2 <= cap:
        counts.append(counts[-1] * 2)
    return counts


def emit_table(name, title, headers, rows, notes=(), metrics=None):
    """Render an aligned text table; print it and save it to results/.

    Also writes ``results/<name>.json`` with the same payload plus the
    active telemetry registry's snapshot.  ``metrics`` is an optional
    flat dict of comparable scalars (timings, ratios, throughputs) that
    ``benchmarks/history.py`` collects into ``results/history.jsonl``
    and ``tools/check_perf.py`` diffs against the committed baseline --
    pass the numbers a regression should be caught on.  Returns the
    rendered string.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h)
              for i, h in enumerate(headers)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in notes:
        lines.append("")
        lines.append(note)
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text)
    emit_json(name, title, headers, rows, notes, metrics=metrics)
    return text


def emit_json(name, title, headers, rows, notes=(), metrics=None):
    """Write the machine-readable companion document for one experiment.

    Every document records the host/git provenance
    (:func:`repro.core.provenance.host_provenance`), so perf numbers
    from different machines are never silently compared.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "name": name,
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "notes": list(notes),
        "metrics": {key: float(value)
                    for key, value in (metrics or {}).items()},
        "provenance": host_provenance(),
        "telemetry": telemetry.get_registry().snapshot(),
    }
    path = os.path.join(RESULTS_DIR, name + ".json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")
    return path


def _fmt(cell):
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return "%.3e" % cell
        return "%.4g" % cell
    return str(cell)
