"""Collate benchmarks/results/*.txt into a single REPORT.md.

Run after the benchmark suite::

    pytest benchmarks/ --benchmark-only
    python benchmarks/report.py

The report orders experiments as DESIGN.md's index does (figures, then
in-text claims, then extensions) and embeds every saved table verbatim,
so one file carries the complete reproduction evidence.
"""

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Display order; anything present but unlisted is appended at the end.
ORDER = [
    ("Figures", ["fig1_hetero", "fig2_stack", "fig3_locking",
                 "fig4_readout", "fig5_norms", "fig6_fast"]),
    ("In-text quantitative claims",
     ["power_comparison", "shor", "dna", "dmm_sat", "dmm_maxsat",
      "dmm_tts", "dmm_rbm", "dmm_spinglass", "dmm_noise", "dmm_instantons"]),
    ("Extensions",
     ["oscillator_applications", "quantum_noise", "ablation_dmm_memory",
      "ablation_topology", "cross_paradigm_ising", "ilp", "inmemory"]),
]


def build_report(results_dir=RESULTS_DIR):
    """Return the REPORT.md text; raises FileNotFoundError when empty."""
    if not os.path.isdir(results_dir):
        raise FileNotFoundError(
            "no results at %s -- run `pytest benchmarks/ "
            "--benchmark-only` first" % results_dir)
    available = {name[:-4] for name in os.listdir(results_dir)
                 if name.endswith(".txt")}
    if not available:
        raise FileNotFoundError("results directory is empty")
    lines = [
        "# Reproduction report",
        "",
        "Generated from `benchmarks/results/`; regenerate with "
        "`pytest benchmarks/ --benchmark-only && python "
        "benchmarks/report.py`.",
        "See `EXPERIMENTS.md` for the paper-vs-measured verdict table "
        "and `DESIGN.md` for the experiment index.",
        "",
    ]
    covered = set()
    for section, names in ORDER:
        present = [name for name in names if name in available]
        if not present:
            continue
        lines.append("## %s" % section)
        lines.append("")
        for name in present:
            covered.add(name)
            with open(os.path.join(results_dir, name + ".txt")) as handle:
                table = handle.read().rstrip()
            lines.append("```text")
            lines.append(table)
            lines.append("```")
            lines.append("")
    leftovers = sorted(available - covered)
    if leftovers:
        lines.append("## Other results")
        lines.append("")
        for name in leftovers:
            with open(os.path.join(results_dir, name + ".txt")) as handle:
                table = handle.read().rstrip()
            lines.append("```text")
            lines.append(table)
            lines.append("```")
            lines.append("")
    return "\n".join(lines) + "\n"


def main(output_path=None):
    """Write REPORT.md at the repository root; returns the path."""
    if output_path is None:
        output_path = os.path.join(os.path.dirname(__file__), "..",
                                   "REPORT.md")
    text = build_report()
    with open(output_path, "w") as handle:
        handle.write(text)
    print("wrote %s (%d experiments)" % (os.path.abspath(output_path),
                                         text.count("```text")))
    return output_path


if __name__ == "__main__":
    sys.exit(0 if main(*sys.argv[1:2]) else 1)
