"""Collate benchmarks/results/ into REPORT.md plus a machine-readable index.

Run after the benchmark suite::

    pytest benchmarks/ --benchmark-only
    python benchmarks/report.py

The report orders experiments as DESIGN.md's index does (figures, then
in-text claims, then extensions) and embeds every saved table verbatim,
so one file carries the complete reproduction evidence.  Alongside the
markdown, every ``results/<name>.json`` companion (rows + telemetry
registry snapshot, written by ``conftest.emit_table``) is collated into
``results/report.json`` so perf tooling can diff runs without scraping
text.
"""

import json
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Display order; anything present but unlisted is appended at the end.
ORDER = [
    ("Figures", ["fig1_hetero", "fig2_stack", "fig3_locking",
                 "fig4_readout", "fig5_norms", "fig6_fast"]),
    ("In-text quantitative claims",
     ["power_comparison", "shor", "dna", "dmm_sat", "dmm_maxsat",
      "dmm_tts", "dmm_rbm", "dmm_spinglass", "dmm_noise", "dmm_instantons"]),
    ("Extensions",
     ["oscillator_applications", "quantum_noise", "ablation_dmm_memory",
      "ablation_topology", "cross_paradigm_ising", "ilp", "inmemory",
      "telemetry_overhead", "profiling_overhead", "kernel_throughput",
      "parallel_scaling", "retry_overhead", "cache_warm",
      "serve_throughput"]),
]


def _serving_latency_lines(results_dir):
    """A p50/p95/p99 serving-latency table, when the serve benchmark
    ran (the quantiles come from the ``serve.latency_seconds``
    streaming histogram; ``serve_p95_ms`` is the hard-pinned budget in
    ``baseline.json``).
    """
    path = os.path.join(results_dir, "serve_throughput.json")
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        metrics = json.load(handle).get("metrics", {})
    quantiles = [(label, metrics.get("serve_%s_ms" % label))
                 for label in ("p50", "p95", "p99")]
    if any(value is None for _label, value in quantiles):
        return []
    return [
        "## Serving latency",
        "",
        "| quantile | submit-to-settle [ms] |",
        "|----------|----------------------:|",
    ] + ["| %s | %.2f |" % (label, value)
         for label, value in quantiles] + [
        "",
        "Streaming quantiles of `serve.latency_seconds` over the "
        "`serve_throughput` burst; `serve_p95_ms` is a hard `max` "
        "budget in `baseline.json` (see `docs/observability.md`).",
        "",
    ]


def build_report(results_dir=RESULTS_DIR):
    """Return the REPORT.md text; raises FileNotFoundError when empty."""
    if not os.path.isdir(results_dir):
        raise FileNotFoundError(
            "no results at %s -- run `pytest benchmarks/ "
            "--benchmark-only` first" % results_dir)
    available = {name[:-4] for name in os.listdir(results_dir)
                 if name.endswith(".txt")}
    if not available:
        raise FileNotFoundError("results directory is empty")
    lines = [
        "# Reproduction report",
        "",
        "Generated from `benchmarks/results/`; regenerate with "
        "`pytest benchmarks/ --benchmark-only && python "
        "benchmarks/report.py`.",
        "See `EXPERIMENTS.md` for the paper-vs-measured verdict table "
        "and `DESIGN.md` for the experiment index.",
        "",
    ]
    lines.extend(_serving_latency_lines(results_dir))
    covered = set()
    for section, names in ORDER:
        present = [name for name in names if name in available]
        if not present:
            continue
        lines.append("## %s" % section)
        lines.append("")
        for name in present:
            covered.add(name)
            with open(os.path.join(results_dir, name + ".txt")) as handle:
                table = handle.read().rstrip()
            lines.append("```text")
            lines.append(table)
            lines.append("```")
            lines.append("")
    leftovers = sorted(available - covered)
    if leftovers:
        lines.append("## Other results")
        lines.append("")
        for name in leftovers:
            with open(os.path.join(results_dir, name + ".txt")) as handle:
                table = handle.read().rstrip()
            lines.append("```text")
            lines.append(table)
            lines.append("```")
            lines.append("")
    return "\n".join(lines) + "\n"


def _ordered_names():
    """Every experiment name in DESIGN.md display order."""
    return [name for _section, names in ORDER for name in names]


def build_json_report(results_dir=RESULTS_DIR):
    """Collate the per-experiment JSON documents into one index dict.

    Returns ``{"experiments": [payload, ...]}`` ordered like the
    markdown report; experiments missing a JSON companion (older runs)
    are skipped.
    """
    if not os.path.isdir(results_dir):
        raise FileNotFoundError(
            "no results at %s -- run `pytest benchmarks/ "
            "--benchmark-only` first" % results_dir)
    available = {name[:-5] for name in os.listdir(results_dir)
                 if name.endswith(".json") and name != "report.json"}
    ordered = [name for name in _ordered_names() if name in available]
    ordered += sorted(available - set(ordered))
    experiments = []
    for name in ordered:
        with open(os.path.join(results_dir, name + ".json")) as handle:
            experiments.append(json.load(handle))
    return {"experiments": experiments}


def write_json_report(results_dir=RESULTS_DIR):
    """Write ``results/report.json``; returns its path (None when empty)."""
    index = build_json_report(results_dir)
    if not index["experiments"]:
        return None
    path = os.path.join(results_dir, "report.json")
    with open(path, "w") as handle:
        json.dump(index, handle, indent=2)
        handle.write("\n")
    return path


def main(output_path=None):
    """Write REPORT.md at the repository root; returns the path."""
    if output_path is None:
        output_path = os.path.join(os.path.dirname(__file__), "..",
                                   "REPORT.md")
    text = build_report()
    with open(output_path, "w") as handle:
        handle.write(text)
    json_path = write_json_report()
    print("wrote %s (%d experiments)%s"
          % (os.path.abspath(output_path), text.count("```text"),
             "" if json_path is None
             else "; machine-readable index at %s"
             % os.path.abspath(json_path)))
    return output_path


if __name__ == "__main__":
    sys.exit(0 if main(*sys.argv[1:2]) else 1)
