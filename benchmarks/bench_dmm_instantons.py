"""DMM-TOPO -- instanton transients and absence of chaos ([52], [53], [58]).

"the transient dynamics of DMMs proceeds via a succession of classical
trajectories (instantons) that connect critical points ... no periodic
orbits or chaos can coexist" with a solution.

The benchmark measures three trajectory diagnostics on planted 3-SAT
solves:

* instanton census -- the unsatisfied-clause count descends through
  plateaus connected by jumps (critical-point hopping),
* largest-Lyapunov estimate -- non-positive within estimator noise for
  solvable instances (no chaos),
* fixed-point residual -- the reached solution is an exact equilibrium
  of the voltage dynamics (no periodic orbit through it).
"""

import numpy as np
from conftest import emit_table

from repro.core.sat_instances import planted_ksat
from repro.memcomputing.instantons import (
    instanton_census,
    lyapunov_estimate,
    residual_at_solution,
)
from repro.memcomputing.solver import DmmSolver

SEEDS = (0, 1, 2)
NUM_VARS = 40


def run_diagnostics():
    """Collect the three diagnostics per instance."""
    rows = []
    for seed in SEEDS:
        formula = planted_ksat(NUM_VARS, int(4.2 * NUM_VARS), rng=seed)
        result = DmmSolver().solve(formula, rng=seed + 50)
        assert result.satisfied
        census = instanton_census(result.unsat_trace)
        exponent = lyapunov_estimate(formula, rng=seed + 60, steps=3_000)
        residual, solved = residual_at_solution(formula, rng=seed + 70)
        rows.append((
            seed,
            census["plateaus"],
            census["jumps"],
            census["monotone_fraction"],
            exponent,
            residual if solved else float("inf"),
        ))
    return rows


def test_dmm_instanton_diagnostics(benchmark):
    rows = benchmark.pedantic(run_diagnostics, rounds=1, iterations=1)
    mean_lyapunov = float(np.mean([row[4] for row in rows]))
    emit_table(
        "dmm_instantons",
        "DMM-TOPO: trajectory diagnostics on planted 3-SAT (N=%d)"
        % NUM_VARS,
        ["seed", "plateaus", "jumps", "descent fraction",
         "Lyapunov estimate", "fixed-point residual"],
        rows,
        notes=["Paper claims ([58]/[52]/[53]): instantonic plateau-hopping "
               "transients; no chaos or periodic orbits with solutions.",
               "Reproduced: multi-plateau descents (mostly downward "
               "jumps), mean Lyapunov estimate %.3f <= 0, and exactly "
               "zero residual at every reached solution."
               % mean_lyapunov],
    )
    for _seed, plateaus, jumps, descent, exponent, residual in rows:
        assert plateaus >= 2          # at least one instanton transition
        assert descent > 0.5          # transitions predominantly descend
        assert residual == 0.0        # solution is a true fixed point
    assert mean_lyapunov < 0.25       # contracting within estimator noise
