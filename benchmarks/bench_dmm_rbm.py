"""DMM-RBM -- memcomputing-assisted RBM training ([55] / [57]).

"by simulating DMMs one can accelerate ... the pre-training of RBMs as
much as the reported hardware application of the quantum annealing
method ... the memcomputing approach is found to perform far better than
the D-Wave machine in terms of training-quality ... a quality advantage
(>1 % in accuracy, corresponding to a 20 % reduction in error rate)."

The benchmark trains the same RBM on the same synthetic stripe data with
three negative-phase strategies -- pure CD-1, mode-assisted with the
DMM, and mode-assisted with annealing (the D-Wave stand-in) -- and
reports the exact KL divergence to the data distribution (the training-
quality metric of the mode-assisted literature).  Shape targets: the DMM
variant beats the annealer stand-in, and beats CD's final quality by a
relative margin in the spirit of the paper's ~20 %.
"""

import numpy as np
from conftest import emit_table

from repro.memcomputing.rbm import (
    RestrictedBoltzmannMachine,
    exact_kl_divergence,
    synthetic_patterns,
    train_rbm,
)

SEEDS = (3, 13, 23, 33, 43, 53)
EPOCHS = 60


def train_one(method, seed, data):
    rbm = RestrictedBoltzmannMachine(9, 6, rng=seed)
    train_rbm(rbm, data, epochs=EPOCHS, learning_rate=0.3, method=method,
              mode_budget=1_200, rng=seed + 100)
    return exact_kl_divergence(rbm, data)


def run_training_comparison():
    """Final exact KL per method, median over seeds."""
    data, _labels = synthetic_patterns(150, side=3, noise=0.08, rng=2)
    per_method = {}
    for method in ("cd", "mem", "sa"):
        kls = [train_one(method, seed, data) for seed in SEEDS]
        per_method[method] = kls
    return data, per_method


def test_dmm_rbm_training_quality(benchmark):
    _data, per_method = benchmark.pedantic(run_training_comparison,
                                           rounds=1, iterations=1)
    medians = {m: float(np.median(v)) for m, v in per_method.items()}
    rows = [
        ("CD-1 (conventional)", medians["cd"],
         np.round(per_method["cd"], 3).tolist()),
        ("mode-assisted, DMM (memcomputing)", medians["mem"],
         np.round(per_method["mem"], 3).tolist()),
        ("mode-assisted, annealer (D-Wave stand-in)", medians["sa"],
         np.round(per_method["sa"], 3).tolist()),
    ]
    relative_gain = (medians["cd"] - medians["mem"]) / medians["cd"]
    emit_table(
        "dmm_rbm",
        "DMM-RBM: final exact KL divergence after %d epochs (lower wins)"
        % EPOCHS,
        ["negative phase", "median KL", "per-seed KL"],
        rows,
        notes=["Paper claim ([55]): memcomputing-assisted pre-training "
               "beats both CD and quantum annealing in training quality "
               "(~20 % error-rate reduction).",
               "Reproduced: DMM-assisted median KL %.3f vs CD %.3f "
               "(%.0f %% lower) and vs annealer stand-in %.3f."
               % (medians["mem"], medians["cd"], 100 * relative_gain,
                  medians["sa"])],
    )
    # shape claims: memcomputing beats both comparators in median quality
    assert medians["mem"] < medians["cd"]
    assert medians["mem"] <= medians["sa"]
    # and the margin over CD is material (paper: ~20 %)
    assert relative_gain > 0.05
