"""Throughput and coalescing efficiency of the ``repro serve`` service.

The serving layer's pitch (``docs/serving.md``) is that N callers cost
far fewer than N kernel executions: identical in-flight requests
coalesce onto one computation, repeated requests replay from the
content-addressed result store, and compatible small distance requests
merge into one vectorized call.  This benchmark drives the
:class:`~repro.serve.service.JobService` directly (no sockets -- the
HTTP layer is a thin frame parser; what scales or regresses is the
dispatch machinery) with a deterministic duplicate-heavy workload:
``UNIQUE`` distinct distance requests, each submitted ``COPIES`` times,
all landed before the dispatchers run.

Emitted metrics:

* ``requests_per_s`` -- end-to-end service throughput over the whole
  burst (submission through last completion);
* ``coalesce_ratio`` -- fraction of requests that did *not* need their
  own kernel execution (coalesced followers + result-store hits +
  batched ride-alongs over total requests).  The workload makes the
  floor exact: with every duplicate coalescing or replaying, at least
  ``(COPIES-1)/COPIES`` of all requests are saved, so the committed
  baseline pins ``{"min": 0.6}`` under ``COPIES = 3``;
* ``serve_p50_ms`` / ``serve_p95_ms`` / ``serve_p99_ms`` -- streaming
  quantiles of the per-job submit-to-settle latency, read from the
  ``serve.latency_seconds`` histogram the service records (the burst
  runs under a live registry).  ``serve_p95_ms`` carries an absolute
  ``{"max"}`` pin in the committed baseline: tail latency of the
  serving stack is a budget, not a trend, so breaching it is a hard
  CI failure (see ``tools/check_perf.py``).
"""

import asyncio
import time

from conftest import emit_table

from repro.core import telemetry
from repro.serve import JobService, ServeConfig

UNIQUE = 40
COPIES = 3
PAIRS_PER_REQUEST = 4


def _request_params(index):
    base = float(index)
    return {"pairs": [[base + offset, base + offset + 1.0]
                      for offset in range(PAIRS_PER_REQUEST)]}


async def _drive_burst():
    service = JobService(ServeConfig(
        workers=1, queue_depth=UNIQUE * COPIES + 1, tenant_quota=None,
        job_concurrency=2))
    await service.start()
    try:
        start = time.perf_counter()
        jobs = [service.submit("distance", _request_params(index))
                for _ in range(COPIES) for index in range(UNIQUE)]
        await asyncio.gather(*(job.future for job in jobs))
        elapsed = time.perf_counter() - start
        assert all(job.state == "done" for job in jobs)
        # Every copy of a request must agree with the original.
        by_key = {}
        for job in jobs:
            expected = by_key.setdefault(job.key,
                                         job.result["measures"])
            assert job.result["measures"] == expected
        latency = telemetry.get_registry().snapshot().get(
            "serve.latency_seconds", {})
        return {"elapsed": elapsed, "stats": service.stats(),
                "latency": latency}
    finally:
        await service.close()


def run_serve_burst():
    # A live registry so the service records serve.latency_seconds --
    # the burst is the one place the suite measures serving tail
    # latency.
    with telemetry.use_registry(telemetry.MetricsRegistry()):
        return asyncio.run(_drive_burst())


def test_serve_throughput(benchmark):
    measurement = benchmark.pedantic(run_serve_burst, rounds=1,
                                     iterations=1)
    stats = measurement["stats"]
    total = UNIQUE * COPIES
    saved = (stats["coalesced"] + stats["cache_hits"]
             + stats["batched"])
    coalesce_ratio = saved / total
    requests_per_s = total / measurement["elapsed"]
    latency = measurement["latency"]
    quantiles_ms = {
        name: (latency.get(name) or 0.0) * 1000.0
        for name in ("p50", "p95", "p99")
    }
    rows = [
        ("requests", total),
        ("unique workloads", UNIQUE),
        ("kernel executions", stats["executions"]),
        ("coalesced followers", stats["coalesced"]),
        ("result-store hits", stats["cache_hits"]),
        ("batched ride-alongs", stats["batched"]),
        ("elapsed [s]", "%.3f" % measurement["elapsed"]),
        ("requests/s", "%.1f" % requests_per_s),
        ("coalesce ratio", "%.3f" % coalesce_ratio),
        ("latency p50 [ms]", "%.2f" % quantiles_ms["p50"]),
        ("latency p95 [ms]", "%.2f" % quantiles_ms["p95"]),
        ("latency p99 [ms]", "%.2f" % quantiles_ms["p99"]),
    ]
    notes = [
        "%d unique distance requests x %d copies each, submitted in "
        "one burst before dispatch begins" % (UNIQUE, COPIES),
        "coalesce ratio = (coalesced + store hits + batched) / "
        "requests; the duplicate-heavy workload guarantees >= %.2f"
        % ((COPIES - 1) / COPIES),
        "service driven in-process (no sockets): the metric isolates "
        "dispatch/coalescing machinery from TCP framing",
    ]
    emit_table(
        "serve_throughput",
        "repro serve burst throughput (%d requests, %d unique)"
        % (total, UNIQUE),
        ["quantity", "value"],
        rows,
        notes=notes,
        metrics={"requests_per_s": requests_per_s,
                 "coalesce_ratio": coalesce_ratio,
                 "executions": stats["executions"],
                 "serve_p50_ms": quantiles_ms["p50"],
                 "serve_p95_ms": quantiles_ms["p95"],
                 "serve_p99_ms": quantiles_ms["p99"]})
    # Duplicates never execute: every copy beyond the first coalesces
    # (in flight) or replays from the result store (finished).
    assert stats["executions"] <= UNIQUE
    assert coalesce_ratio >= (COPIES - 1) / COPIES
