"""DMM-NOISE -- robustness of the solution search to noise ([59]).

"the solution search of DMMs is very robust to external perturbations, a
fact that has also been shown explicitly by adding noise to Eqs. 1 and
2."

The benchmark solves a fixed pool of planted 3-SAT instances under
increasing additive white noise on the voltage dynamics and reports the
success rate and median work at each amplitude.  Shape target: a wide
plateau of unimpaired solving before any degradation.
"""

from conftest import emit_table

from repro.core.sat_instances import planted_ksat
from repro.memcomputing.noise import success_vs_noise

SIGMAS = (0.0, 0.2, 0.5, 1.0, 2.0)
INSTANCE_SEEDS = (0, 1, 2)
NUM_VARS = 30


def run_noise_sweep():
    """Success statistics across the noise amplitudes."""
    formulas = [planted_ksat(NUM_VARS, int(4.2 * NUM_VARS), rng=seed)
                for seed in INSTANCE_SEEDS]
    return success_vs_noise(formulas, SIGMAS, trials_per_sigma=3, rng=7,
                            max_steps=250_000)


def test_dmm_noise_robustness(benchmark):
    rows_raw = benchmark.pedantic(run_noise_sweep, rounds=1, iterations=1)
    rows = [(row["sigma"], row["success_rate"],
             row["median_steps"] if row["median_steps"] is not None
             else "-")
            for row in rows_raw]
    plateau = [row for row in rows_raw if row["sigma"] <= 1.0]
    emit_table(
        "dmm_noise",
        "DMM-NOISE: solve success vs additive noise amplitude",
        ["sigma", "success rate", "median steps"],
        rows,
        notes=["Paper claim ([59]): the DMM solution search is robust to "
               "noise (critical points are topological objects).",
               "Reproduced: success stays at %.0f %% through sigma <= 1.0 "
               "(noise comparable to the deterministic drift)."
               % (100 * min(row["success_rate"] for row in plateau))],
    )
    # the robustness plateau: perfect solving through sigma = 1.0
    for row in plateau:
        assert row["success_rate"] == 1.0
    # the noiseless baseline is of course perfect too
    assert rows_raw[0]["success_rate"] == 1.0
