"""INMEM -- the intro's in-memory computing claims ([1], [21], [22]).

"In-memory computation is enabled by ... novel memory cells such as
Resistive Random Access Memory ... and this computation style
effectively eliminates the von Neumann bottleneck."

Three measurements on the resistive-crossbar substrate:

1. **PLIM arithmetic** -- a full adder executed entirely inside the
   array via resistive-majority (RM3) instructions: exactness over the
   truth table plus the instruction/cell cost (the PLIM papers' metric).
2. **Analog VMM accuracy** -- relative error of the crossbar multiply
   vs the exact product across device-variability corners.
3. **Bottleneck elimination** -- bytes crossing the memory interface per
   multiply: weights move once for the crossbar vs every time for a
   load-store pipeline.
"""

import itertools

import numpy as np
from conftest import emit_table

from repro.core.rngs import make_rng
from repro.inmemory.plim import PlimComputer, plim_full_adder
from repro.inmemory.vmm import AnalogVmm, data_movement_comparison


def run_inmemory_suite():
    """Collect the three measurement groups."""
    # 1. PLIM full adder
    program = plim_full_adder()
    correct = 0
    for a, b, cin in itertools.product([0, 1], repeat=3):
        out = PlimComputer().run(program, {"a": a, "b": b, "cin": cin})
        total = a + b + cin
        correct += int(out["sum"] == total % 2
                       and out["cout"] == total // 2)
    counts = program.op_count()

    # 2. analog VMM accuracy across variability corners
    rng = make_rng(0)
    weights = rng.normal(size=(32, 8))
    probes = rng.normal(size=(5, 32))
    vmm_rows = []
    for variability in (0.0, 0.02, 0.05, 0.1):
        vmm = AnalogVmm(weights, variability=variability, rng=1)
        errors = [vmm.relative_error(p, noise_sigma=0.01, rng=2)
                  for p in probes]
        vmm_rows.append((variability, float(np.median(errors))))

    # 3. data movement
    movement = data_movement_comparison(256, 64, 1000)

    # 4. neuromorphic inference on the same substrate
    from repro.inmemory.neuromorphic import (
        SpikingClassifier,
        prototype_patterns,
        train_rate_weights,
    )

    samples, labels = prototype_patterns(160, side=4, noise=0.08, rng=3)
    trained = train_rate_weights(samples[:120], labels[:120], 2, rng=4)
    snn_rows = []
    for variability in (0.0, 0.1):
        classifier = SpikingClassifier(trained, variability=variability,
                                       rng=5, gain=2.0)
        accuracy = classifier.accuracy(samples[120:], labels[120:],
                                       noise_sigma=0.03, rng=6)
        snn_rows.append((variability, accuracy))
    return program, counts, correct, vmm_rows, movement, snn_rows


def test_inmemory_computing(benchmark):
    (program, counts, correct, vmm_rows, movement,
     snn_rows) = benchmark.pedantic(run_inmemory_suite, rounds=1,
                                    iterations=1)
    rows = [
        ("PLIM full adder truth table", "%d/8 correct" % correct),
        ("  RM3 instructions", counts["rm3"]),
        ("  total instructions / cells", "%d / %d"
         % (sum(counts.values()), program.cells_used)),
    ]
    for variability, error in vmm_rows:
        rows.append(("VMM rel. error @ %.0f%% device variability"
                     % (100 * variability), "%.4f" % error))
    rows.append(("bytes moved, load-store (1000 VMMs, 256x64)",
                 movement["von_neumann_bytes"]))
    rows.append(("bytes moved, in-memory crossbar",
                 movement["in_memory_bytes"]))
    rows.append(("data-movement reduction", "%.1fx" % movement["ratio"]))
    for variability, accuracy in snn_rows:
        rows.append(("spiking classifier accuracy @ %.0f%% variability"
                     % (100 * variability), "%.2f" % accuracy))
    emit_table(
        "inmemory",
        "INMEM: logic-in-memory (PLIM) and analog VMM on the ReRAM "
        "crossbar",
        ["quantity", "value"],
        rows,
        notes=["Paper claim (intro, [1]/[21]/[22]): in-memory computation "
               "eliminates the von Neumann bottleneck.",
               "Reproduced: exact in-array arithmetic via RM3, analog "
               "multiply within ~%d%% error at 10%% device variability, "
               "and a %.0fx reduction in bytes crossing the memory "
               "interface." % (round(100 * vmm_rows[-1][1]),
                               movement["ratio"])],
    )
    assert correct == 8
    errors = [error for _v, error in vmm_rows]
    assert errors[0] < 0.02                      # near-exact when ideal
    assert all(b >= a - 0.01 for a, b in zip(errors, errors[1:]))
    assert movement["ratio"] > 10.0
    assert all(accuracy >= 0.9 for _v, accuracy in snn_rows)
