"""FIG3 -- frequency locking of two RC-coupled VO2 oscillators (Fig. 3).

The paper's Fig. 3 shows two coupled IMT oscillators locking to one
frequency.  This benchmark sweeps the gate-voltage detuning and reports
the natural vs coupled frequencies: inside the locking range the coupled
pair collapses onto a single plateau; outside it the two frequencies
separate again.
"""

import numpy as np
from conftest import emit_table

from repro.oscillators.locking import locking_curve


def run_curve():
    """Sweep detuning at the calibrated coupling point."""
    deltas = [0.0, 0.02, 0.05, 0.08, 0.12, 0.25, 0.45]
    return locking_curve(1.8, deltas, r_c=35e3, cycles=100)


def test_fig3_frequency_locking(benchmark):
    rows_raw = benchmark.pedantic(run_curve, rounds=1, iterations=1)
    rows = []
    for entry in rows_raw:
        rows.append((
            entry["delta_v_gs"],
            entry["natural_freq_1"],
            entry["natural_freq_2"],
            entry["coupled_freq_1"] or float("nan"),
            entry["coupled_freq_2"] or float("nan"),
            "locked" if entry["locked"] else "-",
        ))
    locked_count = sum(1 for e in rows_raw if e["locked"])
    emit_table(
        "fig3_locking",
        "FIG3: natural vs coupled frequencies across detuning (r_c=35k)",
        ["dVgs (V)", "f1 natural", "f2 natural", "f1 coupled",
         "f2 coupled", "state"],
        rows,
        notes=["Paper claim: sufficiently close frequencies lock (Fig. 3).",
               "Reproduced: %d/%d sweep points locked; the locked plateau "
               "covers small detunings and breaks at large ones."
               % (locked_count, len(rows_raw))],
    )
    # small detunings lock; the largest detuning must not
    assert rows_raw[0]["locked"]
    assert rows_raw[1]["locked"]
    assert not rows_raw[-1]["locked"]
    # inside the locked region the coupled frequencies coincide
    for entry in rows_raw:
        if entry["locked"]:
            assert np.isclose(entry["coupled_freq_1"],
                              entry["coupled_freq_2"], rtol=0.01)
