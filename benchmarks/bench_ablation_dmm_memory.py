"""ABLATION -- what the DMM's memory elements actually buy (Eqs. 1-2).

Section IV: "The active elements are fundamental to this computing
paradigm since they provide the necessary feedback to guide the machine
towards the solution" and memcomputing "stands for computing in and with
memory (time non-locality)".

This ablation turns the two memory mechanisms off one at a time:

* ``alpha = 0`` freezes the long-term memory at its floor (no
  accumulated frustration weighting),
* ``beta = 0`` freezes the short-term memory at its initial value (no
  switching between gradient and rigidity behaviour),

and compares solve rate and work against the full dynamics on planted
3-SAT.  Expected shape: the full machine dominates; removing memory
degrades success or inflates work -- the paper's "memory is the
mechanism" argument, quantified.
"""

import numpy as np
from conftest import emit_table

from repro.core.sat_instances import planted_ksat
from repro.memcomputing.solver import DmmSolver

VARIANTS = (
    ("full dynamics", {}),
    ("no long-term memory (alpha=0)", {"alpha": 0.0}),
    ("no short-term memory (beta=0)", {"beta": 0.0}),
)
SIZES = (100, 200)
SEEDS = (0, 1, 2, 3)
STEP_BUDGET = 120_000


def run_ablation():
    """Solve the instance pool under each dynamics variant."""
    rows = []
    for label, params in VARIANTS:
        solved = 0
        total = 0
        steps = []
        for n in SIZES:
            for seed in SEEDS:
                formula = planted_ksat(n, int(4.2 * n), rng=97 * n + seed)
                solver = DmmSolver(max_steps=STEP_BUDGET, params=params)
                result = solver.solve(formula, rng=seed)
                total += 1
                if result.satisfied:
                    solved += 1
                    steps.append(result.steps)
        rows.append((label, "%d/%d" % (solved, total),
                     float(np.median(steps)) if steps else float("inf")))
    return rows


def test_ablation_memory_mechanisms(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit_table(
        "ablation_dmm_memory",
        "ABLATION: DMM memory mechanisms on planted 3-SAT "
        "(budget %d steps)" % STEP_BUDGET,
        ["dynamics variant", "solved", "median steps"],
        rows,
        notes=["Paper claim: the memory (active feedback) elements are "
               "what make memcomputing work.",
               "Reproduced: the full dynamics solves everything fastest; "
               "ablating either memory mechanism degrades success rate "
               "and/or work."],
    )
    by_label = {row[0]: row for row in rows}
    full = by_label["full dynamics"]
    assert full[1] == "%d/%d" % (len(SIZES) * len(SEEDS),
                                 len(SIZES) * len(SEEDS))
    # the long-term memory is load-bearing: without it nothing solves
    no_long = by_label["no long-term memory (alpha=0)"]
    assert no_long[1].startswith("0/"), "alpha=0 unexpectedly solved"
    # the short-term memory is a work multiplier: measurably slower
    no_short = by_label["no short-term memory (beta=0)"]
    degraded = (no_short[1] != full[1]) \
        or (no_short[2] >= 1.2 * full[2])
    assert degraded, "beta=0 did not degrade the machine"
