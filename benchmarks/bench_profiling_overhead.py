"""Profiling overhead on the DMM hot loop: disabled and attributed.

The performance-attribution profiler (``repro.core.profiling``, see
docs/observability.md) rides on the telemetry substrate: throughput
instruments are ordinary counters/histograms and the attribution tree
is folded from span events a :class:`ProfileSink` buffers.  Its
contract therefore has two halves:

* **disabled** -- with the NULL registry active (the library default)
  every ``record_throughput`` call site and span is a no-op; the
  instrumented solver must stay within 5% of a hand-inlined loop with
  zero telemetry/profiling code (same bar as
  ``bench_telemetry_overhead.py``, re-checked here because this PR adds
  call sites to the paradigm kernels);
* **profiled** -- a live registry with a :class:`ProfileSink` attached
  (the ``repro profile`` configuration) may do real work, but buffering
  span events must not blow the run up: budgeted at 30% on this
  workload, far above the measured cost, to catch accidental per-step
  allocations rather than timer jitter.

Identical seeds force identical trajectories (asserted on the step
count), so timing deltas are pure instrumentation cost.
"""

import time

import numpy as np
from conftest import emit_table

from repro.core import profiling, telemetry
from repro.core.sat_instances import planted_ksat
from repro.memcomputing.dynamics import DmmSystem
from repro.memcomputing.solver import DmmSolver

NUM_VARIABLES = 50
NUM_CLAUSES = 210  # ratio 4.2
INSTANCE_SEED = 5
SOLVE_SEED = 9
MAX_STEPS = 120_000
CHECK_EVERY = 25
DT = 0.08
REPEATS = 5
DISABLED_BUDGET = 0.05
PROFILED_BUDGET = 0.30


def _reference_solve(formula, rng_seed):
    """Hand-inlined solver loop with zero telemetry/profiling code.

    The timed region starts at system construction: ``DmmSolver.solve``
    necessarily builds its own :class:`DmmSystem`, so excluding the
    ~0.3 ms build from the reference would book it as "instrumentation"
    overhead and make the budget host-load-dependent.
    """
    rng = np.random.default_rng(rng_seed)

    start = time.perf_counter()
    system = DmmSystem(formula)
    lower = system.lower_bounds()
    upper = system.upper_bounds()
    state = system.initial_state(rng)
    steps = 0
    sim_time = 0.0
    satisfied = False
    while steps < MAX_STEPS:
        derivative = system.rhs(sim_time, state)
        state = state + DT * derivative
        np.clip(state, lower, upper, out=state)
        steps += 1
        sim_time += DT
        if steps % CHECK_EVERY == 0 and system.unsatisfied_count(state) == 0:
            satisfied = True
            break
    return steps, satisfied, time.perf_counter() - start


def _instrumented_solve(formula, rng_seed):
    """One ``DmmSolver.solve`` under the *currently active* registry."""
    solver = DmmSolver(dt=DT, max_steps=MAX_STEPS, check_every=CHECK_EVERY)
    start = time.perf_counter()
    result = solver.solve(formula, rng=np.random.default_rng(rng_seed))
    return result.steps, result.satisfied, time.perf_counter() - start


def run_overhead():
    """Interleaved min-of-N timings; returns the measurement dict."""
    formula = planted_ksat(NUM_VARIABLES, NUM_CLAUSES, rng=INSTANCE_SEED)
    times = {"reference": [], "disabled": [], "profiled": []}
    steps_seen = set()
    span_events = 0
    for _ in range(REPEATS):
        steps, satisfied, elapsed = _reference_solve(formula, SOLVE_SEED)
        assert satisfied
        steps_seen.add(steps)
        times["reference"].append(elapsed)

        with telemetry.use_registry(telemetry.NULL_REGISTRY):
            steps, satisfied, elapsed = _instrumented_solve(formula,
                                                            SOLVE_SEED)
        assert satisfied
        steps_seen.add(steps)
        times["disabled"].append(elapsed)

        registry = telemetry.MetricsRegistry()
        sink = registry.add_sink(profiling.ProfileSink())
        with telemetry.use_registry(registry):
            steps, satisfied, elapsed = _instrumented_solve(formula,
                                                            SOLVE_SEED)
        assert satisfied
        assert sink.profile().total_seconds > 0.0
        span_events = len(sink.events)
        steps_seen.add(steps)
        times["profiled"].append(elapsed)
    assert len(steps_seen) == 1, steps_seen
    best = {variant: min(samples) for variant, samples in times.items()}
    return {
        "steps": steps_seen.pop(),
        "span_events": span_events,
        "best": best,
        "disabled_overhead": best["disabled"] / best["reference"] - 1.0,
        "profiled_overhead": best["profiled"] / best["reference"] - 1.0,
    }


def test_profiling_overhead(benchmark):
    measurement = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    best = measurement["best"]
    disabled_overhead = measurement["disabled_overhead"]
    profiled_overhead = measurement["profiled_overhead"]
    rows = [
        ("reference (no instrumentation)", best["reference"] * 1e3, "-"),
        ("instrumented, NULL registry", best["disabled"] * 1e3,
         "%+.2f%%" % (100.0 * disabled_overhead)),
        ("live registry + ProfileSink", best["profiled"] * 1e3,
         "%+.2f%%" % (100.0 * profiled_overhead)),
    ]
    emit_table(
        "profiling_overhead",
        "Profiler overhead on the DMM forward-Euler loop "
        "(N=%d, %d steps, min of %d)"
        % (NUM_VARIABLES, measurement["steps"], REPEATS),
        ["variant", "time [ms]", "vs reference"],
        rows,
        notes=["Same instance and seed in every variant (trajectories "
               "asserted identical via the step count).",
               "Contract (docs/observability.md): throughput call sites "
               "and spans cost < %.0f%% with the NULL registry; full "
               "attribution (ProfileSink buffering %d span events) "
               "< %.0f%% on this workload."
               % (100 * DISABLED_BUDGET, measurement["span_events"],
                  100 * PROFILED_BUDGET)],
        metrics={
            "reference_s": best["reference"],
            "disabled_s": best["disabled"],
            "profiled_s": best["profiled"],
            "disabled_overhead": disabled_overhead,
            "profiled_overhead": profiled_overhead,
        },
    )
    assert disabled_overhead < DISABLED_BUDGET, (
        "disabled-path profiling overhead %.2f%% exceeds %.0f%% budget"
        % (100 * disabled_overhead, 100 * DISABLED_BUDGET))
    assert profiled_overhead < PROFILED_BUDGET, (
        "attributed-path profiling overhead %.2f%% exceeds %.0f%% budget"
        % (100 * profiled_overhead, 100 * PROFILED_BUDGET))
