"""Per-kernel throughput: the four paradigm hot paths, one rate each.

ROADMAP item 1 asks for throughput benchmarks on the paradigm kernels
"so wins are pinned to numbers".  The profiler
(``repro.core.profiling``) wires a throughput instrument into each
paradigm's innermost batch:

* ``quantum.runtime.gates``        -- gate applications / s in the
  statevector shot loop (:meth:`QuantumRuntime.run`);
* ``dmm.solver.steps``             -- forward-Euler steps / s in
  :meth:`DmmSolver.solve`;
* ``dmm.ensemble.traj_steps``      -- vectorized trajectory-steps / s in
  :func:`solve_ensemble` (the batched RHS across the whole ensemble);
* ``oscillator.distance.pairs``    -- pixel-pair comparisons / s in
  :meth:`OscillatorDistanceUnit.measure_pairs`;
* ``inmemory.vmm.ops``             -- multiply-accumulates / s in
  :meth:`AnalogVmm.multiply_batch`.

This benchmark drives each kernel on a fixed workload under a live
registry and reports the rates the instruments observed (the
``<name>_per_s`` histogram mean across batch calls).  The same numbers
flow to ``results/history.jsonl`` as ``kernel_throughput.*`` metrics,
giving ``tools/check_perf.py`` a direct per-kernel regression signal
-- a slowdown in any paradigm's hot loop moves exactly one row here.

Absolute rates are host-dependent; no assertions beyond the instruments
having fired.  The committed baseline carries the tolerance.
"""

import numpy as np
from conftest import emit_table

from repro.core import telemetry
from repro.core.rngs import make_rng
from repro.core.sat_instances import planted_ksat
from repro.inmemory.vmm import AnalogVmm
from repro.memcomputing.ensemble import solve_ensemble
from repro.memcomputing.solver import DmmSolver
from repro.oscillators.distance import OscillatorDistanceUnit
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.runtime import QuantumRuntime

GHZ_QUBITS = 10
SHOTS = 200
SAT_VARIABLES = 50
SAT_CLAUSES = 210
ENSEMBLE_BATCH = 32
ENSEMBLE_MAX_STEPS = 60_000
PAIR_COUNT = 20_000
VMM_SIZE = 48
VMM_BATCH = 50


def _rate(registry, name):
    """Mean observed rate of one throughput instrument (units / s)."""
    histogram = registry.histogram(name + "_per_s")
    assert histogram.count > 0, "%s never fired" % name
    return float(histogram.mean), int(registry.counter(name + "_units").value)


def _run_quantum(registry):
    circuit = QuantumCircuit(GHZ_QUBITS)
    circuit.h(0)
    for q in range(GHZ_QUBITS - 1):
        circuit.cnot(q, q + 1)
    circuit.measure_all()
    QuantumRuntime().run(circuit, shots=SHOTS, rng=7)
    return _rate(registry, "quantum.runtime.gates")


def _run_dmm(registry):
    formula = planted_ksat(SAT_VARIABLES, SAT_CLAUSES, rng=5)
    result = DmmSolver(max_steps=120_000).solve(
        formula, rng=np.random.default_rng(9))
    assert result.satisfied
    return _rate(registry, "dmm.solver.steps")


def _run_dmm_ensemble(registry):
    formula = planted_ksat(SAT_VARIABLES, SAT_CLAUSES, rng=5)
    result = solve_ensemble(formula, batch=ENSEMBLE_BATCH,
                            max_steps=ENSEMBLE_MAX_STEPS, rng=9)
    assert result.solved_fraction == 1.0
    return _rate(registry, "dmm.ensemble.traj_steps")


def _run_oscillator(registry):
    rng = make_rng(3)
    pairs = rng.uniform(0.0, 255.0, size=(PAIR_COUNT, 2))
    unit = OscillatorDistanceUnit()
    measures = unit.measure_pairs(pairs)
    assert len(measures) == PAIR_COUNT
    return _rate(registry, "oscillator.distance.pairs")


def _run_vmm(registry):
    rng = make_rng(1)
    vmm = AnalogVmm(rng.standard_normal((VMM_SIZE, VMM_SIZE)), rng=rng)
    vectors = rng.standard_normal((VMM_BATCH, VMM_SIZE))
    vmm.multiply_batch(vectors)
    return _rate(registry, "inmemory.vmm.ops")


KERNELS = [
    ("quantum", "gates/s", "GHZ-%d, %d shots" % (GHZ_QUBITS, SHOTS),
     _run_quantum),
    ("dmm", "steps/s", "3-SAT N=%d" % SAT_VARIABLES, _run_dmm),
    ("dmm_ensemble", "traj steps/s", "3-SAT N=%d, batch=%d"
     % (SAT_VARIABLES, ENSEMBLE_BATCH), _run_dmm_ensemble),
    ("oscillator", "pairs/s", "%d pixel pairs" % PAIR_COUNT,
     _run_oscillator),
    ("inmemory", "MACs/s", "%dx%d crossbar, batch of %d"
     % (VMM_SIZE, VMM_SIZE, VMM_BATCH), _run_vmm),
]


def run_throughputs():
    """Drive each kernel under a fresh registry; returns per-kernel rows."""
    results = []
    for paradigm, unit_label, workload, runner in KERNELS:
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            rate, units = runner(registry)
        results.append((paradigm, unit_label, workload, rate, units))
    return results


def test_kernel_throughput(benchmark):
    results = benchmark.pedantic(run_throughputs, rounds=1, iterations=1)
    rows = [(paradigm, workload, units, rate, unit_label)
            for paradigm, unit_label, workload, rate, units in results]
    emit_table(
        "kernel_throughput",
        "Per-kernel throughput of the four paradigm hot paths",
        ["paradigm", "workload", "units", "rate", "unit"],
        rows,
        notes=["Rates are the mean of the kernel's *_per_s throughput "
               "histogram (repro.core.profiling.record_throughput), "
               "measured over whole batch calls -- the same instruments "
               "`repro profile` reports.",
               "Host-dependent; regressions are judged by "
               "tools/check_perf.py against benchmarks/baseline.json, "
               "not asserted here."],
        metrics={"%s_rate" % paradigm: rate
                 for paradigm, _u, _w, rate, _n in results},
    )
    for _paradigm, _unit, _workload, rate, units in results:
        assert rate > 0.0 and units > 0
