"""DMM-SPIN -- frustrated-loop spin glasses and DLRO cluster flips ([56]).

"DMMs allow for the collective flipping of clusters of spins spanning
the entire lattice, as if the system underwent a continuous phase
transition."

The benchmark solves frustrated-loop Ising instances (known ground
energy by construction) with the DMM and single-spin-flip simulated
annealing, and compares (a) the energies reached and (b) the
distribution of simultaneous flip sizes -- the dynamical-long-range-
order signature: the DMM flips large clusters in single transitions,
the annealer cannot.
"""

import numpy as np
from conftest import emit_table

from repro.core.sat_instances import frustrated_loop_ising
from repro.memcomputing.baselines import anneal_ising
from repro.memcomputing.ising import (
    flip_cluster_sizes,
    largest_cluster_fraction,
    solve_ising_dmm,
)

NUM_SPINS = 60
NUM_LOOPS = 15
SEEDS = (0, 1, 2)


def run_spin_glass():
    """Solve each instance with both methods; collect flip statistics."""
    rows = []
    for seed in SEEDS:
        couplings, bound = frustrated_loop_ising(NUM_SPINS, NUM_LOOPS,
                                                 rng=seed)
        dmm = solve_ising_dmm(couplings, NUM_SPINS, rng=seed + 10,
                              max_steps=30_000)
        annealed = anneal_ising(couplings, NUM_SPINS, sweeps=400,
                                rng=seed + 20)
        dmm_sizes = flip_cluster_sizes(dmm.spin_trace)
        rows.append((
            seed,
            bound,
            dmm.energy,
            annealed.energy,
            max(dmm_sizes) if dmm_sizes else 0,
            largest_cluster_fraction(dmm.spin_trace),
        ))
    return rows


def test_dmm_spin_glass_dlro(benchmark):
    rows = benchmark.pedantic(run_spin_glass, rounds=1, iterations=1)
    emit_table(
        "dmm_spinglass",
        "DMM-SPIN: frustrated loops (N=%d spins, %d loops) -- energies "
        "and DLRO cluster flips" % (NUM_SPINS, NUM_LOOPS),
        ["seed", "ground bound", "DMM energy", "SA energy",
         "largest DMM cluster", "cluster / lattice"],
        rows,
        notes=["Paper claim ([56]): DMMs flip spin clusters spanning the "
               "lattice (DLRO); annealing flips one spin per move.",
               "Reproduced: the DMM reaches the constructed ground energy "
               "and exhibits single-transition cluster flips covering "
               "large lattice fractions."],
    )
    for _seed, bound, dmm_energy, sa_energy, cluster, fraction in rows:
        # both methods land on (or within a bond pair of) the bound
        assert dmm_energy <= bound + 4.0
        assert sa_energy <= bound + 4.0
        # DLRO: multi-spin collective events occur
        assert cluster >= 3
    # at least one run shows a cluster spanning >= 25 % of the lattice
    assert max(row[5] for row in rows) >= 0.25
