"""POWER -- the in-text 0.936 mW vs 3 mW block-power comparison.

"The power consumption of the coupled oscillator-based block designed in
this example to identify corners is 0.936 mW (including the XOR
readout), whereas the power consumption of the corresponding CMOS
implementation at the 32 nm process node is 3 mW."

The benchmark evaluates both first-principles power models and reports
the paper's numbers beside the measured ones; the reproduction target is
the ratio (~3.2x in favour of the oscillator block).
"""

from conftest import emit_table

from repro.oscillators.power import power_comparison


def run_comparison():
    """Evaluate both block power models at their calibrated design points."""
    return power_comparison()


def test_power_oscillator_vs_cmos(benchmark):
    result = benchmark.pedantic(run_comparison, rounds=5, iterations=1)
    osc = result["oscillator_breakdown"]
    cmos = result["cmos_breakdown"]
    rows = [
        ("oscillator block total", result["oscillator_w"] * 1e3,
         result["paper_oscillator_w"] * 1e3),
        ("  32 oscillators", osc["oscillators_w"] * 1e3, "-"),
        ("  XOR readout", osc["xor_readout_w"] * 1e3, "-"),
        ("CMOS block total (32 nm)", result["cmos_w"] * 1e3,
         result["paper_cmos_w"] * 1e3),
        ("  dynamic datapath", cmos["dynamic_w"] * 1e3, "-"),
        ("  clock tree", cmos["clock_tree_w"] * 1e3, "-"),
        ("  leakage", cmos["leakage_w"] * 1e3, "-"),
        ("CMOS / oscillator ratio", result["ratio"],
         result["paper_ratio"]),
    ]
    emit_table(
        "power_comparison",
        "POWER: corner-detect block power, oscillators vs 32 nm CMOS",
        ["quantity", "measured (mW / ratio)", "paper (mW / ratio)"],
        rows,
        notes=["Reproduced: oscillator block %.3f mW vs CMOS %.3f mW, "
               "ratio %.2fx (paper: 0.936 mW vs 3 mW, 3.21x)."
               % (result["oscillator_w"] * 1e3, result["cmos_w"] * 1e3,
                  result["ratio"])],
    )
    assert result["oscillator_w"] < result["cmos_w"]
    assert 2.0 < result["ratio"] < 4.5
    assert abs(result["oscillator_w"] - 0.936e-3) / 0.936e-3 < 0.05
    assert abs(result["cmos_w"] - 3.0e-3) / 3.0e-3 < 0.10
