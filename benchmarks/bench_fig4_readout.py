"""FIG4 -- the thresholded, time-averaged XOR readout (Fig. 4).

Fig. 4 shows the readout path: comparator -> XOR -> time average.  The
benchmark drives the readout with a locked pair at increasing input
difference and reports the measure ``1 - Avg(XOR)``: near zero for an
identical (anti-phase-locked) pair, rising monotonically with dVgs --
the behaviour that makes the readout usable as a distance metric.
"""

from conftest import emit_table

from repro.oscillators.locking import simulate_calibrated_pair
from repro.oscillators.readout import XorReadout


def run_readout_sweep():
    """Measure the XOR output across a small detuning sweep."""
    readout = XorReadout()
    rows = []
    for delta in (0.0, 0.02, 0.04, 0.06, 0.08):
        times, v_1, v_2 = simulate_calibrated_pair(
            1.8, 1.8 + delta, r_c=35e3, cycles=120)
        average_xor = readout.average_xor(times, v_1, v_2)
        rows.append((delta, average_xor, 1.0 - average_xor))
    return rows


def test_fig4_xor_readout(benchmark):
    rows = benchmark.pedantic(run_readout_sweep, rounds=1, iterations=1)
    emit_table(
        "fig4_readout",
        "FIG4: XOR readout of a coupled pair vs input difference",
        ["dVgs (V)", "Avg(XOR)", "measure = 1 - Avg(XOR)"],
        rows,
        notes=["Paper claim: the readout produces 'a stable output value' "
               "whose [1-Avg(XOR)] measure has its minimum at dVgs = 0.",
               "Reproduced: measure(0) = %.3f, rising monotonically to "
               "%.3f at dVgs = 0.08 V." % (rows[0][2], rows[-1][2])],
    )
    measures = [row[2] for row in rows]
    assert measures[0] < 0.1                       # minimum at zero
    assert all(b > a for a, b in zip(measures, measures[1:]))
