"""FIG1 -- heterogeneous accelerator architecture (Fig. 1 of the paper).

The paper's Fig. 1 is an architecture diagram: GPUs, FPGAs, TPUs and
quantum accelerators hanging off a classical host.  The executable
counterpart is a dispatch experiment: a mixed workload is scheduled onto
the Fig. 1 device complement, and the benchmark reports which device owns
each task plus the makespan advantage over a CPU-only system -- the
"accelerator" argument of Section II.A in numbers.
"""

from conftest import emit_table

from repro.quantum.hetero import HeterogeneousSystem, example_workload


def run_dispatch():
    """Dispatch the genomics-flavoured example workload."""
    system = HeterogeneousSystem()
    return system.dispatch(example_workload())


def test_fig1_heterogeneous_dispatch(benchmark):
    report = benchmark.pedantic(run_dispatch, rounds=3, iterations=1)
    rows = [(task, device, time) for task, device, time in report.rows()]
    rows.append(("TOTAL (heterogeneous makespan)", "-", report.hetero_time))
    rows.append(("TOTAL (CPU only)", "CPU", report.cpu_only_time))
    rows.append(("speedup", "-", report.speedup))
    emit_table(
        "fig1_hetero",
        "FIG1: task dispatch on the Fig. 1 heterogeneous system",
        ["task", "device", "modelled time"],
        rows,
        notes=["Paper claim (qualitative): accelerators (incl. the QPU) "
               "absorb their task kinds; the host keeps scalar work.",
               "Reproduced: QPU owns the quantum kernel, TPU/GPU/FPGA own "
               "tensor/dense/streaming, speedup %.1fx over CPU-only."
               % report.speedup],
    )
    assert report.speedup > 10.0
    owners = {task: device for task, device, _t in report.rows()}
    assert owners["dna-similarity-kernel"] == "QPU"
