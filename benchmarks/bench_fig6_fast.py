"""FIG6 -- FAST corner detection using oscillator distance norms (Fig. 6).

Fig. 6 shows the data flow: pixel comparisons through the oscillator
distance primitive, then the two-step decision with false-positive
rejection.  The benchmark runs the oscillator detector and the software
baseline over the synthetic scene suite and reports agreement
(precision/recall), ground-truth recall, and the comparison-count
overhead the paper concedes ("two comparison steps instead of ... one").
"""

from conftest import emit_table

from repro.oscillators.fast import (
    OscillatorFastDetector,
    SoftwareFastDetector,
    add_noise,
    checkerboard_image,
    gradient_image,
    rectangle_image,
    triangle_image,
)
from repro.oscillators.fast.oscillator_fast import agreement

THRESHOLD = 30
CONTIGUITY = 9


def scene_suite():
    """The synthetic evaluation scenes with ground truth where defined."""
    rectangle, rect_corners = rectangle_image()
    triangle, tri_corners = triangle_image()
    checker, _ = checkerboard_image()
    return [
        ("rectangle", rectangle, rect_corners),
        ("rect+noise", add_noise(rectangle, 8.0, rng=0), rect_corners),
        ("triangle", triangle, tri_corners),
        ("checkerboard", checker, None),
        ("gradient", gradient_image(), []),
    ]


def run_suite():
    """Detect corners on every scene with both detectors."""
    software = SoftwareFastDetector(threshold=THRESHOLD, n=CONTIGUITY)
    oscillator = OscillatorFastDetector(threshold=THRESHOLD, n=CONTIGUITY)
    rows = []
    for name, image, ground_truth in scene_suite():
        sw_corners = software.detect(image)
        osc_corners = oscillator.detect(image)
        versus_sw = agreement(osc_corners, sw_corners, tolerance=1)
        truth_recall = "-"
        if ground_truth:
            truth_recall = agreement(sw_corners, ground_truth,
                                     tolerance=2)["recall"]
        elif ground_truth == []:
            truth_recall = "n/a (no corners)"
        rows.append((name, len(sw_corners), len(osc_corners),
                     versus_sw["precision"], versus_sw["recall"],
                     truth_recall,
                     oscillator.last_stats["comparisons_per_pixel"]))
    return rows


def test_fig6_fast_pipeline(benchmark):
    rows = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    emit_table(
        "fig6_fast",
        "FIG6: oscillator-norm FAST vs software FAST across scenes",
        ["scene", "sw corners", "osc corners", "precision vs sw",
         "recall vs sw", "gt recall (sw)", "osc cmp/pixel"],
        rows,
        notes=["Paper claim: the two-step oscillator flow performs FAST "
               "corner detection; it needs two comparison steps instead "
               "of the baseline's one.",
               "Reproduced: near-perfect agreement with the software "
               "baseline on every scene, zero false positives on the "
               "gradient, and >16 primitive comparisons per pixel "
               "(step 1 = 16, step 2 adds the rejection checks)."],
    )
    by_scene = {row[0]: row for row in rows}
    assert by_scene["rectangle"][3] == 1.0  # precision
    assert by_scene["rectangle"][4] == 1.0  # recall
    assert by_scene["gradient"][1] == 0 and by_scene["gradient"][2] == 0
    assert by_scene["rect+noise"][3] > 0.9
    # the conceded overhead: more than one comparison per circle pixel
    assert by_scene["rectangle"][6] > 16.0
