"""DMM-MAXSAT -- memcomputing vs annealing on weighted MaxSAT ([54]).

"in [54] it was shown that these simulations outperform specialized
software specifically designed to tackle maximum satisfiability
problems."

The benchmark solves weighted partial MaxSAT instances (planted hard
core + random soft preferences) with the DMM and a simulated-annealing
baseline at comparable move budgets and reports the satisfied soft
weight.  The reproduction target: the DMM matches or beats the baseline
while always staying hard-feasible.
"""

import numpy as np
from conftest import emit_table

from repro.core.sat_instances import planted_maxsat
from repro.memcomputing.maxsat import DmmMaxSatSolver, anneal_maxsat

INSTANCES = (
    # (num_vars, num_hard, num_soft, seed)
    (30, 90, 45, 0),
    (40, 120, 60, 1),
    (50, 150, 75, 2),
)


def run_maxsat():
    """Solve each instance with both solvers."""
    rows = []
    for num_vars, num_hard, num_soft, seed in INSTANCES:
        formula, _plant = planted_maxsat(num_vars, num_hard, num_soft,
                                         rng=seed)
        total = sum(c.weight for c in formula.soft_clauses)
        dmm = DmmMaxSatSolver(max_steps=40_000).solve(formula, rng=seed)
        annealed = anneal_maxsat(formula, sweeps=800, rng=seed)
        rows.append((
            "n=%d h=%d s=%d" % (num_vars, num_hard, num_soft),
            total,
            dmm.satisfied_weight,
            annealed.satisfied_weight,
            "yes" if dmm.hard_feasible else "NO",
            "yes" if annealed.hard_feasible else "NO",
        ))
    return rows


def test_dmm_maxsat_quality(benchmark):
    rows = benchmark.pedantic(run_maxsat, rounds=1, iterations=1)
    dmm_wins = sum(1 for row in rows if row[2] >= row[3] - 1e-9)
    emit_table(
        "dmm_maxsat",
        "DMM-MAXSAT: satisfied soft weight, DMM vs simulated annealing",
        ["instance", "total soft", "DMM weight", "SA weight",
         "DMM feasible", "SA feasible"],
        rows,
        notes=["Paper claim ([54]): memcomputing outperforms dedicated "
               "MaxSAT solvers.",
               "Reproduced: DMM >= annealing on %d/%d instances at "
               "comparable budgets, always hard-feasible."
               % (dmm_wins, len(rows))],
    )
    assert all(row[4] == "yes" for row in rows)
    # shape claim: DMM at least matches annealing on a majority
    assert dmm_wins >= 2
    # and is always within a whisker of the baseline when it loses
    for row in rows:
        assert row[2] >= 0.95 * row[3]
