"""Parallel scaling of the DMM trajectory ensemble.

The parallel execution engine (``repro.core.parallel``, see
``docs/parallelism.md``) promises two things at once: results that are
**bit-identical across worker counts** (chunking and per-chunk RNG
spawning depend only on the workload) and wall-clock speedup on
multi-core hosts.  This benchmark holds it to both on the repository's
canonical fan-out workload -- a ``solve_ensemble`` batch of
``BATCH`` >= 64 independent DMM trajectories on one planted 3-SAT
instance.

For each worker count in the sweep (1, 2, 4 by default plus an
``"auto"`` row; see ``conftest.bench_workers``) the same ensemble is
solved with the same seed and a pinned ``chunk_size``, timed as
min-of-``REPEATS``.  The identity check is exact (``np.array_equal``
on the time-to-solution arrays), *including* the auto row -- auto mode
may pick any width but must never change results.  The speedup
assertion (>= ``SPEEDUP_FLOOR`` at 4 workers) is enforced only when
the host actually has >= 4 CPUs -- on smaller machines the measured
ratios are still reported, with the host core count in the table
notes, but cannot meaningfully pass a wall-clock bar.  The 2-worker
and auto ratios are emitted as ``speedup_at_2`` / ``speedup_at_auto``
metrics so ``tools/check_perf.py`` can pin "multi-worker dispatch is
never materially slower than serial" as a regression floor.
"""

import os
import time

import numpy as np
from conftest import bench_workers, emit_table

from repro.core.sat_instances import planted_ksat
from repro.memcomputing.ensemble import solve_ensemble

NUM_VARIABLES = 40
NUM_CLAUSES = 168  # ratio 4.2
INSTANCE_SEED = 7
ENSEMBLE_SEED = 11
BATCH = 64
CHUNK_SIZE = 8  # pinned: same chunks (hence same streams) at every width
MAX_STEPS = 60_000
REPEATS = 2
SPEEDUP_FLOOR = 2.0
ASSERT_MIN_CORES = 4


def run_scaling_study():
    formula = planted_ksat(NUM_VARIABLES, NUM_CLAUSES, rng=INSTANCE_SEED)
    sweep = bench_workers() + ["auto"]
    times = {}
    steps = {}
    for workers in sweep:
        samples = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = solve_ensemble(formula, batch=BATCH,
                                    max_steps=MAX_STEPS,
                                    rng=ENSEMBLE_SEED, workers=workers,
                                    chunk_size=CHUNK_SIZE)
            samples.append(time.perf_counter() - start)
        times[workers] = min(samples)
        steps[workers] = result.solve_steps
    baseline = steps[sweep[0]]
    for workers in sweep:
        assert np.array_equal(baseline, steps[workers]), (
            "worker count changed the ensemble results (workers=%r)"
            % (workers,))
    return {
        "sweep": sweep,
        "times": times,
        "speedups": {w: times[sweep[0]] / times[w] for w in sweep},
        "solved_fraction": float(np.mean(np.isfinite(baseline))),
    }


def test_parallel_scaling_dmm_ensemble(benchmark):
    measurement = benchmark.pedantic(run_scaling_study, rounds=1,
                                     iterations=1)
    sweep = measurement["sweep"]
    times = measurement["times"]
    speedups = measurement["speedups"]
    cores = os.cpu_count() or 1
    rows = [(workers, times[workers], "%.2fx" % speedups[workers])
            for workers in sweep]
    notes = [
        "identical solve_steps arrays at every worker count, "
        "including 'auto' (bit-exact determinism contract)",
        "'auto' lets the engine pick the width: serial when the "
        "workload or host is too small to win, else min(cores, chunks) "
        "from the persistent pool",
        "host: %d CPU core(s); the >= %.0fx @ 4 workers bar is "
        "asserted only with >= %d cores"
        % (cores, SPEEDUP_FLOOR, ASSERT_MIN_CORES),
    ]
    if cores < ASSERT_MIN_CORES:
        notes.append(
            "HOST TOO SMALL for the scaling claim: %d core(s) < %d -- "
            "multi-worker rows pay process spawn/IPC cost without real "
            "parallelism, so speedups at/below 1x are expected here and "
            "do not indicate a regression." % (cores, ASSERT_MIN_CORES))
    max_workers = max(w for w in sweep if isinstance(w, int))
    metrics = {
        "serial_s": times[sweep[0]],
        "max_workers": max_workers,
        "speedup_at_max_workers": speedups[max_workers],
        "speedup_at_auto": speedups["auto"],
    }
    if 2 in speedups:
        metrics["speedup_at_2"] = speedups[2]
    emit_table(
        "parallel_scaling",
        "DMM ensemble scaling (%d trajectories, N=%d, chunk_size=%d, "
        "min of %d)" % (BATCH, NUM_VARIABLES, CHUNK_SIZE, REPEATS),
        ["workers", "time [s]", "speedup"],
        rows,
        notes=notes,
        metrics=metrics)
    assert measurement["solved_fraction"] == 1.0
    assert speedups[sweep[0]] == 1.0
    if cores >= ASSERT_MIN_CORES and 4 in speedups:
        assert speedups[4] >= SPEEDUP_FLOOR, (
            "expected >= %.1fx speedup at 4 workers on a %d-core host, "
            "measured %.2fx" % (SPEEDUP_FLOOR, cores, speedups[4]))
