"""Parallel scaling of the DMM trajectory ensemble.

The parallel execution engine (``repro.core.parallel``, see
``docs/parallelism.md``) promises two things at once: results that are
**bit-identical across worker counts** (chunking and per-chunk RNG
spawning depend only on the workload) and wall-clock speedup on
multi-core hosts.  This benchmark holds it to both on the repository's
canonical fan-out workload -- a ``solve_ensemble`` batch of
``BATCH`` >= 64 independent DMM trajectories on one planted 3-SAT
instance.

For each worker count in the sweep (1, 2, 4 by default plus an
``"auto"`` row; see ``conftest.bench_workers``) the same ensemble is
solved with the same seed and a pinned ``chunk_size``, timed as
min-of-``REPEATS``.  The identity check is exact (``np.array_equal``
on the time-to-solution arrays), *including* the auto row -- auto mode
may pick any width but must never change results.  The speedup
assertion (>= ``SPEEDUP_FLOOR`` at 4 workers) is enforced only when
the host actually has >= 4 CPUs -- on smaller machines the measured
ratios are still reported, with the host core count in the table
notes, but cannot meaningfully pass a wall-clock bar.  The 2-worker
and auto ratios are emitted as ``speedup_at_2`` / ``speedup_at_auto``
metrics so ``tools/check_perf.py`` can pin "multi-worker dispatch is
never materially slower than serial" as a regression floor.

A second study measures the **remote backend's per-chunk round-trip**
over a loopback ``repro worker-host`` agent (pickle -> length-prefixed
TCP frame -> execute -> reply; see ``docs/backends.md``).  The min
round-trip of a tiny chunk is the dispatch-overhead floor every remote
run pays per chunk, published as ``remote_chunk_roundtrip_ms`` with an
absolute ceiling pinned in ``benchmarks/baseline.json`` -- loopback
framing overhead is a semantic budget, not host-dependent wall clock.
"""

import os
import statistics
import time

import numpy as np
from conftest import bench_workers, emit_table

from repro.core import backends as backends_module
from repro.core.backends.hostagent import spawn_local_agent
from repro.core.parallel import ParallelMap, shutdown_pools
from repro.core.sat_instances import planted_ksat
from repro.memcomputing.ensemble import solve_ensemble

NUM_VARIABLES = 40
NUM_CLAUSES = 168  # ratio 4.2
INSTANCE_SEED = 7
ENSEMBLE_SEED = 11
BATCH = 64
CHUNK_SIZE = 8  # pinned: same chunks (hence same streams) at every width
MAX_STEPS = 60_000
REPEATS = 2
SPEEDUP_FLOOR = 2.0
ASSERT_MIN_CORES = 4

ROUNDTRIP_WARMUP = 3
ROUNDTRIP_ROUNDS = 30
ROUNDTRIP_ARRAY_BYTES = 64 * 1024


def _echo(task):
    return task


def run_scaling_study():
    formula = planted_ksat(NUM_VARIABLES, NUM_CLAUSES, rng=INSTANCE_SEED)
    sweep = bench_workers() + ["auto"]
    times = {}
    steps = {}
    for workers in sweep:
        samples = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = solve_ensemble(formula, batch=BATCH,
                                    max_steps=MAX_STEPS,
                                    rng=ENSEMBLE_SEED, workers=workers,
                                    chunk_size=CHUNK_SIZE)
            samples.append(time.perf_counter() - start)
        times[workers] = min(samples)
        steps[workers] = result.solve_steps
    baseline = steps[sweep[0]]
    for workers in sweep:
        assert np.array_equal(baseline, steps[workers]), (
            "worker count changed the ensemble results (workers=%r)"
            % (workers,))
    return {
        "sweep": sweep,
        "times": times,
        "speedups": {w: times[sweep[0]] / times[w] for w in sweep},
        "solved_fraction": float(np.mean(np.isfinite(baseline))),
    }


def test_parallel_scaling_dmm_ensemble(benchmark):
    measurement = benchmark.pedantic(run_scaling_study, rounds=1,
                                     iterations=1)
    sweep = measurement["sweep"]
    times = measurement["times"]
    speedups = measurement["speedups"]
    cores = os.cpu_count() or 1
    rows = [(workers, times[workers], "%.2fx" % speedups[workers])
            for workers in sweep]
    notes = [
        "identical solve_steps arrays at every worker count, "
        "including 'auto' (bit-exact determinism contract)",
        "'auto' lets the engine pick the width: serial when the "
        "workload or host is too small to win, else min(cores, chunks) "
        "from the persistent pool",
        "host: %d CPU core(s); the >= %.0fx @ 4 workers bar is "
        "asserted only with >= %d cores"
        % (cores, SPEEDUP_FLOOR, ASSERT_MIN_CORES),
    ]
    if cores < ASSERT_MIN_CORES:
        notes.append(
            "HOST TOO SMALL for the scaling claim: %d core(s) < %d -- "
            "multi-worker rows pay process spawn/IPC cost without real "
            "parallelism, so speedups at/below 1x are expected here and "
            "do not indicate a regression." % (cores, ASSERT_MIN_CORES))
    max_workers = max(w for w in sweep if isinstance(w, int))
    metrics = {
        "serial_s": times[sweep[0]],
        "max_workers": max_workers,
        "speedup_at_max_workers": speedups[max_workers],
        "speedup_at_auto": speedups["auto"],
    }
    if 2 in speedups:
        metrics["speedup_at_2"] = speedups[2]
    emit_table(
        "parallel_scaling",
        "DMM ensemble scaling (%d trajectories, N=%d, chunk_size=%d, "
        "min of %d)" % (BATCH, NUM_VARIABLES, CHUNK_SIZE, REPEATS),
        ["workers", "time [s]", "speedup"],
        rows,
        notes=notes,
        metrics=metrics)
    assert measurement["solved_fraction"] == 1.0
    assert speedups[sweep[0]] == 1.0
    if cores >= ASSERT_MIN_CORES and 4 in speedups:
        assert speedups[4] >= SPEEDUP_FLOOR, (
            "expected >= %.1fx speedup at 4 workers on a %d-core host, "
            "measured %.2fx" % (SPEEDUP_FLOOR, cores, speedups[4]))


def run_remote_roundtrip_study():
    """Min/median per-chunk round-trip over a loopback worker-host.

    One agent, one client link, ``workers=1`` so every ``map`` call is
    exactly one chunk on the wire.  The warm-up rounds absorb the TCP
    connect and pickle-by-reference import on the agent side; the timed
    rounds then measure the steady-state frame -> execute -> reply loop
    the scheduler pays per chunk.
    """
    shutdown_pools()  # fork safety: agent forks off a quiescent parent
    agent = spawn_local_agent(capacity=2)
    try:
        engine = ParallelMap(workers=1, backend="remote",
                             hosts=agent.spec)
        payloads = [
            ("tiny (one int)", 17),
            ("64 KiB array",
             np.arange(ROUNDTRIP_ARRAY_BYTES // 8, dtype=np.float64)),
        ]
        samples = {}
        for label, payload in payloads:
            for _ in range(ROUNDTRIP_WARMUP):
                engine.map(_echo, [payload])
            timed = []
            for _ in range(ROUNDTRIP_ROUNDS):
                start = time.perf_counter()
                result = engine.map(_echo, [payload])
                timed.append((time.perf_counter() - start) * 1000.0)
            assert np.array_equal(result[0], payload)
            samples[label] = timed
    finally:
        backends_module.shutdown_backends()
        agent.terminate()
    return samples


def test_remote_chunk_roundtrip(benchmark):
    samples = benchmark.pedantic(run_remote_roundtrip_study, rounds=1,
                                 iterations=1)
    rows = [(label, min(timed), statistics.median(timed), len(timed))
            for label, timed in samples.items()]
    tiny = samples["tiny (one int)"]
    bulk = samples["64 KiB array"]
    metrics = {
        "remote_chunk_roundtrip_ms": min(tiny),
        "remote_chunk_roundtrip_64k_ms": min(bulk),
    }
    emit_table(
        "remote_roundtrip",
        "Remote backend per-chunk round-trip (loopback worker-host, "
        "%d rounds)" % ROUNDTRIP_ROUNDS,
        ["payload", "min [ms]", "median [ms]", "rounds"],
        rows,
        notes=[
            "one chunk per map call (workers=1): each round pays the "
            "full pickle -> frame -> execute -> reply loop",
            "min round-trip is the per-chunk dispatch floor of the "
            "remote backend; chunks should carry work well above it "
            "(see docs/backends.md on chunk sizing)",
        ],
        metrics=metrics)
    assert all(sample_ms > 0.0 for sample_ms in tiny + bulk)
