"""DNA -- the in-text genomics claim of Section II.C.

"we have to investigate whether the quantum approach can be used to
calculate the similarity between two different DNA sequences."

The benchmark scores pairs of sequences at controlled divergence with
the SWAP-test similarity kernel and both classical baselines, reporting
the rank agreement: the quantum score must order sequence pairs the same
way the classical measures do, while encoding the 4^k-entry spectrum in
2k qubits (the data-parallel encoding the paper highlights).
"""

import numpy as np
from conftest import emit_table

from repro.quantum.algorithms.dna import (
    edit_distance,
    kmer_similarity,
    mutate,
    quantum_similarity,
    random_dna,
)

SEQUENCE_LENGTH = 24
MUTATION_STEPS = (0, 2, 4, 8, 16)


def run_similarity_sweep():
    """Score pairs at increasing mutation distance."""
    base = random_dna(SEQUENCE_LENGTH, rng=0)
    rows = []
    for mutations in MUTATION_STEPS:
        other = mutate(base, mutations, rng=10 + mutations) \
            if mutations else base
        quantum = quantum_similarity(base, other, shots=4096,
                                     rng=20 + mutations)
        rows.append((
            mutations,
            edit_distance(base, other),
            kmer_similarity(base, other),
            quantum.similarity,
            quantum.num_qubits,
        ))
    return rows


def test_dna_similarity(benchmark):
    rows = benchmark.pedantic(run_similarity_sweep, rounds=1, iterations=1)
    quantum_scores = [row[3] for row in rows]
    kmer_scores = [row[2] for row in rows]
    correlation = float(np.corrcoef(quantum_scores, kmer_scores)[0, 1])
    emit_table(
        "dna",
        "DNA: quantum SWAP-test similarity vs classical baselines",
        ["mutations", "edit distance", "k-mer cosine",
         "quantum similarity", "qubits"],
        rows,
        notes=["Paper claim: quantum encoding enables similarity "
               "computation over whole data sets held in superposition.",
               "Reproduced: the SWAP-test score tracks the classical "
               "k-mer cosine (r = %.3f) while storing the 64-entry "
               "spectrum in 6 qubits per sequence." % correlation],
    )
    assert rows[0][3] > 0.93                  # identical pair reads ~1
    assert correlation > 0.95                 # rank/shape agreement
    assert quantum_scores[0] > quantum_scores[-1]
