"""Zero-fault overhead of the retry engine on the parallel map.

The resilience contract (docs/resilience.md) is that retry support is
free when nothing fails: passing a :class:`RetryPolicy` to
``ParallelMap.map`` adds per-round bookkeeping (a retry queue, failure
classification, per-attempt task copies on the serial path) but no
re-execution, so a fault-free run must cost essentially the same as a
plain map.  This benchmark holds the engine to that promise on a bag of
numerically real chunks.

Two timings over the *same task list*:

* ``plain``  -- ``ParallelMap(workers=1).map(fn, tasks)``;
* ``retry``  -- the same call with ``retry=RetryPolicy(max_attempts=3)``
  (nothing ever fails, so no chunk is re-dispatched).

Identical seeds force identical results (asserted bit-for-bit), so any
timing difference is retry-engine bookkeeping.  The acceptance bar:
zero-fault slowdown below 5%.
"""

import time

import numpy as np
from conftest import emit_table

from repro.core.parallel import ParallelMap
from repro.core.resilience import RetryPolicy

NUM_TASKS = 64
MATRIX_SIZE = 48
POWER_ITERATIONS = 30
#: Interleaved repetitions per variant; min-of-N de-noises the ratio.
REPEATS = 5
OVERHEAD_BUDGET = 0.05


def _power_iterate(seed):
    """One chunk of real numerical work: power iteration on a random
    matrix (enough flops that engine bookkeeping is the signal, not the
    payload)."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(MATRIX_SIZE, MATRIX_SIZE))
    vector = rng.normal(size=MATRIX_SIZE)
    for _ in range(POWER_ITERATIONS):
        vector = matrix @ vector
        vector /= np.linalg.norm(vector)
    return float(vector @ (matrix @ vector))


def _timed_map(retry):
    engine = ParallelMap(workers=1)
    tasks = list(range(NUM_TASKS))
    start = time.perf_counter()
    results = engine.map(_power_iterate, tasks, retry=retry)
    return results, time.perf_counter() - start


def run_overhead():
    """Interleaved min-of-N timings; returns the measurement dict."""
    times = {"plain": [], "retry": []}
    policy = RetryPolicy(max_attempts=3)
    baseline = None
    for _ in range(REPEATS):
        results, elapsed = _timed_map(retry=None)
        times["plain"].append(elapsed)
        if baseline is None:
            baseline = results
        assert results == baseline

        results, elapsed = _timed_map(retry=policy)
        times["retry"].append(elapsed)
        # retry support must not perturb a fault-free run's results
        assert results == baseline
    best = {variant: min(samples) for variant, samples in times.items()}
    return {
        "best": best,
        "retry_overhead": best["retry"] / best["plain"] - 1.0,
    }


def test_zero_fault_retry_overhead(benchmark):
    measurement = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    best = measurement["best"]
    retry_overhead = measurement["retry_overhead"]
    rows = [
        ("plain map (no retry)", best["plain"] * 1e3, "-"),
        ("retry=RetryPolicy(max_attempts=3)", best["retry"] * 1e3,
         "%+.2f%%" % (100.0 * retry_overhead)),
    ]
    emit_table(
        "retry_overhead",
        "Zero-fault retry-engine overhead on ParallelMap "
        "(%d chunks, min of %d)" % (NUM_TASKS, REPEATS),
        ["variant", "time [ms]", "vs plain"],
        rows,
        notes=["Same tasks and seeds in both variants; results are "
               "asserted bit-identical, so timing deltas are pure "
               "retry-engine bookkeeping.",
               "Contract (docs/resilience.md): a fault-free run with a "
               "retry policy stays below %.0f%% overhead."
               % (100 * OVERHEAD_BUDGET)],
    )
    assert retry_overhead < OVERHEAD_BUDGET, (
        "zero-fault retry overhead %.2f%% exceeds %.0f%% budget"
        % (100 * retry_overhead, 100 * OVERHEAD_BUDGET))
