"""ILP -- memcomputing integer linear programming (the paper's [48]).

"The problem is first written in Boolean form (or in algebraic form if
the problem is an integer linear programming one, as seen in [48])."

The benchmark solves random 0-1 knapsacks (the canonical ILP) via the
exact BDD compilation to weighted MaxSAT and the DMM dynamics, reporting
the optimality gap against brute-force optima plus feasibility.  The
shape to reproduce: ILPs are *reachable* by the Boolean memcomputing
pipeline with near-optimal anytime quality.
"""

import numpy as np
from conftest import emit_table

from repro.core.rngs import make_rng
from repro.memcomputing.ilp import (
    ilp_to_maxsat,
    knapsack,
    solve_ilp_bruteforce,
    solve_ilp_memcomputing,
)

NUM_ITEMS = 10
TRIALS = 6


def run_knapsacks():
    """Solve random knapsacks; report per-instance gaps."""
    rng = make_rng(11)
    rows = []
    for trial in range(TRIALS):
        values = rng.integers(1, 20, NUM_ITEMS).tolist()
        weights = rng.integers(1, 15, NUM_ITEMS).tolist()
        capacity = int(sum(weights) * 0.4)
        program = knapsack(values, weights, capacity)
        formula, _offset = ilp_to_maxsat(program)
        exact = solve_ilp_bruteforce(program)
        mem = solve_ilp_memcomputing(program, max_steps=60_000, rng=trial)
        gap = (exact.objective - mem.objective) / exact.objective \
            if mem.feasible else 1.0
        rows.append((trial, exact.objective, mem.objective,
                     100.0 * gap,
                     "yes" if mem.feasible else "NO",
                     formula.num_variables, formula.num_clauses))
    return rows


def test_memcomputing_ilp(benchmark):
    rows = benchmark.pedantic(run_knapsacks, rounds=1, iterations=1)
    gaps = [row[3] for row in rows]
    emit_table(
        "ilp",
        "ILP: 0-1 knapsack via BDD-compiled weighted MaxSAT + DMM",
        ["trial", "optimum", "DMM objective", "gap (%)", "feasible",
         "CNF vars", "CNF clauses"],
        rows,
        notes=["Paper claim ([48]): memcomputing handles integer linear "
               "programming.",
               "Reproduced: all knapsacks solved feasibly through the "
               "Boolean pipeline; median optimality gap %.1f %% "
               "(anytime heuristic quality)." % float(np.median(gaps))],
    )
    assert all(row[4] == "yes" for row in rows)
    assert float(np.median(gaps)) < 25.0
    # encodings stay compact: auxiliaries scale with items * capacity
    assert all(row[5] < 200 for row in rows)
