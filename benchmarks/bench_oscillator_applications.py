"""OSC-APPS -- the cited oscillator applications beyond FAST ([42], [44]).

Section III's survey paragraph credits coupled oscillators with "vertex
coloring of graphs [42]" and a co-processor for "sorting, degree of
matching, etc." [44].  This extension benchmark exercises both on the
library's physical oscillator model:

* vertex coloring of structured graphs via anti-phase dynamics,
* rank-order sorting via spike counting,
* degree-of-match pattern retrieval via the XOR distance primitive.
"""

from conftest import emit_table

from repro.oscillators.coloring import color_graph
from repro.oscillators.coprocessor import best_match, rank_order_sort

GRAPHS = (
    ("path P4", [(0, 1), (1, 2), (2, 3)], 4, 2),
    ("cycle C4", [(0, 1), (1, 2), (2, 3), (3, 0)], 4, 2),
    ("triangle K3", [(0, 1), (1, 2), (0, 2)], 3, 3),
    ("star S4", [(0, 1), (0, 2), (0, 3), (0, 4)], 5, 2),
)


def run_coloring():
    """Color each benchmark graph by phase dynamics."""
    rows = []
    for name, edges, vertices, colors in GRAPHS:
        result = color_graph(edges, vertices, colors, cycles=120)
        rows.append((name, colors, result.num_colors, result.conflicts,
                     "proper" if result.is_proper else "IMPROPER"))
    return rows


def run_sorting():
    """Sort a value vector by oscillator spike counting."""
    values = [30, 200, 90, 155, 10, 240, 65]
    order, counts = rank_order_sort(values)
    correct = order == sorted(range(len(values)), key=lambda i: values[i])
    return values, order, counts, correct


def run_matching():
    """Retrieve the best-matching stored pattern for a noisy probe."""
    stored = [
        [10, 200, 10, 200, 10],
        [200, 10, 200, 10, 200],
        [100, 100, 100, 100, 100],
    ]
    probe = [18, 188, 22, 205, 5]  # noisy copy of pattern 0
    index, scores = best_match(probe, stored)
    return index, scores


def test_oscillator_applications(benchmark):
    coloring_rows = benchmark.pedantic(run_coloring, rounds=1,
                                       iterations=1)
    values, order, counts, sorted_ok = run_sorting()
    match_index, match_scores = run_matching()
    rows = list(coloring_rows)
    rows.append(("rank-order sort of %s" % values, "-", "-", "-",
                 "correct" if sorted_ok else "WRONG"))
    rows.append(("pattern retrieval (noisy probe)", "-", "-", "-",
                 "hit (scores %s)" % [round(s, 2) for s in match_scores]))
    emit_table(
        "oscillator_applications",
        "OSC-APPS: cited oscillator applications ([42] coloring, "
        "[44] co-processor)",
        ["task", "budget", "colors used", "conflicts", "outcome"],
        rows,
        notes=["Paper claims ([42], [44]): coupled oscillators color "
               "graphs via phase dynamics and accelerate sorting / "
               "degree-of-matching.",
               "Reproduced: proper colorings on all benchmark graphs, a "
               "correct spike-count sort, and correct nearest-pattern "
               "retrieval."],
    )
    for _name, _budget, _used, conflicts, outcome in coloring_rows:
        assert outcome == "proper", outcome
    assert sorted_ok
    assert match_index == 0
