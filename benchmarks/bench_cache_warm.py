"""Warm-cache speedup on a repeated DMM ensemble kernel.

The result cache's contract (docs/caching.md) has two halves: a warm
run must be *much* faster than a cold one (the second dispatch of a
repeated kernel is a table lookup, not a re-simulation), and caching
must be *invisible* in the results (cache-off, cold, and warm runs are
bit-identical).  This benchmark holds both on a real kernel: a seeded
:func:`~repro.memcomputing.ensemble.solve_ensemble` over a planted
3-SAT formula, content-addressed by formula, physics parameters, and
RNG seed.

Three timings of the *same workload*:

* ``off``       -- ``cache=False``: the plain kernel, no caching;
* ``cold``      -- first cached run: misses, computes, stores;
* ``warm disk`` -- the memory tier is dropped first, so the hit is
  served from the on-disk entry (a fresh process's experience);
* ``warm mem``  -- repeat within the process: served from the LRU tier.

The acceptance bar: both warm variants at least ``SPEEDUP_FLOOR``x
faster than cold, with every run's solve-step array byte-identical.
"""

import time

from conftest import emit_table

from repro.core.cache import ResultCache
from repro.core.sat_instances import planted_ksat
from repro.memcomputing.ensemble import solve_ensemble

NUM_VARIABLES = 40
NUM_CLAUSES = 168
FORMULA_SEED = 3
BATCH = 24
MAX_STEPS = 200_000
SEED = 7
#: Minimum cold-time / warm-time ratio the cache must deliver.
SPEEDUP_FLOOR = 5.0


def _timed_solve(formula, cache):
    start = time.perf_counter()
    result = solve_ensemble(formula, batch=BATCH, max_steps=MAX_STEPS,
                            rng=SEED, cache=cache)
    return result, time.perf_counter() - start


def run_cache_comparison(cache_dir):
    """Measure off/cold/warm timings; returns the measurement dict."""
    formula = planted_ksat(NUM_VARIABLES, NUM_CLAUSES, rng=FORMULA_SEED)
    cache = ResultCache(cache_dir=cache_dir)

    off, off_time = _timed_solve(formula, cache=False)
    cold, cold_time = _timed_solve(formula, cache=cache)
    assert cache.stores == 1 and cache.hits == 0
    cache.clear_memory()
    warm_disk, disk_time = _timed_solve(formula, cache=cache)
    warm_mem, mem_time = _timed_solve(formula, cache=cache)
    assert cache.hits == 2

    baseline = off.solve_steps.tobytes()
    for result in (cold, warm_disk, warm_mem):
        assert result.solve_steps.tobytes() == baseline
        assert result.solve_steps.dtype == off.solve_steps.dtype
    return {
        "times": {"off": off_time, "cold": cold_time,
                  "warm disk": disk_time, "warm mem": mem_time},
        "disk_speedup": cold_time / disk_time,
        "mem_speedup": cold_time / mem_time,
    }


def test_warm_cache_speedup(benchmark, tmp_path):
    measurement = benchmark.pedantic(
        run_cache_comparison, args=(str(tmp_path / "cache"),),
        rounds=1, iterations=1)
    times = measurement["times"]
    rows = [
        ("cache off", times["off"] * 1e3, "-"),
        ("cold (miss + store)", times["cold"] * 1e3, "1.0x"),
        ("warm from disk", times["warm disk"] * 1e3,
         "%.0fx" % measurement["disk_speedup"]),
        ("warm from memory", times["warm mem"] * 1e3,
         "%.0fx" % measurement["mem_speedup"]),
    ]
    emit_table(
        "cache_warm",
        "Warm-cache speedup on solve_ensemble (N=%d, batch=%d, seed=%d)"
        % (NUM_VARIABLES, BATCH, SEED),
        ["variant", "time [ms]", "speedup vs cold"],
        rows,
        notes=["Same formula, physics, and seed in every variant; "
               "solve-step arrays are asserted byte-identical, so the "
               "speedup is pure result reuse.",
               "Contract (docs/caching.md): a warm run is at least "
               "%.0fx faster than cold." % SPEEDUP_FLOOR],
    )
    assert measurement["disk_speedup"] >= SPEEDUP_FLOOR, (
        "warm-from-disk speedup %.1fx below the %.0fx floor"
        % (measurement["disk_speedup"], SPEEDUP_FLOOR))
    assert measurement["mem_speedup"] >= SPEEDUP_FLOOR, (
        "warm-from-memory speedup %.1fx below the %.0fx floor"
        % (measurement["mem_speedup"], SPEEDUP_FLOOR))
