"""TOPOLOGY -- ablation of the compiler's physical-topology choice.

Section II.B: the micro-architecture executes against a physical chip
whose connectivity constrains two-qubit gates.  DESIGN.md fixes linear
nearest-neighbour as the default; this ablation quantifies that choice
by routing the same kernels onto a linear chain vs a 2-D grid and
reporting SWAP counts and depth, plus the effect of the peephole
optimizer.  Expected shapes: the grid needs no more SWAPs than the
chain (strictly fewer for all-to-all kernels), and the optimizer never
increases op counts.
"""

from conftest import emit_table

from repro.quantum.algorithms.qft import qft_circuit
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.compiler import (
    GridTopology,
    LinearTopology,
    compile_circuit,
)


def all_to_all_kernel(num_qubits):
    """A worst-case kernel: CP between every qubit pair."""
    circuit = QuantumCircuit(num_qubits, name="a2a%d" % num_qubits)
    for a in range(num_qubits):
        for b in range(a + 1, num_qubits):
            circuit.cp(a, b, 0.3)
    return circuit


KERNELS = (
    ("qft(6)", lambda: qft_circuit(6, name="qft6")),
    ("all-to-all(6)", lambda: all_to_all_kernel(6)),
    ("qft(9)", lambda: qft_circuit(9, name="qft9")),
)


def run_topology_ablation():
    """Route each kernel on both topologies, with verification."""
    rows = []
    for label, maker in KERNELS:
        circuit = maker()
        num_qubits = circuit.num_qubits
        linear, _report_l = compile_circuit(
            circuit, topology=LinearTopology(num_qubits), verify=True)
        grid_cols = 3
        grid_rows = (num_qubits + grid_cols - 1) // grid_cols
        grid, _report_g = compile_circuit(
            circuit, topology=GridTopology(grid_rows, grid_cols),
            verify=True)
        rows.append((label,
                     linear.swap_count, linear.circuit.depth(),
                     grid.swap_count, grid.circuit.depth()))
    return rows


def test_topology_ablation(benchmark):
    rows = benchmark.pedantic(run_topology_ablation, rounds=1,
                              iterations=1)
    emit_table(
        "ablation_topology",
        "TOPOLOGY: routing cost on linear chain vs 2-D grid "
        "(both verified equivalent to source)",
        ["kernel", "linear SWAPs", "linear depth", "grid SWAPs",
         "grid depth"],
        rows,
        notes=["Design choice under test: DESIGN.md defaults to linear "
               "nearest-neighbour connectivity.",
               "Measured: richer (grid) connectivity reduces SWAP "
               "overhead on every kernel; all routed circuits verified "
               "statevector-equivalent to their sources."],
    )
    for _label, linear_swaps, _ld, grid_swaps, _gd in rows:
        assert grid_swaps <= linear_swaps
    # the all-to-all kernel must show a strict improvement
    a2a = next(row for row in rows if row[0].startswith("all-to-all"))
    assert a2a[3] < a2a[1]
