"""CROSS -- three computing models, one problem family.

The paper presents quantum annealing (via its D-Wave references),
thermal annealing, and memcomputing as competing routes to hard
optimization.  This benchmark puts all three implemented machines on
identical frustrated-loop Ising instances (ground energy known by
construction):

* adiabatic quantum evolution (Section II's adiabatic model [35]),
* simulated (thermal) annealing,
* the digital memcomputing machine (Section IV),

and reports the energy each reaches plus its success across seeds.  The
instances are kept at 10 spins so the quantum register is exactly
simulable -- the point is the *three-way comparison on equal footing*,
which no single section of the paper can show.
"""

import numpy as np
from conftest import emit_table

from repro.core.sat_instances import frustrated_loop_ising
from repro.memcomputing.baselines import anneal_ising
from repro.memcomputing.ising import solve_ising_dmm
from repro.quantum.adiabatic import anneal_quantum

NUM_SPINS = 10
NUM_LOOPS = 3
LOOP_LENGTH = 4
SEEDS = (0, 1, 2, 3)


def run_three_way():
    """Solve each instance with all three machines."""
    rows = []
    for seed in SEEDS:
        couplings, bound = frustrated_loop_ising(
            NUM_SPINS, NUM_LOOPS, loop_length=LOOP_LENGTH, rng=seed)
        quantum = anneal_quantum(couplings, NUM_SPINS, total_time=25.0,
                                 steps=500, rng=seed + 10)
        thermal = anneal_ising(couplings, NUM_SPINS, sweeps=300,
                               rng=seed + 20)
        dmm = solve_ising_dmm(couplings, NUM_SPINS, rng=seed + 30,
                              max_steps=15_000)
        rows.append((seed, bound, quantum.energy,
                     quantum.success_probability, thermal.energy,
                     dmm.energy))
    return rows


def test_cross_paradigm_ising(benchmark):
    rows = benchmark.pedantic(run_three_way, rounds=1, iterations=1)
    ground_hits = {"quantum": 0, "thermal": 0, "dmm": 0}
    for _seed, bound, q_energy, _p, t_energy, d_energy in rows:
        ground_hits["quantum"] += int(q_energy <= bound + 1e-9)
        ground_hits["thermal"] += int(t_energy <= bound + 1e-9)
        ground_hits["dmm"] += int(d_energy <= bound + 1e-9)
    emit_table(
        "cross_paradigm_ising",
        "CROSS: frustrated-loop Ising (N=%d) -- adiabatic quantum vs "
        "thermal annealing vs DMM" % NUM_SPINS,
        ["seed", "ground bound", "quantum E", "quantum p_gs",
         "thermal E", "DMM E"],
        rows,
        notes=["Context: the paper presents quantum annealing and "
               "memcomputing as competing optimization substrates "
               "(Sections II & IV and the D-Wave comparison in [55]).",
               "Reproduced: ground-state hits over %d seeds -- quantum "
               "%d, thermal %d, DMM %d; all three machines solve this "
               "family at small scale." % (len(SEEDS),
                                           ground_hits["quantum"],
                                           ground_hits["thermal"],
                                           ground_hits["dmm"])],
    )
    # every machine must reach the ground state on most seeds
    for method, hits in ground_hits.items():
        assert hits >= len(SEEDS) - 1, (method, hits)
