"""FIG5 -- l_k distance norms vs coupling strength (Fig. 5).

"For increasing coupling strengths, (that is, decreasing R_C), the shape
of the curves around the minima point follow increasing l_k norms ...
from almost (k ~ 1.6) to parabolic (k ~ 2.0) to extremely nonlinear
(k ~ 3.4)."

The benchmark sweeps the XOR measure across input difference for three
coupling resistances and fits the effective exponent k of each curve.
The reproduction target is the *shape*: k must increase monotonically as
R_C decreases, spanning roughly the same 1.x -> 3.x band.
"""

import numpy as np
from conftest import emit_table

from repro.oscillators.norms import effective_norm_exponent

#: Coupling resistances from weak to strong (paper: decreasing R_C).
SWEEP_R_C = (60e3, 22e3, 15e3)
#: The paper's quoted exponent family for reference.
PAPER_EXPONENTS = (1.6, 2.0, 3.4)


def run_norm_sweep():
    """Fit the effective exponent at each coupling strength."""
    results = []
    for r_c in SWEEP_R_C:
        k, deltas, measures = effective_norm_exponent(r_c, cycles=140)
        results.append((r_c, k, measures))
    return results


def test_fig5_lk_norm_family(benchmark):
    results = benchmark.pedantic(run_norm_sweep, rounds=1, iterations=1)
    rows = []
    for (r_c, k, measures), paper_k in zip(results, PAPER_EXPONENTS):
        rows.append((r_c / 1e3, k, paper_k,
                     np.round(measures, 3).tolist()))
    fitted = [k for _r, k, _m in results]
    emit_table(
        "fig5_norms",
        "FIG5: effective l_k exponent vs coupling resistance",
        ["R_C (kOhm)", "fitted k", "paper k (same rank)",
         "measure curve (dVgs = 0..0.08)"],
        rows,
        notes=["Paper claim: decreasing R_C raises the norm exponent from "
               "~1.6 through ~2.0 to ~3.4 (Fig. 5).",
               "Reproduced: fitted k rises from %.2f to %.2f as R_C drops "
               "from %g k to %g k (monotone, same ~1.x-3.x band)."
               % (fitted[0], fitted[-1], SWEEP_R_C[0] / 1e3,
                  SWEEP_R_C[-1] / 1e3)],
    )
    # the central claim: k increases monotonically as R_C decreases
    assert fitted[0] < fitted[1] < fitted[2]
    # and the family spans the paper's qualitative bands: near-linear at
    # weak coupling, clearly super-parabolic at strong coupling
    assert fitted[0] < 1.6, "weak coupling should be sub-parabolic"
    assert fitted[-1] > 2.0, "strong coupling should be super-parabolic"
