"""Append-only benchmark history: one structured record per suite run.

``conftest.emit_table`` gives every experiment a ``results/<name>.json``
companion whose ``metrics`` field carries the scalars a regression
should be caught on (timings, overhead ratios, throughputs).  This
module folds those companions into a single flat record --
``"<experiment>.<metric>": value`` -- stamps it with the host/git
provenance of the run, and appends it to ``results/history.jsonl``::

    pytest benchmarks/ --benchmark-only
    python benchmarks/history.py

``tools/check_perf.py`` diffs the latest record against the committed
``benchmarks/baseline.json``; the JSONL file itself is the longitudinal
log a perf dashboard can plot without scraping tables.  Records are
plain one-line JSON documents so the file is greppable and merges as
text.
"""

import argparse
import json
import os
import sys
import time

from repro.core.provenance import host_provenance

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
HISTORY_NAME = "history.jsonl"
SCHEMA_VERSION = 1


def collect_metrics(results_dir=RESULTS_DIR):
    """Flat ``{"<experiment>.<metric>": float}`` dict from results/*.json.

    Experiments without a ``metrics`` field (or with an empty one)
    contribute nothing; ``report.json`` is skipped.  Metric values that
    fail float conversion are dropped rather than poisoning the record.
    """
    metrics = {}
    if not os.path.isdir(results_dir):
        return metrics
    for filename in sorted(os.listdir(results_dir)):
        if not filename.endswith(".json") or filename == "report.json":
            continue
        path = os.path.join(results_dir, filename)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        name = payload.get("name", filename[:-5])
        for key, value in (payload.get("metrics") or {}).items():
            try:
                metrics["%s.%s" % (name, key)] = float(value)
            except (TypeError, ValueError):
                continue
    return metrics


def build_record(results_dir=RESULTS_DIR, timestamp=None):
    """One history record for the current state of ``results_dir``.

    Returns ``None`` when no experiment contributed any metric (e.g. a
    partial run of table-only benchmarks) so callers never append empty
    records.
    """
    metrics = collect_metrics(results_dir)
    if not metrics:
        return None
    experiments = sorted({key.split(".", 1)[0] for key in metrics})
    return {
        "schema": SCHEMA_VERSION,
        "timestamp": float(time.time() if timestamp is None else timestamp),
        "provenance": host_provenance(),
        "experiments": experiments,
        "metrics": metrics,
    }


def append_record(record, results_dir=RESULTS_DIR, path=None):
    """Append one record to the history file; returns the file path."""
    if path is None:
        os.makedirs(results_dir, exist_ok=True)
        path = os.path.join(results_dir, HISTORY_NAME)
    with open(path, "a") as handle:
        json.dump(record, handle, sort_keys=True)
        handle.write("\n")
    return path


def load_history(path):
    """All records from a history file, oldest first.

    Unparseable lines are skipped (a truncated final line from a killed
    run must not invalidate the rest of the log).
    """
    records = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        return []
    return records


def latest_record(path):
    """The most recent record, or None when the file is empty/missing."""
    records = load_history(path)
    return records[-1] if records else None


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="append the current benchmark metrics to the "
                    "history log")
    parser.add_argument("--results-dir", default=RESULTS_DIR,
                        help="directory of per-experiment JSON documents")
    parser.add_argument("--output", default=None,
                        help="history file (default: "
                             "<results-dir>/%s)" % HISTORY_NAME)
    args = parser.parse_args(argv)
    record = build_record(args.results_dir)
    if record is None:
        print("no metrics found under %s -- run the benchmark suite "
              "first" % args.results_dir)
        return 1
    path = args.output
    if path is None:
        path = os.path.join(args.results_dir, HISTORY_NAME)
    append_record(record, path=path)
    print("appended %d metrics from %d experiments to %s"
          % (len(record["metrics"]), len(record["experiments"]), path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
