"""Telemetry disabled-path overhead on the DMM-SAT hot loop.

The instrumentation contract (docs/observability.md) is that telemetry
is free to leave compiled in: with the NULL registry active, an
instrumented call site costs two attribute lookups and a no-op method
call.  This benchmark holds the subsystem to that promise on the
hottest loop in the repository -- the forward-Euler integration inside
:meth:`repro.memcomputing.solver.DmmSolver.solve` (the loop behind the
DMM-SAT scaling study in ``bench_dmm_sat.py``).

Three timings over the *same instance and trajectory*:

* ``reference``  -- a hand-inlined copy of the pre-telemetry solver
  loop, calling the same ``DmmSystem.rhs``, with zero telemetry code;
* ``disabled``   -- the instrumented ``DmmSolver.solve`` with the NULL
  registry active (the library default);
* ``enabled``    -- the same call with a live :class:`MetricsRegistry`
  (no sinks), for scale.

Identical seeds force identical trajectories (asserted via the step
count), so any timing difference is instrumentation cost.  The
acceptance bar: disabled-path slowdown below 5%.
"""

import time

import numpy as np
from conftest import emit_table

from repro.core import telemetry
from repro.core.sat_instances import planted_ksat
from repro.memcomputing.dynamics import DmmSystem
from repro.memcomputing.solver import DmmSolver

NUM_VARIABLES = 60
NUM_CLAUSES = 252  # ratio 4.2
INSTANCE_SEED = 7
SOLVE_SEED = 3
MAX_STEPS = 120_000
CHECK_EVERY = 25
DT = 0.08
#: Interleaved repetitions per variant; min-of-N de-noises the ratio.
REPEATS = 5
OVERHEAD_BUDGET = 0.05
#: Enabled-path budget: a live registry (counters + histograms + spans
#: firing every ``CHECK_EVERY`` steps, no sinks) may cost real work, but
#: it must stay far from "don't run instrumented in production"
#: territory.  Generous on purpose -- this guards against an accidental
#: hot-loop allocation, not against timer jitter.
ENABLED_OVERHEAD_BUDGET = 0.25


def _reference_solve(formula, rng_seed):
    """The seed solver loop, hand-inlined with no telemetry code.

    Mirrors ``DmmSolver._integrate`` (dt/check_every/max_steps fixed to
    the module constants, no noise, no restarts) minus every
    instrumentation line; returns (steps, satisfied, wall_seconds).
    """
    system = DmmSystem(formula)
    lower = system.lower_bounds()
    upper = system.upper_bounds()
    rng = np.random.default_rng(rng_seed)

    start = time.perf_counter()
    state = system.initial_state(rng)
    steps = 0
    sim_time = 0.0
    satisfied = False
    unsat_trace = [(0.0, system.unsatisfied_count(state))]
    while steps < MAX_STEPS:
        derivative = system.rhs(sim_time, state)
        state = state + DT * derivative
        np.clip(state, lower, upper, out=state)
        steps += 1
        sim_time += DT
        if steps % CHECK_EVERY == 0:
            unsat = system.unsatisfied_count(state)
            unsat_trace.append((sim_time, unsat))
            if unsat == 0:
                satisfied = True
                break
    return steps, satisfied, time.perf_counter() - start


def _instrumented_solve(formula, rng_seed):
    """One ``DmmSolver.solve`` under the *currently active* registry."""
    solver = DmmSolver(dt=DT, max_steps=MAX_STEPS, check_every=CHECK_EVERY)
    start = time.perf_counter()
    result = solver.solve(formula, rng=np.random.default_rng(rng_seed))
    return result.steps, result.satisfied, time.perf_counter() - start


def run_overhead():
    """Interleaved min-of-N timings; returns the measurement dict."""
    formula = planted_ksat(NUM_VARIABLES, NUM_CLAUSES, rng=INSTANCE_SEED)
    times = {"reference": [], "disabled": [], "enabled": []}
    steps_seen = set()
    for _ in range(REPEATS):
        steps, satisfied, elapsed = _reference_solve(formula, SOLVE_SEED)
        assert satisfied
        steps_seen.add(("reference", steps))
        times["reference"].append(elapsed)

        with telemetry.use_registry(telemetry.NULL_REGISTRY):
            steps, satisfied, elapsed = _instrumented_solve(formula,
                                                            SOLVE_SEED)
        assert satisfied
        steps_seen.add(("instrumented", steps))
        times["disabled"].append(elapsed)

        with telemetry.use_registry(telemetry.MetricsRegistry()):
            steps, satisfied, elapsed = _instrumented_solve(formula,
                                                            SOLVE_SEED)
        assert satisfied
        steps_seen.add(("instrumented", steps))
        times["enabled"].append(elapsed)
    # identical trajectories: one step count per variant, and they match
    assert len({count for _variant, count in steps_seen}) == 1, steps_seen
    best = {variant: min(samples) for variant, samples in times.items()}
    return {
        "steps": next(iter(steps_seen))[1],
        "best": best,
        "disabled_overhead": best["disabled"] / best["reference"] - 1.0,
        "enabled_overhead": best["enabled"] / best["reference"] - 1.0,
    }


def test_telemetry_disabled_overhead(benchmark):
    measurement = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    best = measurement["best"]
    disabled_overhead = measurement["disabled_overhead"]
    enabled_overhead = measurement["enabled_overhead"]
    rows = [
        ("reference (no telemetry code)", best["reference"] * 1e3, "-"),
        ("instrumented, NULL registry", best["disabled"] * 1e3,
         "%+.2f%%" % (100.0 * disabled_overhead)),
        ("instrumented, live registry", best["enabled"] * 1e3,
         "%+.2f%%" % (100.0 * enabled_overhead)),
    ]
    emit_table(
        "telemetry_overhead",
        "Telemetry overhead on the DMM forward-Euler loop "
        "(N=%d, %d steps, min of %d)"
        % (NUM_VARIABLES, measurement["steps"], REPEATS),
        ["variant", "time [ms]", "vs reference"],
        rows,
        notes=["Same instance and seed in every variant, so the "
               "integration trajectories are identical (asserted on the "
               "step count); timing deltas are pure instrumentation "
               "cost.",
               "Contract (docs/observability.md): the disabled path "
               "stays below %.0f%% overhead; the enabled path (live "
               "registry, no sinks) below %.0f%%."
               % (100 * OVERHEAD_BUDGET, 100 * ENABLED_OVERHEAD_BUDGET),
               "Labeled series (telemetry labels, PR 9) ride the same "
               "accessor path: with the NULL registry active a "
               "labels= call site is the identical no-op, so the "
               "disabled-path budget covers labeled call sites too."],
        metrics={
            "reference_s": best["reference"],
            "disabled_s": best["disabled"],
            "enabled_s": best["enabled"],
            "disabled_overhead": disabled_overhead,
            "enabled_overhead": enabled_overhead,
        },
    )
    assert disabled_overhead < OVERHEAD_BUDGET, (
        "disabled-path telemetry overhead %.2f%% exceeds %.0f%% budget"
        % (100 * disabled_overhead, 100 * OVERHEAD_BUDGET))
    assert enabled_overhead < ENABLED_OVERHEAD_BUDGET, (
        "enabled-path telemetry overhead %.2f%% exceeds %.0f%% budget"
        % (100 * enabled_overhead, 100 * ENABLED_OVERHEAD_BUDGET))
