"""DMM-SAT -- scaling of memcomputing vs conventional SAT solvers ([54]).

"Recent work has shown that simulations of DMMs perform much better than
traditional algorithmic approaches on a wide variety of combinatorial
optimization problems" and [54] reports exponential-speedup evidence.

The benchmark solves planted 3-SAT at fixed clause ratio across a size
sweep with three solvers and reports each solver's native work metric
(DMM integration steps, WalkSAT flips, DPLL decision nodes) plus the
fitted scaling exponent of median work vs N.  The reproduction target is
the *shape*: the DMM's work grows with a visibly smaller exponent than
the local-search baseline on the same instances.
"""

import numpy as np
from conftest import emit_table

from repro.core.sat_instances import planted_ksat
from repro.memcomputing.baselines import DpllSolver, WalkSatSolver
from repro.memcomputing.solver import DmmSolver

SIZES = (50, 100, 200, 400)
CLAUSE_RATIO = 4.2
SEEDS = (0, 1, 2)
#: DPLL is a pure-Python complete solver and becomes the wall-clock
#: bottleneck beyond this size; larger rows report '-' for it.
DPLL_SIZE_LIMIT = 100


def run_scaling():
    """Median work per solver per size over the seed set."""
    table = []
    for n in SIZES:
        dmm_steps = []
        walksat_flips = []
        dpll_nodes = []
        for seed in SEEDS:
            formula = planted_ksat(n, int(CLAUSE_RATIO * n),
                                   rng=1000 * n + seed)
            dmm = DmmSolver(max_steps=2_000_000).solve(formula,
                                                       rng=seed)
            assert dmm.satisfied
            dmm_steps.append(dmm.steps)
            walksat = WalkSatSolver(max_flips=2_000_000,
                                    max_tries=3).solve(formula, rng=seed)
            assert walksat.satisfied
            walksat_flips.append(walksat.flips)
            if n <= DPLL_SIZE_LIMIT:
                dpll = DpllSolver(max_nodes=50_000).solve(formula)
                dpll_nodes.append(dpll.nodes if dpll.satisfiable
                                  else float("nan"))
            else:
                dpll_nodes.append(float("nan"))
        table.append((n,
                      float(np.median(dmm_steps)),
                      float(np.median(walksat_flips)),
                      float(np.nanmedian(dpll_nodes))))
    return table


def _fit_exponent(sizes, work):
    sizes = np.asarray(sizes, dtype=float)
    work = np.asarray(work, dtype=float)
    valid = np.isfinite(work) & (work > 0)
    if np.count_nonzero(valid) < 2:
        return float("nan")
    slope, _ = np.polyfit(np.log(sizes[valid]), np.log(work[valid]), 1)
    return float(slope)


def test_dmm_sat_scaling(benchmark):
    table = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    sizes = [row[0] for row in table]
    dmm_exponent = _fit_exponent(sizes, [row[1] for row in table])
    walksat_exponent = _fit_exponent(sizes, [row[2] for row in table])
    rows = [row for row in table]
    rows.append(("scaling exp.", dmm_exponent, walksat_exponent, "-"))
    emit_table(
        "dmm_sat",
        "DMM-SAT: median work vs N on planted 3-SAT (ratio %.1f)"
        % CLAUSE_RATIO,
        ["N", "DMM steps", "WalkSAT flips", "DPLL nodes"],
        rows,
        notes=["Paper claim ([54] via Section IV): DMM simulations "
               "outperform conventional solvers, with power-law vs "
               "exponential-like scaling separations.",
               "Reproduced: fitted work exponent DMM = %.2f vs WalkSAT "
               "= %.2f on the same planted instances (smaller is better; "
               "DPLL shown for reference)."
               % (dmm_exponent, walksat_exponent)],
    )
    # the shape claim: DMM scales no worse than the local-search baseline
    assert dmm_exponent < walksat_exponent + 0.2
    # and all instances were solved by the DMM within budget (asserted
    # inside run_scaling)
