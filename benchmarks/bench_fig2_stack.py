"""FIG2 -- the quantum accelerator system stack (Fig. 2 of the paper).

Fig. 2 lists the layers any quantum accelerator must provide.  The
executable counterpart sends a kernel through every layer of
:class:`repro.quantum.accelerator.QuantumAccelerator` and reports what
each layer produced: gate counts at the language level, SWAPs inserted by
the mapper, instruction counts and on-chip time at the micro-architecture
level, and the measured distribution at the top.
"""

from conftest import emit_table

from repro.quantum.accelerator import QuantumAccelerator
from repro.quantum.algorithms.qft import qft_circuit


def run_stack():
    """Push a measured 5-qubit QFT kernel through the full stack."""
    accelerator = QuantumAccelerator(5)
    kernel = qft_circuit(5, name="qft5")
    kernel.measure_all()
    return accelerator.execute_kernel(kernel, shots=512, rng=0,
                                      application="qft(5)")


def test_fig2_stack_layers(benchmark):
    result, report = benchmark.pedantic(run_stack, rounds=1, iterations=1)
    rows = []
    for layer, fields in report.rows():
        if not fields:
            continue
        summary = ", ".join(
            "%s=%s" % (key, _short(value))
            for key, value in sorted(fields.items()))
        rows.append((layer, summary))
    emit_table(
        "fig2_stack",
        "FIG2: per-layer artifacts for qft(5) through the full stack",
        ["stack layer", "artifacts"],
        rows,
        notes=["Paper claim (structural): a quantum accelerator requires "
               "compiler, runtime, and micro-architecture layers (Fig. 2).",
               "Reproduced: all six layers execute and report; %d distinct "
               "outcomes measured over 512 shots." % len(result.counts)],
    )
    layers = dict(report.rows())
    assert layers["compiler (mapping+routing)"]["swaps_inserted"] >= 1
    assert layers["micro-architecture"]["within_coherence"]
    # the QFT of |00000> is uniform over 32 outcomes
    assert len(result.counts) == 32


def _short(value):
    if isinstance(value, dict):
        return "{" + ",".join("%s:%s" % kv for kv in sorted(value.items())) \
            + "}"
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)
