"""SHOR -- the in-text cryptography claim of Section II.C.

"algorithms such as Shor's factorization have shown that a quantum
computer has the potential to break any RSA-based encryption by finding
the prime factors of the public key."

The benchmark factors a family of semiprimes through quantum order
finding and reports the resources the accelerator consumed: qubits,
counting precision, order-finding attempts, and wall time on the
simulated chip.
"""

import time

from conftest import emit_table

from repro.quantum.algorithms.shor import (
    find_order,
    order_finding_circuit,
    shor_factor,
)

SEMIPRIMES = (15, 21, 35)


def run_factoring():
    """Factor each semiprime and collect resource counts."""
    rows = []
    for n in SEMIPRIMES:
        circuit, t, work = order_finding_circuit(
            _coprime_base(n), n)
        start = time.perf_counter()
        result = shor_factor(n, rng=n)
        wall = time.perf_counter() - start
        rows.append((n, result.factors, result.method, result.attempts,
                     t + work, wall))
    return rows


def _coprime_base(n):
    import math

    for a in range(2, n):
        if math.gcd(a, n) == 1:
            return a
    raise ValueError("no coprime base below %d" % n)


def run_order_finding():
    """One representative quantum order-finding call (the timed kernel)."""
    return find_order(7, 15, rng=1)


def test_shor_factoring(benchmark):
    order = benchmark.pedantic(run_order_finding, rounds=3, iterations=1)
    assert order == 4
    rows = run_factoring()
    emit_table(
        "shor",
        "SHOR: factoring semiprimes via quantum order finding",
        ["N", "factors", "method", "base attempts", "qubits", "wall (s)"],
        rows,
        notes=["Paper claim: Shor's algorithm recovers prime factors, "
               "breaking RSA-style keys.",
               "Reproduced: every semiprime factored; order finding runs "
               "phase estimation with 3n qubits (2n counting + n work)."],
    )
    for n, factors, _method, _attempts, _qubits, _wall in rows:
        assert factors is not None
        assert factors[0] * factors[1] == n
