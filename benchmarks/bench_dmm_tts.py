"""DMM-TTS -- time-to-solution distributions, the methodology of [54].

[54] ("Evidence of exponential speed-up in the solution of hard
optimization problems") argues from *quantiles of the time-to-solution
distribution* over many random initial conditions, not from single runs.
This benchmark applies that methodology to the library's DMM with the
batched ensemble integrator: per instance size, 32 trajectories per
instance, reporting the median and 90th-percentile TTS (in integration
steps) alongside WalkSAT's restart-based TTS quantiles on the same
instances.

Shape targets: every trajectory solves (100 % ensemble success on
planted instances), the q90/q50 spread stays bounded, and the DMM's
quantile scaling exponent stays below WalkSAT's.
"""

import numpy as np
from conftest import emit_table

from repro.core.sat_instances import planted_ksat
from repro.memcomputing.baselines import WalkSatSolver
from repro.memcomputing.ensemble import solve_ensemble

SIZES = (50, 100, 200)
BATCH = 32
SEEDS = (0, 1)


def walksat_tts(formula, runs, rng_base):
    """Flips-to-solution across independent WalkSAT runs."""
    flips = []
    for run in range(runs):
        result = WalkSatSolver(max_flips=2_000_000, max_tries=1).solve(
            formula, rng=rng_base + run)
        flips.append(result.flips if result.satisfied else np.inf)
    return np.asarray(flips, dtype=float)


def run_tts_study():
    """Quantiles per size, pooled over instances and trajectories."""
    rows = []
    for n in SIZES:
        dmm_steps = []
        walksat_flips = []
        solved = []
        for seed in SEEDS:
            formula = planted_ksat(n, int(4.2 * n), rng=777 * n + seed)
            ensemble = solve_ensemble(formula, batch=BATCH,
                                      max_steps=400_000, rng=seed)
            solved.append(ensemble.solved_fraction)
            dmm_steps.extend(ensemble.solve_steps.tolist())
            walksat_flips.extend(
                walksat_tts(formula, runs=8, rng_base=seed * 100))
        dmm_steps = np.asarray(dmm_steps)
        walksat_flips = np.asarray(walksat_flips)
        rows.append((
            n,
            float(np.min(solved)),
            float(np.quantile(dmm_steps, 0.5)),
            float(np.quantile(dmm_steps, 0.9)),
            float(np.quantile(walksat_flips, 0.5)),
            float(np.quantile(walksat_flips, 0.9)),
        ))
    return rows


def _fit_exponent(sizes, values):
    sizes = np.asarray(sizes, dtype=float)
    values = np.asarray(values, dtype=float)
    slope, _ = np.polyfit(np.log(sizes), np.log(values), 1)
    return float(slope)


def test_dmm_tts_distribution(benchmark):
    rows = benchmark.pedantic(run_tts_study, rounds=1, iterations=1)
    sizes = [row[0] for row in rows]
    dmm_median_exp = _fit_exponent(sizes, [row[2] for row in rows])
    dmm_q90_exp = _fit_exponent(sizes, [row[3] for row in rows])
    walksat_median_exp = _fit_exponent(sizes, [row[4] for row in rows])
    table = list(rows)
    table.append(("scaling exp.", "-", dmm_median_exp, dmm_q90_exp,
                  walksat_median_exp, "-"))
    emit_table(
        "dmm_tts",
        "DMM-TTS: time-to-solution quantiles over %d trajectories "
        "per instance (planted 3-SAT, ratio 4.2)" % BATCH,
        ["N", "ensemble success", "DMM q50 steps", "DMM q90 steps",
         "WalkSAT q50 flips", "WalkSAT q90 flips"],
        table,
        notes=["Paper claim ([54]): speed-up evidence is carried by TTS "
               "*quantiles* over random initial conditions.",
               "Reproduced: 100 %% ensemble success at every size; DMM "
               "median-TTS exponent %.2f (q90 %.2f) vs WalkSAT median "
               "%.2f." % (dmm_median_exp, dmm_q90_exp,
                          walksat_median_exp)],
    )
    # every trajectory of every ensemble solved
    assert all(row[1] == 1.0 for row in rows)
    # quantiles ordered and the q90/q50 spread bounded
    for _n, _s, q50, q90, _w50, _w90 in rows:
        assert q50 <= q90 <= 50 * q50
    # the [54]-style separation: DMM quantile scaling below WalkSAT's
    assert dmm_median_exp < walksat_median_exp + 0.2
