"""QNOISE -- the coherence challenge of Section II.B, quantified.

"Qubits with sufficiently long coherence times ... are crucial
requirements that have not yet been met by the community."

The paper states the challenge without numbers; this extension benchmark
puts a scale on it with the library's noisy chip model: Bell-pair
correlation versus per-gate depolarizing error.  The shape to observe is
the steady decay from perfect correlation toward the fully-mixed 50 %
floor -- the quantitative reason coherence dominates the Fig. 2 stack's
requirements.
"""

from conftest import emit_table

from repro.quantum.noise import bell_fidelity_vs_noise

ERROR_RATES = (0.0, 0.01, 0.05, 0.1, 0.2, 0.5)


def run_noise_curve():
    """Bell-pair agreement across gate error rates."""
    return bell_fidelity_vs_noise(ERROR_RATES, shots=400, rng=0)


def test_quantum_noise_degradation(benchmark):
    rows = benchmark.pedantic(run_noise_curve, rounds=1, iterations=1)
    emit_table(
        "quantum_noise",
        "QNOISE: Bell-pair correlation vs per-gate depolarizing error",
        ["gate error", "agreement fraction"],
        rows,
        notes=["Paper claim (qualitative): insufficient coherence is the "
               "blocking challenge for useful quantum acceleration.",
               "Reproduced: correlation decays from 1.0 toward the 0.5 "
               "fully-mixed floor as the per-gate error grows."],
    )
    agreements = [agreement for _error, agreement in rows]
    assert agreements[0] == 1.0
    assert all(later <= earlier + 0.05
               for earlier, later in zip(agreements, agreements[1:]))
    assert agreements[-1] < 0.7
