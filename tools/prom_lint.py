"""Minimal vendored checker for the Prometheus text exposition format.

CI needs to prove that ``GET /v1/metrics?format=prometheus`` emits
something a real scraper would ingest, but the container has no
``prometheus_client`` to parse with -- so this vendors the few rules of
the text format (version 0.0.4) the exposition can actually get wrong:

* sample lines are ``name[{labels}] value [timestamp]`` with the
  metric-name grammar ``[a-zA-Z_:][a-zA-Z0-9_:]*`` and the label-name
  grammar ``[a-zA-Z_][a-zA-Z0-9_]*``;
* label values are double-quoted with ``\\``, ``\\"`` and ``\\n``
  escapes; no duplicate label names in one sample;
* values are floats, ``NaN`` or ``+Inf``/``-Inf``;
* ``# TYPE`` names one of the known types, appears at most once per
  family, and precedes every sample of that family; all samples of a
  family are contiguous;
* summary/histogram samples may extend their family name only with the
  blessed suffixes (``_sum``/``_count``; ``_bucket`` for histograms),
  and ``quantile``/``le`` labels appear only where the type allows;
* no duplicate sample (same name and label set), and the exposition
  ends with a newline.

``check_exposition(text)`` returns a list of ``"line N: message"``
strings (empty == clean).  Run as a script it reads a file (or stdin
with ``-``) and exits 1 on errors -- the contract test in
``tests/tools/test_prom_lint.py`` keeps this checker and the renderer
in ``repro.core.exposition`` honest against each other.
"""

import re
import sys

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
_VALUE = (r"(?:[+-]?Inf|NaN|[+-]?(?:[0-9]+\.?[0-9]*|\.[0-9]+)"
          r"(?:[eE][+-]?[0-9]+)?)")

_SAMPLE_RE = re.compile(
    r"^(?P<name>%s)(?P<labels>\{.*\})?"
    r" (?P<value>%s)(?: (?P<timestamp>[+-]?[0-9]+))?$"
    % (_METRIC_NAME, _VALUE))

_LABEL_RE = re.compile(
    r'^(?P<name>%s)="(?P<value>(?:[^"\\]|\\.)*)"$' % _LABEL_NAME)

_NAME_RE = re.compile("^%s$" % _METRIC_NAME)

_TYPES = frozenset({"counter", "gauge", "summary", "histogram",
                    "untyped"})

#: Suffixes a sample may append to its declared family name.
_SUFFIXES = {
    "summary": ("", "_sum", "_count"),
    "histogram": ("", "_bucket", "_sum", "_count"),
}


def _split_labels(body):
    """The ``key="value"`` items of one ``{...}`` body, or None on a
    structurally broken body (unterminated quote).
    """
    inner = body[1:-1]
    if inner.endswith(","):  # a single trailing comma is legal
        inner = inner[:-1]
    if not inner:
        return []
    items, current, in_quotes, escaped = [], [], False, False
    for ch in inner:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\" and in_quotes:
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            items.append("".join(current))
            current = []
            continue
        current.append(ch)
    if in_quotes or escaped:
        return None
    items.append("".join(current))
    return items


def _family_of(name, types):
    """The declared family a sample name belongs to, or None.

    Longest match wins so ``x_sum`` prefers a declared family
    ``x_sum`` over family ``x`` with suffix ``_sum``.
    """
    for candidate in sorted(types, key=len, reverse=True):
        kind = types[candidate]
        for suffix in _SUFFIXES.get(kind, ("",)):
            if name == candidate + suffix:
                return candidate
    return None


def check_exposition(text):
    """Lint one exposition body; returns ``["line N: msg", ...]``."""
    errors = []
    types = {}            # family -> declared type
    families_done = set()  # families whose sample block has ended
    current_family = None
    seen_samples = set()

    def error(lineno, message):
        errors.append("line %d: %s" % (lineno, message))

    lines = text.split("\n")
    if text and not text.endswith("\n"):
        error(len(lines), "exposition must end with a newline")
    else:
        lines = lines[:-1] if text else []

    for lineno, line in enumerate(lines, 1):
        if line == "":
            continue
        if line != line.strip() or "\t" in line:
            error(lineno, "leading/trailing whitespace or tabs")
            line = line.strip()
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                error(lineno, "%s with a missing or invalid metric name"
                      % parts[1])
                continue
            name = parts[2]
            if parts[1] == "HELP":
                continue
            kind = parts[3] if len(parts) == 4 else ""
            if kind not in _TYPES:
                error(lineno, "unknown TYPE %r for %s" % (kind, name))
                continue
            if name in types:
                error(lineno, "duplicate TYPE for family %s" % name)
                continue
            if name in families_done or name == current_family:
                error(lineno, "TYPE for %s after its samples" % name)
            types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            error(lineno, "unparseable sample line: %r" % line)
            continue
        name = match.group("name")
        family = _family_of(name, types) or name
        kind = types.get(family, "untyped")
        if family != current_family:
            if family in families_done:
                error(lineno, "samples of family %s are not contiguous"
                      % family)
            if current_family is not None:
                families_done.add(current_family)
            current_family = family
        label_names = []
        body = match.group("labels")
        if body is not None:
            items = _split_labels(body)
            if items is None:
                error(lineno, "unterminated quote in label body")
                continue
            for item in items:
                pair = _LABEL_RE.match(item)
                if pair is None:
                    error(lineno, "malformed label %r" % item)
                    continue
                label_names.append(pair.group("name"))
            duplicates = {label for label in label_names
                          if label_names.count(label) > 1}
            if duplicates:
                error(lineno, "duplicate label name(s): %s"
                      % ", ".join(sorted(duplicates)))
        if "quantile" in label_names \
                and not (kind == "summary" and name == family):
            error(lineno, "'quantile' label outside a summary")
        if "le" in label_names \
                and not (kind == "histogram"
                         and name == family + "_bucket"):
            error(lineno, "'le' label outside histogram buckets")
        key = (name, tuple(sorted(
            item for item in (_split_labels(body) or [])))
            if body is not None else ())
        if key in seen_samples:
            error(lineno, "duplicate sample %s" % name)
        seen_samples.add(key)
    return errors


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        sys.stderr.write("usage: python tools/prom_lint.py "
                         "EXPOSITION_FILE (or - for stdin)\n")
        return 2
    if argv[0] == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(argv[0]) as handle:
                text = handle.read()
        except OSError as err:
            sys.stderr.write("prom_lint: %s\n" % err)
            return 2
    errors = check_exposition(text)
    for message in errors:
        sys.stderr.write("prom_lint: %s\n" % message)
    if errors:
        sys.stderr.write("prom_lint: %d error(s)\n" % len(errors))
        return 1
    sys.stderr.write("prom_lint: clean\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
