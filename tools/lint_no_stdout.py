"""Lint: the library must never write to stdout on its own.

Output is a CLI decision (``repro.cli``) or an explicit sink the caller
constructed with a stream (``tracing.ConsoleSink``); a stray ``print``
deep in a solver corrupts machine-readable output (DIMACS model lines,
JSONL traces, piped tables).  The rule extends to the parallel
execution engine's worker entry points (``core.parallel`` and the
``_*_chunk``/``_*_attempt`` functions it dispatches): a forked worker
inherits the parent's file descriptors, so a stray write from a child
corrupts the parent's stdout just as surely -- and interleaved across
processes.  This walks ``src/repro`` ASTs and flags

* any ``print(...)`` call,
* any ``sys.stdout`` / ``sys.stderr`` attribute access, including the
  ``sys.__stdout__`` / ``sys.__stderr__`` originals workers could reach
  after a redirect,
* ``from sys import stdout`` (and ``stderr``) aliases,
* ``os.write(1, ...)`` / ``os.write(2, ...)`` -- the raw-fd escape
  hatch available inside a forked worker,
* ``os._exit(...)`` -- kills the process with no cleanup and no
  traceback; only the fault-injection harness
  (``core/resilience.py``'s ``kill`` faults) may use it,

outside the allowlist.  The serving stack (``repro.serve``, including
the SLO evaluator and the Prometheus exposition path) is *strict*: the
allowlist cannot exempt it, because everything a server says belongs in
an HTTP response body, never on the process streams.  Docstrings and
comments are naturally exempt (they never parse as calls).  Run
directly or via ``make lint``::

    python tools/lint_no_stdout.py
"""

import ast
import os
import sys

#: sys attributes that reach the process's standard streams.
_STREAM_ATTRS = ("stdout", "stderr", "__stdout__", "__stderr__")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LIBRARY_ROOT = os.path.join(REPO_ROOT, "src", "repro")

#: Paths (relative to src/repro) that legitimately own process output.
ALLOWLIST = frozenset({
    "cli.py",  # the CLI is *the* place stdout decisions are made
})

#: Path prefixes (relative to src/repro) where the allowlist does NOT
#: apply: the serving stack answers over HTTP response bodies, and its
#: process stdout may be piped or captured by a supervisor -- a stray
#: print would interleave with nothing useful and could corrupt
#: log-shipping.  Exposition and SLO reports go through the response
#: writer, never the process streams.  Adding a serve path to
#: ALLOWLIST has no effect; these are linted unconditionally.
STRICT_PREFIXES = ("serve" + os.sep,)

#: Paths (relative to src/repro) allowed to call ``os._exit``: the
#: fault-injection harness deliberately kills worker processes to
#: exercise crash detection.
EXIT_ALLOWLIST = frozenset({
    os.path.join("core", "resilience.py"),
})


def _is_fd_write(node):
    """True for ``os.write(1, ...)`` / ``os.write(2, ...)`` calls."""
    return (isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "os"
            and node.func.attr == "write"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value in (1, 2))


def _is_hard_exit(node):
    """True for ``os._exit(...)`` calls."""
    return (isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "os"
            and node.func.attr == "_exit")


def _violations_in(tree, allow_exit=False):
    """Yield (lineno, message) for each stdout use in one module AST."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                yield node.lineno, "print() call"
            elif _is_fd_write(node):
                yield (node.lineno,
                       "os.write(%d, ...) call" % node.args[0].value)
            elif _is_hard_exit(node) and not allow_exit:
                yield node.lineno, "os._exit() call"
        elif (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "sys"
                and node.attr in _STREAM_ATTRS):
            yield node.lineno, "sys.%s access" % node.attr
        elif (isinstance(node, ast.ImportFrom)
                and node.module == "sys"):
            for alias in node.names:
                if alias.name in _STREAM_ATTRS:
                    yield (node.lineno,
                           "from sys import %s" % alias.name)


def lint(library_root=LIBRARY_ROOT, out=sys.stderr):
    """Return the number of violations found (0 == clean)."""
    count = 0
    for dirpath, _dirnames, filenames in sorted(os.walk(library_root)):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, library_root)
            strict = relative.startswith(STRICT_PREFIXES)
            if relative in ALLOWLIST and not strict:
                continue
            with open(path) as handle:
                tree = ast.parse(handle.read(), filename=relative)
            allow_exit = relative in EXIT_ALLOWLIST
            for lineno, message in _violations_in(tree,
                                                  allow_exit=allow_exit):
                out.write("%s:%d: %s (library modules must not write "
                          "to stdout or hard-exit; see "
                          "docs/observability.md)\n"
                          % (os.path.join("src", "repro", relative),
                             lineno, message))
                count += 1
    return count


def main():
    violations = lint()
    if violations:
        sys.stderr.write("lint_no_stdout: %d violation(s)\n" % violations)
        return 1
    sys.stderr.write("lint_no_stdout: clean\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
