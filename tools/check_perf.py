"""Diff the latest benchmark run against the committed perf baseline.

Usage (after the benchmark suite and ``benchmarks/history.py``)::

    python tools/check_perf.py                 # compare, exit 1 on regression
    python tools/check_perf.py --write-baseline  # refresh baseline.json

``benchmarks/baseline.json`` pins expected values for the metrics each
benchmark publishes through ``emit_table(..., metrics=...)``.  Every
entry is one of::

    {"value": 0.012, "tolerance": 0.5, "direction": "lower"}
    {"max": 0.05}          # absolute ceiling (ratios, error rates)
    {"min": 2.0}           # absolute floor (speedups, throughputs)

``direction`` says which way is *better*: ``"lower"`` (timings -- a
regression is the measurement rising above ``value * (1 + tolerance)``)
or ``"higher"`` (throughputs -- a regression is falling below
``value * (1 - tolerance)``).  Tolerances are deliberately loose: this
gate exists to catch 2x cliffs introduced by a code change, not 5%
jitter on shared CI hosts.  Baseline metrics missing from the latest
run, and a host that differs materially from the one that produced the
baseline, are reported as warnings rather than failures.

The two entry shapes gate differently.  Absolute ``max``/``min`` pins
are *hard*: they encode semantic budgets (an error-rate ceiling, a
telemetry-overhead cap, a serve-latency SLO headroom) that hold on any
host, so a breach fails the build (exit 1).  Relative
``value``/``tolerance`` bands are *soft*: wall-clock numbers from
shared runners are advice, not verdicts, so a band regression only
annotates the build via ``::warning::`` lines and still exits 0.
Exit status: 0 clean (possibly with soft warnings), 1 hard breach,
2 usage/setup error.
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

from repro.core import provenance  # noqa: E402
import history  # noqa: E402

BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "baseline.json")
DEFAULT_TOLERANCE = 0.5


def load_baseline(path=BASELINE_PATH):
    """The committed baseline document ``{"metrics": {...}, ...}``."""
    with open(path) as handle:
        baseline = json.load(handle)
    if not isinstance(baseline, dict) or "metrics" not in baseline:
        raise ValueError("baseline %s has no 'metrics' section" % path)
    return baseline


def compare_metric(entry, measured):
    """Verdict for one metric: ``(status, detail)``.

    ``status`` is ``"ok"`` or ``"regression"``; ``detail`` is a short
    human explanation of the bound that was checked.
    """
    if "max" in entry:
        bound = float(entry["max"])
        status = "ok" if measured <= bound else "regression"
        return status, "%.4g <= max %.4g" % (measured, bound)
    if "min" in entry:
        bound = float(entry["min"])
        status = "ok" if measured >= bound else "regression"
        return status, "%.4g >= min %.4g" % (measured, bound)
    value = float(entry["value"])
    tolerance = float(entry.get("tolerance", DEFAULT_TOLERANCE))
    direction = entry.get("direction", "lower")
    # the tolerance band scales with |value| so it opens the same way
    # for negative baselines (overhead ratios can dip below zero on a
    # noisy host); ratio-like metrics near zero belong in absolute
    # max/min entries instead.
    band = tolerance * abs(value)
    if direction == "higher":
        bound = value - band
        status = "ok" if measured >= bound else "regression"
        return status, ("%.4g >= %.4g (baseline %.4g -%d%%)"
                        % (measured, bound, value, round(tolerance * 100)))
    bound = value + band
    status = "ok" if measured <= bound else "regression"
    return status, ("%.4g <= %.4g (baseline %.4g +%d%%)"
                    % (measured, bound, value, round(tolerance * 100)))


def compare(baseline, record):
    """Compare a history record against the baseline.

    Returns ``{"results": [(name, status, detail), ...],
    "regressions": [...], "missing": [...], "unbaselined": [...]}``
    where ``missing`` are baseline metrics absent from the record and
    ``unbaselined`` are record metrics with no baseline entry.
    """
    measured = record.get("metrics", {})
    results, regressions, missing = [], [], []
    hard, soft = [], []
    for name in sorted(baseline["metrics"]):
        entry = baseline["metrics"][name]
        if name not in measured:
            missing.append(name)
            continue
        status, detail = compare_metric(entry, float(measured[name]))
        results.append((name, status, detail))
        if status == "regression":
            regressions.append(name)
            if "max" in entry or "min" in entry:
                hard.append(name)
            else:
                soft.append(name)
    unbaselined = sorted(set(measured) - set(baseline["metrics"]))
    return {"results": results, "regressions": regressions,
            "hard": hard, "soft": soft,
            "missing": missing, "unbaselined": unbaselined}


def write_baseline(record, path=BASELINE_PATH,
                   tolerance=DEFAULT_TOLERANCE, previous=None):
    """Write a fresh baseline from a history record.

    Metrics default to ``{"value": v, "tolerance": t, "direction":
    "lower"}``, except names ending in ``_rate``/``_per_s`` or
    containing ``speedup`` (throughputs: higher is better) and names
    ending in ``_overhead`` (ratio budgets near zero, where a relative
    band is meaningless: pinned as an absolute ceiling one default-band
    above the measurement).  Entries already present in ``previous``
    keep their configured tolerance/direction/absolute bounds (only
    ``value`` is refreshed), so hand-tuned budgets survive a refresh.
    """
    kept = (previous or {}).get("metrics", {})
    metrics = {}
    for name, value in sorted(record.get("metrics", {}).items()):
        old = kept.get(name)
        if old is not None and ("max" in old or "min" in old):
            metrics[name] = dict(old)
        elif old is not None:
            metrics[name] = dict(old, value=value)
        elif name.endswith(("_rate", ".rate", "_per_s")) \
                or "speedup" in name:
            metrics[name] = {"value": value, "tolerance": tolerance,
                             "direction": "higher"}
        elif name.endswith("_overhead"):
            metrics[name] = {"max": max(value, 0.0) + tolerance * 0.1}
        else:
            metrics[name] = {"value": value, "tolerance": tolerance,
                             "direction": "lower"}
    document = {
        "schema": 1,
        "provenance": record.get("provenance", {}),
        "metrics": metrics,
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _warn(message):
    """GitHub Actions annotation plus a plain line for local runs."""
    print("::warning::%s" % message)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare the latest benchmark run against the "
                    "committed baseline")
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument("--history", default=None,
                        help="history file (default: "
                             "benchmarks/results/history.jsonl)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="refresh the baseline from the latest run "
                             "instead of comparing")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="default relative tolerance for new "
                             "baseline entries")
    args = parser.parse_args(argv)
    history_path = args.history
    if history_path is None:
        history_path = os.path.join(history.RESULTS_DIR,
                                    history.HISTORY_NAME)
    record = history.latest_record(history_path)
    if record is None:
        print("no history at %s -- run the benchmark suite, then "
              "`python benchmarks/history.py`" % history_path)
        return 2

    if args.write_baseline:
        previous = None
        try:
            previous = load_baseline(args.baseline)
        except (OSError, ValueError):
            pass
        path = write_baseline(record, args.baseline,
                              tolerance=args.tolerance, previous=previous)
        print("baseline written: %s (%d metrics)"
              % (path, len(record.get("metrics", {}))))
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except OSError:
        print("no baseline at %s -- create one with --write-baseline"
              % args.baseline)
        return 2

    outcome = compare(baseline, record)
    width = max((len(name) for name, _s, _d in outcome["results"]),
                default=10)
    for name, status, detail in outcome["results"]:
        marker = "ok " if status == "ok" else "REG"
        print("%s  %s  %s" % (marker, name.ljust(width), detail))
    for name in outcome["missing"]:
        _warn("perf baseline metric '%s' missing from latest run" % name)
    if outcome["unbaselined"]:
        print("%d metric(s) not in baseline (refresh with "
              "--write-baseline): %s"
              % (len(outcome["unbaselined"]),
                 ", ".join(outcome["unbaselined"][:8])
                 + ("..." if len(outcome["unbaselined"]) > 8 else "")))
    base_prov = baseline.get("provenance", {})
    run_prov = record.get("provenance", {})
    if base_prov and not provenance.comparable(base_prov, run_prov):
        _warn("perf hosts differ (baseline %s/%s cpus vs run %s/%s "
              "cpus); wall-clock comparison is indicative only"
              % (base_prov.get("machine"), base_prov.get("cpu_count"),
                 run_prov.get("machine"), run_prov.get("cpu_count")))
    for name in outcome["soft"]:
        _warn("perf regression (soft, tolerance band): %s" % name)
    if outcome["hard"]:
        for name in outcome["hard"]:
            print("::error::perf budget breached: %s" % name)
        print("%d hard perf breach(es) against %s (absolute max/min "
              "pins)" % (len(outcome["hard"]), args.baseline))
        return 1
    if outcome["soft"]:
        print("%d soft perf regression(s) against %s (warnings only; "
              "wall-clock bands from shared runners are advisory)"
              % (len(outcome["soft"]), args.baseline))
        return 0
    print("perf check clean: %d metric(s) within budget"
          % len(outcome["results"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
