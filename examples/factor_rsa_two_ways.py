"""Scenario: break a toy RSA key with two post-von-Neumann machines.

Section II names cryptography as quantum computing's killer application;
Section IV's memcomputing literature ([47]) claims efficient
factorization by running a self-organizing multiplier backwards.  This
example does both on the same semiprime:

1. **Quantum**: Shor's order finding on the simulated accelerator.
2. **Memcomputing**: an inverted SOLG array multiplier whose product
   terminals are pinned to N.

then recovers the toy RSA private key from the factors.

Usage::

    python examples/factor_rsa_two_ways.py [N]
"""

import math
import sys
import time

from repro.memcomputing.circuit import factor_with_memcomputing
from repro.quantum.algorithms.shor import shor_factor

DEFAULT_N = 35
PUBLIC_EXPONENT = 5


def recover_private_key(p, q, public_exponent):
    """Classical RSA key recovery once the modulus is factored."""
    totient = (p - 1) * (q - 1)
    if math.gcd(public_exponent, totient) != 1:
        raise ValueError("public exponent %d not invertible mod %d"
                         % (public_exponent, totient))
    return pow(public_exponent, -1, totient)


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_N
    print("target semiprime: N = %d (toy RSA modulus)\n" % n)

    print("--- path 1: Shor's algorithm on the quantum accelerator ---")
    start = time.perf_counter()
    shor = shor_factor(n, rng=0)
    elapsed = time.perf_counter() - start
    if not shor.succeeded:
        raise SystemExit("Shor failed to factor %d" % n)
    print("factors: %d x %d  (method: %s, %.2f s)"
          % (shor.factors[0], shor.factors[1], shor.method, elapsed))
    if shor.orders_found:
        base, order = shor.orders_found[-1]
        print("recovered multiplicative order: ord_%d(%d) = %d"
              % (n, base, order))

    print("\n--- path 2: memcomputing (inverted SOLG multiplier) ---")
    start = time.perf_counter()
    factor_a, factor_b = factor_with_memcomputing(n, rng=1)
    elapsed = time.perf_counter() - start
    print("factors: %d x %d  (self-organized in %.2f s)"
          % (factor_a, factor_b, elapsed))

    p, q = sorted(shor.factors)
    try:
        private = recover_private_key(p, q, PUBLIC_EXPONENT)
    except ValueError as error:
        print("\n(key recovery skipped: %s)" % error)
        return
    print("\n--- toy RSA key recovery ---")
    print("public key: (N=%d, e=%d)" % (n, PUBLIC_EXPONENT))
    print("private exponent: d = %d" % private)
    message = 2
    ciphertext = pow(message, PUBLIC_EXPONENT, n)
    decrypted = pow(ciphertext, private, n)
    print("round trip: m=%d -> c=%d -> m=%d  (%s)"
          % (message, ciphertext, decrypted,
             "OK" if decrypted == message else "FAILED"))


if __name__ == "__main__":
    main()
