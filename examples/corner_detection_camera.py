"""Scenario: an always-on vision front-end built from VO2 oscillators.

Section III motivates coupled-oscillator computing with latency-critical,
power-starved computer vision.  This example plays that scenario end to
end: a stream of synthetic "camera frames" is scanned for corners by

* the oscillator FAST detector (Fig. 6 flow, analog distance primitive),
* the software FAST baseline (what a CMOS accelerator computes),

and the script reports per-frame agreement, cumulative detection
statistics, and the block-power comparison that closes Section III
(0.936 mW vs 3 mW in the paper).

Usage::

    python examples/corner_detection_camera.py
"""

import numpy as np

from repro.core.rngs import make_rng
from repro.oscillators.fast import (
    OscillatorFastDetector,
    SoftwareFastDetector,
    add_noise,
    rectangle_image,
    triangle_image,
)
from repro.oscillators.fast.oscillator_fast import agreement
from repro.oscillators.power import power_comparison

NUM_FRAMES = 6
NOISE_SIGMA = 6.0


def synthetic_frame(index, rng):
    """A moving rectangle or triangle with sensor noise."""
    if index % 2 == 0:
        offset = 4 + 3 * (index // 2)
        image, corners = rectangle_image(top=offset, left=offset,
                                         bottom=offset + 20,
                                         right=offset + 22)
    else:
        image, corners = triangle_image()
    return add_noise(image, NOISE_SIGMA, rng=rng), corners


def main():
    rng = make_rng(42)
    oscillator = OscillatorFastDetector(threshold=30, n=9)
    software = SoftwareFastDetector(threshold=30, n=9)

    print("streaming %d frames through both detectors\n" % NUM_FRAMES)
    precisions = []
    recalls = []
    comparisons = 0
    for index in range(NUM_FRAMES):
        frame, _truth = synthetic_frame(index, rng)
        sw_corners = software.detect(frame)
        osc_corners = oscillator.detect(frame)
        report = agreement(osc_corners, sw_corners, tolerance=1)
        comparisons += oscillator.last_stats["oscillator_comparisons"]
        precisions.append(report["precision"])
        recalls.append(report["recall"])
        print("frame %d: software=%2d corners, oscillator=%2d corners, "
              "precision=%.2f recall=%.2f"
              % (index, len(sw_corners), len(osc_corners),
                 report["precision"], report["recall"]))

    print("\nmean agreement vs software baseline: precision=%.3f "
          "recall=%.3f" % (np.mean(precisions), np.mean(recalls)))
    print("total oscillator distance-primitive invocations: %d"
          % comparisons)

    power = power_comparison()
    print("\nblock power comparison (Section III.B):")
    print("  oscillator block (incl. XOR readout): %.3f mW  "
          "(paper: 0.936 mW)" % (power["oscillator_w"] * 1e3))
    print("  CMOS block at 32 nm:                  %.3f mW  "
          "(paper: 3 mW)" % (power["cmos_w"] * 1e3))
    print("  ratio: %.2fx in favour of the oscillators "
          "(paper: 3.21x)" % power["ratio"])


if __name__ == "__main__":
    main()
