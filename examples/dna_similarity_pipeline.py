"""Scenario: genome-similarity screening on the heterogeneous system.

Section II.C motivates quantum accelerators with DNA analysis, and
Fig. 1 shows the system they'd plug into.  This example builds a small
read-screening pipeline:

1. the workload (parse, align, learn, filter, quantum similarity) is
   dispatched onto the Fig. 1 heterogeneous system,
2. the quantum similarity kernel scores a query sequence against a
   reference panel with the SWAP test,
3. results are cross-checked against classical k-mer and edit-distance
   baselines.

Usage::

    python examples/dna_similarity_pipeline.py
"""

import numpy as np

from repro.quantum.algorithms.dna import (
    edit_distance,
    kmer_similarity,
    mutate,
    quantum_similarity,
    random_dna,
)
from repro.quantum.hetero import HeterogeneousSystem, example_workload

PANEL_SIZE = 5
SEQUENCE_LENGTH = 24


def build_panel(rng_seed=0):
    """A reference panel: relatives of a base genome plus an outgroup."""
    base = random_dna(SEQUENCE_LENGTH, rng=rng_seed)
    panel = {
        "self": base,
        "sibling (2 mutations)": mutate(base, 2, rng=rng_seed + 1),
        "cousin (5 mutations)": mutate(base, 5, rng=rng_seed + 2),
        "distant (10 mutations)": mutate(base, 10, rng=rng_seed + 3),
        "outgroup (random)": random_dna(SEQUENCE_LENGTH, rng=rng_seed + 4),
    }
    return base, panel


def main():
    print("--- dispatching the genomics workload (Fig. 1 system) ---")
    system = HeterogeneousSystem()
    report = system.dispatch(example_workload())
    for task, device, modelled_time in report.rows():
        print("  %-24s -> %-4s (t=%.2f)" % (task, device, modelled_time))
    print("heterogeneous speedup over CPU-only: %.1fx\n" % report.speedup)

    print("--- quantum similarity screening (SWAP test kernel) ---")
    query, panel = build_panel()
    rows = []
    for name, sequence in panel.items():
        quantum = quantum_similarity(query, sequence, shots=4096,
                                     rng=hash(name) % 10_000)
        rows.append((name, quantum.similarity,
                     kmer_similarity(query, sequence),
                     edit_distance(query, sequence)))
    print("%-24s %10s %12s %6s" % ("panel member", "quantum",
                                   "k-mer cosine", "edit"))
    for name, q_sim, k_sim, distance in rows:
        print("%-24s %10.3f %12.3f %6d" % (name, q_sim, k_sim, distance))

    quantum_scores = [row[1] for row in rows]
    kmer_scores = [row[2] for row in rows]
    correlation = float(np.corrcoef(quantum_scores, kmer_scores)[0, 1])
    ranked = sorted(rows, key=lambda row: -row[1])
    print("\nquantum-vs-kmer correlation: r = %.3f" % correlation)
    print("closest relative by quantum score: %s" % ranked[0][0])
    assert ranked[0][0] == "self"


if __name__ == "__main__":
    main()
