"""Scenario: three post-von-Neumann machines race on one optimization task.

The paper's closing argument is that several disruptive models can
attack the same hard problems.  This example builds a frustrated-loop
spin glass (ground energy known by construction) and solves it with all
three implemented machines:

* adiabatic quantum evolution (Section II / ref. [35]),
* simulated thermal annealing (the conventional reference),
* a digital memcomputing machine (Section IV),

then, as an encore, solves a 0-1 knapsack through the memcomputing ILP
pipeline of [48].

Usage::

    python examples/three_machines_one_problem.py
"""

import time

from repro.core.sat_instances import frustrated_loop_ising
from repro.memcomputing.baselines import anneal_ising
from repro.memcomputing.ilp import (
    knapsack,
    solve_ilp_bruteforce,
    solve_ilp_memcomputing,
)
from repro.memcomputing.ising import (
    largest_cluster_fraction,
    solve_ising_dmm,
)
from repro.quantum.adiabatic import anneal_quantum

NUM_SPINS = 10


def main():
    couplings, bound = frustrated_loop_ising(NUM_SPINS, 3, loop_length=4,
                                             rng=5)
    print("frustrated-loop spin glass: %d spins, ground energy %g\n"
          % (NUM_SPINS, bound))

    start = time.perf_counter()
    quantum = anneal_quantum(couplings, NUM_SPINS, total_time=25.0,
                             steps=500, rng=0)
    print("adiabatic quantum:  E=%g  p(ground)=%.4f  (%.2f s)"
          % (quantum.energy, quantum.success_probability,
             time.perf_counter() - start))

    start = time.perf_counter()
    thermal = anneal_ising(couplings, NUM_SPINS, sweeps=300, rng=1)
    print("thermal annealing:  E=%g  accepted=%d moves  (%.2f s)"
          % (thermal.energy, thermal.accepted_moves,
             time.perf_counter() - start))

    start = time.perf_counter()
    dmm = solve_ising_dmm(couplings, NUM_SPINS, rng=2, max_steps=15_000)
    print("memcomputing DMM:   E=%g  largest cluster flip=%.0f%% of "
          "lattice  (%.2f s)"
          % (dmm.energy, 100 * largest_cluster_fraction(dmm.spin_trace),
             time.perf_counter() - start))

    winners = [name for name, energy in
               (("quantum", quantum.energy), ("thermal", thermal.energy),
                ("dmm", dmm.energy)) if energy <= bound + 1e-9]
    print("\nmachines reaching the ground state: %s" % ", ".join(winners))

    print("\n--- encore: a knapsack through the memcomputing ILP "
          "pipeline ([48]) ---")
    program = knapsack(values=[6, 10, 12, 7, 9],
                       weights=[1, 2, 3, 2, 2], capacity=6)
    exact = solve_ilp_bruteforce(program)
    mem = solve_ilp_memcomputing(program, max_steps=30_000, rng=3)
    chosen = [j for j in range(1, 6) if mem.assignment[j]]
    print("optimum %g, memcomputing found %g (items %s)"
          % (exact.objective, mem.objective, chosen))


if __name__ == "__main__":
    main()
