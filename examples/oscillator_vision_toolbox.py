"""Scenario: a complete oscillator vision toolbox on one noisy frame.

Section III surveys a family of oscillator vision applications beyond
FAST: morphological processing [43], vertex coloring [42], and the
sorting/matching co-processor [44].  This example chains them into one
pipeline on a noisy synthetic frame:

1. median-filter the frame (oscillator rank filter),
2. extract an edge map with the distance primitive,
3. detect corners with the Fig. 6 FAST flow,
4. rank the detected corners by edge strength (oscillator sorting),
5. color the corner adjacency graph (phase-dynamics coloring) so nearby
   corners get distinct labels for a downstream tracker.

Usage::

    python examples/oscillator_vision_toolbox.py
"""

import numpy as np

from repro.oscillators.coloring import color_graph
from repro.oscillators.coprocessor import rank_order_sort
from repro.oscillators.fast import (
    OscillatorFastDetector,
    add_noise,
    rectangle_image,
)
from repro.oscillators.morphology import OscillatorRankFilter, edge_map


def main():
    frame, _truth = rectangle_image(height=32, width=32, top=8, left=8,
                                    bottom=24, right=26)
    noisy = frame.copy()
    rng = np.random.default_rng(7)
    speckle = rng.random(frame.shape) < 0.05
    noisy[speckle] = rng.choice([0.0, 255.0], size=int(speckle.sum()))
    noisy = add_noise(noisy, 4.0, rng=8)

    print("1. median filtering (oscillator rank filter)")
    cleaned = OscillatorRankFilter().median(noisy)
    before = np.abs(noisy - frame)[1:-1, 1:-1].mean()
    after = np.abs(cleaned - frame)[1:-1, 1:-1].mean()
    print("   mean abs error vs clean frame: %.1f -> %.1f" % (before,
                                                              after))

    print("2. edge map (distance primitive)")
    edges = edge_map(cleaned)
    print("   edge energy on boundary rows: %.3f, interior: %.3f"
          % (edges[8, 12:22].mean(), edges[15, 12:22].mean()))

    print("3. FAST corners (Fig. 6 flow)")
    detector = OscillatorFastDetector(threshold=30, n=9)
    corners = detector.detect(cleaned)
    print("   %d corners found: %s" % (len(corners), corners))

    print("4. corner ranking by edge strength (oscillator sorting)")
    strengths = [255.0 * edges[r, c] for r, c in corners]
    order, counts = rank_order_sort(strengths)
    ranked = [corners[i] for i in reversed(order)]
    print("   strongest first: %s" % ranked[:4])

    print("5. conflict-free corner labelling (phase coloring)")
    # connect corners closer than 12 pixels; adjacent ones need
    # different labels
    edges_graph = []
    for i in range(len(corners)):
        for j in range(i + 1, len(corners)):
            (r1, c1), (r2, c2) = corners[i], corners[j]
            if max(abs(r1 - r2), abs(c1 - c2)) < 12:
                edges_graph.append((i, j))
    if edges_graph and len(corners) <= 8:
        result = color_graph(edges_graph, len(corners), 4, cycles=100)
        print("   colors: %s (proper=%s)" % (result.colors,
                                             result.is_proper))
    else:
        print("   (corner graph trivial: %d corners, %d edges)"
              % (len(corners), len(edges_graph)))


if __name__ == "__main__":
    main()
