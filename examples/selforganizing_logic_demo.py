"""Scenario: watch self-organizing logic gates run in every direction.

Section IV's central object is the SOLG: a gate that settles into a
consistent truth assignment no matter which terminals are pinned.  This
example demonstrates:

1. single gates driven forward, backward, and partially pinned,
2. a small self-organizing adder run backwards (subtraction for free),
3. the unsatisfied-clause descent of a DMM solving 3-SAT -- the
   instanton "staircase" of Section IV made visible as ASCII art.

Usage::

    python examples/selforganizing_logic_demo.py
"""

from repro.core.sat_instances import planted_ksat
from repro.memcomputing.circuit import ripple_adder_circuit
from repro.memcomputing.solg import SelfOrganizingGate
from repro.memcomputing.solver import DmmSolver


def gate_demo():
    print("--- 1. terminal-agnostic gates ---")
    gate = SelfOrganizingGate("and")
    print("AND forward  (in0=1, in1=0):",
          gate.self_organize({"in0": True, "in1": False}, rng=0))
    print("AND backward (out=1):       ",
          gate.self_organize({"out": True}, rng=1))
    xor = SelfOrganizingGate("xor")
    settled = xor.self_organize({"out": True, "in0": False}, rng=2)
    print("XOR sideways (out=1, in0=0):", settled)
    print()


def adder_demo():
    print("--- 2. a self-organizing adder, run backwards ---")
    circuit, sum_wires = ripple_adder_circuit(4)
    minuend, total = 6, 13
    pinned = {"a%d" % i: bool((minuend >> i) & 1) for i in range(4)}
    pinned.update({wire: bool((total >> i) & 1)
                   for i, wire in enumerate(sum_wires)})
    settled = circuit.solve(pinned=pinned, rng=3)
    recovered = sum((1 << i) for i in range(4) if settled["b%d" % i])
    print("pinned a=%d and a+b=%d; the circuit organized b=%d"
          % (minuend, total, recovered))
    assert minuend + recovered == total
    print()


def staircase_demo():
    print("--- 3. the instanton staircase of a DMM solve ---")
    formula = planted_ksat(80, 336, rng=4)
    result = DmmSolver(check_every=10).solve(formula, rng=5)
    print("instance: N=%d, M=%d; solved in %d steps\n"
          % (formula.num_variables, formula.num_clauses, result.steps))
    counts = [count for _time, count in result.unsat_trace]
    peak = max(counts) or 1
    width = 50
    shown = counts[:: max(1, len(counts) // 20)]
    for count in shown:
        bar = "#" * int(width * count / peak)
        print("%4d |%s" % (count, bar))
    print("\nunsatisfied clauses fall through plateaus connected by "
          "jumps -- the instantonic transient of Section IV.")


def main():
    gate_demo()
    adder_demo()
    staircase_demo()


if __name__ == "__main__":
    main()
