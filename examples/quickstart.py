"""Quickstart: one taste of each computing model from the paper.

Runs in a few seconds:

1. a Bell-state kernel through the full quantum-accelerator stack
   (Section II / Fig. 2),
2. a coupled VO2 oscillator pair locking and read out through the XOR
   block (Section III / Figs. 3-4),
3. a digital memcomputing machine solving a random 3-SAT instance
   (Section IV).

Usage::

    python examples/quickstart.py
"""

from repro.core.sat_instances import planted_ksat
from repro.memcomputing.solver import DmmSolver
from repro.oscillators.locking import check_locking, simulate_calibrated_pair
from repro.oscillators.readout import XorReadout
from repro.quantum.accelerator import QuantumAccelerator
from repro.quantum.circuit import QuantumCircuit


def quantum_demo():
    """Send a Bell-pair kernel through every Fig. 2 stack layer."""
    print("=== 1. Quantum computing as an accelerator (Section II) ===")
    accelerator = QuantumAccelerator(num_qubits=3)
    kernel = QuantumCircuit(2, name="bell")
    kernel.h(0).cnot(0, 1)
    kernel.measure(0, "a").measure(1, "b")
    result, report = accelerator.execute_kernel(kernel, shots=1000, rng=0,
                                                application="bell-pair")
    print("measured distribution over 1000 shots:")
    for outcome, count in sorted(result.counts.items()):
        print("  |%s> : %d" % (format(outcome, "02b"), count))
    for layer, fields in report.rows():
        print("  [%s] %s" % (layer, fields))
    print()


def oscillator_demo():
    """Lock a VO2 pair and read its XOR distance measure."""
    print("=== 2. Coupled VO2 oscillators (Section III) ===")
    locking = check_locking(1.8, 1.83, r_c=35e3, cycles=100)
    print("natural frequencies: %.0f Hz and %.0f Hz"
          % (locking.uncoupled_freq_1, locking.uncoupled_freq_2))
    print("coupled frequencies: %.0f Hz and %.0f Hz -> locked=%s"
          % (locking.freq_1, locking.freq_2, locking.locked))
    readout = XorReadout()
    for delta in (0.0, 0.04, 0.08):
        times, v_1, v_2 = simulate_calibrated_pair(1.8, 1.8 + delta,
                                                   r_c=35e3, cycles=120)
        print("  dVgs=%.2f V -> 1-Avg(XOR) = %.3f"
              % (delta, readout.measure(times, v_1, v_2)))
    print()


def memcomputing_demo():
    """Solve a planted 3-SAT instance with the DMM dynamics."""
    print("=== 3. Digital memcomputing (Section IV) ===")
    formula = planted_ksat(60, 252, rng=1)
    print("instance: %d variables, %d clauses (ratio %.2f)"
          % (formula.num_variables, formula.num_clauses,
             formula.clause_ratio))
    result = DmmSolver().solve(formula, rng=2)
    print("solved=%s in %d integration steps (%.3f s wall)"
          % (result.satisfied, result.steps, result.wall_time))
    print("unsatisfied-clause descent:",
          [count for _t, count in result.unsat_trace][:12], "...")


def main():
    quantum_demo()
    oscillator_demo()
    memcomputing_demo()


if __name__ == "__main__":
    main()
