"""Scenario: an IoT sensor node that computes entirely in its memory.

The paper's first reference is "A PLIM computer for the Internet of
Things" -- the vision of edge devices whose memory array *is* the
processor.  This example assembles such a node from the in-memory
substrate:

1. a spiking classifier (synapses = crossbar conductances) labels
   incoming sensor frames,
2. PLIM resistive-majority logic, running in the same technology,
   evaluates the alarm predicate over classification flags,
3. the data-movement ledger shows why the node can afford this: weights
   never cross a bus.

Usage::

    python examples/inmemory_iot_node.py
"""

import numpy as np

from repro.inmemory.neuromorphic import (
    SpikingClassifier,
    prototype_patterns,
    train_rate_weights,
)
from repro.inmemory.plim import PlimComputer, compile_expression
from repro.inmemory.vmm import data_movement_comparison

NUM_FRAMES = 8


def main():
    print("--- boot: train offline, program conductances once ---")
    samples, labels = prototype_patterns(200, side=4, num_classes=2,
                                         noise=0.08, rng=0)
    weights = train_rate_weights(samples[:150], labels[:150], 2, rng=1)
    classifier = SpikingClassifier(weights, variability=0.05, rng=2,
                                   gain=2.0)
    print("synaptic matrix %s programmed with 5%% device variability"
          % (weights.shape,))

    # alarm rule: raise when the frame is class 1 AND the previous frame
    # was class 1 too (debounced detection), OR a forced test flag
    alarm_program, alarm_cell = compile_expression(
        ("or", ("and", ("var", "now"), ("var", "previous")),
         ("var", "test_mode")))
    alarm_program.declare_output("alarm", alarm_cell)
    plim = PlimComputer()
    print("alarm predicate compiled to %d in-memory instructions\n"
          % len(alarm_program.instructions))

    print("--- streaming %d sensor frames ---" % NUM_FRAMES)
    previous = 0
    alarms = 0
    test_x, test_y = samples[150:150 + NUM_FRAMES], \
        labels[150:150 + NUM_FRAMES]
    for index, (frame, truth) in enumerate(zip(test_x, test_y)):
        predicted, counts = classifier.infer(frame, noise_sigma=0.02,
                                             rng=10 + index)
        alarm = plim.run(alarm_program,
                         {"now": predicted, "previous": previous,
                          "test_mode": 0})["alarm"]
        alarms += alarm
        print("frame %d: true=%d spikes=%s -> class %d %s"
              % (index, truth, counts.astype(int).tolist(), predicted,
                 "ALARM" if alarm else ""))
        previous = predicted

    print("\n--- why in-memory: the data-movement ledger ---")
    ledger = data_movement_comparison(weights.shape[0],
                                      weights.shape[1], NUM_FRAMES * 60)
    print("load-store pipeline: %d bytes over the bus"
          % ledger["von_neumann_bytes"])
    print("in-memory node:      %d bytes (weights shipped once)"
          % ledger["in_memory_bytes"])
    print("reduction:           %.1fx" % ledger["ratio"])


if __name__ == "__main__":
    main()
