"""Unit and property tests for repro.core.cnf."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cnf import Clause, CnfFormula, parse_dimacs
from repro.core.exceptions import DimacsParseError, FormulaError


class TestClause:
    def test_literals_sorted_and_deduped(self):
        clause = Clause([3, -1, 3, 2])
        assert clause.literals == (-1, 2, 3)

    def test_empty_clause_rejected(self):
        with pytest.raises(FormulaError):
            Clause([])

    def test_zero_literal_rejected(self):
        with pytest.raises(FormulaError):
            Clause([1, 0])

    def test_tautology_detection(self):
        assert Clause([1, -1, 2]).is_tautology
        assert not Clause([1, 2]).is_tautology

    def test_variables(self):
        assert Clause([-3, 1]).variables == frozenset({1, 3})

    def test_satisfaction_with_dict(self):
        clause = Clause([1, -2])
        assert clause.is_satisfied_by({1: True, 2: True})
        assert clause.is_satisfied_by({1: False, 2: False})
        assert not clause.is_satisfied_by({1: False, 2: True})

    def test_satisfaction_with_sequence(self):
        clause = Clause([1, -2])
        assert clause.is_satisfied_by([True, True])
        assert not clause.is_satisfied_by([False, True])

    def test_partial_assignment_unsatisfied(self):
        clause = Clause([1, 2])
        assert not clause.is_satisfied_by({1: False})

    def test_equality_and_hash(self):
        assert Clause([1, 2]) == Clause([2, 1])
        assert hash(Clause([1, 2])) == hash(Clause([2, 1]))
        assert Clause([1, 2]) != Clause([1, 2], weight=3.0)

    def test_weight(self):
        assert Clause([1], weight=2.5).weight == 2.5
        assert Clause([1]).weight is None


class TestCnfFormula:
    def test_counts(self):
        formula = CnfFormula([[1, 2], [-1, 3]])
        assert formula.num_variables == 3
        assert formula.num_clauses == 2
        assert formula.clause_ratio == pytest.approx(2.0 / 3.0)

    def test_explicit_num_variables(self):
        formula = CnfFormula([[1]], num_variables=5)
        assert formula.num_variables == 5

    def test_num_variables_too_small_rejected(self):
        with pytest.raises(FormulaError):
            CnfFormula([[1, 5]], num_variables=3)

    def test_satisfaction(self):
        formula = CnfFormula([[1, 2], [-1, 2]])
        assert formula.is_satisfied_by({1: True, 2: True})
        assert not formula.is_satisfied_by({1: True, 2: False})

    def test_num_satisfied_and_unsatisfied(self):
        formula = CnfFormula([[1], [2], [-1]])
        assignment = {1: True, 2: False}
        assert formula.num_satisfied(assignment) == 1
        assert len(formula.unsatisfied_clauses(assignment)) == 2

    def test_hard_soft_partition(self):
        formula = CnfFormula([Clause([1]), Clause([2], weight=1.5)])
        assert len(formula.hard_clauses) == 1
        assert len(formula.soft_clauses) == 1

    def test_weight_satisfied(self):
        formula = CnfFormula([Clause([1], weight=2.0),
                              Clause([-1], weight=3.0)])
        assert formula.weight_satisfied({1: True}) == 2.0
        assert formula.weight_satisfied({1: False}) == 3.0

    def test_assignment_from_bools(self):
        formula = CnfFormula([[1, 2]])
        assert formula.assignment_from_bools([True, False]) == {
            1: True, 2: False}
        with pytest.raises(FormulaError):
            formula.assignment_from_bools([True])


class TestDimacs:
    def test_roundtrip(self):
        formula = CnfFormula([[1, -2, 3], [-1, 2], [3]])
        parsed = parse_dimacs(formula.to_dimacs())
        assert parsed.num_variables == formula.num_variables
        assert [c.literals for c in parsed.clauses] == \
            [c.literals for c in formula.clauses]

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 1\n1 -2 0\n"
        parsed = parse_dimacs(text)
        assert parsed.num_clauses == 1
        assert parsed.clauses[0].literals == (1, -2)  # sorted by |var|

    def test_multi_clause_line(self):
        parsed = parse_dimacs("p cnf 2 2\n1 0 -2 0\n")
        assert parsed.num_clauses == 2

    def test_missing_problem_line(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("1 2 0\n")

    def test_bad_problem_line(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p sat 3 2\n")

    def test_non_integer_token(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p cnf 2 1\n1 x 0\n")

    def test_wild_clause_count_mismatch(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p cnf 2 50\n1 0\n")

    def test_trailing_percent_tolerated(self):
        parsed = parse_dimacs("p cnf 2 1\n1 2 0\n%\n")
        assert parsed.num_clauses == 1


@st.composite
def formulas(draw):
    num_vars = draw(st.integers(min_value=2, max_value=8))
    num_clauses = draw(st.integers(min_value=1, max_value=12))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        lits = set()
        for _ in range(width):
            var = draw(st.integers(min_value=1, max_value=num_vars))
            sign = draw(st.booleans())
            lits.add(var if sign else -var)
        clauses.append(Clause(lits))
    return CnfFormula(clauses, num_variables=num_vars)


@settings(max_examples=50, deadline=None)
@given(formulas())
def test_property_dimacs_roundtrip(formula):
    """Any formula survives a DIMACS round trip exactly."""
    parsed = parse_dimacs(formula.to_dimacs())
    assert parsed.num_variables == formula.num_variables
    assert [c.literals for c in parsed.clauses] == \
        [c.literals for c in formula.clauses]


@settings(max_examples=50, deadline=None)
@given(formulas(), st.integers(min_value=0, max_value=255))
def test_property_satisfied_plus_unsatisfied_is_total(formula, bits):
    """num_satisfied + |unsatisfied_clauses| == num_clauses everywhere."""
    assignment = {v: bool((bits >> (v - 1)) & 1)
                  for v in range(1, formula.num_variables + 1)}
    satisfied = formula.num_satisfied(assignment)
    unsatisfied = len(formula.unsatisfied_clauses(assignment))
    assert satisfied + unsatisfied == formula.num_clauses
