"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.core.io import save_dimacs
from repro.core.sat_instances import planted_ksat


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInfo:
    def test_info_lists_packages(self):
        code, text = run_cli(["info"])
        assert code == 0
        for package in ("repro.quantum", "repro.oscillators",
                        "repro.memcomputing", "repro.core"):
            assert package in text

    def test_no_command_prints_help(self):
        code, text = run_cli([])
        assert code == 0
        assert "usage" in text.lower()


class TestSolve:
    @pytest.fixture()
    def instance_path(self, tmp_path):
        formula = planted_ksat(15, 55, rng=0)
        return save_dimacs(formula, str(tmp_path / "i.cnf"))

    @pytest.mark.parametrize("solver", ["dmm", "walksat", "dpll"])
    def test_solves_satisfiable_instance(self, instance_path, solver):
        code, text = run_cli(["solve", instance_path,
                              "--solver", solver])
        assert code == 0
        assert "s SATISFIABLE" in text
        assert text.strip().endswith("0")

    def test_model_line_satisfies_instance(self, instance_path):
        from repro.core.io import load_dimacs

        code, text = run_cli(["solve", instance_path])
        assert code == 0
        model_line = next(line for line in text.splitlines()
                          if line.startswith("v "))
        literals = [int(tok) for tok in model_line[2:].split()
                    if tok != "0"]
        assignment = {abs(l): l > 0 for l in literals}
        assert load_dimacs(instance_path).is_satisfied_by(assignment)

    def test_unsat_reported_by_dpll(self, tmp_path):
        path = tmp_path / "unsat.cnf"
        path.write_text("p cnf 1 2\n1 0\n-1 0\n")
        code, text = run_cli(["solve", str(path), "--solver", "dpll"])
        assert code == 1
        assert "UNSATISFIABLE" in text


class TestFactor:
    def test_shor_factors(self):
        code, text = run_cli(["factor", "15"])
        assert code == 0
        assert "15 = " in text

    def test_memcomputing_factors(self):
        code, text = run_cli(["factor", "21", "--method",
                              "memcomputing"])
        assert code == 0
        assert "21 = " in text
        assert "SOLG" in text

    def test_small_n_rejected(self):
        code, text = run_cli(["factor", "3"])
        assert code == 2


class TestDistance:
    def test_behavioral_mode(self):
        code, text = run_cli(["distance", "120", "40"])
        assert code == 0
        assert "distance(120, 40)" in text
        assert "mode=behavioral" in text

    def test_physical_mode(self):
        code, text = run_cli(["distance", "100", "100",
                              "--mode", "physical"])
        assert code == 0
        assert "mode=physical" in text


class TestObservability:
    @pytest.fixture()
    def instance_path(self, tmp_path):
        formula = planted_ksat(15, 55, rng=0)
        return save_dimacs(formula, str(tmp_path / "i.cnf"))

    def test_solve_trace_writes_jsonl(self, instance_path, tmp_path):
        from repro.core.tracing import read_jsonl

        trace = str(tmp_path / "solve.jsonl")
        code, text = run_cli(["solve", instance_path, "--trace", trace])
        assert code == 0
        assert "trace:" in text
        events = read_jsonl(trace)
        assert events  # non-empty trace
        assert any(event["name"] == "dmm.solver.solve"
                   for event in events)

    def test_factor_trace_writes_jsonl(self, tmp_path):
        from repro.core.tracing import read_jsonl

        trace = str(tmp_path / "factor.jsonl")
        code, _text = run_cli(["factor", "15", "--trace", trace])
        assert code == 0
        events = read_jsonl(trace)
        assert any(event["name"].startswith("quantum.shor.")
                   for event in events)

    def test_distance_trace_writes_jsonl(self, tmp_path):
        from repro.core.tracing import read_jsonl

        trace = str(tmp_path / "distance.jsonl")
        code, _text = run_cli(["distance", "120", "40",
                               "--trace", trace])
        assert code == 0
        events = read_jsonl(trace)
        assert any(event["name"] == "oscillator.distance.evaluate"
                   for event in events)

    def test_metrics_summary_table(self, instance_path):
        code, text = run_cli(["solve", instance_path, "--metrics"])
        assert code == 0
        assert "telemetry summary" in text
        assert "dmm.solver.steps" in text

    def test_telemetry_restored_after_command(self, instance_path):
        from repro.core import telemetry

        run_cli(["solve", instance_path, "--metrics"])
        assert telemetry.get_registry() is telemetry.NULL_REGISTRY

    def test_no_flags_leaves_telemetry_disabled(self, instance_path):
        code, text = run_cli(["solve", instance_path])
        assert code == 0
        assert "telemetry summary" not in text


class TestWorkersFlag:
    @pytest.fixture()
    def instance_path(self, tmp_path):
        formula = planted_ksat(15, 55, rng=0)
        return save_dimacs(formula, str(tmp_path / "i.cnf"))

    def test_solve_portfolio_model_satisfies_instance(self, instance_path):
        from repro.core.io import load_dimacs

        code, text = run_cli(["solve", instance_path, "--workers", "2"])
        assert code == 0
        assert "s SATISFIABLE" in text
        assert "best of 2 restarts" in text
        model_line = next(line for line in text.splitlines()
                          if line.startswith("v "))
        literals = [int(token) for token in model_line[2:].split()
                    if token != "0"]
        assignment = {abs(literal): literal > 0 for literal in literals}
        assert load_dimacs(instance_path).is_satisfied_by(assignment)

    def test_factor_with_workers(self):
        code, text = run_cli(["factor", "15", "--workers", "2"])
        assert code == 0
        assert "15 = " in text

    def test_distance_pairs_with_workers(self):
        code, text = run_cli(["distance", "120", "40", "10", "200",
                              "--workers", "2"])
        assert code == 0
        assert "distance(120, 40)" in text
        assert "distance(10, 200)" in text
        assert "2 pairs scored" in text

    def test_distance_odd_values_rejected(self):
        code, text = run_cli(["distance", "120", "40", "10"])
        assert code == 2
        assert "even number" in text

    def test_metrics_include_worker_side_spans(self, instance_path):
        # Worker-local registries (including span histograms recorded
        # inside worker processes) must merge into the summary table.
        code, text = run_cli(["solve", instance_path, "--workers", "2",
                              "--metrics"])
        assert code == 0
        assert "parallel.tasks" in text
        assert "parallel.worker_seconds" in text
        assert "dmm.solver.solve.seconds" in text
        assert "dmm.solver.steps" in text

    def test_trace_includes_worker_tagged_events(self, instance_path,
                                                 tmp_path):
        from repro.core.tracing import read_jsonl

        trace = str(tmp_path / "parallel.jsonl")
        code, _text = run_cli(["solve", instance_path, "--workers", "2",
                               "--trace", trace])
        assert code == 0
        events = read_jsonl(trace)
        worker_events = [event for event in events if "worker" in event]
        assert worker_events
        assert any(event["name"] == "dmm.solver.solve"
                   for event in worker_events)
        assert any(event["name"] == "parallel.map" for event in events)


class TestServeCommand:
    def test_parser_defaults(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert (args.host, args.port) == ("127.0.0.1", 8080)
        assert args.queue_depth == 64
        assert args.tenant_quota == 16
        assert args.retries == 2
        assert args.timeout is None
        assert args.batch_pairs == 4096
        assert args.job_concurrency == 2
        assert args.workers is None and args.cache_dir is None

    def test_parser_accepts_overrides(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(
            ["serve", "--port", "0", "--queue-depth", "8",
             "--tenant-quota", "0", "--workers", "auto",
             "--timeout", "2.5", "--no-cache"])
        assert args.port == 0
        assert args.queue_depth == 8
        assert args.tenant_quota == 0
        assert args.workers == "auto"
        assert args.timeout == 2.5
        assert args.no_cache


class TestResilienceFlags:
    @pytest.fixture()
    def instance_path(self, tmp_path):
        formula = planted_ksat(15, 55, rng=0)
        return save_dimacs(formula, str(tmp_path / "i.cnf"))

    def test_distance_checkpoint_written_and_resumable(self, tmp_path):
        import json

        ckpt = str(tmp_path / "distance.json")
        code, text = run_cli(["distance", "120", "40", "10", "200",
                              "--checkpoint", ckpt])
        assert code == 0
        document = json.load(open(ckpt))
        assert document["kind"] == "oscillator-distance"
        assert document["chunks"]
        # a resumed run reads the finished chunks and reports the same
        code, resumed = run_cli(["distance", "120", "40", "10", "200",
                                 "--resume", ckpt])
        assert code == 0
        assert resumed == text

    def test_solve_retries_with_workers(self, instance_path):
        code, text = run_cli(["solve", instance_path, "--workers", "2",
                              "--retries", "3"])
        assert code == 0
        assert "s SATISFIABLE" in text

    def test_solve_retries_alone_uses_portfolio(self, instance_path):
        # a resilience flag without --workers still routes through the
        # retry-capable portfolio path
        code, text = run_cli(["solve", instance_path, "--retries", "2"])
        assert code == 0
        assert "s SATISFIABLE" in text
        assert "restarts" in text

    def test_factor_checkpoint_written(self, tmp_path):
        import json

        ckpt = str(tmp_path / "factor.json")
        # seed 1's first base is coprime to 15, so order finding (the
        # checkpointed path) actually runs instead of a gcd shortcut
        code, text = run_cli(["factor", "15", "--seed", "1",
                              "--checkpoint", ckpt, "--retries", "2"])
        assert code == 0
        assert "15 = " in text
        assert json.load(open(ckpt))["kind"] == "shor-order"


class TestCacheFlags:
    @pytest.fixture()
    def instance_path(self, tmp_path):
        formula = planted_ksat(15, 55, rng=0)
        return save_dimacs(formula, str(tmp_path / "i.cnf"))

    def _cache_files(self, cache_dir):
        import os

        if not os.path.isdir(cache_dir):
            return []
        return sorted(os.listdir(cache_dir))

    def test_solve_cache_dir_warm_run_identical(self, instance_path,
                                                tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, cold = run_cli(["solve", instance_path,
                              "--cache-dir", cache_dir])
        assert code == 0
        assert "s SATISFIABLE" in cold
        assert self._cache_files(cache_dir)
        code, warm = run_cli(["solve", instance_path,
                              "--cache-dir", cache_dir])
        assert code == 0
        assert warm == cold

    def test_solve_cache_dir_with_retries_and_workers(self, instance_path,
                                                      tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, cold = run_cli(["solve", instance_path, "--retries", "2",
                              "--cache-dir", cache_dir])
        assert code == 0
        # cache keys never depend on the worker count: a fanned-out warm
        # run replays the entries the serial cold run stored
        code, warm = run_cli(["solve", instance_path, "--workers", "2",
                              "--retries", "2", "--cache-dir", cache_dir])
        assert code == 0
        assert warm == cold

    def test_no_cache_wins_over_cache_dir(self, instance_path, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, text = run_cli(["solve", instance_path,
                              "--cache-dir", cache_dir, "--no-cache"])
        assert code == 0
        assert "s SATISFIABLE" in text
        assert not self._cache_files(cache_dir)

    def test_factor_cache_dir_warm_run_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["factor", "15", "--seed", "1", "--retries", "2",
                "--cache-dir", cache_dir]
        code, cold = run_cli(argv)
        assert code == 0
        assert "15 = " in cold
        assert self._cache_files(cache_dir)
        code, warm = run_cli(argv)
        assert code == 0
        assert warm == cold

    def test_distance_cache_dir_with_checkpoint_resume(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        ckpt = str(tmp_path / "distance.json")
        code, cold = run_cli(["distance", "120", "40", "10", "200",
                              "--checkpoint", ckpt,
                              "--cache-dir", cache_dir])
        assert code == 0
        # --resume + --cache-dir: the checkpoint fills the finished
        # chunks, the cache covers any gaps; output is unchanged
        code, resumed = run_cli(["distance", "120", "40", "10", "200",
                                 "--resume", ckpt,
                                 "--cache-dir", cache_dir])
        assert code == 0
        assert resumed == cold
        # and a plain warm run (no checkpoint at all) also matches
        code, warm = run_cli(["distance", "120", "40", "10", "200",
                              "--cache-dir", cache_dir])
        assert code == 0
        assert warm == cold

    def test_failed_chunks_are_not_cached(self, tmp_path, fault_plan):
        from repro.core.exceptions import ParallelError
        from repro.core import resilience

        cache_dir = str(tmp_path / "cache")
        baseline_code, baseline = run_cli(["distance", "120", "40",
                                           "10", "200"])
        assert baseline_code == 0
        # chunk 0 fails both attempts: the run errors out, and the
        # failed chunk must not leave a cache entry behind
        fault_plan([(0, 1, "raise"), (0, 2, "raise")])
        with pytest.raises(ParallelError):
            run_cli(["distance", "120", "40", "10", "200",
                     "--retries", "1", "--cache-dir", cache_dir])
        after_failure = self._cache_files(cache_dir)
        # with the fault cleared, the missing chunk recomputes and the
        # output matches the fault-free baseline exactly
        resilience.set_fault_plan(None)
        code, text = run_cli(["distance", "120", "40", "10", "200",
                              "--retries", "1", "--cache-dir", cache_dir])
        assert code == 0
        assert text == baseline
        assert len(self._cache_files(cache_dir)) > len(after_failure)

    def test_retried_fault_is_transparent_to_the_cache(self, tmp_path,
                                                       fault_plan):
        cache_dir = str(tmp_path / "cache")
        baseline_code, baseline = run_cli(["distance", "120", "40",
                                           "10", "200"])
        assert baseline_code == 0
        # a retried fault succeeds on attempt 2; the cached value is the
        # good retry result, bit-identical to a fault-free run
        fault_plan([(0, 1, "raise")])
        code, faulted = run_cli(["distance", "120", "40", "10", "200",
                                 "--retries", "2",
                                 "--cache-dir", cache_dir])
        assert code == 0
        assert faulted == baseline
        code, warm = run_cli(["distance", "120", "40", "10", "200",
                              "--retries", "2", "--cache-dir", cache_dir])
        assert code == 0
        assert warm == baseline

    def test_mismatched_entry_refuses_reuse_naming_the_path(self,
                                                            tmp_path):
        import json
        import os

        from repro.core.exceptions import CacheError

        cache_dir = str(tmp_path / "cache")
        code, _text = run_cli(["distance", "120", "40", "10", "200",
                               "--cache-dir", cache_dir])
        assert code == 0
        # forge a different workload fingerprint into every entry
        for name in self._cache_files(cache_dir):
            if not name.endswith(".json"):
                continue
            path = os.path.join(cache_dir, name)
            document = json.load(open(path))
            document["fingerprint"]["meta"]["forged"] = True
            with open(path, "w") as handle:
                json.dump(document, handle)
        # drop the in-process memory tier so the next run reads disk,
        # as a fresh process would
        from repro.core import cache as result_cache

        result_cache.cache_for_dir(cache_dir).clear_memory()
        with pytest.raises(CacheError) as excinfo:
            run_cli(["distance", "120", "40", "10", "200",
                     "--cache-dir", cache_dir])
        message = str(excinfo.value)
        assert cache_dir in message
        assert "refusing" in message and "forged" in message


class TestReproduce:
    def test_points_at_benchmarks(self):
        code, text = run_cli(["reproduce"])
        assert code == 0
        assert "pytest benchmarks/" in text


class TestProfile:
    @pytest.fixture()
    def instance_path(self, tmp_path):
        formula = planted_ksat(15, 55, rng=0)
        return save_dimacs(formula, str(tmp_path / "i.cnf"))

    def trace_path(self, tmp_path):
        return str(tmp_path / "trace.json")

    def test_profile_factor_writes_loadable_trace(self, tmp_path):
        # the acceptance workload: repro profile factor ... must produce
        # a Perfetto-loadable trace plus the attribution table
        from repro.core.tracing import read_chrome_trace

        out = self.trace_path(tmp_path)
        code, text = run_cli(["profile", "--out", out, "factor", "15",
                              "--seed", "1"])
        assert code == 0
        assert "performance profile: factor 15 --seed 1" in text
        assert "chrome trace:" in text and "perfetto" in text.lower()
        events = read_chrome_trace(out)
        assert events, "trace file has no events"
        assert {e["ph"] for e in events} <= {"X", "i", "M"}
        spans = [e for e in events if e["ph"] == "X"]
        assert all("pid" in e and "tid" in e for e in spans)
        timestamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert timestamps == sorted(timestamps)

    def test_profile_solve_reports_self_and_cum(self, instance_path,
                                                tmp_path):
        out = self.trace_path(tmp_path)
        code, text = run_cli(["profile", "--out", out, "solve",
                              instance_path])
        assert code == 0
        assert "self%" in text and "cum%" in text
        assert "dmm." in text

    def test_profile_cum_sort_and_top(self, instance_path, tmp_path):
        out = self.trace_path(tmp_path)
        code, text = run_cli(["profile", "--out", out, "--sort", "cum",
                              "--top", "1", "solve", instance_path])
        assert code == 0
        # exactly one data row: header, separator, one span line
        table = text.split("total traced time")[1]
        rows = [line for line in table.splitlines()
                if line and "%" in line and "self%" not in line]
        assert len(rows) == 1

    def test_profile_workers_show_parallel_lanes(self, instance_path,
                                                 tmp_path):
        from repro.core.tracing import CHROME_MAIN_TID, read_chrome_trace

        out = self.trace_path(tmp_path)
        code, _text = run_cli(["profile", "--out", out, "solve",
                               instance_path, "--workers", "2"])
        assert code == 0
        tids = {e["tid"] for e in read_chrome_trace(out)
                if e["ph"] == "X"}
        assert CHROME_MAIN_TID in tids
        assert len(tids) > 1  # worker spans landed on their own lanes

    def test_profile_without_command_errors(self, tmp_path):
        code, text = run_cli(["profile", "--out",
                              self.trace_path(tmp_path)])
        assert code == 2
        assert "profile needs a command" in text

    def test_profile_rejects_unwrappable_command(self, tmp_path):
        code, text = run_cli(["profile", "--out",
                              self.trace_path(tmp_path), "info"])
        assert code == 2

    def test_profile_rejects_bad_top(self, instance_path, tmp_path):
        code, text = run_cli(["profile", "--out",
                              self.trace_path(tmp_path), "--top", "0",
                              "solve", instance_path])
        assert code == 2
        assert "--top" in text

    def test_profile_unwritable_out_fails_fast(self, instance_path,
                                               tmp_path):
        with pytest.raises(SystemExit):
            run_cli(["profile", "--out",
                     str(tmp_path / "no" / "dir" / "t.json"), "solve",
                     instance_path])

    def test_profile_with_inner_trace_writes_both(self, instance_path,
                                                  tmp_path):
        import os

        from repro.core.tracing import read_jsonl

        out = self.trace_path(tmp_path)
        jsonl = str(tmp_path / "events.jsonl")
        code, text = run_cli(["profile", "--out", out, "solve",
                              instance_path, "--trace", jsonl])
        assert code == 0
        assert os.path.exists(out) and os.path.exists(jsonl)
        assert any(e.get("type") == "span" for e in read_jsonl(jsonl))

    def test_profile_with_metrics_prints_summary(self, instance_path,
                                                 tmp_path):
        code, text = run_cli(["profile", "--out",
                              self.trace_path(tmp_path), "solve",
                              instance_path, "--metrics"])
        assert code == 0
        assert "dmm.solver.steps_per_s" in text

    def test_telemetry_restored_after_profile(self, instance_path,
                                              tmp_path):
        from repro.core import telemetry

        run_cli(["profile", "--out", self.trace_path(tmp_path), "solve",
                 instance_path])
        assert telemetry.get_registry() is telemetry.NULL_REGISTRY
