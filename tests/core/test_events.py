"""Unit tests for repro.core.events."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import (
    crossing_periods,
    duty_cycle,
    falling_crossings,
    rising_crossings,
    square_wave,
    steady_period,
)


def sine(freq, t_end=1.0, samples=2000):
    t = np.linspace(0.0, t_end, samples)
    return t, np.sin(2.0 * np.pi * freq * t)


class TestRisingCrossings:
    def test_sine_crossing_count(self):
        t, v = sine(5.0)
        crossings = rising_crossings(t, v, 0.0)
        assert len(crossings) == 5

    def test_interpolation_accuracy(self):
        t, v = sine(1.0)
        crossings = rising_crossings(t, v, 0.0)
        # the interior crossings of sin at threshold 0 should land near
        # integer times (rising at t=0 is not counted: sample 0 == 0)
        for crossing in crossings:
            assert abs(crossing - round(crossing)) < 1e-3

    def test_no_crossings(self):
        t = np.linspace(0, 1, 100)
        assert len(rising_crossings(t, np.ones(100), 2.0)) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rising_crossings([0, 1], [1.0], 0.5)


class TestFallingCrossings:
    def test_sine_falling_count(self):
        t, v = sine(5.0)
        assert len(falling_crossings(t, v, 0.0)) == 5

    def test_mirrors_rising_of_negated(self):
        t, v = sine(3.0)
        falling = falling_crossings(t, v, 0.2)
        rising_of_neg = rising_crossings(t, -v, -0.2)
        assert np.allclose(falling, rising_of_neg)


class TestPeriods:
    def test_crossing_periods(self):
        periods = crossing_periods([0.0, 1.0, 2.1, 3.0])
        assert periods.tolist() == pytest.approx([1.0, 1.1, 0.9])

    def test_too_few_crossings(self):
        assert len(crossing_periods([1.0])) == 0

    def test_steady_period_of_sine(self):
        t, v = sine(10.0, t_end=2.0, samples=8000)
        period = steady_period(t, v, 0.0)
        assert period == pytest.approx(0.1, rel=1e-3)

    def test_steady_period_none_without_oscillation(self):
        t = np.linspace(0, 1, 100)
        assert steady_period(t, np.zeros(100), 0.5) is None


class TestDutyCycle:
    def test_symmetric_square(self):
        t = np.linspace(0, 1, 1001)
        v = np.where((t * 10).astype(int) % 2 == 0, 1.0, 0.0)
        assert duty_cycle(t, v, 0.5) == pytest.approx(0.5, abs=0.01)

    def test_always_high(self):
        t = np.linspace(0, 1, 100)
        assert duty_cycle(t, np.ones(100), 0.5) == 1.0

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            duty_cycle([0.0], [1.0], 0.5)


class TestSquareWave:
    def test_levels(self):
        out = square_wave([0.0, 1.0, 0.4, 0.6], 0.5)
        assert out.tolist() == [0.0, 1.0, 0.0, 1.0]

    def test_custom_levels(self):
        out = square_wave([0.0, 1.0], 0.5, low=-1.0, high=2.0)
        assert out.tolist() == [-1.0, 2.0]


@settings(max_examples=30, deadline=None)
@given(freq=st.integers(min_value=2, max_value=20))
def test_property_sine_period_detected(freq):
    """steady_period recovers 1/f for sines of any integer frequency."""
    t = np.linspace(0.0, 3.0, 12000)
    v = np.sin(2.0 * np.pi * freq * t)
    period = steady_period(t, v, 0.0)
    assert period == pytest.approx(1.0 / freq, rel=5e-3)
