"""Tests for the benchmark report collator (benchmarks/report.py)."""

import importlib.util
import os

import pytest


def load_report_module():
    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "benchmarks", "report.py")
    spec = importlib.util.spec_from_file_location("bench_report", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def report():
    return load_report_module()


class TestBuildReport:
    def test_orders_known_sections(self, report, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig3_locking.txt").write_text("FIG3 table\n")
        (results / "dmm_sat.txt").write_text("DMM-SAT table\n")
        (results / "mystery.txt").write_text("surprise\n")
        text = report.build_report(str(results))
        assert text.index("FIG3 table") < text.index("DMM-SAT table")
        assert "## Other results" in text
        assert "surprise" in text

    def test_missing_directory_raises(self, report, tmp_path):
        with pytest.raises(FileNotFoundError):
            report.build_report(str(tmp_path / "nope"))

    def test_empty_directory_raises(self, report, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            report.build_report(str(empty))

    def test_tables_embedded_verbatim(self, report, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        body = "HEADER\n=====\ncol  val\n---  ---\na    1\n"
        (results / "shor.txt").write_text(body)
        text = report.build_report(str(results))
        assert body.rstrip() in text

    def test_order_covers_every_shipped_benchmark(self, report):
        """Every bench_*.py's result name appears in the report ORDER."""
        bench_dir = os.path.join(os.path.dirname(__file__), "..", "..",
                                 "benchmarks")
        ordered = {name for _section, names in report.ORDER
                   for name in names}
        # names are the first argument of emit_table in each bench file
        import re

        for filename in os.listdir(bench_dir):
            if not filename.startswith("bench_"):
                continue
            with open(os.path.join(bench_dir, filename)) as handle:
                source = handle.read()
            match = re.search(r'emit_table\(\s*"([a-z0-9_]+)"', source)
            assert match, "no emit_table in %s" % filename
            assert match.group(1) in ordered, (
                "%s's result %r missing from report.ORDER"
                % (filename, match.group(1)))
