"""Tests for the performance-attribution profiler (repro.core.profiling)."""

import pytest

from repro.core import profiling, telemetry
from repro.core.profiling import Profile, ProfileSink, record_throughput


def span_event(name, duration_s, depth=0, status="ok", worker=None,
               ts=0.0):
    """A close-ordered span event as the telemetry layer emits them."""
    event = {"type": "span", "name": name, "ts": ts,
             "duration_s": duration_s, "depth": depth, "status": status}
    if worker is not None:
        event["worker"] = worker
    return event


class TestThroughputUnitAccounting:
    """The kernel instruments see exact unit totals under batching.

    Vectorizing a kernel must never change what one "unit" means:
    ``<name>_units`` counts gates / pairs / MACs, not batches.
    """

    def test_quantum_gate_units_exact_under_batched_shots(self):
        from repro.quantum.circuit import QuantumCircuit
        from repro.quantum.runtime import QuantumRuntime

        circuit = QuantumCircuit(2).h(0).cnot(0, 1).t(1).measure_all()
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            QuantumRuntime().run(circuit, shots=50, rng=1)
        # 3 gate ops x 50 shots, regardless of prefix-tree sharing
        assert registry.counter(
            "quantum.runtime.gates_units").value == 150
        assert registry.histogram(
            "quantum.runtime.gates_per_s").count == 1

    def test_oscillator_pair_units_exact_under_batched_sweep(self):
        from repro.oscillators.distance import OscillatorDistanceUnit

        pairs = [(float(a), float(255 - a)) for a in range(0, 250, 10)]
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            unit = OscillatorDistanceUnit()
            unit.measure_pairs(pairs)
        # one unit per pair, one eval per element -- not per batch
        assert registry.counter(
            "oscillator.distance.pairs_units").value == len(pairs)
        assert registry.counter(
            "oscillator.distance.evals").value == len(pairs)

    def test_vmm_mac_units_exact_under_batched_multiply(self):
        import numpy as np

        from repro.inmemory.vmm import AnalogVmm

        weights = np.linspace(-1.0, 1.0, 12).reshape(4, 3)
        vectors = np.linspace(-2.0, 2.0, 20).reshape(5, 4)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            vmm = AnalogVmm(weights, rng=0)
            vmm.multiply_batch(vectors)
        # batch x n_in x n_out multiply-accumulates
        assert registry.counter(
            "inmemory.vmm.ops_units").value == 5 * 4 * 3
        assert registry.counter("inmemory.vmm.macs").value == 5 * 4 * 3
        assert registry.counter("inmemory.vmm.multiplies").value == 5


class TestRecordThroughput:
    def test_disabled_registry_is_noop(self):
        with telemetry.use_registry(telemetry.NULL_REGISTRY):
            assert record_throughput("k.gates", 100, 0.5) is None

    def test_enabled_registry_records_rate_and_units(self):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            rate = record_throughput("k.gates", 100, 0.5)
        assert rate == pytest.approx(200.0)
        histogram = registry.histogram("k.gates_per_s")
        assert histogram.count == 1
        assert histogram.mean == pytest.approx(200.0)
        assert registry.counter("k.gates_units").value == pytest.approx(100)

    @pytest.mark.parametrize("units,seconds", [(0, 1.0), (10, 0.0),
                                               (-5, 1.0), (10, -1.0)])
    def test_degenerate_measurements_dropped(self, units, seconds):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            assert record_throughput("k.x", units, seconds) is None
        assert registry.histogram("k.x_per_s").count == 0


class TestAttribution:
    def events(self):
        # close order: children before parent.  A(10s) calls B twice
        # (1s + 2s) and C once (4s); A's own work is 3s.
        return [
            span_event("B", 1.0, depth=1),
            span_event("B", 2.0, depth=1),
            span_event("C", 4.0, depth=1),
            span_event("A", 10.0, depth=0),
        ]

    def test_self_vs_cumulative(self):
        profile = Profile.from_events(self.events())
        a = profile.node(("A",))
        assert a.cum_s == pytest.approx(10.0)
        assert a.self_s == pytest.approx(3.0)
        assert a.count == 1
        b = profile.node(("A", "B"))
        assert b.count == 2
        assert b.cum_s == pytest.approx(3.0)
        assert b.self_s == pytest.approx(3.0)  # leaf: self == cum
        assert b.min_s == pytest.approx(1.0)
        assert b.max_s == pytest.approx(2.0)
        assert b.mean_s == pytest.approx(1.5)

    def test_self_time_invariant_sums_to_total(self):
        profile = Profile.from_events(self.events())
        assert profile.total_seconds == pytest.approx(10.0)
        assert sum(node.self_s for node in profile.nodes) \
            == pytest.approx(profile.total_seconds)

    def test_hotspots_ranked_by_self_time(self):
        profile = Profile.from_events(self.events())
        ranked = [node.path for node in profile.hotspots()]
        assert ranked == [("A", "C"), ("A",), ("A", "B")]
        assert [n.path for n in profile.hotspots(limit=1)] == [("A", "C")]

    def test_error_status_counted(self):
        events = [span_event("A", 1.0, status="error")]
        profile = Profile.from_events(events)
        assert profile.node(("A",)).errors == 1

    def test_orphaned_child_promoted_to_root(self):
        # truncated trace: the depth-1 span closed, its parent never did
        profile = Profile.from_events([span_event("B", 2.0, depth=1)])
        assert profile.node(("B",)).cum_s == pytest.approx(2.0)
        assert profile.total_seconds == pytest.approx(2.0)

    def test_self_time_clamped_when_children_overlap(self):
        # pathological trace (clock skew): children sum past the parent
        events = [
            span_event("B", 8.0, depth=1),
            span_event("C", 7.0, depth=1),
            span_event("A", 10.0, depth=0),
        ]
        profile = Profile.from_events(events)
        assert profile.node(("A",)).self_s == 0.0

    def test_non_span_events_ignored(self):
        events = [{"type": "event", "name": "marker", "ts": 0.0},
                  span_event("A", 1.0)]
        profile = Profile.from_events(events)
        assert len(profile) == 1


class TestWorkerStreams:
    def test_worker_tagged_spans_form_independent_stacks(self):
        # two workers each ran one "task" span at depth 0 of their own
        # stream; the main stream ran the parallel.map parent.  The
        # worker spans must NOT be nested under the main stack.
        events = [
            span_event("task", 2.0, depth=0, worker=0),
            span_event("task", 3.0, depth=0, worker=1),
            span_event("map", 6.0, depth=0),
        ]
        profile = Profile.from_events(events)
        task = profile.node(("task",))
        assert task.count == 2
        assert task.cum_s == pytest.approx(5.0)
        assert profile.node(("map",)).cum_s == pytest.approx(6.0)
        assert {node.path for node in profile.roots} \
            == {("task",), ("map",)}

    def test_worker_nesting_preserved_within_stream(self):
        events = [
            span_event("inner", 1.0, depth=1, worker=3),
            span_event("outer", 2.0, depth=0, worker=3),
        ]
        profile = Profile.from_events(events)
        assert profile.node(("outer", "inner")).cum_s == pytest.approx(1.0)
        assert profile.node(("outer",)).self_s == pytest.approx(1.0)


class TestProfileSinkIntegration:
    def test_live_spans_build_attribution_tree(self):
        registry = telemetry.MetricsRegistry()
        sink = registry.add_sink(ProfileSink())
        with telemetry.use_registry(registry):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
        profile = sink.profile()
        assert ("outer",) in profile
        assert ("outer", "inner") in profile
        outer = profile.node(("outer",))
        inner = profile.node(("outer", "inner"))
        assert outer.cum_s >= inner.cum_s
        assert outer.self_s == pytest.approx(outer.cum_s - inner.cum_s)

    def test_exception_marks_error(self):
        registry = telemetry.MetricsRegistry()
        sink = registry.add_sink(ProfileSink())
        with telemetry.use_registry(registry):
            with pytest.raises(ValueError):
                with telemetry.span("work"):
                    raise ValueError("boom")
        assert sink.profile().node(("work",)).errors == 1


class TestRender:
    def test_render_contains_totals_and_paths(self):
        profile = Profile.from_events([
            span_event("child", 1.0, depth=1),
            span_event("root", 4.0, depth=0),
        ])
        text = profile.render(title="test profile")
        assert "test profile" in text
        assert "self%" in text and "cum%" in text
        assert "root/child" in text  # flat hot-spot labels

    def test_render_cum_mode_indents_tree(self):
        profile = Profile.from_events([
            span_event("child", 1.0, depth=1),
            span_event("root", 4.0, depth=0),
        ])
        text = profile.render(sort="cum")
        assert "\nroot " in text or "\nroot" in text
        assert "  child" in text  # indented under its parent

    def test_render_rejects_unknown_sort(self):
        with pytest.raises(ValueError):
            Profile.from_events([]).render(sort="alphabetical")

    def test_empty_profile_renders_placeholder(self):
        assert "(no spans recorded)" in Profile.from_events([]).render()

    def test_snapshot_is_json_friendly(self):
        profile = Profile.from_events([span_event("A", 1.0)])
        snapshot = profile.snapshot()
        assert snapshot == [{"path": ["A"], "count": 1, "cum_s": 1.0,
                             "self_s": 1.0, "min_s": 1.0, "max_s": 1.0,
                             "errors": 0}]
