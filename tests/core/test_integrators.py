"""Unit and property tests for repro.core.integrators."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import IntegrationError
from repro.core.integrators import (
    Trajectory,
    integrate_adaptive,
    integrate_clipped,
    integrate_fixed,
    rk4_step,
)


def exponential_decay(t, y):
    return -y


def harmonic(t, y):
    return np.array([y[1], -y[0]])


class TestTrajectory:
    def test_shapes_and_accessors(self):
        traj = Trajectory([0.0, 1.0], [[1.0, 2.0], [3.0, 4.0]], n_steps=1)
        assert len(traj) == 2
        assert traj.final_time == 1.0
        assert traj.final_state.tolist() == [3.0, 4.0]
        assert traj.component(1).tolist() == [2.0, 4.0]

    def test_1d_states_reshaped(self):
        traj = Trajectory([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert traj.states.shape == (3, 1)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([0.0, 1.0], [[1.0]])

    def test_resample_interpolates(self):
        traj = Trajectory([0.0, 2.0], [[0.0], [2.0]])
        resampled = traj.resample([0.0, 1.0, 2.0])
        assert resampled.states[:, 0].tolist() == [0.0, 1.0, 2.0]

    def test_final_state_is_a_copy(self):
        traj = Trajectory([0.0], [[5.0]])
        final = traj.final_state
        final[0] = -1.0
        assert traj.states[-1, 0] == 5.0


class TestRk4Step:
    def test_fourth_order_accuracy_on_decay(self):
        y = np.array([1.0])
        out = rk4_step(exponential_decay, 0.0, y, 0.1)
        assert out[0] == pytest.approx(np.exp(-0.1), abs=1e-7)

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            rk4_step(exponential_decay, 0.0, np.array([1.0]), 0.0)


class TestIntegrateFixed:
    def test_exponential_decay_accuracy(self):
        traj = integrate_fixed(exponential_decay, [1.0], (0.0, 5.0), 0.01)
        assert traj.final_state[0] == pytest.approx(np.exp(-5.0), rel=1e-6)

    def test_harmonic_energy_conserved(self):
        traj = integrate_fixed(harmonic, [1.0, 0.0], (0.0, 10.0), 0.005)
        energy = traj.states[:, 0] ** 2 + traj.states[:, 1] ** 2
        assert np.max(np.abs(energy - 1.0)) < 1e-6

    def test_record_every_thins_samples(self):
        dense = integrate_fixed(exponential_decay, [1.0], (0.0, 1.0), 0.01)
        thin = integrate_fixed(exponential_decay, [1.0], (0.0, 1.0), 0.01,
                               record_every=10)
        assert len(thin) < len(dense)
        assert thin.final_state[0] == pytest.approx(dense.final_state[0])

    def test_stop_condition_terminates(self):
        traj = integrate_fixed(exponential_decay, [1.0], (0.0, 100.0), 0.01,
                               stop_condition=lambda t, y: y[0] < 0.5)
        assert traj.terminated_early
        assert traj.final_time < 1.0

    def test_bad_time_span_rejected(self):
        with pytest.raises(ValueError):
            integrate_fixed(exponential_decay, [1.0], (1.0, 0.0), 0.01)

    def test_non_finite_state_raises(self):
        def blow_up(t, y):
            return y ** 2

        # The error path must be warning-clean: a diverging trajectory
        # reports IntegrationError only, not an overflow RuntimeWarning
        # from evaluating the RHS on an already-exploded state.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(IntegrationError):
                integrate_fixed(blow_up, [10.0], (0.0, 10.0), 0.5)

    def test_non_finite_initial_state_raises_before_rhs(self):
        def must_not_be_called(t, y):
            raise AssertionError("rhs evaluated on a non-finite state")

        with pytest.raises(IntegrationError):
            integrate_fixed(must_not_be_called, [np.nan], (0.0, 1.0), 0.1)


class TestIntegrateAdaptive:
    def test_decay_accuracy(self):
        traj = integrate_adaptive(exponential_decay, [1.0], (0.0, 5.0),
                                  rtol=1e-8, atol=1e-10)
        assert traj.final_state[0] == pytest.approx(np.exp(-5.0), rel=1e-6)

    def test_adapts_step_size(self):
        # stiff-ish problem: fast transient then slow tail
        def stiff(t, y):
            return np.array([-50.0 * (y[0] - np.cos(t))])

        traj = integrate_adaptive(stiff, [0.0], (0.0, 2.0), rtol=1e-6)
        assert traj.n_rejected >= 0
        assert traj.n_steps > 10

    def test_stop_condition(self):
        traj = integrate_adaptive(exponential_decay, [1.0], (0.0, 50.0),
                                  stop_condition=lambda t, y: y[0] < 0.1)
        assert traj.terminated_early

    def test_max_steps_enforced(self):
        with pytest.raises(IntegrationError):
            integrate_adaptive(harmonic, [1.0, 0.0], (0.0, 1e9),
                               max_steps=50)

    def test_harmonic_phase_accuracy(self):
        traj = integrate_adaptive(harmonic, [1.0, 0.0],
                                  (0.0, 2.0 * np.pi), rtol=1e-9, atol=1e-12)
        assert traj.final_state[0] == pytest.approx(1.0, abs=1e-5)
        assert traj.final_state[1] == pytest.approx(0.0, abs=1e-5)

    def test_divergence_error_path_is_warning_clean(self):
        def blow_up(t, y):
            return y ** 2

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(IntegrationError):
                integrate_adaptive(blow_up, [10.0], (0.0, 10.0),
                                   max_steps=10_000)


class TestIntegrateClipped:
    def test_clipping_enforced_every_step(self):
        # dynamics that want to leave [0, 1]
        traj = integrate_clipped(lambda t, y: np.ones_like(y), [0.5],
                                 (0.0, 10.0), 0.1, lower=[0.0], upper=[1.0])
        assert np.all(traj.states <= 1.0)
        assert traj.final_state[0] == pytest.approx(1.0)

    def test_unclipped_components(self):
        # two components, only the second clipped
        def rhs(t, y):
            return np.array([1.0, 1.0])

        traj = integrate_clipped(rhs, [0.0, 0.0], (0.0, 2.0), 0.01,
                                 lower=[-np.inf, 0.0], upper=[np.inf, 1.0])
        assert traj.final_state[0] == pytest.approx(2.0, rel=1e-6)
        assert traj.final_state[1] == pytest.approx(1.0)

    def test_stop_condition(self):
        traj = integrate_clipped(lambda t, y: -y, [1.0], (0.0, 100.0), 0.01,
                                 stop_condition=lambda t, y: y[0] < 0.5)
        assert traj.terminated_early

    def test_unclipped_divergence_is_warning_clean(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(IntegrationError):
                integrate_clipped(lambda t, y: y ** 2, [10.0],
                                  (0.0, 10.0), 0.5)


@settings(max_examples=25, deadline=None)
@given(decay=st.floats(min_value=0.1, max_value=5.0),
       y0=st.floats(min_value=0.1, max_value=10.0))
def test_property_fixed_decay_matches_closed_form(decay, y0):
    """RK4 tracks a*exp(-k t) for any (k, a) in a reasonable range."""
    traj = integrate_fixed(lambda t, y: -decay * y, [y0], (0.0, 1.0), 0.005)
    assert traj.final_state[0] == pytest.approx(y0 * np.exp(-decay),
                                                rel=1e-5)


@settings(max_examples=25, deadline=None)
@given(y0=st.floats(min_value=-0.99, max_value=0.99))
def test_property_clipped_states_stay_in_box(y0):
    """Whatever the push, clipped states never leave the box."""
    traj = integrate_clipped(lambda t, y: 100.0 * np.sin(y * 7.0) + 3.0,
                             [y0], (0.0, 1.0), 0.02,
                             lower=[-1.0], upper=[1.0])
    assert np.all(traj.states >= -1.0)
    assert np.all(traj.states <= 1.0)
