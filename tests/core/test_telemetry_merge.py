"""Tests for telemetry snapshot merging (the parallel engine's join step).

Worker-local registries are merged into the parent's at join; these
tests pin the algebra down: counter and histogram merging is associative
and commutative on snapshots, histograms combine their moment
accumulators exactly, and kind clashes fail loudly.
"""

import math

import pytest

from repro.core import telemetry
from repro.core.exceptions import TelemetryError
from repro.core.telemetry import MetricsRegistry, merge_snapshots


def _registry_with(counters=(), observations=(), gauges=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, values in observations:
        for value in values:
            registry.histogram(name).observe(value)
    for name, value in gauges:
        registry.gauge(name).set(value)
    return registry


class TestMergeSnapshots:
    def test_counters_add(self):
        a = _registry_with(counters=[("dmm.solver.steps", 10)]).snapshot()
        b = _registry_with(counters=[("dmm.solver.steps", 32)]).snapshot()
        merged = merge_snapshots(a, b)
        assert merged["dmm.solver.steps"]["value"] == 42

    def test_disjoint_names_union(self):
        a = _registry_with(counters=[("only.a", 1)]).snapshot()
        b = _registry_with(counters=[("only.b", 2)]).snapshot()
        merged = merge_snapshots(a, b)
        assert merged["only.a"]["value"] == 1
        assert merged["only.b"]["value"] == 2

    def test_histograms_combine_moments_exactly(self):
        a = _registry_with(observations=[("h", [1.0, 2.0])]).snapshot()
        b = _registry_with(observations=[("h", [3.0, 4.0, 5.0])]).snapshot()
        merged = merge_snapshots(a, b)["h"]
        pooled = _registry_with(
            observations=[("h", [1.0, 2.0, 3.0, 4.0, 5.0])]).snapshot()["h"]
        assert merged["count"] == pooled["count"] == 5
        assert merged["total"] == pooled["total"]
        assert merged["min"] == pooled["min"]
        assert merged["max"] == pooled["max"]
        assert math.isclose(merged["mean"], pooled["mean"])
        assert math.isclose(merged["std"], pooled["std"])

    def test_empty_histogram_is_identity(self):
        a = _registry_with(observations=[("h", [7.0])]).snapshot()
        empty = MetricsRegistry()
        empty.histogram("h")  # created, never observed
        merged = merge_snapshots(a, empty.snapshot())
        assert merged["h"] == a["h"]

    def test_commutative_on_counters_and_histograms(self):
        a = _registry_with(counters=[("c", 3)],
                           observations=[("h", [1.0, 5.0])]).snapshot()
        b = _registry_with(counters=[("c", 4)],
                           observations=[("h", [2.0])]).snapshot()
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    def test_associative(self):
        a = _registry_with(counters=[("c", 1)],
                           observations=[("h", [1.0])]).snapshot()
        b = _registry_with(counters=[("c", 2)],
                           observations=[("h", [2.0, 3.0])]).snapshot()
        c = _registry_with(counters=[("c", 3)],
                           observations=[("h", [4.0])]).snapshot()
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    def test_gauge_merge_is_right_biased(self):
        a = _registry_with(gauges=[("g", 1.0)]).snapshot()
        b = _registry_with(gauges=[("g", 2.0)]).snapshot()
        assert merge_snapshots(a, b)["g"]["value"] == 2.0
        assert merge_snapshots(b, a)["g"]["value"] == 1.0

    def test_kind_clash_raises(self):
        a = _registry_with(counters=[("x", 1)]).snapshot()
        b = _registry_with(gauges=[("x", 1.0)]).snapshot()
        with pytest.raises(TelemetryError):
            merge_snapshots(a, b)

    def test_inputs_not_mutated(self):
        a = _registry_with(counters=[("c", 1)]).snapshot()
        b = _registry_with(counters=[("c", 2)]).snapshot()
        merge_snapshots(a, b)
        assert a["c"]["value"] == 1
        assert b["c"]["value"] == 2


class TestRegistryMerge:
    def test_merge_into_live_registry(self):
        registry = _registry_with(counters=[("c", 5)],
                                  observations=[("h", [1.0])])
        incoming = _registry_with(counters=[("c", 7)],
                                  observations=[("h", [3.0])],
                                  gauges=[("g", 9.0)])
        registry.merge(incoming.snapshot())
        assert registry.counter("c").value == 12
        histogram = registry.histogram("h")
        assert histogram.count == 2
        assert histogram.total == 4.0
        assert registry.gauge("g").value == 9.0

    def test_merge_matches_pure_merge(self):
        base = _registry_with(counters=[("c", 5)],
                              observations=[("h", [1.0, 2.0])])
        incoming = _registry_with(counters=[("c", 7)],
                                  observations=[("h", [3.0])])
        expected = merge_snapshots(base.snapshot(), incoming.snapshot())
        base.merge(incoming.snapshot())
        assert base.snapshot() == expected

    def test_merge_kind_clash_raises(self):
        registry = _registry_with(counters=[("x", 1)])
        incoming = _registry_with(gauges=[("x", 2.0)])
        with pytest.raises(TelemetryError):
            registry.merge(incoming.snapshot())

    def test_merge_legacy_snapshot_without_sum_sq(self):
        # Snapshots written before sum_sq existed reconstruct the second
        # moment from mean/std.
        registry = MetricsRegistry()
        entry = {"kind": "histogram", "count": 2, "total": 6.0,
                 "min": 2.0, "max": 4.0, "mean": 3.0, "std": 1.0}
        registry.merge({"h": entry})
        histogram = registry.histogram("h")
        assert histogram.count == 2
        assert math.isclose(histogram.std, 1.0)

    def test_null_registry_merge_is_noop(self):
        incoming = _registry_with(counters=[("c", 1)])
        result = telemetry.NULL_REGISTRY.merge(incoming.snapshot())
        assert result is telemetry.NULL_REGISTRY
        assert len(telemetry.NULL_REGISTRY) == 0

    def test_histogram_snapshot_carries_sum_sq(self):
        registry = _registry_with(observations=[("h", [2.0, 3.0])])
        entry = registry.snapshot()["h"]
        assert entry["sum_sq"] == 13.0
