"""Tests for the telemetry substrate (metrics, spans, sinks)."""

import io
import threading

import pytest

from repro.core import telemetry
from repro.core.exceptions import TelemetryError
from repro.core.tracing import (
    ConsoleSink,
    JsonlSink,
    NullSink,
    current_span,
    point_event,
    read_jsonl,
)


@pytest.fixture
def registry():
    """A live registry active for the duration of one test."""
    registry = telemetry.MetricsRegistry()
    with telemetry.use_registry(registry):
        yield registry


class TestInstruments:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("dmm.solver.steps")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert counter.snapshot() == {"kind": "counter", "value": 42}

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(TelemetryError):
            registry.counter("dmm.solver.steps").inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("dmm.solver.sim_time")
        gauge.set(10.0)
        gauge.inc(-2.5)
        assert gauge.value == 7.5

    def test_histogram_streaming_moments(self, registry):
        histogram = registry.histogram("quantum.runtime.shot_time_ns")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == pytest.approx(2.5)
        # population std of {1,2,3,4} is sqrt(1.25)
        assert histogram.std == pytest.approx(1.25 ** 0.5)

    def test_empty_histogram_stats_are_none(self, registry):
        histogram = registry.histogram("oscillator.distance.eval_seconds")
        assert histogram.count == 0
        assert histogram.mean is None
        assert histogram.std is None
        assert histogram.snapshot()["min"] is None

    def test_same_name_returns_same_instrument(self, registry):
        assert (registry.counter("inmemory.crossbar.reads")
                is registry.counter("inmemory.crossbar.reads"))

    def test_kind_clash_raises(self, registry):
        registry.counter("dmm.solver.steps")
        with pytest.raises(TelemetryError):
            registry.gauge("dmm.solver.steps")

    def test_module_accessors_hit_active_registry(self, registry):
        telemetry.counter("dmm.walksat.flips").inc(5)
        assert registry.counter("dmm.walksat.flips").value == 5

    def test_counter_thread_safety(self, registry):
        counter = registry.counter("dmm.dynamics.rhs_evals")
        threads = [threading.Thread(
            target=lambda: [counter.inc() for _ in range(10_000)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000


class TestRegistry:
    def test_snapshot_is_json_friendly(self, registry):
        registry.counter("a.b.c").inc(3)
        registry.histogram("a.b.t").observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["a.b.c"] == {"kind": "counter", "value": 3}
        assert snapshot["a.b.t"]["count"] == 1
        import json
        json.dumps(snapshot)  # must not raise

    def test_reset_drops_instruments_keeps_sinks(self, registry):
        sink = registry.add_sink(NullSink())
        registry.counter("a.b.c").inc()
        registry.reset()
        assert len(registry) == 0
        assert sink in registry.sinks

    def test_len_and_contains(self, registry):
        registry.counter("a.b.c")
        assert "a.b.c" in registry
        assert "x.y.z" not in registry
        assert len(registry) == 1


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert telemetry.get_registry() is telemetry.NULL_REGISTRY
        assert not telemetry.enabled()

    def test_null_instruments_are_shared_noop_singletons(self):
        counter = telemetry.counter("dmm.solver.steps")
        assert counter is telemetry.NULL_INSTRUMENT
        assert counter is telemetry.histogram("any.other.name")
        assert not counter  # falsy, so hot paths can skip clock reads
        counter.inc(10)
        assert counter.value == 0.0

    def test_disabled_span_is_shared_noop(self):
        with telemetry.span("dmm.solver.solve", variables=3) as disabled:
            assert disabled is telemetry.tracing.NULL_SPAN
            assert not disabled
            disabled.set_attr("satisfied", True)  # no-op, no error
        assert current_span() is None

    def test_use_registry_restores_previous(self):
        before = telemetry.get_registry()
        with telemetry.use_registry(telemetry.MetricsRegistry()) as live:
            assert telemetry.get_registry() is live
        assert telemetry.get_registry() is before

    def test_use_registry_restores_on_exception(self):
        before = telemetry.get_registry()
        with pytest.raises(ValueError):
            with telemetry.use_registry(telemetry.MetricsRegistry()):
                raise ValueError("boom")
        assert telemetry.get_registry() is before

    def test_disable_returns_previous(self):
        live = telemetry.MetricsRegistry()
        telemetry.set_registry(live)
        try:
            assert telemetry.disable() is live
        finally:
            telemetry.disable()
        assert telemetry.get_registry() is telemetry.NULL_REGISTRY


class TestSpans:
    def test_span_times_and_observes_histogram(self, registry):
        with telemetry.span("quantum.compiler.compile") as compile_span:
            pass
        assert compile_span.duration_s >= 0.0
        histogram = registry.histogram("quantum.compiler.compile.seconds")
        assert histogram.count == 1

    def test_span_nesting_depth_and_parent(self, registry):
        events = []

        class Collect(NullSink):
            def emit(self, event):
                events.append(event)

        registry.add_sink(Collect())
        with telemetry.span("outer"):
            assert current_span().name == "outer"
            with telemetry.span("inner"):
                assert current_span().name == "inner"
        assert current_span() is None
        # inner closes first
        inner, outer = events
        assert inner["name"] == "inner"
        assert inner["depth"] == 1
        assert inner["parent"] == "outer"
        assert outer["depth"] == 0
        assert outer["parent"] is None

    def test_span_exception_safety(self, registry):
        events = []

        class Collect(NullSink):
            def emit(self, event):
                events.append(event)

        registry.add_sink(Collect())
        with pytest.raises(KeyError):
            with telemetry.span("dmm.solver.solve"):
                raise KeyError("missing")
        assert current_span() is None  # stack unwound
        (event,) = events
        assert event["status"] == "error"
        assert event["attrs"]["error"] == "KeyError"
        # duration still observed
        assert registry.histogram("dmm.solver.solve.seconds").count == 1

    def test_span_attrs_land_in_event(self, registry):
        with telemetry.span("s", a=1) as live_span:
            live_span.set_attr("b", 2)
        event = live_span.to_event()
        assert event["attrs"] == {"a": 1, "b": 2, }
        assert event["type"] == "span"

    def test_point_event_shape(self):
        event = point_event("dmm.solver.instanton", {"unsat_to": 3},
                            clock=lambda: 123.0)
        assert event == {"type": "event", "name": "dmm.solver.instanton",
                         "ts": 123.0, "attrs": {"unsat_to": 3}}

    def test_event_helper_emits_only_when_enabled(self, registry):
        events = []

        class Collect(NullSink):
            def emit(self, event):
                events.append(event)

        registry.add_sink(Collect())
        telemetry.event("a.b.c", value=1)
        assert len(events) == 1
        telemetry.disable()
        try:
            telemetry.event("a.b.c", value=2)
        finally:
            telemetry.set_registry(registry)
        assert len(events) == 1


class TestSinks:
    def test_jsonl_round_trip(self, registry, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = registry.add_sink(JsonlSink(path))
        telemetry.event("first", index=0)
        with telemetry.span("second", n=15):
            pass
        sink.close()
        assert sink.events_written == 2
        events = read_jsonl(path)
        assert [event["name"] for event in events] == ["first", "second"]
        assert events[0]["type"] == "event"
        assert events[1]["type"] == "span"
        assert events[1]["attrs"] == {"n": 15}

    def test_jsonl_lazy_open(self, registry, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.close()  # closing an unopened sink is fine
        assert not path.exists()  # no events -> no file

    def test_console_sink_pretty_prints(self, registry):
        stream = io.StringIO()
        registry.add_sink(ConsoleSink(stream))
        with telemetry.span("outer"):
            with telemetry.span("oscillator.locking.check", locked=True):
                pass
        text = stream.getvalue()
        lines = text.splitlines()
        assert lines[0].startswith("  [span] oscillator.locking.check")
        assert "locked=True" in lines[0]
        assert lines[1].startswith("[span] outer")

    def test_multiple_sinks_fan_out(self, registry, tmp_path):
        first = registry.add_sink(JsonlSink(str(tmp_path / "a.jsonl")))
        second = registry.add_sink(JsonlSink(str(tmp_path / "b.jsonl")))
        telemetry.event("x")
        assert first.events_written == 1
        assert second.events_written == 1


class TestFormatting:
    def test_fmt_seconds_scales(self):
        assert telemetry.fmt_seconds(1.53) == "1.53s"
        assert telemetry.fmt_seconds(0.0124) == "12.4ms"
        assert telemetry.fmt_seconds(8.5e-4) == "850us"
        assert telemetry.fmt_seconds(2e-8) == "20ns"
        assert telemetry.fmt_seconds(0.0) == "0s"

    def test_fmt_quantity(self):
        assert telemetry.fmt_quantity(1234567) == "1,234,567"
        assert telemetry.fmt_quantity(0.5) == "0.5"
        assert telemetry.fmt_quantity(1.23e8) == "1.230e+08"
        assert telemetry.fmt_quantity(True) == "True"
        assert telemetry.fmt_quantity("dmm") == "dmm"

    def test_render_summary_table(self, registry):
        registry.counter("dmm.solver.steps").inc(1000)
        registry.histogram("dmm.solver.solve.seconds").observe(0.5)
        table = telemetry.render_summary(registry.snapshot())
        assert "telemetry summary" in table
        assert "dmm.solver.steps" in table
        assert "1,000" in table
        assert "count=1" in table

    def test_render_summary_empty(self):
        table = telemetry.render_summary({})
        assert "(no metrics recorded)" in table
