"""The content-addressed result cache and its invisibility contract.

Three layers of coverage:

* unit tests for :mod:`repro.core.cache` itself -- keying, the LRU
  memory tier, the atomic disk tier, fingerprint-mismatch refusal,
  telemetry counters, and the active-cache plumbing;
* hypothesis property tests for the *cache-invisibility contract*:
  over random workloads (and under injected faults), cache-on vs
  cache-off runs and cold vs warm runs are bit-identical, telemetry
  keeps its result shape, and cache keys never depend on the worker
  count;
* interplay tests with the resilience layer: the checkpoint is
  consulted before the cache, failed chunks are never cached, and a
  resumed run re-executes exactly the chunks its checkpoint is missing.
"""

import json
import multiprocessing
import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cache as result_cache
from repro.core import telemetry
from repro.core.cache import (
    CACHE_DIR_ENV,
    CacheSpec,
    ResultCache,
    array_fingerprint,
    cache_key,
    cacheable_seed,
    fingerprint,
    formula_fingerprint,
    spec_for,
    use_cache,
)
from repro.core.exceptions import CacheError
from repro.core.parallel import ParallelMap
from repro.core.resilience import Checkpointer
from repro.core.sat_instances import planted_ksat


def _square(x):
    return x * x


def _hammer_store(cache_dir):
    """Child-process body for the same-key concurrent-store race test."""
    cache = ResultCache(cache_dir=cache_dir, max_memory_entries=0)
    spec = cache.spec("race", {"n": 7})
    for _ in range(50):
        spec.store([1.5, 2.5, 3.5], index=0)


def _rng_sum(payload):
    size, rng = payload
    return [float(v) for v in rng.normal(size=size)]


class TestKeying:
    def test_key_is_stable_and_content_addressed(self):
        doc = fingerprint("demo", {"a": 1, "rng": ["seed", 3]})
        assert cache_key(doc) == cache_key(doc)
        assert cache_key(doc, 0) != cache_key(doc, 1) != cache_key(doc)
        other = fingerprint("demo", {"a": 2, "rng": ["seed", 3]})
        assert cache_key(other) != cache_key(doc)

    def test_key_ignores_meta_ordering(self):
        a = fingerprint("demo", {"x": 1, "y": 2})
        b = fingerprint("demo", {"y": 2, "x": 1})
        assert cache_key(a) == cache_key(b)

    def test_code_version_participates(self):
        doc = fingerprint("demo", {})
        assert doc["code"] == result_cache.code_version()

    def test_array_fingerprint_sees_dtype_shape_and_bytes(self):
        base = np.arange(6.0)
        assert array_fingerprint(base) == array_fingerprint(base.copy())
        assert array_fingerprint(base) != array_fingerprint(
            base.reshape(2, 3))
        assert array_fingerprint(base) != array_fingerprint(
            base.astype(np.float32))
        changed = base.copy()
        changed[3] = -1.0
        assert array_fingerprint(base) != array_fingerprint(changed)

    def test_formula_fingerprint_tracks_content(self):
        f1 = planted_ksat(10, 40, rng=0)
        f2 = planted_ksat(10, 40, rng=0)
        f3 = planted_ksat(10, 40, rng=1)
        assert formula_fingerprint(f1) == formula_fingerprint(f2)
        assert formula_fingerprint(f1) != formula_fingerprint(f3)

    def test_cacheable_seed(self):
        assert cacheable_seed(7)
        assert cacheable_seed(np.int64(7))
        assert not cacheable_seed(True)
        assert not cacheable_seed(None)
        assert not cacheable_seed(np.random.default_rng(7))


class TestResultCache:
    def test_memory_roundtrip_and_counters(self):
        cache = ResultCache()
        spec = cache.spec("demo", {"n": 1})
        hit, value = spec.lookup()
        assert not hit and value is None
        spec.store({"answer": [1, 2]})
        hit, value = spec.lookup()
        assert hit and value == {"answer": [1, 2]}
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_returned_values_are_isolated_copies(self):
        cache = ResultCache()
        spec = cache.spec("demo", {"n": 1})
        stored = [1, 2, 3]
        spec.store(stored)
        stored.append(4)                      # caller mutates after store
        _hit, first = spec.lookup()
        first.append(99)                      # caller mutates the hit
        _hit, second = spec.lookup()
        assert second == [1, 2, 3]

    def test_lru_evicts_oldest(self):
        cache = ResultCache(max_memory_entries=2)
        spec = cache.spec("demo", {})
        spec.store("a", index=0)
        spec.store("b", index=1)
        assert spec.lookup(0) == (True, "a")  # 0 becomes most recent
        spec.store("c", index=2)              # evicts 1
        assert cache.evictions == 1
        assert spec.lookup(1) == (False, None)
        assert spec.lookup(0) == (True, "a")
        assert spec.lookup(2) == (True, "c")

    def test_disk_json_roundtrip_survives_memory_loss(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = cache.spec("demo", {"n": 2})
        spec.store([1.5, 2.5], index=3)
        cache.clear_memory()
        assert spec.lookup(3) == (True, [1.5, 2.5])
        # and a brand-new cache object (fresh process) also sees it
        again = ResultCache(cache_dir=str(tmp_path))
        assert again.spec("demo", {"n": 2}).lookup(3) == (True, [1.5, 2.5])

    def test_disk_npz_roundtrip_for_raw_arrays(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = cache.spec("demo", {"n": 3})
        value = np.linspace(0.0, 1.0, 7)
        spec.store(value)
        cache.clear_memory()
        hit, loaded = spec.lookup()
        assert hit and isinstance(loaded, np.ndarray)
        assert np.array_equal(loaded, value)
        assert any(name.endswith(".npz") for name in os.listdir(tmp_path))

    def test_no_scratch_files_left_behind(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = cache.spec("demo", {})
        spec.store([1], index=0)
        spec.store(np.arange(3.0), index=1)
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(".tmp")]

    def test_codec_hooks_apply(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = cache.spec("demo", {"n": 4},
                          encode=lambda v: {"x": list(v)},
                          decode=lambda d: tuple(d["x"]))
        spec.store((1, 2))
        cache.clear_memory()
        assert spec.lookup() == (True, (1, 2))

    def test_unencodable_value_is_a_clear_error(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = cache.spec("demo", {"n": 5})
        with pytest.raises(CacheError, match="encode hook"):
            spec.store(object())

    def test_mismatched_fingerprint_refuses_with_path_and_both(
            self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = cache.spec("demo", {"seed": 1})
        spec.store([1, 2], index=0)
        cache.clear_memory()
        # forge a different workload onto the same key (tampering /
        # collision stand-in)
        path = os.path.join(str(tmp_path), spec.key(0) + ".json")
        document = json.load(open(path))
        document["fingerprint"]["meta"]["seed"] = 2
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(CacheError) as excinfo:
            spec.lookup(0)
        message = str(excinfo.value)
        assert path in message
        assert "'seed': 1" in message and "'seed': 2" in message
        assert "refusing" in message

    def test_corrupt_entry_is_a_clear_error(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = cache.spec("demo", {"n": 6})
        spec.store([1], index=0)
        cache.clear_memory()
        path = os.path.join(str(tmp_path), spec.key(0) + ".json")
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(CacheError, match="cannot read"):
            spec.lookup(0)

    def test_telemetry_counters(self, tmp_path):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            cache = ResultCache(cache_dir=str(tmp_path),
                                max_memory_entries=1)
            spec = cache.spec("demo", {})
            spec.lookup(0)
            spec.store([1], index=0)
            spec.store([2], index=1)          # evicts entry 0
            spec.lookup(1)
        snapshot = registry.snapshot()
        assert snapshot["cache.misses"]["value"] == 1
        assert snapshot["cache.hits"]["value"] == 1
        assert snapshot["cache.stores"]["value"] == 2
        assert snapshot["cache.evictions"]["value"] == 1
        assert snapshot["cache.bytes"]["value"] > 0

    def test_disabled_registry_records_nothing(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = cache.spec("demo", {})
        spec.store([1], index=0)
        assert spec.lookup(0)[0]
        assert telemetry.get_registry().snapshot() == {}


class TestDiskBudget:
    """The disk tier's byte budget: LRU eviction, counters, env knob."""

    @staticmethod
    def _entry_files(tmp_path):
        return sorted(name for name in os.listdir(tmp_path)
                      if name.endswith((".json", ".npz")))

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        spec = cache.spec("demo", {})
        for index in range(20):
            spec.store([index] * 50, index=index)
        assert cache.disk_evictions == 0
        assert len(self._entry_files(tmp_path)) == 20

    @staticmethod
    def _entry_size(tmp_path):
        """On-disk size of one entry (all test entries are same-sized)."""
        probe_dir = str(tmp_path / "probe")
        probe = ResultCache(cache_dir=probe_dir)
        probe.spec("demo", {}).store([0.0] * 55, index=0)
        (name,) = os.listdir(probe_dir)
        return os.path.getsize(os.path.join(probe_dir, name))

    def test_budget_evicts_oldest_first(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(cache_dir=cache_dir,
                            max_disk_bytes=int(size * 2.5))
        spec = cache.spec("demo", {})
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            for index in range(4):
                spec.store([float(index)] * 55, index=index)
                time.sleep(0.02)    # distinct mtimes => deterministic LRU
        assert cache.disk_evictions == 2
        snapshot = registry.snapshot()
        assert snapshot["cache.disk_evictions"]["value"] == 2
        cache.clear_memory()
        # the two newest survive, the two oldest are gone
        assert spec.lookup(3) == (True, [3.0] * 55)
        assert spec.lookup(2) == (True, [2.0] * 55)
        assert spec.lookup(1) == (False, None)
        assert spec.lookup(0) == (False, None)

    def test_disk_hit_refreshes_recency(self, tmp_path):
        size = self._entry_size(tmp_path)
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(cache_dir=cache_dir,
                            max_disk_bytes=int(size * 2.5))
        spec = cache.spec("demo", {})
        spec.store([0.0] * 55, index=0)
        time.sleep(0.02)
        spec.store([1.0] * 55, index=1)
        time.sleep(0.02)
        cache.clear_memory()
        assert spec.lookup(0)[0]    # disk hit refreshes entry 0's mtime
        time.sleep(0.02)
        spec.store([2.0] * 55, index=2)   # over budget: evicts entry 1
        cache.clear_memory()
        assert spec.lookup(0) == (True, [0.0] * 55)
        assert spec.lookup(1) == (False, None)
        assert spec.lookup(2) == (True, [2.0] * 55)

    def test_oversized_entry_survives_until_displaced(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path), max_disk_bytes=10)
        spec = cache.spec("demo", {})
        spec.store([1.0] * 50, index=0)    # larger than the whole budget
        assert len(self._entry_files(tmp_path)) == 1
        time.sleep(0.02)
        spec.store([2.0] * 50, index=1)    # displaces the previous one
        assert len(self._entry_files(tmp_path)) == 1
        cache.clear_memory()
        assert spec.lookup(1) == (True, [2.0] * 50)

    def test_env_budget_applies_to_dir_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv(result_cache.CACHE_DISK_BYTES_ENV, "4096")
        cache = result_cache.cache_for_dir(str(tmp_path / "budgeted"))
        assert cache.max_disk_bytes == 4096
        monkeypatch.setenv(result_cache.CACHE_DISK_BYTES_ENV, "not-bytes")
        with pytest.raises(CacheError, match="integer byte count"):
            result_cache.cache_for_dir(str(tmp_path / "other"))

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(CacheError, match="max_disk_bytes"):
            ResultCache(cache_dir=str(tmp_path), max_disk_bytes=-1)


class TestConcurrentStores:
    def test_same_key_store_race_yields_one_valid_entry(self, tmp_path):
        # Multiple processes storing the same content-addressed key at
        # once: every writer must succeed, exactly one committed entry
        # remains, and it passes the fingerprint check.
        context = multiprocessing.get_context("fork")
        processes = [
            context.Process(target=_hammer_store, args=(str(tmp_path),))
            for _ in range(3)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60.0)
        assert all(process.exitcode == 0 for process in processes)
        names = os.listdir(tmp_path)
        assert not [name for name in names if name.endswith(".tmp")]
        assert len([name for name in names if name.endswith(".json")]) == 1
        cache = ResultCache(cache_dir=str(tmp_path))
        assert cache.spec("race", {"n": 7}).lookup(0) \
            == (True, [1.5, 2.5, 3.5])


class TestActiveCachePlumbing:
    def test_resolve_cache_forms(self, tmp_path):
        assert result_cache.resolve_cache(False) is None
        cache = ResultCache()
        assert result_cache.resolve_cache(cache) is cache
        by_path = result_cache.resolve_cache(str(tmp_path))
        assert isinstance(by_path, ResultCache)
        # memoized per directory: repeated kernels share the memory tier
        assert result_cache.resolve_cache(str(tmp_path)) is by_path
        with pytest.raises(CacheError, match="cache must be"):
            result_cache.resolve_cache(123)

    def test_use_cache_scopes_and_restores(self):
        cache = ResultCache()
        assert result_cache.active_cache() is None
        with use_cache(cache) as active:
            assert active is cache
            assert result_cache.active_cache() is cache
            assert result_cache.resolve_cache(None) is cache
        assert result_cache.active_cache() is None

    def test_env_var_enables_a_directory_cache(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        active = result_cache.active_cache()
        assert isinstance(active, ResultCache)
        assert active.cache_dir == os.path.abspath(str(tmp_path))
        # programmatic override wins over the environment
        override = ResultCache()
        with use_cache(override):
            assert result_cache.active_cache() is override

    def test_spec_for_refuses_nondeterministic_workloads(self):
        cache = ResultCache()
        assert spec_for(cache, "demo", {"rng": None}) is None
        assert isinstance(spec_for(cache, "demo", {"rng": ["seed", 1]}),
                          CacheSpec)
        assert isinstance(spec_for(cache, "demo", {"no_rng_key": 1}),
                          CacheSpec)
        assert spec_for(False, "demo", {"rng": ["seed", 1]}) is None
        assert spec_for(None, "demo", {"rng": ["seed", 1]}) is None


class TestParallelMapIntegration:
    def _spec(self, cache, total):
        return cache.spec("square", {"total": total, "rng": ["seed", 0]})

    def test_warm_map_skips_dispatch(self):
        cache = ResultCache()
        registry = telemetry.MetricsRegistry()
        tasks = list(range(6))
        spec = self._spec(cache, len(tasks))
        cold = ParallelMap(workers=1).map(_square, tasks, cache=spec)
        with telemetry.use_registry(registry):
            warm = ParallelMap(workers=1).map(_square, tasks, cache=spec)
        assert warm == cold == [x * x for x in tasks]
        snapshot = registry.snapshot()
        assert snapshot["cache.hits"]["value"] == len(tasks)
        # cached chunks never execute: no parallel.tasks recorded
        assert "parallel.tasks" not in snapshot

    def test_cache_entries_cross_worker_counts(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        tasks = list(range(8))
        spec = self._spec(cache, len(tasks))
        serial = ParallelMap(workers=1).map(_square, tasks, cache=spec)
        assert cache.misses == len(tasks)
        fanned = ParallelMap(workers=4).map(_square, tasks, cache=spec)
        assert fanned == serial
        assert cache.misses == len(tasks)     # warm run: all hits

    def test_failures_are_never_cached(self, fault_plan):
        fault_plan([(1, 1, "raise")])
        cache = ResultCache()
        tasks = list(range(4))
        spec = self._spec(cache, len(tasks))
        results = ParallelMap(workers=1).map(_square, tasks,
                                             on_error="return",
                                             cache=spec)
        from repro.core.parallel import TaskFailure
        assert isinstance(results[1], TaskFailure)
        assert cache.stores == len(tasks) - 1
        assert spec.lookup(1) == (False, None)
        # with the fault gone, the failed chunk recomputes and the rest
        # replay from the cache
        from repro.core import resilience
        resilience.set_fault_plan(None)
        clean = ParallelMap(workers=1).map(_square, tasks, cache=spec)
        assert clean == [x * x for x in tasks]
        assert cache.stores == len(tasks)

    def test_checkpoint_wins_over_cache_and_hits_backfill_it(
            self, tmp_path):
        cache = ResultCache()
        tasks = list(range(4))
        spec = self._spec(cache, len(tasks))
        ParallelMap(workers=1).map(_square, tasks, cache=spec)
        path = str(tmp_path / "ckpt.json")
        ckpt = Checkpointer(path, "square", meta={"total": len(tasks)})
        results = ParallelMap(workers=1).map(_square, tasks, cache=spec,
                                             checkpoint=ckpt)
        assert results == [x * x for x in tasks]
        # cache hits were recorded into the checkpoint
        document = json.load(open(path))
        assert len(document["chunks"]) == len(tasks)
        # a poisoned checkpoint value wins over the cache: resumed
        # values are trusted, the cache is only consulted for gaps
        document["chunks"]["2"] = 999
        with open(path, "w") as handle:
            json.dump(document, handle)
        resumed = Checkpointer(path, "square", meta={"total": len(tasks)})
        results = ParallelMap(workers=1).map(_square, tasks, cache=spec,
                                             checkpoint=resumed)
        assert results[2] == 999


# -- hypothesis: the cache-invisibility contract ---------------------------

workloads = st.fixed_dictionaries({
    "total": st.integers(min_value=1, max_value=12),
    "size": st.integers(min_value=1, max_value=5),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
})


def _run_workload(workload, cache, workers=1):
    """One deterministic rng-consuming fan-out, optionally cached."""
    from repro.core.rngs import spawn_rngs

    spec = None
    if cache is not None:
        spec = cache.spec("hypothesis-demo",
                          {"total": workload["total"],
                           "size": workload["size"],
                           "rng": ["seed", workload["seed"]]})
    rngs = spawn_rngs(workload["seed"], workload["total"])
    tasks = [(workload["size"], rng) for rng in rngs]
    return ParallelMap(workers=workers).map(_rng_sum, tasks, cache=spec)


class TestCacheInvisibilityProperties:
    @settings(max_examples=25, deadline=None)
    @given(workload=workloads)
    def test_cache_on_equals_cache_off_and_cold_equals_warm(
            self, workload):
        cache = ResultCache()
        plain = _run_workload(workload, cache=None)
        cold = _run_workload(workload, cache=cache)
        warm = _run_workload(workload, cache=cache)
        assert cold == plain          # caching never changes results
        assert warm == plain          # replayed results are bit-identical
        assert cache.hits == workload["total"]

    @settings(max_examples=15, deadline=None)
    @given(workload=workloads)
    def test_telemetry_result_shape_is_identical(self, workload):
        def shape(cache):
            registry = telemetry.MetricsRegistry()
            with telemetry.use_registry(registry):
                results = _run_workload(workload, cache=cache)
            snapshot = registry.snapshot()
            return ([type(value).__name__ for value in results],
                    [len(value) for value in results],
                    sorted(key for key in snapshot
                           if not key.startswith("cache.")))
        assert shape(None) == shape(ResultCache())

    @settings(max_examples=15, deadline=None)
    @given(workload=workloads)
    def test_cache_keys_are_stable_across_worker_counts(self, workload):
        cache = ResultCache()
        serial = _run_workload(workload, cache=cache, workers=1)
        misses = cache.misses
        fanned = _run_workload(workload, cache=cache, workers=3)
        assert fanned == serial
        assert cache.misses == misses  # the fan-out run hit every entry

    @settings(max_examples=10, deadline=None)
    @given(workload=workloads,
           fault_chunk=st.integers(min_value=0, max_value=11))
    def test_faulted_chunks_recompute_never_replay_garbage(
            self, workload, fault_chunk):
        from repro.core import resilience

        fault_chunk %= workload["total"]
        cache = ResultCache()
        plain = _run_workload(workload, cache=None)
        plan = resilience.FaultPlan([(fault_chunk, 1, "raise")])
        previous = resilience.set_fault_plan(plan)
        try:
            faulted = _run_workload(workload, cache=cache)
        except Exception:
            faulted = None
        finally:
            resilience.set_fault_plan(previous)
        assert faulted is None        # on_error="raise" surfaced the fault
        assert cache.stores == workload["total"] - 1
        # the failed chunk was not cached; a clean retry recomputes it
        # and every result matches the fault-free run bit for bit
        clean = _run_workload(workload, cache=cache)
        assert clean == plain


class TestKernelCacheRefusals:
    """Kernels must refuse to cache what cannot be replayed."""

    def test_fresh_entropy_runs_are_never_cached(self):
        from repro.memcomputing.ensemble import solve_ensemble

        cache = ResultCache()
        formula = planted_ksat(8, 33, rng=0)
        solve_ensemble(formula, batch=4, max_steps=500, rng=None,
                       cache=cache)
        assert cache.stores == 0 and cache.hits == 0

    def test_generator_rng_disables_kernel_level_caching_only(self):
        from repro.memcomputing.ensemble import solve_ensemble

        cache = ResultCache()
        formula = planted_ksat(8, 33, rng=0)
        # serial fast path with a Generator: not cached (the caller's
        # generator must advance exactly as in an uncached run)
        rng = np.random.default_rng(5)
        solve_ensemble(formula, batch=4, max_steps=500, rng=rng,
                       workers=1, cache=cache)
        assert cache.stores == 0
        # chunked path with a Generator: chunk-level caching is safe
        # because spawn_rngs advances the parent either way
        first = solve_ensemble(formula, batch=4, max_steps=500,
                               rng=np.random.default_rng(5),
                               chunk_size=2, cache=cache)
        assert cache.stores > 0
        second = solve_ensemble(formula, batch=4, max_steps=500,
                                rng=np.random.default_rng(5),
                                chunk_size=2, cache=cache)
        assert cache.hits > 0
        assert np.array_equal(first.solve_steps, second.solve_steps)

    def test_generator_state_advances_identically_on_hits(self):
        from repro.memcomputing.ensemble import solve_ensemble

        cache = ResultCache()
        formula = planted_ksat(8, 33, rng=0)

        def run(with_cache):
            rng = np.random.default_rng(9)
            solve_ensemble(formula, batch=4, max_steps=500, rng=rng,
                           chunk_size=2,
                           cache=cache if with_cache else False)
            return float(rng.normal())   # state probe after the call

        cold, warm, off = run(True), run(True), run(False)
        assert cold == warm == off
