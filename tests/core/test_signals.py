"""Unit tests for repro.core.signals."""

import numpy as np
import pytest

from repro.core.exceptions import LockingError
from repro.core.signals import (
    cycle_frequency,
    dominant_frequency,
    instantaneous_phase,
    is_frequency_locked,
    phase_difference,
    power_spectrum,
    time_average,
)


def make_wave(freq, phase=0.0, t_end=2.0, samples=8000):
    t = np.linspace(0.0, t_end, samples)
    return t, np.sin(2.0 * np.pi * freq * t + phase)


class TestDominantFrequency:
    def test_recovers_sine_frequency(self):
        t, v = make_wave(25.0)
        assert dominant_frequency(t, v) == pytest.approx(25.0, rel=0.02)

    def test_ignores_dc(self):
        t, v = make_wave(10.0)
        assert dominant_frequency(t, v + 5.0) == pytest.approx(10.0,
                                                               rel=0.02)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            dominant_frequency([0, 1, 2], [0, 1, 0])


class TestCycleFrequency:
    def test_matches_sine(self):
        t, v = make_wave(12.0)
        assert cycle_frequency(t, v, 0.0) == pytest.approx(12.0, rel=1e-3)

    def test_none_for_flat_signal(self):
        t = np.linspace(0, 1, 100)
        assert cycle_frequency(t, np.zeros(100), 0.5) is None


class TestPhase:
    def test_phase_increases_by_cycles(self):
        t, v = make_wave(5.0)
        sample_times, phase = instantaneous_phase(t, v, 0.0)
        assert phase[-1] - phase[0] == pytest.approx(
            (sample_times[-1] - sample_times[0]) * 5.0, rel=0.02)

    def test_phase_needs_two_crossings(self):
        t = np.linspace(0, 1, 100)
        with pytest.raises(LockingError):
            instantaneous_phase(t, np.zeros(100), 0.5)

    def test_phase_difference_of_shifted_waves(self):
        t, a = make_wave(8.0)
        _t, b = make_wave(8.0, phase=np.pi)  # half a cycle apart
        diff = phase_difference(t, a, b, 0.0)
        assert abs(abs(diff) - 0.5) < 0.02

    def test_phase_difference_zero_for_identical(self):
        t, a = make_wave(8.0)
        assert abs(phase_difference(t, a, a.copy(), 0.0)) < 1e-6


class TestLockingDetection:
    def test_identical_frequencies_locked(self):
        t, a = make_wave(10.0)
        _t, b = make_wave(10.0, phase=1.0)
        assert is_frequency_locked(t, a, b, 0.0)

    def test_detuned_not_locked(self):
        t, a = make_wave(10.0)
        _t, b = make_wave(12.0)
        assert not is_frequency_locked(t, a, b, 0.0)

    def test_flat_signal_not_locked(self):
        t, a = make_wave(10.0)
        assert not is_frequency_locked(t, a, np.zeros_like(a), 0.0)


class TestTimeAverage:
    def test_constant(self):
        t = np.linspace(0, 1, 50)
        assert time_average(t, np.full(50, 3.0)) == pytest.approx(3.0)

    def test_sine_averages_to_zero(self):
        t, v = make_wave(4.0, t_end=1.0)
        assert time_average(t, v) == pytest.approx(0.0, abs=1e-3)

    def test_ramp(self):
        t = np.linspace(0, 1, 100)
        assert time_average(t, t) == pytest.approx(0.5, rel=1e-3)

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            time_average([0.0], [1.0])


class TestPowerSpectrum:
    def test_peak_at_signal_frequency(self):
        t, v = make_wave(30.0)
        freqs, magnitude = power_spectrum(t, v)
        peak = freqs[np.argmax(magnitude)]
        assert peak == pytest.approx(30.0, rel=0.02)

    def test_harmonics_of_square_wave(self):
        t = np.linspace(0, 1, 4000)
        square = np.sign(np.sin(2 * np.pi * 10 * t))
        freqs, magnitude = power_spectrum(t, square)
        fundamental = magnitude[np.argmin(np.abs(freqs - 10.0))]
        third = magnitude[np.argmin(np.abs(freqs - 30.0))]
        # odd harmonic at roughly 1/3 amplitude
        assert third == pytest.approx(fundamental / 3.0, rel=0.15)
