"""Tests for the parallel execution engine (``repro.core.parallel``).

Three layers:

* engine mechanics -- chunking, ordered collection, failure/timeout/
  crash handling, serial fallback, telemetry merge at join;
* property-based guarantees -- arbitrary chunk sizes and worker counts
  preserve result order and length, and a raising task never hangs the
  pool;
* the cross-paradigm determinism suite -- serial vs. 2 vs. 4 workers
  produce bit-identical DMM ensemble TTS arrays, quantum shot counts,
  and oscillator distances given the same seed.
"""

import os
import threading
import time
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parallel as parallel_module
from repro.core import shm, telemetry
from repro.core.exceptions import ParallelError
from repro.core.parallel import (
    AUTO,
    DEFAULT_CHUNKS,
    ParallelMap,
    TaskFailure,
    WORKERS_ENV,
    _reset_timeout_warning,
    chunk_list,
    chunk_sizes,
    default_chunk_size,
    parallel_map,
    resolve_workers,
    shutdown_pools,
    wants_fanout,
)


# -- module-level task functions (worker entry points must pickle) ---------

def _square(x):
    return x * x


def _square_instrumented(x):
    telemetry.counter("test.parallel.calls").inc()
    with telemetry.span("test.parallel.work", x=x):
        return x * x


def _raise_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def _exit_on_one(x):
    if x == 1:
        os._exit(9)
    return x


def _sleep_on_zero(x):
    if x == 0:
        time.sleep(30.0)
    return x


def _return_zero(_x):
    return 0


def _sum_array(task):
    return float(task.sum())


def _return_falsy(x):
    # legitimate falsy results of several shapes
    return [0, 0.0, [], "", {}][x % 5]


# -- chunking --------------------------------------------------------------

class TestChunking:
    def test_chunk_sizes_cover_total(self):
        assert chunk_sizes(10, 3) == [3, 3, 3, 1]
        assert chunk_sizes(9, 3) == [3, 3, 3]
        assert chunk_sizes(1, 5) == [1]
        assert chunk_sizes(0, 5) == []

    def test_default_chunk_size_targets_default_chunks(self):
        assert chunk_sizes(64) == [8] * DEFAULT_CHUNKS
        assert default_chunk_size(1) == 1
        assert default_chunk_size(0) == 1

    def test_chunk_list_preserves_order(self):
        items = list(range(7))
        chunks = chunk_list(items, 3)
        assert chunks == [[0, 1, 2], [3, 4, 5], [6]]
        assert [x for chunk in chunks for x in chunk] == items

    def test_chunking_is_independent_of_workers(self):
        # The determinism contract: chunking is a function of
        # (total, chunk_size) only -- nothing about workers enters.
        assert chunk_sizes(20, 6) == chunk_sizes(20, 6)

    def test_validation(self):
        with pytest.raises(ParallelError):
            chunk_sizes(-1)
        with pytest.raises(ParallelError):
            chunk_sizes(4, 0)


class TestResolveWorkers:
    def test_explicit_value(self):
        assert resolve_workers(3) == 3

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers(None) == 4

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(ParallelError):
            resolve_workers(0)
        monkeypatch.setenv(WORKERS_ENV, "not-a-number")
        with pytest.raises(ParallelError):
            resolve_workers(None)


# -- engine mechanics ------------------------------------------------------

class TestParallelMap:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_ordered_results(self, workers):
        results = ParallelMap(workers=workers).map(_square, list(range(10)))
        assert results == [x * x for x in range(10)]

    def test_empty_task_list(self):
        assert ParallelMap(workers=2).map(_square, []) == []

    def test_raising_task_marks_failure_and_continues(self):
        results = ParallelMap(workers=2).map(
            _raise_on_three, [1, 2, 3, 4], on_error="return")
        assert results[0] == 1 and results[1] == 2 and results[3] == 4
        failure = results[2]
        assert isinstance(failure, TaskFailure)
        assert failure.reason == "error"
        assert "three is right out" in failure.message
        # filtering is by type, not truthiness (see the next test)
        survivors = [r for r in results if not isinstance(r, TaskFailure)]
        assert survivors == [1, 2, 4]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_legitimate_falsy_results_survive_filtering(self, workers):
        # Regression: TaskFailure used to be falsy, so the documented
        # ``[r for r in results if r]`` idiom silently dropped real
        # falsy results (0, 0.0, [], ...).  Filtering is by isinstance.
        results = ParallelMap(workers=workers).map(
            _return_zero, [1, 2, 3], on_error="return")
        assert results == [0, 0, 0]
        survivors = [r for r in results if not isinstance(r, TaskFailure)]
        assert survivors == [0, 0, 0]
        shapes = ParallelMap(workers=workers).map(
            _return_falsy, list(range(5)), on_error="return")
        assert shapes == [0, 0.0, [], "", {}]
        assert len([r for r in shapes
                    if not isinstance(r, TaskFailure)]) == 5

    def test_task_failure_is_truthy(self):
        assert bool(TaskFailure(0, "error", "boom"))

    def test_raising_task_raises_by_default(self):
        with pytest.raises(ParallelError, match="three is right out"):
            ParallelMap(workers=2).map(_raise_on_three, [1, 2, 3, 4])

    def test_serial_fallback_matches_parallel(self):
        serial = ParallelMap(workers=1).map(
            _raise_on_three, [1, 2, 3, 4], on_error="return")
        parallel = ParallelMap(workers=2).map(
            _raise_on_three, [1, 2, 3, 4], on_error="return")
        assert serial[:2] == parallel[:2] and serial[3] == parallel[3]
        assert isinstance(serial[2], TaskFailure)
        assert isinstance(parallel[2], TaskFailure)

    def test_dead_worker_marks_chunk_failed_run_continues(self):
        results = ParallelMap(workers=2).map(
            _exit_on_one, [0, 1, 2], on_error="return")
        assert results[0] == 0 and results[2] == 2
        assert isinstance(results[1], TaskFailure)
        assert results[1].reason == "crashed"

    def test_timeout_terminates_slow_task(self):
        start = time.monotonic()
        results = ParallelMap(workers=2, timeout=1.0).map(
            _sleep_on_zero, [0, 1, 2], on_error="return")
        elapsed = time.monotonic() - start
        assert isinstance(results[0], TaskFailure)
        assert results[0].reason == "timeout"
        assert results[1] == 1 and results[2] == 2
        assert elapsed < 15.0  # never waits out the 30s sleep

    def test_bad_arguments_rejected(self):
        with pytest.raises(ParallelError):
            ParallelMap(workers=2, timeout=0)
        with pytest.raises(ParallelError):
            ParallelMap(workers=2).map(_square, [1], on_error="explode")

    def test_unknown_start_method_degrades_to_serial(self):
        engine = ParallelMap(workers=4, start_method="no-such-method")
        assert engine.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_map_convenience(self):
        assert parallel_map(_square, [2, 3], workers=2) == [4, 9]


class TestTimeoutEnforcement:
    """``timeout=`` is enforced through the pool even at ``workers=1``;
    only a platform without a start method still warns instead."""

    def teardown_method(self):
        shutdown_pools()

    def test_workers_one_timeout_routes_through_pool_and_kills(self):
        _reset_timeout_warning()
        start = time.monotonic()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            results = ParallelMap(workers=1, timeout=1.0).map(
                _sleep_on_zero, [0, 1, 2], on_error="return")
        elapsed = time.monotonic() - start
        assert isinstance(results[0], TaskFailure)
        assert results[0].reason == "timeout"
        assert results[1] == 1 and results[2] == 2
        assert elapsed < 15.0  # never waits out the 30s sleep

    def test_workers_one_without_timeout_stays_serial(self):
        shutdown_pools()
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            assert ParallelMap(workers=1).map(_square, [1, 2]) == [1, 4]
        assert registry.counter("parallel.pool.spawns").value == 0

    def test_no_start_method_warns_once(self):
        _reset_timeout_warning()
        engine = ParallelMap(workers=4, timeout=5.0,
                             start_method="no-such-method")
        with pytest.warns(RuntimeWarning, match="not enforceable"):
            assert engine.map(_square, [2, 3]) == [4, 9]
        # once per process: a second unenforceable map stays quiet
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert engine.map(_square, [3]) == [9]

    def test_no_start_method_counted_and_evented(self):
        _reset_timeout_warning()
        registry = telemetry.MetricsRegistry()
        sink = registry.add_sink(telemetry.ListSink())
        engine = ParallelMap(workers=1, timeout=2.5,
                             start_method="no-such-method")
        with telemetry.use_registry(registry):
            with pytest.warns(RuntimeWarning):
                engine.map(_square, [1])
        assert registry.counter("parallel.timeout_unenforced").value == 1
        events = [event for event in sink.events
                  if event.get("name") == "parallel.timeout_unenforced"]
        assert len(events) == 1
        assert events[0]["attrs"]["timeout"] == 2.5

    def test_process_path_does_not_warn(self):
        _reset_timeout_warning()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            results = ParallelMap(workers=2, timeout=20.0).map(
                _square, [1, 2])
        assert results == [1, 4]

    def test_serial_without_timeout_does_not_warn(self):
        _reset_timeout_warning()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ParallelMap(workers=1).map(_square, [2]) == [4]


class TestEngineTelemetry:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_tasks_and_worker_seconds_recorded(self, workers):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            ParallelMap(workers=workers).map(_square_instrumented,
                                             [1, 2, 3, 4])
        snapshot = registry.snapshot()
        assert snapshot["parallel.tasks"]["value"] == 4
        assert snapshot["parallel.worker_seconds"]["count"] == 4
        # worker-side instruments merged into the parent registry
        assert snapshot["test.parallel.calls"]["value"] == 4
        assert snapshot["test.parallel.work.seconds"]["count"] == 4

    def test_failures_counted(self):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            ParallelMap(workers=2).map(_raise_on_three, [1, 2, 3, 4],
                                       on_error="return")
        assert registry.counter("parallel.failures").value == 1
        assert registry.counter("parallel.tasks").value == 4

    def test_worker_events_reemitted_with_worker_tag(self):
        registry = telemetry.MetricsRegistry()
        sink = registry.add_sink(telemetry.ListSink())
        with telemetry.use_registry(registry):
            ParallelMap(workers=2).map(_square_instrumented, [1, 2])
        worker_spans = [event for event in sink.events
                        if event.get("name") == "test.parallel.work"]
        assert len(worker_spans) == 2
        assert sorted(event["worker"] for event in worker_spans) == [0, 1]

    def test_disabled_registry_stays_silent(self):
        telemetry.disable()
        results = ParallelMap(workers=2).map(_square, [1, 2, 3])
        assert results == [1, 4, 9]
        assert telemetry.get_registry().snapshot() == {}


# -- persistent worker-pool lifecycle --------------------------------------

def _pool():
    """The single live pool (tests run one start method at a time)."""
    pools = [pool for pool in parallel_module._POOLS.values()
             if not pool.closed]
    assert len(pools) == 1
    return pools[0]


class TestWorkerPoolLifecycle:
    """Spawn-once/reuse-forever pool semantics, observed via telemetry."""

    def setup_method(self):
        shutdown_pools()

    def teardown_method(self):
        shutdown_pools()

    def test_pool_reused_across_consecutive_maps(self):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            engine = ParallelMap(workers=2)
            assert engine.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
            assert engine.map(_square, [5, 6, 7, 8]) == [25, 36, 49, 64]
        # two workers spawned for the first map, zero for the second
        assert registry.counter("parallel.pool.spawns").value == 2
        assert registry.counter("parallel.pool.reuses").value == 1
        assert registry.counter("parallel.pool.restarts").value == 0

    def test_pool_shared_across_engine_instances(self):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            assert ParallelMap(workers=2).map(_square, [1, 2]) == [1, 4]
            assert ParallelMap(workers=2).map(_square, [3, 4]) == [9, 16]
        assert registry.counter("parallel.pool.spawns").value == 2
        assert registry.counter("parallel.pool.reuses").value == 1

    def test_pool_grows_on_demand_and_never_shrinks(self):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            ParallelMap(workers=2).map(_square, [1, 2, 3])
            ParallelMap(workers=3).map(_square, [1, 2, 3])
            ParallelMap(workers=2).map(_square, [1, 2, 3])
        assert registry.counter("parallel.pool.spawns").value == 3
        assert len(_pool().workers) == 3

    def test_shutdown_stops_workers_and_next_map_respawns(self):
        ParallelMap(workers=2).map(_square, [1, 2])
        pool = _pool()
        processes = [worker.process for worker in pool.workers]
        shutdown_pools()
        assert pool.closed
        assert parallel_module._POOLS == {}
        assert all(not process.is_alive() for process in processes)
        # the next map builds a fresh pool transparently
        assert ParallelMap(workers=2).map(_square, [3, 4]) == [9, 16]
        assert not _pool().closed

    def test_dead_idle_worker_respawned_on_next_map(self):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            assert ParallelMap(workers=2).map(_square, [1, 2]) == [1, 4]
            victim = _pool().workers[0].process
            victim.terminate()
            victim.join(timeout=5.0)
            assert ParallelMap(workers=2).map(_square, [3, 4]) == [9, 16]
        # 2 initial spawns + 1 replacement for the killed idle slot
        assert registry.counter("parallel.pool.spawns").value == 3

    def test_kill_fault_restarts_slot_and_retry_recovers(self, fault_plan):
        fault_plan([(1, 1, "kill")])
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            results = ParallelMap(workers=2).map(
                _square, [1, 2, 3, 4], retry=2)
        # bit-identical to a fault-free run, on a healed pool
        assert results == [1, 4, 9, 16]
        assert registry.counter("parallel.pool.restarts").value >= 1
        assert registry.counter("parallel.retries").value == 1
        assert len(_pool().workers) == 2
        assert all(worker.process.is_alive()
                   for worker in _pool().workers)

    def test_hang_fault_timeout_restarts_slot_and_retry_recovers(
            self, fault_plan):
        fault_plan([(0, 1, "hang")])
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            results = ParallelMap(workers=2, timeout=1.0).map(
                _square, [1, 2, 3], retry=2)
        assert results == [1, 4, 9]
        assert registry.counter("parallel.pool.restarts").value >= 1
        assert all(worker.process.is_alive()
                   for worker in _pool().workers)

    def test_killed_worker_mid_map_leaks_no_segments(self, fault_plan):
        # Payload arrays above the shm threshold ride in shared memory;
        # a kill fault mid-chunk must not leave its segments behind.
        fault_plan([(1, 1, "kill")])
        tasks = [np.full((130, 128), float(i)) for i in range(4)]
        assert tasks[0].nbytes >= shm.SHARE_THRESHOLD_BYTES
        results = ParallelMap(workers=2).map(_sum_array, tasks, retry=2)
        assert results == [float(i) * 130 * 128 for i in range(4)]
        assert shm.active_segment_count() == 0

    def test_timed_out_worker_leaks_no_segments(self, fault_plan):
        fault_plan([(0, 1, "hang")])
        tasks = [np.full((130, 128), float(i)) for i in range(3)]
        results = ParallelMap(workers=2, timeout=1.0).map(
            _sum_array, tasks, retry=2)
        assert results == [float(i) * 130 * 128 for i in range(3)]
        assert shm.active_segment_count() == 0

    def test_concurrent_maps_from_threads_share_pool(self):
        # Two threads mapping at once must take turns on the pool, not
        # interleave dispatches and steal each other's results.
        results = {}

        def run(name, values):
            results[name] = ParallelMap(workers=2).map(_square, values)

        threads = [
            threading.Thread(target=run, args=("a", [1, 2, 3, 4])),
            threading.Thread(target=run, args=("b", [5, 6, 7, 8])),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)
        assert results["a"] == [1, 4, 9, 16]
        assert results["b"] == [25, 36, 49, 64]
        assert shm.active_segment_count() == 0

    def test_shutdown_mid_round_aborts_cleanly(self):
        # shutdown() while a round is running must fail the round's
        # remaining chunks instead of crashing on a closed queue or
        # respawning workers into the closed pool.
        engine = ParallelMap(workers=2)
        assert engine.map(_square, [1, 2]) == [1, 4]
        pool = _pool()

        closer = threading.Thread(
            target=lambda: (time.sleep(0.5), shutdown_pools()))
        closer.start()
        results = engine.map(_sleep_on_zero, [0, 1], on_error="return")
        closer.join(timeout=30.0)
        assert not closer.is_alive()
        assert isinstance(results[0], TaskFailure)
        assert results[0].reason == "crashed"
        assert pool.closed
        assert pool.workers == []
        assert shm.active_segment_count() == 0
        # the next map transparently builds a fresh pool
        assert engine.map(_square, [3, 4]) == [9, 16]


class TestAutoWorkers:
    """``workers="auto"``: machine-sized placement, invariant results."""

    def setup_method(self):
        shutdown_pools()

    def teardown_method(self):
        shutdown_pools()

    def test_resolve_passes_auto_through(self, monkeypatch):
        assert resolve_workers("auto") == AUTO
        assert resolve_workers(" AUTO ") == AUTO
        monkeypatch.setenv(WORKERS_ENV, "auto")
        assert resolve_workers(None) == AUTO

    def test_wants_fanout(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert wants_fanout("auto")
        assert wants_fanout(2)
        assert not wants_fanout(1)
        assert not wants_fanout(None)

    def test_small_workload_chooses_serial(self, monkeypatch):
        # one chunk gains nothing from a pool, even on a big machine
        monkeypatch.setattr(parallel_module, "_cpu_count", lambda: 8)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            assert ParallelMap(workers=AUTO).map(_square, [3]) == [9]
        assert registry.counter("parallel.auto.serial").value == 1
        assert registry.counter("parallel.auto.parallel").value == 0
        assert registry.counter("parallel.pool.spawns").value == 0

    def test_single_core_host_chooses_serial(self, monkeypatch):
        monkeypatch.setattr(parallel_module, "_cpu_count", lambda: 1)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            results = ParallelMap(workers=AUTO).map(_square, [1, 2, 3, 4])
        assert results == [1, 4, 9, 16]
        assert registry.counter("parallel.auto.serial").value == 1
        assert registry.counter("parallel.pool.spawns").value == 0

    def test_multicore_host_fans_out_capped_by_chunks(self, monkeypatch):
        monkeypatch.setattr(parallel_module, "_cpu_count", lambda: 4)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            results = ParallelMap(workers=AUTO).map(_square, [1, 2, 3])
        assert results == [1, 4, 9]
        assert registry.counter("parallel.auto.parallel").value == 1
        # pool sized min(cores, chunks) == 3
        assert registry.counter("parallel.pool.spawns").value == 3

    def test_auto_matches_explicit_worker_counts(self, monkeypatch):
        # placement is the machine's only degree of freedom: the same
        # chunked workload returns the same values under auto and under
        # any explicit count
        expected = [x * x for x in range(8)]
        for cpus in (1, 4):
            monkeypatch.setattr(parallel_module, "_cpu_count",
                                lambda cpus=cpus: cpus)
            assert ParallelMap(workers=AUTO).map(
                _square, list(range(8))) == expected
        assert ParallelMap(workers=2).map(
            _square, list(range(8))) == expected


# -- property-based guarantees ---------------------------------------------

@settings(max_examples=25, deadline=None)
@given(items=st.lists(st.integers(min_value=-1000, max_value=1000),
                      max_size=40),
       chunk_size=st.one_of(st.none(), st.integers(min_value=1,
                                                   max_value=12)))
def test_property_chunk_list_roundtrips(items, chunk_size):
    chunks = chunk_list(items, chunk_size)
    assert [x for chunk in chunks for x in chunk] == items
    if chunk_size is not None:
        assert all(len(chunk) <= chunk_size for chunk in chunks)


@settings(max_examples=10, deadline=None)
@given(items=st.lists(st.integers(min_value=0, max_value=100),
                      min_size=1, max_size=12),
       workers=st.sampled_from([1, 2, 3, 4]))
def test_property_map_preserves_order_and_length(items, workers):
    results = ParallelMap(workers=workers).map(_square, items)
    assert results == [x * x for x in items]


@settings(max_examples=5, deadline=None)
@given(workers=st.sampled_from([1, 2, 4]))
def test_property_raising_task_never_hangs(workers):
    results = ParallelMap(workers=workers).map(
        _raise_on_three, [3, 3, 1], on_error="return")
    assert results[2] == 1
    assert all(isinstance(r, TaskFailure) for r in results[:2])


# -- the cross-paradigm determinism suite ----------------------------------

class TestDeterminismSuite:
    """Serial vs. workers=2 vs. workers=4: bit-identical outputs."""

    def test_dmm_ensemble_tts_identical_across_worker_counts(self):
        from repro.core.sat_instances import planted_ksat
        from repro.memcomputing.ensemble import solve_ensemble

        formula = planted_ksat(20, 80, rng=10)
        runs = [solve_ensemble(formula, batch=8, max_steps=20_000, rng=11,
                               workers=workers, chunk_size=4)
                for workers in (1, 2, 4)]
        for run in runs[1:]:
            assert np.array_equal(runs[0].solve_steps, run.solve_steps)

    def test_dmm_ensemble_default_chunking_identical(self):
        from repro.core.sat_instances import planted_ksat
        from repro.memcomputing.ensemble import solve_ensemble

        formula = planted_ksat(15, 55, rng=1)
        two = solve_ensemble(formula, batch=6, max_steps=20_000, rng=2,
                             workers=2)
        four = solve_ensemble(formula, batch=6, max_steps=20_000, rng=2,
                              workers=4)
        assert np.array_equal(two.solve_steps, four.solve_steps)

    def test_quantum_shot_counts_identical_across_worker_counts(self):
        from repro.quantum.circuit import QuantumCircuit
        from repro.quantum.runtime import QuantumRuntime

        circuit = QuantumCircuit(2).h(0).cnot(0, 1) \
            .measure(0, "a").measure(1, "b")
        runs = [QuantumRuntime().run(circuit, shots=120, rng=5,
                                     workers=workers, chunk_size=30)
                for workers in (1, 2, 4)]
        assert runs[0].counts == runs[1].counts == runs[2].counts
        assert sum(runs[0].counts.values()) == 120

    def test_shor_factors_identical_across_worker_counts(self):
        from repro.quantum.algorithms.shor import shor_factor

        two = shor_factor(15, rng=0, workers=2)
        four = shor_factor(15, rng=0, workers=4)
        assert two.succeeded and four.succeeded
        assert sorted(two.factors) == sorted(four.factors) == [3, 5]

    def test_oscillator_distances_identical_across_worker_counts(self):
        from repro.oscillators.distance import OscillatorDistanceUnit

        unit = OscillatorDistanceUnit()
        pairs = [(a, 255 - a) for a in range(0, 256, 16)]
        serial = unit.measure_pairs(pairs)
        assert serial == unit.measure_pairs(pairs, workers=2, chunk_size=4)
        assert serial == unit.measure_pairs(pairs, workers=4, chunk_size=4)

    def test_oscillator_fast_corners_identical_across_worker_counts(self):
        from repro.oscillators.fast.images import rectangle_image
        from repro.oscillators.fast.oscillator_fast import (
            OscillatorFastDetector,
        )

        image, _truth = rectangle_image(height=24, width=24, top=6,
                                        left=6, bottom=18, right=18)
        detector = OscillatorFastDetector()
        serial = detector.detect(image)
        assert serial == detector.detect(image, workers=2)
        assert serial == detector.detect(image, workers=4)

    def test_portfolio_winner_independent_of_worker_count(self):
        from repro.core.sat_instances import planted_ksat
        from repro.memcomputing.solver import solve_portfolio

        formula = planted_ksat(15, 55, rng=0)
        picks = [solve_portfolio(formula, attempts=4, workers=workers,
                                 rng=3, max_steps=100_000)
                 for workers in (1, 2, 4)]
        assert all(p.satisfied for p in picks)
        steps = {p.best.steps for p in picks}
        assert len(steps) == 1
