"""Unit tests for repro.core.rngs."""

import numpy as np
import pytest

from repro.core.rngs import make_rng, spawn_rngs


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(5),
                                  make_rng(2).random(5))

    def test_generator_passes_through(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            make_rng("not a seed")
        with pytest.raises(TypeError):
            make_rng(1.5)


class TestSpawnRngs:
    def test_count_respected(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_independent_streams(self):
        children = spawn_rngs(0, 3)
        draws = [c.random(8).tolist() for c in children]
        assert draws[0] != draws[1]
        assert draws[1] != draws[2]

    def test_deterministic_given_seed(self):
        a = [c.random(4).tolist() for c in spawn_rngs(7, 3)]
        b = [c.random(4).tolist() for c in spawn_rngs(7, 3)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
