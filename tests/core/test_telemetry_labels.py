"""Tests for labeled metrics (PR 9): the bounded label set, the
``base{k=v}`` encoded-name scheme, streaming quantiles, and -- the
acceptance property -- that labeled snapshots merge *exact-moment
identically* across any worker split, because labels are just names and
names already merge exactly.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import telemetry
from repro.core.exceptions import TelemetryError
from repro.core.parallel import ParallelMap, shutdown_pools
from repro.core.telemetry import (
    LABEL_KEYS,
    OVERFLOW_VALUE,
    MetricsRegistry,
    format_metric,
    histogram_quantile,
    merge_snapshots,
    parse_metric,
)

# -- module-level worker entry points (must pickle) ------------------------

def _labeled_work(task):
    """Worker body: labeled counter + labeled histogram observations."""
    tenant, values = task
    telemetry.counter("test.labels.requests",
                      labels={"tenant": tenant, "kind": "distance"}).inc()
    hist = telemetry.histogram("test.labels.latency",
                               labels={"tenant": tenant,
                                       "kind": "distance"})
    for value in values:
        hist.observe(value)
    return len(values)


class TestEncoding:
    def test_round_trip(self):
        name = format_metric("serve.requests",
                             {"tenant": "acme", "kind": "solve"})
        assert name == "serve.requests{kind=solve,tenant=acme}"
        assert parse_metric(name) == ("serve.requests",
                                      {"kind": "solve", "tenant": "acme"})

    def test_unlabeled_name_parses_to_empty_labels(self):
        assert parse_metric("serve.requests") == ("serve.requests", {})

    def test_keys_sorted_canonically(self):
        a = format_metric("m", {"tenant": "t", "kind": "k"})
        b = format_metric("m", {"kind": "k", "tenant": "t"})
        assert a == b

    def test_unknown_key_rejected(self):
        with pytest.raises(TelemetryError):
            format_metric("m", {"flavor": "grape"})

    def test_values_sanitized(self):
        name = format_metric("m", {"tenant": "we ird/te~nant!"})
        _base, labels = parse_metric(name)
        assert labels["tenant"] == "we_ird_te_nant_"
        assert format_metric("m", {"tenant": ""}) \
            == "m{tenant=%s}" % OVERFLOW_VALUE

    def test_long_values_truncated(self):
        name = format_metric("m", {"tenant": "x" * 500})
        _base, labels = parse_metric(name)
        assert len(labels["tenant"]) == 48


class TestRegistryLabels:
    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"tenant": "t", "kind": "k"})
        b = registry.counter("c", labels={"kind": "k", "tenant": "t"})
        assert a is b

    def test_labeled_and_unlabeled_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.counter("c", labels={"tenant": "t"}).inc(2)
        snapshot = registry.snapshot()
        assert snapshot["c"]["value"] == 5
        assert snapshot["c{tenant=t}"]["value"] == 2

    def test_cap_overflows_deterministically_into_other(self):
        registry = MetricsRegistry(max_label_sets=3)
        for index in range(10):
            registry.counter("c",
                             labels={"tenant": "t%d" % index}).inc()
        snapshot = registry.snapshot()
        labeled = {name for name in snapshot if "{" in name}
        # first 3 arrivals keep their identity; the rest fold to other
        assert labeled == {"c{tenant=t0}", "c{tenant=t1}", "c{tenant=t2}",
                           "c{tenant=%s}" % OVERFLOW_VALUE}
        assert snapshot["c{tenant=%s}" % OVERFLOW_VALUE]["value"] == 7

    def test_cap_is_per_base_name(self):
        registry = MetricsRegistry(max_label_sets=2)
        registry.counter("a", labels={"tenant": "t1"}).inc()
        registry.counter("a", labels={"tenant": "t2"}).inc()
        # 'a' is at its cap; 'b' still has room
        registry.counter("b", labels={"tenant": "t9"}).inc()
        snapshot = registry.snapshot()
        assert "b{tenant=t9}" in snapshot
        registry.counter("a", labels={"tenant": "t3"}).inc()
        assert "a{tenant=%s}" % OVERFLOW_VALUE \
            in registry.snapshot()

    def test_overflow_stable_across_repeats(self):
        registry = MetricsRegistry(max_label_sets=1)
        registry.counter("c", labels={"tenant": "keep"}).inc()
        for _ in range(3):
            registry.counter("c", labels={"tenant": "spill"}).inc()
        assert registry.snapshot()[
            "c{tenant=%s}" % OVERFLOW_VALUE]["value"] == 3

    def test_module_accessors_take_labels(self):
        registry = MetricsRegistry()
        with telemetry.use_registry(registry):
            telemetry.counter("c", labels={"kind": "k"}).inc()
            telemetry.gauge("g", labels={"kind": "k"}).set(2)
            telemetry.histogram("h", labels={"kind": "k"}).observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["c{kind=k}"]["value"] == 1
        assert snapshot["g{kind=k}"]["value"] == 2
        assert snapshot["h{kind=k}"]["count"] == 1

    def test_null_registry_accepts_labels(self):
        telemetry.disable()
        telemetry.counter("c", labels={"kind": "k"}).inc()
        telemetry.histogram("h", labels={"kind": "k"}).observe(1.0)
        assert telemetry.get_registry().snapshot() == {}


class TestQuantiles:
    def test_quantiles_in_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        entry = registry.snapshot()["h"]
        # log-bucket sketch: within ~1% relative accuracy
        assert entry["p50"] == pytest.approx(50.0, rel=0.02)
        assert entry["p95"] == pytest.approx(95.0, rel=0.02)
        assert entry["p99"] == pytest.approx(99.0, rel=0.02)

    def test_quantile_clamped_to_observed_range(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        entry = registry.snapshot()["h"]
        assert entry["min"] <= entry["p50"] <= entry["max"]
        assert histogram_quantile(entry, 0.0) >= entry["min"]
        assert histogram_quantile(entry, 1.0) <= entry["max"]

    def test_empty_histogram_has_no_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        entry = registry.snapshot()["h"]
        assert entry["p50"] is None
        assert histogram_quantile(entry, 0.5) is None

    def test_json_round_trip_stable(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", labels={"kind": "k"})
        for value in (0.5, -2.0, 0.0, 3.25):
            hist.observe(value)
        snapshot = registry.snapshot()
        rebuilt = json.loads(json.dumps(snapshot))
        assert rebuilt == snapshot
        name = "h{kind=k}"
        assert histogram_quantile(rebuilt[name], 0.5) \
            == histogram_quantile(snapshot[name], 0.5)


def _apply(registry, operations):
    for tenant, kind, values in operations:
        labels = {"tenant": tenant, "kind": kind}
        registry.counter("prop.count", labels=labels).inc(len(values))
        hist = registry.histogram("prop.lat", labels=labels)
        for value in values:
            hist.observe(value)


# Observation values are dyadic rationals (k/1024), so float addition
# of any subset is exact in a double: the serial and the split-merged
# registries accumulate total/sum_sq in different orders, and only
# order-independent sums make "bit-exact" a fair property.  (Counts,
# buckets, min and max are order-independent for any float.)
_VALUES = st.integers(min_value=1, max_value=2 ** 20).map(
    lambda n: n / 1024.0)

_OPERATIONS = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "dee", "spill-1", "spill-2"]),
        st.sampled_from(["solve", "distance"]),
        st.lists(_VALUES, max_size=8),
    ),
    max_size=24,
)


class TestMergeExactness:
    @given(operations=_OPERATIONS, chunks=st.integers(1, 5),
           cap=st.sampled_from([2, 4, telemetry.MAX_LABEL_SETS]))
    @settings(max_examples=60, deadline=None)
    def test_any_split_merges_to_the_serial_snapshot(self, operations,
                                                     chunks, cap):
        """The acceptance property: split the op stream across N
        worker-local registries, merge the snapshots, and every moment
        -- count, total, sum_sq, min, max, quantile buckets, and the
        deterministic cap overflow -- equals the serial registry's.
        """
        serial = MetricsRegistry(max_label_sets=cap)
        _apply(serial, operations)
        partials = []
        for start in range(chunks):
            worker = MetricsRegistry(max_label_sets=cap)
            _apply(worker, operations[start::chunks])
            partials.append(worker.snapshot())
        merged = {}
        for partial in partials:
            merged = merge_snapshots(merged, partial)
        serial_snapshot = serial.snapshot()
        # Label identity is decided by arrival order under a cap, and a
        # round-robin split reorders arrivals -- so compare the set of
        # *post-cap* series only when every registry saw the same
        # arrival order (chunks == 1); otherwise compare the algebra on
        # the series both sides materialized.
        if chunks == 1:
            assert set(merged) == set(serial_snapshot)
        for name in set(merged) & set(serial_snapshot):
            left, right = merged[name], serial_snapshot[name]
            if left["kind"] == "counter" and chunks == 1:
                assert left["value"] == right["value"]
            elif left["kind"] == "histogram" and chunks == 1:
                assert left == right

    @given(operations=_OPERATIONS, chunks=st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_uncapped_split_is_bit_exact(self, operations, chunks):
        """Below the cap the split is invisible: merged == serial,
        including every quantile bucket and the derived p50/p95/p99.
        """
        serial = MetricsRegistry()
        _apply(serial, operations)
        merged = {}
        for start in range(chunks):
            worker = MetricsRegistry()
            _apply(worker, operations[start::chunks])
            merged = merge_snapshots(merged, worker.snapshot())
        assert merged == serial.snapshot()


class TestWorkerIntegration:
    """The same labeled workload through real ParallelMap pools."""

    # dyadic values: totals are exact under any summation order, so
    # the pooled merge can be compared bit-for-bit against serial
    TASKS = [("acme", [0.25, 0.5, 0.75]),
             ("bob", [0.5]),
             ("acme", [1.0, 1.25]),
             ("carol", [1.0, 2.0, 4.0])]

    def _run(self, workers):
        shutdown_pools()
        registry = MetricsRegistry()
        with telemetry.use_registry(registry):
            results = ParallelMap(workers=workers).map(_labeled_work,
                                                       self.TASKS)
        assert results == [3, 1, 2, 3]
        snapshot = registry.snapshot()
        # keep only this test's series: the pool adds its own
        # parallel.* bookkeeping that varies with the worker count
        return {name: entry for name, entry in snapshot.items()
                if name.startswith("test.labels.")}

    @pytest.mark.parametrize("workers", [2, "auto"])
    def test_pool_merge_matches_serial(self, workers):
        serial = self._run(1)
        pooled = self._run(workers)
        assert pooled == serial
        name = "test.labels.latency{kind=distance,tenant=acme}"
        assert serial[name]["count"] == 5
        assert serial[name]["p50"] is not None
        assert math.isclose(serial[name]["total"], 3.75)
