"""Unit tests for repro.core.constants."""

import math

import pytest

from repro.core import constants


class TestPrefixes:
    def test_prefixes_are_powers_of_ten(self):
        assert constants.MEGA == 1e6
        assert constants.MILLI == 1e-3
        assert constants.PICO == 1e-12

    def test_prefix_products(self):
        assert constants.MILLI * constants.KILO == pytest.approx(1.0)
        assert constants.NANO * constants.GIGA == pytest.approx(1.0)


class TestPhysicalConstants:
    def test_thermal_voltage_at_room_temperature(self):
        # kT/q at 300 K is the canonical ~25.85 mV
        assert constants.THERMAL_VOLTAGE_300K_V == pytest.approx(0.02585,
                                                                 rel=1e-3)

    def test_reduced_planck(self):
        assert constants.REDUCED_PLANCK_J_S == pytest.approx(
            constants.PLANCK_J_S / (2 * math.pi))

    def test_superconducting_temperature_is_millikelvin(self):
        assert 0.0 < constants.SUPERCONDUCTING_QUBIT_TEMP_K < 0.1


class TestDb:
    def test_db_of_ten_is_ten(self):
        assert constants.db(10.0) == pytest.approx(10.0)

    def test_db_roundtrip(self):
        for ratio in (0.5, 1.0, 3.2, 1000.0):
            assert constants.from_db(constants.db(ratio)) == pytest.approx(
                ratio)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            constants.db(0.0)
        with pytest.raises(ValueError):
            constants.db(-1.0)


class TestConversions:
    def test_celsius_to_kelvin(self):
        assert constants.celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert constants.celsius_to_kelvin(26.85) == pytest.approx(300.0)

    def test_celsius_below_absolute_zero_rejected(self):
        with pytest.raises(ValueError):
            constants.celsius_to_kelvin(-300.0)

    def test_period_from_frequency(self):
        assert constants.period_from_frequency(1e6) == pytest.approx(1e-6)

    def test_period_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            constants.period_from_frequency(0.0)
