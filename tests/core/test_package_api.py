"""Public-API sanity: every exported name exists and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.quantum",
    "repro.quantum.algorithms",
    "repro.oscillators",
    "repro.oscillators.fast",
    "repro.memcomputing",
    "repro.memcomputing.baselines",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_imports(package_name):
    module = importlib.import_module(package_name)
    assert module is not None


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    module = importlib.import_module(package_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), \
            "%s.__all__ lists missing name %r" % (package_name, name)


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_exception_hierarchy_rooted():
    from repro.core import exceptions

    roots = 0
    for name in dir(exceptions):
        obj = getattr(exceptions, name)
        if isinstance(obj, type) and issubclass(obj, Exception) \
                and obj.__module__ == exceptions.__name__:
            if obj is exceptions.ReproError:
                roots += 1
            else:
                assert issubclass(obj, exceptions.ReproError), name
    assert roots == 1
