"""Tests for the Chrome trace-event exporter (repro.core.tracing)."""

import json

import pytest

from repro.core import telemetry
from repro.core.profiling import ProfileSink
from repro.core.tracing import (
    CHROME_MAIN_TID,
    CHROME_PID,
    ChromeTraceSink,
    chrome_trace_events,
    point_event,
    read_chrome_trace,
    write_chrome_trace,
)


def record_nested_spans():
    """Run outer/inner spans under a live registry; return raw events."""
    registry = telemetry.MetricsRegistry()
    sink = registry.add_sink(ProfileSink())
    with telemetry.use_registry(registry):
        with telemetry.span("outer", kind="test"):
            with telemetry.span("inner"):
                pass
    return sink.events


class TestSchema:
    def test_spans_become_complete_events(self):
        converted = chrome_trace_events(record_nested_spans())
        spans = [e for e in converted if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"outer", "inner"}
        for event in spans:
            assert event["pid"] == CHROME_PID
            assert event["tid"] == CHROME_MAIN_TID
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0

    def test_all_phases_are_known(self):
        events = record_nested_spans() + [point_event("marker")]
        converted = chrome_trace_events(events)
        assert {e["ph"] for e in converted} <= {"X", "i", "M"}

    def test_timestamps_monotonic(self):
        converted = [e for e in chrome_trace_events(record_nested_spans())
                     if e["ph"] != "M"]
        timestamps = [e["ts"] for e in converted]
        assert timestamps == sorted(timestamps)

    def test_point_events_are_instants(self):
        converted = chrome_trace_events([point_event("tick")])
        instants = [e for e in converted if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"
        assert instants[0]["name"] == "tick"

    def test_thread_metadata_precedes_events(self):
        converted = chrome_trace_events(record_nested_spans())
        assert converted[0]["ph"] == "M"
        assert converted[0]["name"] == "thread_name"
        assert converted[0]["args"]["name"] == "main"

    def test_error_status_lands_in_args(self):
        registry = telemetry.MetricsRegistry()
        sink = registry.add_sink(ProfileSink())
        with telemetry.use_registry(registry):
            with pytest.raises(RuntimeError):
                with telemetry.span("bad"):
                    raise RuntimeError("x")
        converted = chrome_trace_events(sink.events)
        bad = [e for e in converted if e.get("name") == "bad"][0]
        assert bad["args"]["status"] == "error"

    def test_events_without_timestamp_skipped(self):
        assert chrome_trace_events([{"type": "span", "name": "x"}]) == []


class TestNestedRoundTrip:
    def test_inner_span_nested_inside_outer(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(record_nested_spans(), path)
        assert count == 2
        loaded = read_chrome_trace(path)
        spans = {e["name"]: e for e in loaded if e["ph"] == "X"}
        outer, inner = spans["outer"], spans["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] \
            <= outer["ts"] + outer["dur"] + 1.0  # 1 us slack
        assert outer["args"]["kind"] == "test"

    def test_file_is_perfetto_loadable_object(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(record_nested_spans(), path)
        with open(path) as handle:
            document = json.load(handle)
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"] == "ms"

    def test_read_accepts_bare_array_form(self, tmp_path):
        path = str(tmp_path / "bare.json")
        with open(path, "w") as handle:
            json.dump([{"ph": "X", "name": "a", "ts": 0, "dur": 1,
                        "pid": 1, "tid": 1}], handle)
        assert read_chrome_trace(path)[0]["name"] == "a"


class TestWorkerMerge:
    def worker_events(self):
        return [
            {"type": "span", "name": "chunk", "ts": 1.0,
             "duration_s": 0.5, "depth": 0, "status": "ok", "worker": 0},
            {"type": "span", "name": "chunk", "ts": 1.1,
             "duration_s": 0.4, "depth": 0, "status": "ok", "worker": 1},
            {"type": "span", "name": "map", "ts": 0.9,
             "duration_s": 1.0, "depth": 0, "status": "ok"},
        ]

    def test_workers_get_distinct_tids(self):
        converted = chrome_trace_events(self.worker_events())
        spans = [e for e in converted if e["ph"] == "X"]
        tids = {e["name"]: sorted({s["tid"] for s in spans
                                   if s["name"] == e["name"]})
                for e in spans}
        assert tids["map"] == [CHROME_MAIN_TID]
        assert tids["chunk"] == [CHROME_MAIN_TID + 1, CHROME_MAIN_TID + 2]

    def test_worker_lanes_named_in_metadata(self):
        converted = chrome_trace_events(self.worker_events())
        names = {e["args"]["name"] for e in converted if e["ph"] == "M"}
        assert names == {"main", "worker-0", "worker-1"}

    def test_parallel_run_spans_merge_from_workers(self, tmp_path):
        # end to end: a real chunked parallel map re-emits worker spans
        # tagged with their chunk; the trace must show >1 thread lane.
        from repro.core.parallel import ParallelMap

        registry = telemetry.MetricsRegistry()
        sink = registry.add_sink(ProfileSink())
        with telemetry.use_registry(registry):
            ParallelMap(workers=2).map(_traced_square, [1, 2, 3, 4])
        path = str(tmp_path / "parallel.json")
        write_chrome_trace(sink.events, path)
        spans = [e for e in read_chrome_trace(path) if e["ph"] == "X"]
        assert {e["tid"] for e in spans} > {CHROME_MAIN_TID}
        assert "worker.square" in {e["name"] for e in spans}


def _traced_square(value):
    with telemetry.span("worker.square"):
        return value * value


class TestChromeTraceSink:
    def test_sink_buffers_and_writes_on_close(self, tmp_path):
        path = str(tmp_path / "sink.json")
        registry = telemetry.MetricsRegistry()
        sink = registry.add_sink(ChromeTraceSink(path))
        with telemetry.use_registry(registry):
            with telemetry.span("work"):
                pass
        sink.close()
        assert sink.events_written == 1
        spans = [e for e in read_chrome_trace(path) if e["ph"] == "X"]
        assert spans[0]["name"] == "work"

    def test_double_close_is_noop(self, tmp_path):
        path = str(tmp_path / "sink.json")
        sink = ChromeTraceSink(path)
        sink.close()
        first = sink.events_written
        sink.close()
        assert sink.events_written == first
