"""Recovery suite for ``repro.core.resilience`` + the retry engine.

Four layers:

* policy/plan mechanics -- RetryPolicy classification and deterministic
  backoff, FaultPlan parsing (programmatic, env var, pytest fixture),
  NaN corruption;
* engine recovery -- injected raise/nan/kill/hang faults are retried to
  success (bit-identical with a fault-free run) or give up cleanly;
* checkpoint/resume -- round trip, mismatch refusal, rolling restart,
  resumed chunks are skipped (never re-executed);
* acceptance -- ``solve_ensemble`` survives a kill+hang+nan fault plan
  bit-identically, and a killed-then-resumed checkpointed run equals
  the uninterrupted one.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import telemetry
from repro.core.exceptions import (
    InjectedFault,
    ParallelError,
    ResilienceError,
)
from repro.core.parallel import ParallelMap, TaskFailure
from repro.core.resilience import (
    FAULTS_ENV,
    Checkpointer,
    FaultPlan,
    RetryPolicy,
    active_fault_plan,
    coordinate_rng,
    nan_corrupt,
    resolve_retry,
    rng_fingerprint,
    use_faults,
)
from repro.core.sat_instances import planted_ksat
from repro.memcomputing.ensemble import solve_ensemble


# -- module-level task functions (worker entry points must pickle) ---------

def _square(x):
    return x * x


def _draw_block(payload):
    """Chunk payload carrying its own RNG stream, like real call sites."""
    index, rng = payload
    return rng.normal(size=4) + index


def _all_finite(value):
    return bool(np.isfinite(np.asarray(value)).all())


def _rng_tasks(count=4, seed=1000):
    return [(index, np.random.default_rng(seed + index))
            for index in range(count)]


# -- RetryPolicy -----------------------------------------------------------

class TestRetryPolicy:
    def test_defaults_retry_every_reason(self):
        policy = RetryPolicy()
        for reason in ("error", "timeout", "crashed", "invalid"):
            assert policy.retries(reason)

    def test_retry_on_subset(self):
        policy = RetryPolicy(retry_on=("timeout", "crashed"))
        assert policy.retries("timeout")
        assert not policy.retries("error")

    def test_unknown_reason_rejected(self):
        with pytest.raises(ResilienceError, match="unknown retry_on"):
            RetryPolicy(retry_on=("error", "meltdown"))

    def test_delay_is_deterministic_per_coordinate(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5, seed=3)
        assert policy.delay(2, 1) == policy.delay(2, 1)
        # different coordinates draw different jitter
        assert policy.delay(2, 1) != policy.delay(3, 1)

    def test_delay_grows_then_clamps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=4.0,
                             backoff_max=0.5, jitter=0.0)
        assert policy.delay(0, 1) == pytest.approx(0.1)
        assert policy.delay(0, 2) == pytest.approx(0.4)
        assert policy.delay(0, 3) == 0.5  # clamped

    def test_zero_base_disables_sleeping(self):
        assert RetryPolicy(backoff_base=0.0).delay(0, 5) == 0.0

    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ResilienceError):
            RetryPolicy(backoff_factor=0.5)

    def test_coordinate_rng_pure_function_of_coordinates(self):
        a = coordinate_rng(7, 2, 1).random()
        b = coordinate_rng(7, 2, 1).random()
        c = coordinate_rng(7, 2, 2).random()
        assert a == b
        assert a != c


class TestResolveRetry:
    def test_none_and_one_mean_no_retries(self):
        assert resolve_retry(None) is None
        assert resolve_retry(1) is None

    def test_int_becomes_max_attempts(self):
        policy = resolve_retry(4)
        assert isinstance(policy, RetryPolicy)
        assert policy.max_attempts == 4

    def test_policy_passes_through(self):
        policy = RetryPolicy(max_attempts=2)
        assert resolve_retry(policy) is policy

    def test_bad_values_rejected(self):
        with pytest.raises(ResilienceError):
            resolve_retry(0)
        with pytest.raises(ResilienceError):
            resolve_retry(True)
        with pytest.raises(ResilienceError):
            resolve_retry("twice")


# -- FaultPlan -------------------------------------------------------------

class TestFaultPlan:
    def test_spec_round_trips(self):
        plan = FaultPlan.from_spec("0:1:raise, 2:1:kill ,1:2:nan")
        assert plan.spec() == "0:1:raise,1:2:nan,2:1:kill"
        assert len(plan) == 3
        assert plan.action_for(2, 1) == "kill"
        assert plan.action_for(2, 2) is None
        assert FaultPlan.from_spec(plan.spec()).faults() == plan.faults()

    def test_validation(self):
        with pytest.raises(ResilienceError, match="unknown fault action"):
            FaultPlan([(0, 1, "explode")])
        with pytest.raises(ResilienceError, match="coordinates"):
            FaultPlan([(-1, 1, "raise")])
        with pytest.raises(ResilienceError, match="coordinates"):
            FaultPlan([(0, 0, "raise")])
        with pytest.raises(ResilienceError, match="duplicate"):
            FaultPlan([(0, 1, "raise"), (0, 1, "nan")])
        with pytest.raises(ResilienceError, match="bad fault spec"):
            FaultPlan.from_spec("0:1")
        with pytest.raises(ResilienceError, match="integers"):
            FaultPlan.from_spec("a:b:raise")

    def test_env_var_enables_plan(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "1:1:raise")
        plan = active_fault_plan()
        assert plan is not None
        assert plan.action_for(1, 1) == "raise"

    def test_programmatic_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "1:1:raise")
        with use_faults("0:2:nan") as plan:
            assert active_fault_plan() is plan
        assert active_fault_plan().action_for(1, 1) == "raise"

    def test_no_plan_by_default(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert active_fault_plan() is None

    def test_fixture_installs_and_clears(self, fault_plan):
        installed = fault_plan([(0, 1, "raise")])
        assert active_fault_plan() is installed
        # teardown restores the previous (empty) plan -- checked
        # implicitly by test_no_plan_by_default running independently


class TestNanCorrupt:
    def test_array_keeps_shape(self):
        poisoned = nan_corrupt(np.ones((2, 3)))
        assert poisoned.shape == (2, 3)
        assert np.isnan(poisoned).all()

    def test_containers_recurse(self):
        poisoned = nan_corrupt({"a": [1.0, 2.0], "b": (3.0,)})
        assert np.isnan(poisoned["a"]).all()
        assert np.isnan(poisoned["b"][0])

    def test_scalars_become_nan(self):
        assert np.isnan(nan_corrupt(5))


# -- engine recovery under injected faults ---------------------------------

_FAST = RetryPolicy(max_attempts=3, backoff_base=0.0)


class TestEngineRecovery:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_raise_fault_retried_bit_identically(self, workers):
        baseline = ParallelMap(workers=workers).map(
            _draw_block, _rng_tasks())
        with use_faults("0:1:raise,2:1:raise,2:2:raise"):
            registry = telemetry.MetricsRegistry()
            with telemetry.use_registry(registry):
                recovered = ParallelMap(workers=workers).map(
                    _draw_block, _rng_tasks(), retry=_FAST)
        for expected, actual in zip(baseline, recovered):
            assert np.array_equal(expected, actual)
        assert registry.counter("parallel.retries").value == 3
        assert registry.counter("parallel.giveups").value == 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_exhausted_budget_gives_up(self, workers):
        with use_faults("1:1:raise,1:2:raise,1:3:raise"):
            registry = telemetry.MetricsRegistry()
            with telemetry.use_registry(registry):
                results = ParallelMap(workers=workers).map(
                    _square, [1, 2, 3], retry=_FAST, on_error="return")
        assert results[0] == 1 and results[2] == 9
        assert isinstance(results[1], TaskFailure)
        assert results[1].reason == "error"
        assert registry.counter("parallel.retries").value == 2
        assert registry.counter("parallel.giveups").value == 1

    def test_exhausted_budget_raises_by_default(self):
        with use_faults("0:1:raise,0:2:raise,0:3:raise"):
            with pytest.raises(ParallelError, match="task 0 error"):
                ParallelMap(workers=1).map(_square, [1, 2], retry=_FAST)

    def test_non_retryable_reason_fails_immediately(self):
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0,
                             retry_on=("timeout",))
        with use_faults("0:1:raise"):
            results = ParallelMap(workers=1).map(
                _square, [1, 2], retry=policy, on_error="return")
        assert isinstance(results[0], TaskFailure)
        assert "injected" in results[0].message

    @pytest.mark.parametrize("workers", [1, 2])
    def test_nan_fault_caught_by_validate_and_retried(self, workers):
        baseline = ParallelMap(workers=workers).map(
            _draw_block, _rng_tasks())
        with use_faults("1:1:nan"):
            recovered = ParallelMap(workers=workers).map(
                _draw_block, _rng_tasks(), retry=_FAST,
                validate=_all_finite)
        for expected, actual in zip(baseline, recovered):
            assert np.array_equal(expected, actual)

    def test_nan_fault_without_retry_is_invalid_failure(self):
        with use_faults("1:1:nan"):
            results = ParallelMap(workers=1).map(
                _draw_block, _rng_tasks(), validate=_all_finite,
                on_error="return")
        assert isinstance(results[1], TaskFailure)
        assert results[1].reason == "invalid"

    def test_serial_kill_degrades_to_raise_and_recovers(self):
        # no worker process to kill inline: the fault must surface as a
        # retryable failure, never os._exit the host
        with use_faults("0:1:kill,1:1:hang"):
            results = ParallelMap(workers=1).map(
                _square, [2, 3], retry=_FAST)
        assert results == [4, 9]

    def test_serial_kill_without_retry_reports_injected_fault(self):
        with use_faults("0:1:kill"):
            results = ParallelMap(workers=1).map(
                _square, [2], on_error="return")
        assert isinstance(results[0], TaskFailure)
        assert InjectedFault.__name__ in results[0].message

    def test_process_kill_detected_as_crash_and_retried(self):
        with use_faults("1:1:kill"):
            registry = telemetry.MetricsRegistry()
            with telemetry.use_registry(registry):
                results = ParallelMap(workers=2).map(
                    _square, [1, 2, 3], retry=_FAST)
        assert results == [1, 4, 9]
        assert registry.counter("parallel.retries").value == 1

    def test_process_hang_times_out_and_is_retried(self):
        with use_faults(FaultPlan([(0, 1, "hang")], hang_seconds=60.0)):
            results = ParallelMap(workers=2, timeout=1.5).map(
                _square, [1, 2], retry=_FAST)
        assert results == [1, 4]


@settings(max_examples=15, deadline=None)
@given(faults=st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=1, max_value=2),
              st.sampled_from(["raise", "nan"])),
    unique_by=lambda fault: (fault[0], fault[1]), max_size=6))
def test_property_retryable_faults_within_budget_are_invisible(faults):
    """Any retryable fault plan within the retry budget leaves the map's
    results bit-identical to a fault-free serial run."""
    baseline = ParallelMap(workers=1).map(_draw_block, _rng_tasks())
    with use_faults(FaultPlan(faults)):
        recovered = ParallelMap(workers=1).map(
            _draw_block, _rng_tasks(), retry=_FAST, validate=_all_finite)
    for expected, actual in zip(baseline, recovered):
        assert np.array_equal(expected, actual)


# -- fingerprints ----------------------------------------------------------

class TestRngFingerprint:
    def test_none_and_seed(self):
        assert rng_fingerprint(None) is None
        assert rng_fingerprint(7) == ["seed", 7]

    def test_generator_captures_spawn_state(self):
        fresh = rng_fingerprint(np.random.default_rng(5))
        assert fresh == rng_fingerprint(np.random.default_rng(5))
        spawned = np.random.default_rng(5)
        spawned.spawn(1)
        assert rng_fingerprint(spawned) != fresh

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            rng_fingerprint("seed")


# -- checkpoint / resume ---------------------------------------------------

class TestCheckpointer:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        writer = Checkpointer(path, "unit-test", meta={"n": 3})
        writer.record(0, [1.0, 2.0])
        writer.record(2, [3.0])
        writer.flush()
        reader = Checkpointer(path, "unit-test", meta={"n": 3})
        assert reader.completed() == {0: [1.0, 2.0], 2: [3.0]}
        assert len(reader) == 2

    def test_encode_decode_hooks(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        writer = Checkpointer(path, "unit-test",
                              encode=lambda a: [float(x) for x in a],
                              decode=np.asarray)
        writer.record(1, np.array([4.0, 5.0]))
        writer.flush()
        reader = Checkpointer(path, "unit-test",
                              encode=lambda a: [float(x) for x in a],
                              decode=np.asarray)
        assert np.array_equal(reader.completed()[1], [4.0, 5.0])

    def test_every_batches_flushes(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        writer = Checkpointer(path, "unit-test", every=3)
        writer.record(0, 1)
        writer.record(1, 2)
        assert not os.path.exists(path)
        writer.record(2, 3)
        assert os.path.exists(path)

    def test_meta_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        writer = Checkpointer(path, "unit-test", meta={"seed": 1})
        writer.record(0, 1)
        writer.flush()
        with pytest.raises(ResilienceError, match="refusing to resume"):
            Checkpointer(path, "unit-test", meta={"seed": 2})
        with pytest.raises(ResilienceError, match="refusing to resume"):
            Checkpointer(path, "other-kind", meta={"seed": 1})

    def test_mismatch_error_names_path_and_both_fingerprints(
            self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        writer = Checkpointer(path, "unit-test", meta={"seed": 1})
        writer.record(0, 1)
        writer.flush()
        with pytest.raises(ResilienceError) as excinfo:
            Checkpointer(path, "unit-test", meta={"seed": 2})
        message = str(excinfo.value)
        assert path in message
        # the message carries the full fingerprint of both sides, so a
        # user can see exactly which field diverged
        assert "'seed': 1" in message and "'seed': 2" in message
        assert "'kind': 'unit-test'" in message
        with pytest.raises(ResilienceError) as excinfo:
            Checkpointer(path, "other-kind", meta={"seed": 1})
        message = str(excinfo.value)
        assert path in message
        assert "'unit-test'" in message and "'other-kind'" in message

    def test_restart_on_mismatch_starts_empty(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        writer = Checkpointer(path, "unit-test", meta={"base": 2})
        writer.record(0, 1)
        writer.flush()
        rolling = Checkpointer(path, "unit-test", meta={"base": 7},
                               restart_on_mismatch=True)
        assert rolling.completed() == {}

    def test_missing_resume_source_rejected(self, tmp_path):
        with pytest.raises(ResilienceError, match="does not exist"):
            Checkpointer(str(tmp_path / "out.json"), "unit-test",
                         resume_from=str(tmp_path / "nope.json"))

    def test_corrupt_and_foreign_files_rejected(self, tmp_path):
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(ResilienceError, match="cannot read"):
            Checkpointer(str(garbled), "unit-test")
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ResilienceError, match="format"):
            Checkpointer(str(foreign), "unit-test")

    def test_validation(self, tmp_path):
        with pytest.raises(ResilienceError):
            Checkpointer(str(tmp_path / "c.json"), "unit-test", every=0)

    def test_telemetry_counters(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            writer = Checkpointer(path, "unit-test")
            writer.record(0, 1)
            writer.record(1, 2)
        assert registry.counter("resilience.checkpoints").value == 2
        assert registry.counter("resilience.checkpoint_bytes").value > 0
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            Checkpointer(path, "unit-test")
        assert registry.counter("resilience.chunks_restored").value == 2

    def test_map_skips_checkpointed_chunks(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        seeded = Checkpointer(path, "unit-test")
        seeded.record(1, "canned")  # deliberately not _square(2)
        results = ParallelMap(workers=1).map(
            _square, [1, 2, 3], checkpoint=seeded)
        # the recorded value fills the slot without re-execution
        assert results == [1, "canned", 9]


# -- acceptance: solve_ensemble under faults and across a kill --------------

class TestEnsembleResilience:
    FORMULA_ARGS = dict(num_variables=15, num_clauses=55, rng=1)
    RUN_ARGS = dict(batch=6, max_steps=15_000, chunk_size=2, rng=2)

    def test_kill_hang_nan_plan_is_bit_identical_to_fault_free(self):
        """The issue's acceptance scenario: one worker killed, one hung,
        one NaN-corrupted -- the ensemble still completes bit-identical
        to a fault-free serial run."""
        formula = planted_ksat(**self.FORMULA_ARGS)
        clean = solve_ensemble(formula, workers=1, **self.RUN_ARGS)
        plan = FaultPlan([(0, 1, "kill"), (1, 1, "hang"), (2, 1, "nan")],
                         hang_seconds=600.0)
        with use_faults(plan):
            recovered = solve_ensemble(formula, workers=2, timeout=10.0,
                                       retry=_FAST, **self.RUN_ARGS)
        assert np.array_equal(clean.solve_steps, recovered.solve_steps)
        assert recovered.max_steps == clean.max_steps

    def test_killed_then_resumed_equals_uninterrupted(self, tmp_path):
        formula = planted_ksat(**self.FORMULA_ARGS)
        uninterrupted = solve_ensemble(formula, workers=1, **self.RUN_ARGS)
        path = str(tmp_path / "ensemble.json")
        # first run: chunk 2 fails on every attempt -> the run dies with
        # a partial checkpoint on disk
        with use_faults("2:1:raise,2:2:raise,2:3:raise"):
            with pytest.raises(ParallelError):
                solve_ensemble(formula, workers=1, retry=_FAST,
                               checkpoint=path, **self.RUN_ARGS)
        document = json.load(open(path))
        assert sorted(document["chunks"]) == ["0", "1"]
        # second run: resume fills chunks 0-1 from disk, computes only 2
        resumed = solve_ensemble(formula, workers=1, checkpoint=path,
                                 **self.RUN_ARGS)
        assert np.array_equal(uninterrupted.solve_steps,
                              resumed.solve_steps)

    def test_resume_refuses_mismatched_workload(self, tmp_path):
        formula = planted_ksat(**self.FORMULA_ARGS)
        path = str(tmp_path / "ensemble.json")
        solve_ensemble(formula, workers=1, checkpoint=path, **self.RUN_ARGS)
        wrong_seed = dict(self.RUN_ARGS, rng=3)
        with pytest.raises(ResilienceError, match="refusing to resume"):
            solve_ensemble(formula, workers=1, resume_from=path,
                           **wrong_seed)
