"""Unit and property tests for repro.core.sat_instances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sat_instances import (
    frustrated_loop_ising,
    ising_energy,
    planted_ksat,
    planted_maxsat,
    random_ksat,
)


class TestRandomKsat:
    def test_shape(self):
        formula = random_ksat(20, 50, k=3, rng=0)
        assert formula.num_variables == 20
        assert formula.num_clauses == 50
        assert all(len(c) == 3 for c in formula.clauses)

    def test_no_tautologies(self):
        formula = random_ksat(10, 100, rng=1)
        assert not any(c.is_tautology for c in formula.clauses)

    def test_deterministic_with_seed(self):
        a = random_ksat(10, 20, rng=7)
        b = random_ksat(10, 20, rng=7)
        assert [c.literals for c in a.clauses] == \
            [c.literals for c in b.clauses]

    def test_too_few_variables_rejected(self):
        with pytest.raises(ValueError):
            random_ksat(2, 5, k=3)


class TestPlantedKsat:
    def test_plant_satisfies(self):
        formula, plant = planted_ksat(30, 130, rng=3,
                                      return_assignment=True)
        assert formula.is_satisfied_by(plant)

    def test_without_assignment_return(self):
        formula = planted_ksat(10, 30, rng=2)
        assert formula.num_clauses == 30

    def test_k2_supported(self):
        formula, plant = planted_ksat(10, 20, k=2, rng=4,
                                      return_assignment=True)
        assert all(len(c) == 2 for c in formula.clauses)
        assert formula.is_satisfied_by(plant)


class TestPlantedMaxsat:
    def test_hard_core_satisfied_by_plant(self):
        formula, plant = planted_maxsat(20, 60, 30, rng=5)
        assert all(c.is_satisfied_by(plant) for c in formula.hard_clauses)

    def test_counts(self):
        formula, _plant = planted_maxsat(20, 60, 30, rng=5)
        assert len(formula.hard_clauses) == 60
        assert len(formula.soft_clauses) == 30

    def test_weights_in_range(self):
        formula, _plant = planted_maxsat(20, 10, 40, rng=6,
                                         weight_range=(2.0, 4.0))
        for clause in formula.soft_clauses:
            assert 2.0 <= clause.weight <= 4.0


class TestFrustratedLoops:
    def test_bound_achieved_by_uniform_state(self):
        # Non-overlapping-ish loops: the all-up state satisfies every
        # ferromagnetic bond and violates exactly one bond per loop.
        couplings, bound = frustrated_loop_ising(50, 6, rng=7)
        energy = ising_energy(couplings, np.ones(50))
        assert energy == pytest.approx(bound)

    def test_bound_is_lower_bound_for_random_states(self):
        couplings, bound = frustrated_loop_ising(30, 5, rng=8)
        rng = np.random.default_rng(0)
        for _ in range(50):
            spins = rng.choice([-1, 1], size=30)
            assert ising_energy(couplings, spins) >= bound - 1e-9

    def test_couplings_symmetric_keys(self):
        couplings, _bound = frustrated_loop_ising(20, 3, rng=9)
        for (i, j) in couplings:
            assert i < j

    def test_loop_length_validation(self):
        with pytest.raises(ValueError):
            frustrated_loop_ising(10, 2, loop_length=2)
        with pytest.raises(ValueError):
            frustrated_loop_ising(3, 2, loop_length=6)


class TestIsingEnergy:
    def test_simple_pair(self):
        couplings = {(0, 1): 1.0}
        assert ising_energy(couplings, [1, 1]) == 1.0
        assert ising_energy(couplings, [1, -1]) == -1.0

    def test_fields(self):
        assert ising_energy({}, [1, -1], fields=[2.0, 3.0]) == -1.0

    def test_flip_symmetry_without_fields(self):
        couplings = {(0, 1): 1.5, (1, 2): -0.5}
        spins = np.array([1, -1, 1])
        assert ising_energy(couplings, spins) == \
            ising_energy(couplings, -spins)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=5, max_value=30),
       st.integers(min_value=1, max_value=60),
       st.integers(min_value=0, max_value=10_000))
def test_property_planted_always_satisfiable(num_vars, num_clauses, seed):
    """Every planted instance is satisfied by its plant."""
    formula, plant = planted_ksat(max(num_vars, 3), num_clauses, rng=seed,
                                  return_assignment=True)
    assert formula.is_satisfied_by(plant)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_frustrated_loop_bound(seed):
    """The planted uniform state always achieves the energy bound."""
    couplings, bound = frustrated_loop_ising(24, 4, loop_length=5, rng=seed)
    assert ising_energy(couplings, np.ones(24)) <= bound + 1e-9
