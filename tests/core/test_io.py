"""Tests for file I/O helpers (DIMACS/WCNF/QASM round trips on disk)."""

import pytest

from repro.core.cnf import Clause, CnfFormula
from repro.core.exceptions import DimacsParseError
from repro.core.io import (
    ensure_directory,
    load_dimacs,
    load_qasm,
    load_wcnf,
    save_dimacs,
    save_qasm,
    save_wcnf,
)
from repro.core.sat_instances import planted_ksat


class TestDimacsFiles:
    def test_roundtrip(self, tmp_path):
        formula = planted_ksat(12, 40, rng=0)
        path = save_dimacs(formula, str(tmp_path / "instance.cnf"))
        loaded = load_dimacs(path)
        assert loaded.num_variables == formula.num_variables
        assert [c.literals for c in loaded.clauses] == \
            [c.literals for c in formula.clauses]

    def test_solver_consumes_loaded_file(self, tmp_path):
        from repro.memcomputing.solver import DmmSolver

        formula = planted_ksat(15, 55, rng=1)
        path = save_dimacs(formula, str(tmp_path / "x.cnf"))
        result = DmmSolver().solve(load_dimacs(path), rng=2)
        assert result.satisfied


class TestWcnfFiles:
    def _weighted_formula(self):
        return CnfFormula([
            Clause([1, 2]),                  # hard
            Clause([-1, 3]),                 # hard
            Clause([2], weight=3.0),         # soft
            Clause([-3], weight=5.0),        # soft
        ])

    def test_roundtrip_partition(self, tmp_path):
        formula = self._weighted_formula()
        path = save_wcnf(formula, str(tmp_path / "instance.wcnf"))
        loaded = load_wcnf(path)
        assert len(loaded.hard_clauses) == 2
        assert len(loaded.soft_clauses) == 2
        weights = sorted(c.weight for c in loaded.soft_clauses)
        assert weights == [3.0, 5.0]

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.wcnf"
        path.write_text("p cnf 2 1\n1 2 0\n")
        with pytest.raises(DimacsParseError):
            load_wcnf(str(path))

    def test_missing_terminator_rejected(self, tmp_path):
        path = tmp_path / "bad2.wcnf"
        path.write_text("p wcnf 2 1 10\n3 1 2\n")
        with pytest.raises(DimacsParseError):
            load_wcnf(str(path))

    def test_clause_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad3.wcnf"
        path.write_text("3 1 2 0\n")
        with pytest.raises(DimacsParseError):
            load_wcnf(str(path))


class TestQasmFiles:
    def test_roundtrip(self, tmp_path):
        import numpy as np

        from repro.quantum.circuit import QuantumCircuit

        circuit = QuantumCircuit(3).h(0).cnot(0, 2).rz(1, 0.7)
        path = save_qasm(circuit, str(tmp_path / "kernel.qasm"))
        loaded = load_qasm(path)
        fidelity = abs(np.vdot(circuit.statevector().amplitudes,
                               loaded.statevector().amplitudes)) ** 2
        assert fidelity == pytest.approx(1.0)


class TestEnsureDirectory:
    def test_creates_nested(self, tmp_path):
        target = str(tmp_path / "a" / "b" / "c")
        assert ensure_directory(target) == target
        import os

        assert os.path.isdir(target)

    def test_idempotent(self, tmp_path):
        target = str(tmp_path / "x")
        ensure_directory(target)
        ensure_directory(target)  # no error
