"""Tests for the repo tooling under tools/."""
