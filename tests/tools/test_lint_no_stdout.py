"""Tests for the stdout lint's strict serve-path rule (PR 9): the
serving stack (including the SLO evaluator and exposition path) cannot
be exempted via the allowlist -- servers answer in response bodies,
never on the process streams.
"""

import io
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import lint_no_stdout  # noqa: E402


def _write_module(root, relative, source):
    path = os.path.join(root, relative)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        handle.write(source)


class TestStrictServePaths:
    def test_real_tree_is_clean(self):
        out = io.StringIO()
        assert lint_no_stdout.lint(out=out) == 0, out.getvalue()

    def test_serve_print_flagged(self, tmp_path):
        root = str(tmp_path)
        _write_module(root, os.path.join("serve", "app.py"),
                      "def f():\n    print('leak')\n")
        out = io.StringIO()
        assert lint_no_stdout.lint(library_root=root, out=out) == 1
        assert "print() call" in out.getvalue()

    def test_allowlist_cannot_exempt_serve(self, tmp_path, monkeypatch):
        root = str(tmp_path)
        relative = os.path.join("serve", "slo.py")
        _write_module(root, relative,
                      "import sys\n"
                      "def f():\n    sys.stdout.write('leak')\n")
        # even an explicit allowlist entry must not silence serve paths
        monkeypatch.setattr(lint_no_stdout, "ALLOWLIST",
                            frozenset({relative}))
        out = io.StringIO()
        assert lint_no_stdout.lint(library_root=root, out=out) == 1
        assert "sys.stdout access" in out.getvalue()

    def test_allowlist_still_works_outside_serve(self, tmp_path,
                                                 monkeypatch):
        root = str(tmp_path)
        _write_module(root, "cli.py", "def f():\n    print('fine')\n")
        monkeypatch.setattr(lint_no_stdout, "ALLOWLIST",
                            frozenset({"cli.py"}))
        out = io.StringIO()
        assert lint_no_stdout.lint(library_root=root, out=out) == 0
