"""Tests for the perf-regression harness (benchmarks/history.py +
tools/check_perf.py).

The acceptance contract: an unchanged run passes clean; an injected 2x
slowdown on a tolerance-band timing is flagged as a ``::warning::``
soft regression (exit 0 -- wall-clock bands from shared runners are
advisory); a breach of an absolute ``max``/``min`` pin is a hard
failure (exit 1) -- those entries are semantic budgets, not trends.
"""

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

import check_perf  # noqa: E402
import history  # noqa: E402


def write_experiment(results_dir, name, metrics):
    """A minimal results/<name>.json as conftest.emit_json writes it."""
    os.makedirs(results_dir, exist_ok=True)
    payload = {"name": name, "title": name, "headers": [], "rows": [],
               "notes": [], "metrics": metrics,
               "provenance": {"machine": "x86_64", "cpu_count": 4,
                              "implementation": "CPython"},
               "telemetry": {}}
    path = os.path.join(results_dir, name + ".json")
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


class TestHistory:
    def test_collect_metrics_namespaces_by_experiment(self, tmp_path):
        results = str(tmp_path / "results")
        write_experiment(results, "alpha", {"solve_s": 1.5})
        write_experiment(results, "beta", {"rate": 100.0})
        metrics = history.collect_metrics(results)
        assert metrics == {"alpha.solve_s": 1.5, "beta.rate": 100.0}

    def test_report_json_and_metricless_experiments_skipped(self, tmp_path):
        results = str(tmp_path / "results")
        write_experiment(results, "alpha", {})
        with open(os.path.join(results, "report.json"), "w") as handle:
            json.dump({"experiments": []}, handle)
        assert history.collect_metrics(results) == {}
        assert history.build_record(results) is None

    def test_record_carries_provenance_and_appends(self, tmp_path):
        results = str(tmp_path / "results")
        write_experiment(results, "alpha", {"solve_s": 1.5})
        record = history.build_record(results, timestamp=123.0)
        assert record["timestamp"] == 123.0
        assert record["experiments"] == ["alpha"]
        assert record["provenance"]["cpu_count"] >= 1
        path = str(tmp_path / "history.jsonl")
        history.append_record(record, path=path)
        history.append_record(record, path=path)
        assert len(history.load_history(path)) == 2
        assert history.latest_record(path)["metrics"] \
            == {"alpha.solve_s": 1.5}

    def test_truncated_line_does_not_poison_log(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"metrics": {"a.x": 1.0}}) + "\n")
            handle.write('{"metrics": {"a.x"')  # killed mid-write
        assert history.latest_record(path)["metrics"] == {"a.x": 1.0}

    def test_missing_history_file(self, tmp_path):
        assert history.latest_record(str(tmp_path / "nope.jsonl")) is None


class TestCompareMetric:
    def test_relative_lower_direction(self):
        entry = {"value": 1.0, "tolerance": 0.5, "direction": "lower"}
        assert check_perf.compare_metric(entry, 1.4)[0] == "ok"
        assert check_perf.compare_metric(entry, 1.6)[0] == "regression"

    def test_relative_higher_direction(self):
        entry = {"value": 100.0, "tolerance": 0.5, "direction": "higher"}
        assert check_perf.compare_metric(entry, 60.0)[0] == "ok"
        assert check_perf.compare_metric(entry, 40.0)[0] == "regression"

    def test_negative_baseline_band_opens_upward(self):
        # overhead ratios can be slightly negative on a noisy host; the
        # tolerance band must still allow movement toward zero
        entry = {"value": -0.04, "tolerance": 0.5, "direction": "lower"}
        assert check_perf.compare_metric(entry, -0.03)[0] == "ok"

    def test_absolute_bounds(self):
        assert check_perf.compare_metric({"max": 0.05}, 0.04)[0] == "ok"
        assert check_perf.compare_metric({"max": 0.05}, 0.06)[0] \
            == "regression"
        assert check_perf.compare_metric({"min": 2.0}, 2.5)[0] == "ok"
        assert check_perf.compare_metric({"min": 2.0}, 1.5)[0] \
            == "regression"


class TestCheckPerfEndToEnd:
    @pytest.fixture()
    def harness(self, tmp_path):
        """Results dir + history + baseline wired through temp paths."""
        results = str(tmp_path / "results")
        write_experiment(results, "solver", {"solve_s": 1.0,
                                             "rate": 500.0})
        history_path = str(tmp_path / "history.jsonl")
        baseline_path = str(tmp_path / "baseline.json")
        record = history.build_record(results, timestamp=1.0)
        history.append_record(record, path=history_path)
        return {"results": results, "history": history_path,
                "baseline": baseline_path}

    def args(self, harness):
        return ["--history", harness["history"],
                "--baseline", harness["baseline"]]

    def test_unchanged_run_passes(self, harness, capsys):
        assert check_perf.main(self.args(harness)
                               + ["--write-baseline"]) == 0
        assert check_perf.main(self.args(harness)) == 0
        assert "perf check clean" in capsys.readouterr().out

    def test_injected_2x_slowdown_warns_softly(self, harness, capsys):
        # Tolerance-band entries are advisory: the regression is
        # annotated but the exit stays 0 (the hard gate is max/min).
        assert check_perf.main(self.args(harness)
                               + ["--write-baseline"]) == 0
        write_experiment(harness["results"], "solver",
                         {"solve_s": 2.0, "rate": 500.0})  # 2x slower
        record = history.build_record(harness["results"], timestamp=2.0)
        history.append_record(record, path=harness["history"])
        assert check_perf.main(self.args(harness)) == 0
        out = capsys.readouterr().out
        assert "::warning::perf regression (soft, tolerance band): " \
               "solver.solve_s" in out
        assert "REG" in out
        assert "soft perf regression" in out

    def test_rate_collapse_warns_softly(self, harness, capsys):
        # *_rate entries are baselined direction="higher" (still a band)
        assert check_perf.main(self.args(harness)
                               + ["--write-baseline"]) == 0
        write_experiment(harness["results"], "solver",
                         {"solve_s": 1.0, "rate": 100.0})  # 5x slower
        record = history.build_record(harness["results"], timestamp=2.0)
        history.append_record(record, path=harness["history"])
        assert check_perf.main(self.args(harness)) == 0
        assert "solver.rate" in capsys.readouterr().out

    def _pin(self, harness, name, entry):
        """Rewrite one baseline entry as an absolute pin."""
        with open(harness["baseline"]) as handle:
            baseline = json.load(handle)
        baseline["metrics"][name] = entry
        with open(harness["baseline"], "w") as handle:
            json.dump(baseline, handle)

    def test_max_pin_breach_fails_hard(self, harness, capsys):
        assert check_perf.main(self.args(harness)
                               + ["--write-baseline"]) == 0
        self._pin(harness, "solver.solve_s", {"max": 1.5})
        write_experiment(harness["results"], "solver",
                         {"solve_s": 2.0, "rate": 500.0})
        record = history.build_record(harness["results"], timestamp=2.0)
        history.append_record(record, path=harness["history"])
        assert check_perf.main(self.args(harness)) == 1
        out = capsys.readouterr().out
        assert "::error::perf budget breached: solver.solve_s" in out
        assert "hard perf breach" in out

    def test_min_pin_breach_fails_hard(self, harness, capsys):
        assert check_perf.main(self.args(harness)
                               + ["--write-baseline"]) == 0
        self._pin(harness, "solver.rate", {"min": 400.0})
        write_experiment(harness["results"], "solver",
                         {"solve_s": 1.0, "rate": 100.0})
        record = history.build_record(harness["results"], timestamp=2.0)
        history.append_record(record, path=harness["history"])
        assert check_perf.main(self.args(harness)) == 1
        assert "::error::perf budget breached: solver.rate" \
            in capsys.readouterr().out

    def test_hard_breach_wins_over_soft_warnings(self, harness, capsys):
        # Both kinds regress at once: the exit reflects the hard pin.
        assert check_perf.main(self.args(harness)
                               + ["--write-baseline"]) == 0
        self._pin(harness, "solver.rate", {"min": 400.0})
        write_experiment(harness["results"], "solver",
                         {"solve_s": 5.0, "rate": 100.0})
        record = history.build_record(harness["results"], timestamp=2.0)
        history.append_record(record, path=harness["history"])
        assert check_perf.main(self.args(harness)) == 1
        out = capsys.readouterr().out
        assert "::warning::perf regression (soft" in out
        assert "::error::perf budget breached: solver.rate" in out

    def test_missing_metric_warns_without_failing(self, harness, capsys):
        assert check_perf.main(self.args(harness)
                               + ["--write-baseline"]) == 0
        write_experiment(harness["results"], "solver", {"solve_s": 1.0})
        record = history.build_record(harness["results"], timestamp=2.0)
        history.append_record(record, path=harness["history"])
        assert check_perf.main(self.args(harness)) == 0
        assert "missing from latest run" in capsys.readouterr().out

    def test_new_metric_reported_as_unbaselined(self, harness, capsys):
        assert check_perf.main(self.args(harness)
                               + ["--write-baseline"]) == 0
        write_experiment(harness["results"], "solver",
                         {"solve_s": 1.0, "rate": 500.0, "extra_s": 9.0})
        record = history.build_record(harness["results"], timestamp=2.0)
        history.append_record(record, path=harness["history"])
        assert check_perf.main(self.args(harness)) == 0
        assert "not in baseline" in capsys.readouterr().out

    def test_no_history_is_setup_error(self, tmp_path):
        code = check_perf.main(["--history",
                                str(tmp_path / "none.jsonl"),
                                "--baseline",
                                str(tmp_path / "baseline.json")])
        assert code == 2

    def test_no_baseline_is_setup_error(self, harness):
        assert check_perf.main(self.args(harness)) == 2

    def test_refresh_keeps_hand_tuned_budgets(self, harness):
        assert check_perf.main(self.args(harness)
                               + ["--write-baseline"]) == 0
        with open(harness["baseline"]) as handle:
            baseline = json.load(handle)
        baseline["metrics"]["solver.solve_s"] = {"max": 3.0}
        baseline["metrics"]["solver.rate"]["tolerance"] = 0.9
        with open(harness["baseline"], "w") as handle:
            json.dump(baseline, handle)
        assert check_perf.main(self.args(harness)
                               + ["--write-baseline"]) == 0
        with open(harness["baseline"]) as handle:
            refreshed = json.load(handle)
        assert refreshed["metrics"]["solver.solve_s"] == {"max": 3.0}
        assert refreshed["metrics"]["solver.rate"]["tolerance"] == 0.9
