"""Contract tests between the vendored Prometheus text-format checker
(``tools/prom_lint.py``) and the exposition renderer
(``repro.core.exposition``): what the serving stack emits must parse
clean, and the checker must actually catch the format mistakes it
claims to.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import prom_lint  # noqa: E402

from repro.core import exposition, telemetry  # noqa: E402


def _rendered_snapshot():
    registry = telemetry.MetricsRegistry()
    registry.counter("serve.requests").inc(6)
    registry.counter("serve.requests",
                     labels={"tenant": "acme", "kind": "solve"}).inc(2)
    registry.gauge("serve.queue_depth").set(3)
    hist = registry.histogram("serve.latency_seconds",
                              labels={"tenant": "acme",
                                      "kind": "distance"})
    for value in (0.01, 0.02, 0.05):
        hist.observe(value)
    registry.histogram("serve.latency_seconds").observe(0.01)
    return exposition.render_prometheus(registry.snapshot())


class TestContract:
    def test_rendered_exposition_is_clean(self):
        text = _rendered_snapshot()
        assert prom_lint.check_exposition(text) == []

    def test_counter_gets_total_suffix(self):
        text = _rendered_snapshot()
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 6" in text
        assert 'serve_requests_total{kind="solve",tenant="acme"} 2' \
            in text

    def test_histogram_renders_as_summary_with_quantiles(self):
        text = _rendered_snapshot()
        assert "# TYPE serve_latency_seconds summary" in text
        for quantile in ("0.5", "0.95", "0.99"):
            assert ('serve_latency_seconds{kind="distance",'
                    'tenant="acme",quantile="%s"}' % quantile) in text
        assert 'serve_latency_seconds_count{kind="distance",' \
               'tenant="acme"} 3' in text

    def test_empty_snapshot_renders_empty(self):
        assert exposition.render_prometheus({}) == ""
        assert prom_lint.check_exposition("") == []

    def test_special_values(self):
        registry = telemetry.MetricsRegistry()
        registry.gauge("g").set(float("inf"))
        text = exposition.render_prometheus(registry.snapshot())
        assert "g +Inf" in text
        assert prom_lint.check_exposition(text) == []


class TestCheckerCatches:
    def test_unquoted_label_value(self):
        bad = "# TYPE m counter\nm{tenant=acme} 1\n"
        assert prom_lint.check_exposition(bad)

    def test_duplicate_label_names(self):
        bad = 'm{a="1",a="2"} 1\n'
        errors = prom_lint.check_exposition(bad)
        assert any("duplicate label" in error for error in errors)

    def test_bad_metric_name(self):
        assert prom_lint.check_exposition("9metric 1\n")

    def test_bad_value(self):
        assert prom_lint.check_exposition("m one\n")

    def test_missing_final_newline(self):
        errors = prom_lint.check_exposition("m 1")
        assert any("newline" in error for error in errors)

    def test_unknown_type(self):
        errors = prom_lint.check_exposition("# TYPE m sandwich\nm 1\n")
        assert any("unknown TYPE" in error for error in errors)

    def test_duplicate_type_declaration(self):
        bad = "# TYPE m counter\n# TYPE m counter\nm 1\n"
        errors = prom_lint.check_exposition(bad)
        assert any("duplicate TYPE" in error for error in errors)

    def test_type_after_samples(self):
        bad = "m 1\n# TYPE m counter\n"
        errors = prom_lint.check_exposition(bad)
        assert any("after its samples" in error for error in errors)

    def test_non_contiguous_family(self):
        bad = "a 1\nb 2\na{x=\"1\"} 3\n"
        errors = prom_lint.check_exposition(bad)
        assert any("not contiguous" in error for error in errors)

    def test_duplicate_sample(self):
        bad = 'm{a="1"} 1\nm{a="1"} 2\n'
        errors = prom_lint.check_exposition(bad)
        assert any("duplicate sample" in error for error in errors)

    def test_quantile_label_needs_summary(self):
        bad = '# TYPE m counter\nm{quantile="0.5"} 1\n'
        errors = prom_lint.check_exposition(bad)
        assert any("quantile" in error for error in errors)

    def test_summary_suffixes_allowed(self):
        good = ("# TYPE s summary\n"
                's{quantile="0.5"} 1\n'
                "s_sum 2\n"
                "s_count 3\n")
        assert prom_lint.check_exposition(good) == []

    def test_unterminated_quote(self):
        errors = prom_lint.check_exposition('m{a="1} 1\n')
        assert errors

    def test_escaped_quotes_in_label_values(self):
        good = 'm{a="say \\"hi\\" now"} 1\n'
        assert prom_lint.check_exposition(good) == []

    def test_whitespace_flagged(self):
        errors = prom_lint.check_exposition("m 1 \n")
        assert any("whitespace" in error for error in errors)


class TestCli:
    def test_main_clean_and_dirty(self, tmp_path, capsys):
        clean = tmp_path / "clean.txt"
        clean.write_text(_rendered_snapshot())
        assert prom_lint.main([str(clean)]) == 0
        dirty = tmp_path / "dirty.txt"
        dirty.write_text("m{tenant=acme} 1\n")
        assert prom_lint.main([str(dirty)]) == 1
        assert prom_lint.main([]) == 2
        assert prom_lint.main([str(tmp_path / "missing.txt")]) == 2
        capsys.readouterr()
