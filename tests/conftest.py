"""Shared pytest configuration for the repro test suite."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running physics/dynamics tests")
