"""Shared pytest configuration for the repro test suite."""

import pytest

from repro.core import resilience


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running physics/dynamics tests")


@pytest.fixture
def fault_plan():
    """Install a resilience FaultPlan for the duration of one test.

    Usage::

        def test_recovery(fault_plan):
            fault_plan([(0, 1, "raise"), (2, 1, "nan")])
            ...  # every ParallelMap.map in the test sees the plan

    Accepts a FaultPlan, a list of ``(chunk, attempt, action)`` tuples,
    or a ``"chunk:attempt:action,..."`` spec string; returns the
    installed plan.  The previous plan (normally none) is restored on
    teardown, so faults never leak across tests.
    """
    installed = []

    def _install(plan, **kwargs):
        if isinstance(plan, str):
            plan = resilience.FaultPlan.from_spec(plan, **kwargs)
        elif not isinstance(plan, resilience.FaultPlan):
            plan = resilience.FaultPlan(plan, **kwargs)
        installed.append(resilience.set_fault_plan(plan))
        return plan

    yield _install
    while installed:
        resilience.set_fault_plan(installed.pop())
