"""JobService behaviour: validation, coalescing, batching, admission.

Async tests drive the service on a private event loop via
``asyncio.run`` inside plain pytest functions (the suite has no async
plugin, by design -- the service itself must work from stock asyncio).
Submitting several jobs synchronously (no ``await`` between them)
lands them all before the dispatcher coroutines get a turn, which is
what makes the coalescing/batching/priority assertions deterministic.
"""

import asyncio

import numpy as np
import pytest

from repro.core import telemetry
from repro.core.exceptions import (
    JobValidationError,
    QueueFullError,
    QuotaError,
)
from repro.oscillators.distance import OscillatorDistanceUnit
from repro.serve import JobService, ServeConfig, validate_request
from repro.serve.jobs import DONE, FAILED, JobTable


def run_service_test(body, **config_kwargs):
    """Start a JobService, run ``await body(service)``, close it."""
    config_kwargs.setdefault("workers", 1)

    async def _scope():
        service = JobService(ServeConfig(**config_kwargs))
        await service.start()
        try:
            return await body(service)
        finally:
            await service.close()

    return asyncio.run(_scope())


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(JobValidationError, match="unknown job kind"):
            validate_request("transmute", {})

    def test_solve_requires_dimacs(self):
        with pytest.raises(JobValidationError, match="dimacs"):
            validate_request("solve", {})
        with pytest.raises(JobValidationError, match="exceeds"):
            validate_request("solve", {"dimacs": "c" * 200_001})

    def test_factor_bounds(self):
        with pytest.raises(JobValidationError, match="integer"):
            validate_request("factor", {"n": "15"})
        with pytest.raises(JobValidationError, match=r"\[4,"):
            validate_request("factor", {"n": 2})

    def test_distance_pairs_canonicalized(self):
        params = validate_request("distance", {"pairs": [[1, 2], (3, 4)]})
        assert params["pairs"] == [[1.0, 2.0], [3.0, 4.0]]
        assert params["mode"] == "behavioral"
        with pytest.raises(JobValidationError, match="numeric"):
            validate_request("distance", {"pairs": [[1, "x"]]})
        with pytest.raises(JobValidationError, match="mode"):
            validate_request("distance", {"pairs": [[1, 2]],
                                          "mode": "spooky"})

    def test_detect_image_shape(self):
        with pytest.raises(JobValidationError, match="same length"):
            validate_request("detect", {"image": [[1.0, 2.0], [3.0]]})
        with pytest.raises(JobValidationError, match="pixels"):
            validate_request("detect",
                             {"image": [[0.0] * 300 for _ in range(300)]})

    def test_identical_meaning_same_canonical_form(self):
        ints = validate_request("distance", {"pairs": [[1, 2]]})
        floats = validate_request("distance", {"pairs": [[1.0, 2.0]]})
        assert ints == floats

    def test_bad_priority_and_tenant(self):
        async def body(service):
            with pytest.raises(JobValidationError, match="priority"):
                service.submit("factor", {"n": 15}, priority=42)
            with pytest.raises(JobValidationError, match="tenant"):
                service.submit("factor", {"n": 15}, tenant="")

        run_service_test(body)


class TestCoalescing:
    def test_identical_concurrent_requests_one_execution(self):
        """The acceptance criterion: N identical concurrent requests ->
        exactly one kernel execution, proven by the ``serve.coalesced``
        and (on the later resubmission) ``cache.hits`` telemetry."""
        registry = telemetry.MetricsRegistry()
        params = {"pairs": [[1.0, 2.0], [2.0, 3.0]]}

        async def body(service):
            jobs = [service.submit("distance", params) for _ in range(5)]
            await asyncio.gather(*(job.future for job in jobs))
            results = [job.result["measures"] for job in jobs]
            assert all(r == results[0] for r in results)
            assert all(job.state == DONE for job in jobs)
            assert service.executions == 1
            # Followers name the primary whose execution they shared.
            assert jobs[0].coalesced_with is None
            assert all(job.coalesced_with == jobs[0].id
                       for job in jobs[1:])
            # A later identical request replays from the result store.
            replay = service.submit("distance", dict(params))
            assert replay.cached and replay.state == DONE
            assert replay.result["measures"] == results[0]
            assert service.executions == 1

        with telemetry.use_registry(registry):
            run_service_test(body)
        snapshot = registry.snapshot()
        assert snapshot["serve.requests"]["value"] == 6
        assert snapshot["serve.coalesced"]["value"] == 4
        assert snapshot["serve.cache_hits"]["value"] == 1
        assert snapshot["cache.hits"]["value"] >= 1
        assert snapshot["serve.executions"]["value"] == 1

    def test_sequential_identical_requests_hit_the_store(self):
        async def body(service):
            first = service.submit("factor", {"n": 21})
            await first.future
            second = service.submit("factor", {"n": 21})
            assert second.cached and second.state == DONE
            assert second.result == first.result
            assert service.executions == 1

        run_service_test(body)

    def test_results_are_isolated_copies(self):
        params = {"pairs": [[1.0, 2.0]]}

        async def body(service):
            jobs = [service.submit("distance", params) for _ in range(2)]
            await asyncio.gather(*(job.future for job in jobs))
            jobs[0].result["measures"][0] = -1.0
            assert jobs[1].result["measures"][0] != -1.0

        run_service_test(body)

    def test_failures_propagate_and_are_never_cached(self):
        params = {"dimacs": "p cnf not actually dimacs", "attempts": 1}

        async def body(service):
            jobs = [service.submit("solve", params) for _ in range(2)]
            await asyncio.gather(*(job.future for job in jobs))
            assert all(job.state == FAILED for job in jobs)
            assert all(job.error for job in jobs)
            retry = service.submit("solve", dict(params))
            await retry.future
            assert retry.state == FAILED and not retry.cached
            assert service.executions == 2   # failure re-executed

        run_service_test(body)


class TestBatching:
    def test_compatible_distance_jobs_share_one_vectorized_call(self):
        pairs_a = [[1.0, 2.0], [3.0, 4.0]]
        pairs_b = [[5.0, 6.0]]

        async def body(service):
            job_a = service.submit("distance", {"pairs": pairs_a})
            job_b = service.submit("distance", {"pairs": pairs_b})
            await asyncio.gather(job_a.future, job_b.future)
            assert service.executions == 1
            assert service.batched == 1
            return (job_a.result["measures"], job_b.result["measures"])

        batched_a, batched_b = run_service_test(body, job_concurrency=1)
        unit = OscillatorDistanceUnit(mode="behavioral")
        assert batched_a == unit.measure_pairs(pairs_a)
        assert batched_b == unit.measure_pairs(pairs_b)

    def test_different_modes_never_merge(self):
        async def body(service):
            job_a = service.submit("distance", {"pairs": [[1.0, 2.0]],
                                                "mode": "behavioral"})
            job_b = service.submit("distance", {"pairs": [[1.0, 2.0]],
                                                "mode": "physical"})
            await asyncio.gather(job_a.future, job_b.future)
            assert service.batched == 0
            assert service.executions == 2

        run_service_test(body, job_concurrency=1)

    def test_pair_budget_caps_the_merge(self):
        async def body(service):
            jobs = [service.submit("distance",
                                   {"pairs": [[float(i), float(i + 1)]]})
                    for i in range(4)]
            await asyncio.gather(*(job.future for job in jobs))
            # Budget of 2 pairs -> merges of at most 2 jobs here.
            assert service.executions == 2
            assert service.batched == 2

        run_service_test(body, job_concurrency=1, batch_pairs=2)


class TestAdmission:
    def test_queue_overflow_rejected(self):
        async def body(service):
            service.submit("factor", {"n": 15})
            service.submit("factor", {"n": 21})
            with pytest.raises(QueueFullError):
                service.submit("factor", {"n": 33})
            # The rejected job never entered the table.
            assert service.table.stats()["queued"] == 2

        run_service_test(body, queue_depth=2, job_concurrency=1)

    def test_tenant_quota_rejected_then_released(self):
        async def body(service):
            first = service.submit("factor", {"n": 15}, tenant="alice")
            service.submit("factor", {"n": 21}, tenant="alice")
            with pytest.raises(QuotaError):
                service.submit("factor", {"n": 33}, tenant="alice")
            # Another tenant is unaffected by alice's quota.
            other = service.submit("factor", {"n": 33}, tenant="bob")
            await asyncio.gather(first.future, other.future)
            # Completion returns quota units; alice can submit again.
            await asyncio.sleep(0)
            retry = service.submit("factor", {"n": 35}, tenant="alice")
            await retry.future
            assert retry.state == DONE

        run_service_test(body, tenant_quota=2, job_concurrency=1)

    def test_priority_orders_dispatch(self):
        async def body(service):
            low = service.submit("factor", {"n": 15}, priority=9)
            high = service.submit("factor", {"n": 21}, priority=0)
            mid = service.submit("factor", {"n": 33}, priority=5)
            await asyncio.gather(low.future, high.future, mid.future)
            assert high.started_at < mid.started_at < low.started_at

        run_service_test(body, job_concurrency=1)

    def test_retention_prunes_finished_jobs(self):
        async def body(service):
            for n in (15, 21, 33, 35, 39):
                job = service.submit("factor", {"n": n})
                await job.future
            assert len(service.table) == 2

        run_service_test(body, retention=2)


class TestJobTablePruning:
    """The retention contract at the table level: only *finished* jobs
    count against the cap, the oldest finished go first, and pruned ids
    stop resolving while live ones keep working.
    """

    def _table(self, retention, finished=0, live=0):
        table = JobTable(retention=retention)
        jobs = [table.create("factor", {"n": 15}, "t", 5,
                             "key-%d" % index, {})
                for index in range(finished + live)]
        for job in jobs[:finished]:
            job.state = DONE
        return table, jobs

    def test_prune_drops_oldest_finished_first(self):
        table, jobs = self._table(retention=2, finished=5)
        table.prune()
        assert len(table) == 2
        assert [table.get(job.id) for job in jobs[:3]] == [None] * 3
        assert table.get(jobs[3].id) is jobs[3]
        assert table.get(jobs[4].id) is jobs[4]

    def test_unfinished_jobs_never_pruned(self):
        table, jobs = self._table(retention=0, finished=3, live=4)
        table.prune()
        # Every queued job survives a zero-retention prune; every
        # finished one goes.
        assert len(table) == 4
        for job in jobs[3:]:
            assert table.get(job.id) is job

    def test_prune_under_cap_is_a_no_op(self):
        table, jobs = self._table(retention=10, finished=3)
        table.prune()
        assert len(table) == 3

    def test_prune_is_idempotent(self):
        table, _jobs = self._table(retention=1, finished=4)
        table.prune()
        table.prune()
        assert len(table) == 1

    def test_late_finishers_outlive_earlier_ones(self):
        # Retention orders by creation, but only finished jobs are
        # candidates: an old job that finishes *after* younger ones
        # is still pruned first (creation order, not finish order).
        table, jobs = self._table(retention=1, live=3)
        jobs[2].state = DONE
        table.prune()
        assert len(table) == 3  # one finished, cap is one
        jobs[0].state = FAILED
        table.prune()
        assert table.get(jobs[0].id) is None
        assert table.get(jobs[2].id) is jobs[2]

    def test_negative_retention_rejected(self):
        with pytest.raises(ValueError):
            JobTable(retention=-1)


class TestStats:
    def test_stats_document_shape(self):
        async def body(service):
            job = service.submit("detect", {
                "image": [[float((r * 31 + c * 7) % 97)
                           for c in range(12)] for r in range(12)]})
            await job.future
            stats = service.stats()
            assert stats["requests"] == 1
            assert stats["completed"] == 1
            assert stats["queue_depth"] == 0
            assert stats["jobs"][DONE] == 1

        run_service_test(body)

    def test_detect_result_matches_direct_detector(self):
        rng = np.random.default_rng(7)
        image = rng.uniform(0.0, 255.0, size=(24, 24))

        async def body(service):
            job = service.submit(
                "detect", {"image": image.tolist(), "threshold": 30.0})
            await job.future
            assert job.state == DONE
            return job.result

        result = run_service_test(body)
        from repro.oscillators.fast.oscillator_fast import (
            OscillatorFastDetector,
        )
        corners = OscillatorFastDetector(threshold=30.0).detect(image)
        assert result["corners"] == [[int(r), int(c)] for r, c in corners]
