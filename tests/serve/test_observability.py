"""Observability of the serving stack (PR 9): end-to-end trace
propagation, labeled serving metrics, the Prometheus exposition
endpoint, the SLO report, the flight recorder -- and the acceptance
criterion that one HTTP request produces a single Chrome trace whose
HTTP / admission / dispatch / worker-chunk spans all share the
request's ``trace_id``.
"""

import asyncio
import contextlib
import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import prom_lint  # noqa: E402

from repro.core import telemetry, tracing  # noqa: E402
from repro.serve import JobService, ServeApp, ServeConfig  # noqa: E402

from .test_app import _request, running_app  # noqa: E402


async def _request_raw(port, method, path):
    """Like test_app._request but returns the body as text (for the
    Prometheus exposition, which is not JSON)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(("%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: 0"
                  "\r\n\r\n" % (method, path)).encode())
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if value:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    body = (await reader.readexactly(length)).decode() if length else ""
    writer.close()
    with contextlib.suppress(ConnectionError):
        await writer.wait_closed()
    return status, headers, body


@contextlib.contextmanager
def _live_registry():
    registry = telemetry.MetricsRegistry()
    sink = registry.add_sink(tracing.ListSink())
    with telemetry.use_registry(registry):
        yield registry, sink


class TestTraceContinuity:
    def test_one_request_one_trace_across_processes(self, capsys):
        """The tentpole acceptance test: a distance request served with
        two worker processes yields serve.http, serve.admission,
        serve.dispatch and parallel.chunk span events that all carry
        the same trace id, and the Chrome export preserves it in every
        event's args -- one request, one trace, across processes.
        """
        with _live_registry() as (registry, sink):
            async def body():
                async with running_app(workers=2) as app:
                    status, _, doc = await _request(
                        app.port, "POST", "/v1/jobs",
                        {"kind": "distance",
                         "params": {"pairs": [[1.0, 2.0], [3.0, 4.0],
                                              [5.0, 6.0], [7.0, 8.0]]},
                         "wait": 30})
                    assert status == 200 and doc["state"] == "done"
                    return doc

            doc = asyncio.run(body())
        trace_id = doc["trace_id"]
        assert trace_id
        spans = [event for event in sink.events
                 if event.get("type") == "span"]
        by_name = {}
        for event in spans:
            by_name.setdefault(event["name"], []).append(event)
        for name in ("serve.http", "serve.admission", "serve.dispatch",
                     "parallel.chunk"):
            assert name in by_name, "missing span %r" % name
            traced = [event for event in by_name[name]
                      if event.get("trace") == trace_id]
            assert traced, "no %r span carries trace %s" % (name,
                                                            trace_id)
        # the worker chunks really ran out-of-process
        chunk = [event for event in by_name["parallel.chunk"]
                 if event.get("trace") == trace_id]
        assert any(event.get("pid") != os.getpid() for event in chunk)
        # Chrome export: every event of this request carries the trace
        # in args, so Perfetto can filter one request's full life
        chrome = tracing.chrome_trace_events(sink.events)
        traced_names = {event["name"] for event in chrome
                        if event.get("args", {}).get("trace") == trace_id}
        for name in ("serve.http", "serve.admission", "serve.dispatch",
                     "parallel.chunk"):
            assert name in traced_names
        # serving stack stays silent on the process streams
        captured = capsys.readouterr()
        assert captured.out == ""

    def test_two_requests_two_traces(self):
        with _live_registry() as (_registry, sink):
            async def body():
                async with running_app(workers=1) as app:
                    docs = []
                    for value in (1.0, 2.0):
                        _status, _, doc = await _request(
                            app.port, "POST", "/v1/jobs",
                            {"kind": "distance",
                             "params": {"pairs": [[value, 5.0]]},
                             "wait": 30})
                        docs.append(doc)
                    return docs

            docs = asyncio.run(body())
        first, second = (doc["trace_id"] for doc in docs)
        assert first != second
        http_spans = [event for event in sink.events
                      if event.get("type") == "span"
                      and event["name"] == "serve.http"
                      and event["attrs"].get("path") == "/v1/jobs"]
        assert {event["trace"] for event in http_spans} \
            == {first, second}

    def test_coalesced_follower_records_primary_trace(self):
        async def body():
            service = JobService(ServeConfig(workers=1, cache=False))
            await service.start()
            try:
                params = {"pairs": [[1.0, 2.0]]}
                lead = service.submit("distance", dict(params))
                follower = service.submit("distance", dict(params))
                assert follower.coalesced_with == lead.id
                assert follower.joined_trace == lead.trace_id
                assert follower.trace_id != lead.trace_id
                await asyncio.gather(lead.future, follower.future)
                assert follower.describe()["joined_trace"] \
                    == lead.trace_id
            finally:
                await service.close()

        asyncio.run(body())

    def test_submit_mints_trace_when_caller_has_none(self):
        async def body():
            service = JobService(ServeConfig(workers=1))
            await service.start()
            try:
                job = service.submit("distance",
                                     {"pairs": [[1.0, 2.0]]})
                assert job.trace_id
                explicit = service.submit(
                    "distance", {"pairs": [[9.0, 2.0]]},
                    trace_id="feedbeef00000001")
                assert explicit.trace_id == "feedbeef00000001"
                await asyncio.gather(job.future, explicit.future)
            finally:
                await service.close()

        asyncio.run(body())


class TestLabeledServeMetrics:
    def test_labeled_series_alongside_legacy(self):
        with _live_registry() as (registry, _sink):
            async def body():
                async with running_app(workers=1) as app:
                    for value in (1.0, 2.0):
                        await _request(
                            app.port, "POST", "/v1/jobs",
                            {"kind": "distance", "tenant": "acme",
                             "params": {"pairs": [[value, 5.0]]},
                             "wait": 30})

            asyncio.run(body())
            snapshot = registry.snapshot()
        assert snapshot["serve.requests"]["value"] == 2
        assert snapshot[
            "serve.requests{kind=distance,tenant=acme}"]["value"] == 2
        outcomes = snapshot[
            "serve.outcomes{kind=distance,outcome=ok,tenant=acme}"]
        assert outcomes["value"] == 2
        labeled_latency = snapshot[
            "serve.latency_seconds{kind=distance,tenant=acme}"]
        assert labeled_latency["count"] == 2
        assert labeled_latency["p95"] is not None

    def test_tenant_stats_in_stats_endpoint(self):
        async def body():
            async with running_app(workers=1) as app:
                await _request(
                    app.port, "POST", "/v1/jobs",
                    {"kind": "distance", "tenant": "acme",
                     "params": {"pairs": [[1.0, 2.0]]}, "wait": 30})
                _status, _, stats = await _request(app.port, "GET",
                                                   "/v1/stats")
                return stats

        stats = asyncio.run(body())
        assert stats["tenants"]["acme"]["requests"] == 1
        assert stats["tenants"]["acme"]["completed"] == 1


class TestPrometheusEndpoint:
    def test_exposition_passes_vendored_linter(self, capsys):
        with _live_registry():
            async def body():
                async with running_app(workers=1) as app:
                    await _request(
                        app.port, "POST", "/v1/jobs",
                        {"kind": "distance", "tenant": "acme",
                         "params": {"pairs": [[1.0, 2.0]]}, "wait": 30})
                    return await _request_raw(
                        app.port, "GET", "/v1/metrics?format=prometheus")

            status, headers, text = asyncio.run(body())
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert prom_lint.check_exposition(text) == []
        assert "serve_requests_total 1" in text
        assert 'serve_requests_total{kind="distance",tenant="acme"} 1' \
            in text
        assert 'serve_latency_seconds{kind="distance",tenant="acme",' \
               'quantile="0.95"}' in text
        # nothing leaked onto the process streams: the exposition is
        # response-body-only
        assert capsys.readouterr().out == ""

    def test_unknown_format_is_400_and_json_still_default(self):
        async def body():
            async with running_app(workers=1) as app:
                status, _, _ = await _request_raw(
                    app.port, "GET", "/v1/metrics?format=xml")
                assert status == 400
                status, _, doc = await _request(app.port, "GET",
                                                "/v1/metrics")
                assert status == 200 and isinstance(doc, dict)

        asyncio.run(body())


class TestSloEndpoint:
    def _spec(self, tmp_path, latency_ms):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": [
            {"name": "distance-latency", "kind": "distance",
             "latency_ms": latency_ms, "quantile": 0.95}]}))
        return str(path)

    def test_healthy_and_breached_reports(self, tmp_path):
        async def drive(slo_path):
            with _live_registry():
                async with running_app(workers=1,
                                       slo=slo_path) as app:
                    await _request(
                        app.port, "POST", "/v1/jobs",
                        {"kind": "distance",
                         "params": {"pairs": [[1.0, 2.0]]}, "wait": 30})
                    _status, _, report = await _request(app.port, "GET",
                                                        "/v1/slo")
                    return report

        healthy = asyncio.run(drive(self._spec(tmp_path, 60_000.0)))
        assert healthy["ok"] is True
        assert healthy["counts"] == {"total": 1, "breached": 0}
        breached = asyncio.run(drive(self._spec(tmp_path, 0.000001)))
        assert breached["ok"] is False
        entry = breached["objectives"][0]
        assert entry["latency"]["burn_rate"] > 1.0

    def test_no_spec_reports_trivially_ok(self):
        async def body():
            async with running_app(workers=1) as app:
                _status, _, report = await _request(app.port, "GET",
                                                    "/v1/slo")
                return report

        report = asyncio.run(body())
        assert report["ok"] is True
        assert report["counts"]["total"] == 0


class TestFlightRecorder:
    def test_job_failure_dumps_ring(self, tmp_path):
        flight_dir = str(tmp_path / "flight")
        with _live_registry():
            async def body():
                async with running_app(workers=1,
                                       flight_dir=flight_dir) as app:
                    # malformed DIMACS passes request validation (it is
                    # a non-empty string) but fails in the kernel, so
                    # the job genuinely fails at execution time
                    status, _, doc = await _request(
                        app.port, "POST", "/v1/jobs",
                        {"kind": "solve",
                         "params": {"dimacs": "p cnf not actually dimacs",
                                    "attempts": 1}, "wait": 30})
                    return status, doc

            status, doc = asyncio.run(body())
        assert doc["state"] == "failed"
        dumps = sorted(os.listdir(flight_dir))
        assert dumps, "flight recorder wrote no dump on job failure"
        with open(os.path.join(flight_dir, dumps[0])) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert lines[0]["type"] == "flight"
        assert lines[0]["reason"].startswith("job-failed-")
        assert len(lines) > 1  # the ring had events to dump
