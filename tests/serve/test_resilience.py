"""Service survival under worker faults: the killed-worker criterion.

A worker killed mid-job must leave the service serving: the pool
respawns the slot, the retry budget re-runs the lost chunk, the job
completes with the unfaulted result, and no shared-memory segment
leaks (the PR 8 accounting in :mod:`repro.core.shm`).
"""

import asyncio

import numpy as np

from repro.core import shm
from repro.core.parallel import shutdown_pools
from repro.oscillators.fast.oscillator_fast import OscillatorFastDetector
from repro.serve import JobService, ServeConfig
from repro.serve.jobs import DONE


def _large_image():
    """256x256 float64 == 512KB: well past the shm share threshold, so
    every chunk of the detect fan-out rides a shared-memory segment."""
    rng = np.random.default_rng(11)
    return rng.uniform(0.0, 255.0, size=(256, 256))


class TestKilledWorker:
    def teardown_method(self):
        shutdown_pools()

    def test_killed_worker_mid_job_retried_without_leaks(self, fault_plan):
        image = _large_image()
        reference = OscillatorFastDetector(threshold=30.0).detect(image)
        fault_plan([(1, 1, "kill")])

        async def body():
            service = JobService(ServeConfig(workers=2, retries=2))
            await service.start()
            try:
                job = service.submit(
                    "detect",
                    {"image": image.tolist(), "threshold": 30.0})
                await job.future
                # The kill was absorbed: retried chunk, identical result.
                assert job.state == DONE, job.error
                assert job.result["corners"] == [
                    [int(r), int(c)] for r, c in reference]
                # The service keeps serving after the fault.
                follow_up = service.submit("factor", {"n": 15})
                await follow_up.future
                assert follow_up.state == DONE
            finally:
                await service.close()

        asyncio.run(body())
        assert shm.active_segment_count() == 0

    def test_clean_jobs_leak_no_segments(self):
        image = _large_image()

        async def body():
            service = JobService(ServeConfig(workers=2))
            await service.start()
            try:
                job = service.submit(
                    "detect",
                    {"image": image.tolist(), "threshold": 30.0})
                await job.future
                assert job.state == DONE, job.error
            finally:
                await service.close()

        asyncio.run(body())
        assert shm.active_segment_count() == 0
