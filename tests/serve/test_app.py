"""HTTP layer round-trips against a live ServeApp on an ephemeral port.

Each test runs a real asyncio TCP server (``port=0`` so the kernel
picks a free port) and speaks HTTP/1.1 over ``asyncio.open_connection``
-- no HTTP client library, matching the server's stdlib-only design.
"""

import asyncio
import contextlib
import json

from repro.serve import JobService, ServeApp, ServeConfig


async def _request(port, method, path, body=None, reuse=None):
    """One HTTP exchange; returns ``(status, headers, payload)``.

    Pass ``reuse=(reader, writer)`` to ride an existing keep-alive
    connection instead of opening a fresh one.
    """
    if reuse is None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    else:
        reader, writer = reuse
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(("%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d"
                  "\r\n\r\n" % (method, path, len(payload))).encode()
                 + payload)
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if value:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    doc = json.loads(await reader.readexactly(length)) if length else None
    if reuse is None:
        writer.close()
        with contextlib.suppress(ConnectionError):
            await writer.wait_closed()
    return status, headers, doc


@contextlib.asynccontextmanager
async def running_app(**config_kwargs):
    config_kwargs.setdefault("workers", 1)
    app = ServeApp(JobService(ServeConfig(**config_kwargs)), port=0)
    await app.start()
    try:
        yield app
    finally:
        await app.close()


class TestEndpoints:
    def test_health_metrics_stats(self):
        async def body():
            async with running_app() as app:
                status, _, doc = await _request(app.port, "GET",
                                                "/v1/healthz")
                assert (status, doc) == (200, {"status": "ok"})
                status, _, metrics = await _request(app.port, "GET",
                                                    "/v1/metrics")
                assert status == 200 and isinstance(metrics, dict)
                status, _, stats = await _request(app.port, "GET",
                                                  "/v1/stats")
                assert status == 200 and stats["requests"] == 0

        asyncio.run(body())

    def test_submit_wait_returns_finished_job(self):
        async def body():
            async with running_app() as app:
                status, _, doc = await _request(
                    app.port, "POST", "/v1/jobs",
                    {"kind": "distance",
                     "params": {"pairs": [[1.0, 2.0]]}, "wait": 30})
                assert status == 200
                assert doc["state"] == "done"
                assert len(doc["result"]["measures"]) == 1

        asyncio.run(body())

    def test_submit_then_long_poll(self):
        async def body():
            async with running_app() as app:
                status, _, doc = await _request(
                    app.port, "POST", "/v1/jobs",
                    {"kind": "factor", "params": {"n": 21}})
                assert status == 202 and doc["state"] in ("queued",
                                                          "running")
                status, _, final = await _request(
                    app.port, "GET", "/v1/jobs/%s?wait=30" % doc["id"])
                assert status == 200 and final["state"] == "done"
                assert final["result"]["factors"] == [3, 7]

        asyncio.run(body())

    def test_keep_alive_serves_multiple_requests(self):
        async def body():
            async with running_app() as app:
                conn = await asyncio.open_connection("127.0.0.1",
                                                     app.port)
                try:
                    for _ in range(3):
                        status, _, doc = await _request(
                            app.port, "GET", "/v1/healthz", reuse=conn)
                        assert status == 200 and doc["status"] == "ok"
                finally:
                    conn[1].close()

        asyncio.run(body())

    def test_identical_concurrent_http_requests_one_execution(self):
        async def body():
            async with running_app() as app:
                request = {"kind": "distance",
                           "params": {"pairs": [[2.0, 3.0], [4.0, 5.0]]},
                           "wait": 30}
                responses = await asyncio.gather(*(
                    _request(app.port, "POST", "/v1/jobs", request)
                    for _ in range(6)))
                measures = [doc["result"]["measures"]
                            for status, _, doc in responses]
                assert all(status == 200 for status, _, _ in responses)
                assert all(m == measures[0] for m in measures)
                _, _, stats = await _request(app.port, "GET", "/v1/stats")
                # However the six submissions interleaved with dispatch,
                # exactly one kernel execution happened; everyone else
                # coalesced onto it or replayed the stored result.
                assert stats["executions"] == 1
                assert stats["coalesced"] + stats["cache_hits"] == 5

        asyncio.run(body())


class TestErrors:
    def test_validation_error_is_400(self):
        async def body():
            async with running_app() as app:
                status, _, doc = await _request(
                    app.port, "POST", "/v1/jobs",
                    {"kind": "factor", "params": {"n": 2}})
                assert status == 400 and "must be in [4," in doc["error"]
                status, _, doc = await _request(
                    app.port, "POST", "/v1/jobs", {"kind": "nope"})
                assert status == 400

        asyncio.run(body())

    def test_unknown_job_is_404_and_bad_method_405(self):
        async def body():
            async with running_app() as app:
                status, _, _doc = await _request(app.port, "GET",
                                                 "/v1/jobs/job-999999")
                assert status == 404
                status, _, _doc = await _request(app.port, "GET",
                                                 "/v1/jobs")
                assert status == 405
                status, _, _doc = await _request(app.port, "POST",
                                                 "/v1/healthz", {})
                assert status == 405
                status, _, _doc = await _request(app.port, "GET",
                                                 "/v1/nothing")
                assert status == 404

        asyncio.run(body())

    def test_malformed_json_is_400(self):
        async def body():
            async with running_app() as app:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port)
                writer.write(b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
                             b"Content-Length: 5\r\n\r\n{oops")
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                assert b" 400 " in head.split(b"\r\n")[0]
                writer.close()

        asyncio.run(body())

    def test_oversized_body_is_413(self):
        async def body():
            async with running_app() as app:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port)
                writer.write(b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
                             b"Content-Length: 999999999\r\n\r\n")
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                assert b" 413 " in head.split(b"\r\n")[0]
                writer.close()

        asyncio.run(body())

    def test_backpressure_is_429_with_retry_after(self):
        async def body():
            async with running_app(queue_depth=1) as app:
                # Park the dispatchers so admitted jobs stay queued and
                # the depth bound is what answers the second request.
                service = app.service
                for task in service._dispatchers:
                    task.cancel()
                await asyncio.gather(*service._dispatchers,
                                     return_exceptions=True)
                service._dispatchers = []
                status, _, _doc = await _request(
                    app.port, "POST", "/v1/jobs",
                    {"kind": "factor", "params": {"n": 15}})
                assert status == 202
                status, headers, doc = await _request(
                    app.port, "POST", "/v1/jobs",
                    {"kind": "factor", "params": {"n": 21}})
                assert status == 429
                assert headers.get("retry-after") == "1"
                assert "queue is full" in doc["error"]

        asyncio.run(body())


class TestShutdown:
    def test_long_poll_resolves_during_shutdown(self):
        """A client parked on ``?wait=`` when the app closes gets an
        answer -- the failed-by-shutdown job document -- rather than a
        dropped connection, and ``close()`` itself returns instead of
        deadlocking on the handler it would otherwise wait for.
        """
        async def body():
            app = ServeApp(JobService(ServeConfig(workers=1)), port=0)
            await app.start()
            service = app.service
            # Park the dispatchers so the job stays queued; its future
            # then only resolves through the shutdown path.
            for task in service._dispatchers:
                task.cancel()
            await asyncio.gather(*service._dispatchers,
                                 return_exceptions=True)
            service._dispatchers = []
            status, _, doc = await _request(
                app.port, "POST", "/v1/jobs",
                {"kind": "factor", "params": {"n": 21}})
            assert status == 202 and doc["state"] == "queued"
            conn = await asyncio.open_connection("127.0.0.1", app.port)
            try:
                poll = asyncio.create_task(_request(
                    app.port, "GET", "/v1/jobs/%s?wait=30" % doc["id"],
                    reuse=conn))
                await asyncio.sleep(0.1)
                assert not poll.done()  # genuinely parked on the future
                await asyncio.wait_for(app.close(), 10.0)
                status, _, final = await asyncio.wait_for(poll, 5.0)
            finally:
                conn[1].close()
            assert status == 200
            assert final["state"] == "failed"
            assert "shut down" in final["error"]

        asyncio.run(body())

    def test_close_reaps_idle_keep_alive_connections(self):
        """An idle keep-alive client must not wedge ``close()``."""
        async def body():
            app = ServeApp(JobService(ServeConfig(workers=1)), port=0)
            await app.start()
            conn = await asyncio.open_connection("127.0.0.1", app.port)
            try:
                status, _, doc = await _request(app.port, "GET",
                                                "/v1/healthz", reuse=conn)
                assert status == 200 and doc["status"] == "ok"
                # The client now just sits on the open connection.
                await asyncio.wait_for(app.close(grace=0.2), 10.0)
                # The server side hung up on it.
                assert await conn[0].read(1) == b""
            finally:
                conn[1].close()

        asyncio.run(body())
