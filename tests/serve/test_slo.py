"""Tests for the declarative SLO layer: spec parsing (TOML and JSON),
burn-rate evaluation against registry snapshots, and the ``repro slo
check`` CLI's exit-code contract (0 healthy, 1 breach, 2 usage).
"""

import io
import json
import sys

import pytest

from repro.cli import main as cli_main
from repro.core import telemetry
from repro.core.exceptions import SloError
from repro.serve.slo import (
    Objective,
    SloSpec,
    SnapshotWindow,
    evaluate,
    load_slo,
    subtract_snapshots,
)

_HAS_TOMLLIB = sys.version_info >= (3, 11)


def _snapshot(latencies=(), outcomes=(), tenant="acme",
              kind="distance"):
    registry = telemetry.MetricsRegistry()
    hist = registry.histogram("serve.latency_seconds",
                              labels={"tenant": tenant, "kind": kind})
    for value in latencies:
        hist.observe(value)
        registry.histogram("serve.latency_seconds").observe(value)
    for outcome, count in outcomes:
        registry.counter("serve.outcomes",
                         labels={"tenant": tenant, "kind": kind,
                                 "outcome": outcome}).inc(count)
    return registry.snapshot()


class TestSpecParsing:
    def test_json_spec(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": [
            {"name": "lat", "kind": "distance", "latency_ms": 50.0,
             "quantile": 0.95},
            {"name": "err", "error_rate": 0.01},
        ]}))
        spec = load_slo(str(path))
        assert [obj.name for obj in spec.objectives] == ["lat", "err"]
        assert spec.objectives[0].latency_ms == 50.0
        assert spec.objectives[1].error_rate == 0.01

    @pytest.mark.skipif(not _HAS_TOMLLIB,
                        reason="tomllib needs Python 3.11+")
    def test_toml_spec(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(
            '[[objective]]\n'
            'name = "lat"\n'
            'kind = "distance"\n'
            'latency_ms = 50.0\n'
            'quantile = 0.95\n'
            '\n'
            '[[objective]]\n'
            'name = "err"\n'
            'tenant = "acme"\n'
            'error_rate = 0.01\n')
        spec = load_slo(str(path))
        assert len(spec.objectives) == 2
        assert spec.objectives[1].tenant == "acme"

    def test_invalid_json_raises_slo_error(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(SloError):
            load_slo(str(path))

    def test_objective_needs_a_target(self):
        with pytest.raises(SloError):
            Objective(name="empty")

    def test_objective_rejects_unknown_fields(self):
        with pytest.raises(SloError):
            Objective.from_dict({"name": "x", "latency_ms": 5.0,
                                 "burgers": 2})

    def test_objective_validates_ranges(self):
        with pytest.raises(SloError):
            Objective(name="x", latency_ms=-1.0)
        with pytest.raises(SloError):
            Objective(name="x", latency_ms=5.0, quantile=1.5)
        with pytest.raises(SloError):
            Objective(name="x", error_rate=0.0)

    def test_spec_needs_objectives(self):
        with pytest.raises(SloError):
            SloSpec.from_dict({"objectives": []})
        with pytest.raises(SloError):
            SloSpec.from_dict({"wrong_key": []})


class TestEvaluate:
    def _spec(self, **kwargs):
        return SloSpec([Objective(name="obj", **kwargs)])

    def test_healthy_latency(self):
        snapshot = _snapshot(latencies=[0.001, 0.002, 0.003])
        report = evaluate(self._spec(kind="distance", latency_ms=100.0,
                                     quantile=0.95), snapshot)
        assert report["ok"] is True
        latency = report["objectives"][0]["latency"]
        assert latency["observed_ms"] < 10.0
        assert latency["burn_rate"] < 1.0

    def test_breached_latency(self):
        snapshot = _snapshot(latencies=[0.5, 0.6, 0.7])
        report = evaluate(self._spec(kind="distance", latency_ms=10.0,
                                     quantile=0.95), snapshot)
        assert report["ok"] is False
        assert report["counts"]["breached"] == 1
        assert report["objectives"][0]["latency"]["burn_rate"] > 1.0

    def test_error_rate_breach(self):
        snapshot = _snapshot(outcomes=[("ok", 90), ("error", 10)])
        report = evaluate(self._spec(error_rate=0.01), snapshot)
        assert report["ok"] is False
        errors = report["objectives"][0]["errors"]
        assert errors["observed_rate"] == pytest.approx(0.1)
        assert errors["burn_rate"] == pytest.approx(10.0)

    def test_error_rate_healthy(self):
        snapshot = _snapshot(outcomes=[("ok", 999), ("error", 1)])
        report = evaluate(self._spec(error_rate=0.01), snapshot)
        assert report["ok"] is True

    def test_tenant_filter_scopes_the_merge(self):
        registry = telemetry.MetricsRegistry()
        for tenant, value in (("fast", 0.001), ("slow", 5.0)):
            registry.histogram(
                "serve.latency_seconds",
                labels={"tenant": tenant,
                        "kind": "distance"}).observe(value)
        snapshot = registry.snapshot()
        fast = evaluate(self._spec(tenant="fast", latency_ms=100.0),
                        snapshot)
        slow = evaluate(self._spec(tenant="slow", latency_ms=100.0),
                        snapshot)
        assert fast["ok"] is True
        assert slow["ok"] is False

    def test_no_matching_traffic_is_ok_with_null_observation(self):
        report = evaluate(self._spec(kind="solve", latency_ms=10.0),
                          _snapshot(latencies=[9.0]))
        assert report["ok"] is True
        assert report["objectives"][0]["latency"]["observed_ms"] is None

    def test_unlabeled_fallback_only_without_filters(self):
        registry = telemetry.MetricsRegistry()
        registry.histogram("serve.latency_seconds").observe(5.0)
        snapshot = registry.snapshot()
        unfiltered = evaluate(self._spec(latency_ms=10.0), snapshot)
        assert unfiltered["objectives"][0]["latency"]["observed_ms"] \
            is not None
        filtered = evaluate(self._spec(kind="distance",
                                       latency_ms=10.0), snapshot)
        assert filtered["objectives"][0]["latency"]["observed_ms"] is None


class TestWindowedEvaluate:
    """``window_s`` burn rates: the delta-snapshot algebra plus the
    window-edge contract (lifetime -> partial -> windowed, and old
    traffic aging out of the window).  All timelines are synthetic --
    ``now=`` drives the clock, nothing sleeps.
    """

    def _spec(self, **kwargs):
        kwargs.setdefault("window_s", 300.0)
        return SloSpec([Objective(name="win", **kwargs)])

    def test_window_s_parses_and_describes(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": [
            {"name": "w", "latency_ms": 50.0, "window_s": 60.0}]}))
        spec = load_slo(str(path))
        assert spec.objectives[0].window_s == 60.0
        assert spec.objectives[0].describe()["window_s"] == 60.0

    def test_window_s_must_be_positive(self):
        with pytest.raises(SloError):
            Objective(name="w", latency_ms=5.0, window_s=0.0)
        with pytest.raises(SloError):
            Objective(name="w", latency_ms=5.0, window_s=-1.0)

    def test_no_history_reports_lifetime_mode(self):
        snapshot = _snapshot(outcomes=[("ok", 9), ("error", 1)])
        report = evaluate(self._spec(error_rate=0.5), snapshot,
                          window=SnapshotWindow(), now=100.0)
        window = report["objectives"][0]["window"]
        assert window["mode"] == "lifetime"
        assert window["span_s"] is None
        # Lifetime numbers still rate: 1/10 <= 0.5.
        assert report["ok"] is True

    def test_partial_window_reports_actual_span(self):
        window = SnapshotWindow()
        window.record(_snapshot(outcomes=[("ok", 10)]), now=0.0)
        snapshot = _snapshot(outcomes=[("ok", 15)])
        report = evaluate(self._spec(error_rate=0.5), snapshot,
                          window=window, now=100.0)
        info = report["objectives"][0]["window"]
        assert info["mode"] == "partial"
        assert info["span_s"] == pytest.approx(100.0)
        # The delta against the oldest sample still applies.
        assert report["objectives"][0]["errors"]["total"] == 5

    def test_old_errors_age_out_of_the_window(self):
        # 10 errors before the baseline, clean traffic after: lifetime
        # view breaches, windowed view is healthy.
        window = SnapshotWindow()
        dirty = _snapshot(outcomes=[("ok", 0), ("error", 10)])
        window.record(dirty, now=0.0)
        current = _snapshot(outcomes=[("ok", 100), ("error", 10)])
        lifetime = evaluate(SloSpec([Objective(name="life",
                                               error_rate=0.05)]),
                            current)
        assert lifetime["ok"] is False
        windowed = evaluate(self._spec(error_rate=0.05), current,
                            window=window, now=400.0)
        assert windowed["objectives"][0]["window"]["mode"] == "windowed"
        assert windowed["objectives"][0]["errors"]["errors"] == 0
        assert windowed["ok"] is True

    def test_newest_qualifying_sample_is_the_baseline(self):
        window = SnapshotWindow()
        window.record(_snapshot(outcomes=[("ok", 10)]), now=0.0)
        window.record(_snapshot(outcomes=[("ok", 30)]), now=100.0)
        window.record(_snapshot(outcomes=[("ok", 60)]), now=350.0)
        snapshot = _snapshot(outcomes=[("ok", 100)])
        report = evaluate(self._spec(error_rate=0.5), snapshot,
                          window=window, now=400.0)
        info = report["objectives"][0]["window"]
        # now=400, window=300: t=100 qualifies (age 300), t=350 does
        # not (age 50); the t=100 sample is the tightest baseline.
        assert info["mode"] == "windowed"
        assert info["span_s"] == pytest.approx(300.0)
        assert report["objectives"][0]["errors"]["total"] == 70

    def test_windowed_latency_quantile_recomputed_from_delta(self):
        window = SnapshotWindow()
        window.record(_snapshot(latencies=[0.001] * 98), now=0.0)
        current = _snapshot(latencies=[0.001] * 98 + [0.5] * 2)
        spec = self._spec(kind="distance", latency_ms=100.0,
                          quantile=0.95)
        lifetime = evaluate(spec, current)
        windowed = evaluate(spec, current, window=window, now=400.0)
        # Lifetime p95 sits in the fast mass (98 of 100 samples);
        # the window contains only the 2 slow ones.
        assert lifetime["objectives"][0]["latency"]["observed_ms"] < 100.0
        assert windowed["objectives"][0]["latency"]["observed_ms"] > 100.0
        assert windowed["ok"] is False

    def test_unwindowed_objective_has_no_window_block(self):
        snapshot = _snapshot(outcomes=[("ok", 10)])
        spec = SloSpec([Objective(name="plain", error_rate=0.5)])
        report = evaluate(spec, snapshot, window=SnapshotWindow(),
                          now=10.0)
        assert "window" not in report["objectives"][0]

    def test_ring_is_bounded(self):
        window = SnapshotWindow(max_samples=4)
        for tick in range(10):
            window.record({"n": {"kind": "counter", "value": tick}},
                          now=float(tick))
        assert len(window) == 4
        baseline, span, mode = window.baseline(2.0, now=10.0)
        assert mode == "windowed"
        assert baseline["n"]["value"] == 8  # newest sample >= 2s old

    def test_subtract_clamps_registry_resets(self):
        # A restarted registry makes current < baseline; deltas clamp
        # at zero instead of going negative.
        baseline = _snapshot(outcomes=[("ok", 50), ("error", 5)])
        current = _snapshot(outcomes=[("ok", 10), ("error", 1)])
        delta = subtract_snapshots(current, baseline)
        for entry in delta.values():
            if entry.get("kind") == "counter":
                assert entry["value"] >= 0

    def test_subtract_passes_through_new_metrics(self):
        baseline = _snapshot(outcomes=[("ok", 5)])
        current = dict(_snapshot(outcomes=[("ok", 9)]))
        current["fresh.counter"] = {"kind": "counter", "value": 3}
        delta = subtract_snapshots(current, baseline)
        assert delta["fresh.counter"]["value"] == 3


class TestSloCheckCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def _spec_path(self, tmp_path, latency_ms):
        return self._write(tmp_path, "spec.json", {"objectives": [
            {"name": "lat", "kind": "distance",
             "latency_ms": latency_ms, "quantile": 0.95}]})

    def test_exit_zero_when_healthy(self, tmp_path):
        snapshot = self._write(tmp_path, "snap.json",
                               _snapshot(latencies=[0.001, 0.002]))
        out = io.StringIO()
        code = cli_main(["slo", "check", snapshot,
                         "--spec", self._spec_path(tmp_path, 1000.0)],
                        out=out)
        assert code == 0
        assert "ok" in out.getvalue()

    def test_exit_one_on_breach(self, tmp_path):
        snapshot = self._write(tmp_path, "snap.json",
                               _snapshot(latencies=[0.5, 0.6]))
        out = io.StringIO()
        code = cli_main(["slo", "check", snapshot,
                         "--spec", self._spec_path(tmp_path, 1.0)],
                        out=out)
        assert code == 1
        assert "BREACH" in out.getvalue()

    def test_exit_two_on_missing_snapshot(self, tmp_path):
        out = io.StringIO()
        code = cli_main(["slo", "check", str(tmp_path / "nope.json"),
                         "--spec", self._spec_path(tmp_path, 1.0)],
                        out=out)
        assert code == 2

    def test_exit_two_on_bad_spec(self, tmp_path):
        snapshot = self._write(tmp_path, "snap.json", _snapshot())
        bad_spec = self._write(tmp_path, "bad.json", {"objectives": []})
        out = io.StringIO()
        assert cli_main(["slo", "check", snapshot,
                         "--spec", bad_spec], out=out) == 2

    def test_exit_two_on_non_snapshot_json(self, tmp_path):
        not_snapshot = self._write(tmp_path, "x.json",
                                   {"hello": "world"})
        out = io.StringIO()
        code = cli_main(["slo", "check", not_snapshot,
                         "--spec", self._spec_path(tmp_path, 1.0)],
                        out=out)
        assert code == 2
        assert "not a metrics snapshot" in out.getvalue()

    def test_benchmark_results_file_accepted(self, tmp_path):
        wrapped = self._write(tmp_path, "bench.json", {
            "name": "serve_throughput",
            "telemetry": _snapshot(latencies=[0.001])})
        out = io.StringIO()
        assert cli_main(["slo", "check", wrapped,
                         "--spec", self._spec_path(tmp_path, 1000.0)],
                        out=out) == 0
