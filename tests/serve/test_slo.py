"""Tests for the declarative SLO layer: spec parsing (TOML and JSON),
burn-rate evaluation against registry snapshots, and the ``repro slo
check`` CLI's exit-code contract (0 healthy, 1 breach, 2 usage).
"""

import io
import json
import sys

import pytest

from repro.cli import main as cli_main
from repro.core import telemetry
from repro.core.exceptions import SloError
from repro.serve.slo import Objective, SloSpec, evaluate, load_slo

_HAS_TOMLLIB = sys.version_info >= (3, 11)


def _snapshot(latencies=(), outcomes=(), tenant="acme",
              kind="distance"):
    registry = telemetry.MetricsRegistry()
    hist = registry.histogram("serve.latency_seconds",
                              labels={"tenant": tenant, "kind": kind})
    for value in latencies:
        hist.observe(value)
        registry.histogram("serve.latency_seconds").observe(value)
    for outcome, count in outcomes:
        registry.counter("serve.outcomes",
                         labels={"tenant": tenant, "kind": kind,
                                 "outcome": outcome}).inc(count)
    return registry.snapshot()


class TestSpecParsing:
    def test_json_spec(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"objectives": [
            {"name": "lat", "kind": "distance", "latency_ms": 50.0,
             "quantile": 0.95},
            {"name": "err", "error_rate": 0.01},
        ]}))
        spec = load_slo(str(path))
        assert [obj.name for obj in spec.objectives] == ["lat", "err"]
        assert spec.objectives[0].latency_ms == 50.0
        assert spec.objectives[1].error_rate == 0.01

    @pytest.mark.skipif(not _HAS_TOMLLIB,
                        reason="tomllib needs Python 3.11+")
    def test_toml_spec(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(
            '[[objective]]\n'
            'name = "lat"\n'
            'kind = "distance"\n'
            'latency_ms = 50.0\n'
            'quantile = 0.95\n'
            '\n'
            '[[objective]]\n'
            'name = "err"\n'
            'tenant = "acme"\n'
            'error_rate = 0.01\n')
        spec = load_slo(str(path))
        assert len(spec.objectives) == 2
        assert spec.objectives[1].tenant == "acme"

    def test_invalid_json_raises_slo_error(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(SloError):
            load_slo(str(path))

    def test_objective_needs_a_target(self):
        with pytest.raises(SloError):
            Objective(name="empty")

    def test_objective_rejects_unknown_fields(self):
        with pytest.raises(SloError):
            Objective.from_dict({"name": "x", "latency_ms": 5.0,
                                 "burgers": 2})

    def test_objective_validates_ranges(self):
        with pytest.raises(SloError):
            Objective(name="x", latency_ms=-1.0)
        with pytest.raises(SloError):
            Objective(name="x", latency_ms=5.0, quantile=1.5)
        with pytest.raises(SloError):
            Objective(name="x", error_rate=0.0)

    def test_spec_needs_objectives(self):
        with pytest.raises(SloError):
            SloSpec.from_dict({"objectives": []})
        with pytest.raises(SloError):
            SloSpec.from_dict({"wrong_key": []})


class TestEvaluate:
    def _spec(self, **kwargs):
        return SloSpec([Objective(name="obj", **kwargs)])

    def test_healthy_latency(self):
        snapshot = _snapshot(latencies=[0.001, 0.002, 0.003])
        report = evaluate(self._spec(kind="distance", latency_ms=100.0,
                                     quantile=0.95), snapshot)
        assert report["ok"] is True
        latency = report["objectives"][0]["latency"]
        assert latency["observed_ms"] < 10.0
        assert latency["burn_rate"] < 1.0

    def test_breached_latency(self):
        snapshot = _snapshot(latencies=[0.5, 0.6, 0.7])
        report = evaluate(self._spec(kind="distance", latency_ms=10.0,
                                     quantile=0.95), snapshot)
        assert report["ok"] is False
        assert report["counts"]["breached"] == 1
        assert report["objectives"][0]["latency"]["burn_rate"] > 1.0

    def test_error_rate_breach(self):
        snapshot = _snapshot(outcomes=[("ok", 90), ("error", 10)])
        report = evaluate(self._spec(error_rate=0.01), snapshot)
        assert report["ok"] is False
        errors = report["objectives"][0]["errors"]
        assert errors["observed_rate"] == pytest.approx(0.1)
        assert errors["burn_rate"] == pytest.approx(10.0)

    def test_error_rate_healthy(self):
        snapshot = _snapshot(outcomes=[("ok", 999), ("error", 1)])
        report = evaluate(self._spec(error_rate=0.01), snapshot)
        assert report["ok"] is True

    def test_tenant_filter_scopes_the_merge(self):
        registry = telemetry.MetricsRegistry()
        for tenant, value in (("fast", 0.001), ("slow", 5.0)):
            registry.histogram(
                "serve.latency_seconds",
                labels={"tenant": tenant,
                        "kind": "distance"}).observe(value)
        snapshot = registry.snapshot()
        fast = evaluate(self._spec(tenant="fast", latency_ms=100.0),
                        snapshot)
        slow = evaluate(self._spec(tenant="slow", latency_ms=100.0),
                        snapshot)
        assert fast["ok"] is True
        assert slow["ok"] is False

    def test_no_matching_traffic_is_ok_with_null_observation(self):
        report = evaluate(self._spec(kind="solve", latency_ms=10.0),
                          _snapshot(latencies=[9.0]))
        assert report["ok"] is True
        assert report["objectives"][0]["latency"]["observed_ms"] is None

    def test_unlabeled_fallback_only_without_filters(self):
        registry = telemetry.MetricsRegistry()
        registry.histogram("serve.latency_seconds").observe(5.0)
        snapshot = registry.snapshot()
        unfiltered = evaluate(self._spec(latency_ms=10.0), snapshot)
        assert unfiltered["objectives"][0]["latency"]["observed_ms"] \
            is not None
        filtered = evaluate(self._spec(kind="distance",
                                       latency_ms=10.0), snapshot)
        assert filtered["objectives"][0]["latency"]["observed_ms"] is None


class TestSloCheckCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def _spec_path(self, tmp_path, latency_ms):
        return self._write(tmp_path, "spec.json", {"objectives": [
            {"name": "lat", "kind": "distance",
             "latency_ms": latency_ms, "quantile": 0.95}]})

    def test_exit_zero_when_healthy(self, tmp_path):
        snapshot = self._write(tmp_path, "snap.json",
                               _snapshot(latencies=[0.001, 0.002]))
        out = io.StringIO()
        code = cli_main(["slo", "check", snapshot,
                         "--spec", self._spec_path(tmp_path, 1000.0)],
                        out=out)
        assert code == 0
        assert "ok" in out.getvalue()

    def test_exit_one_on_breach(self, tmp_path):
        snapshot = self._write(tmp_path, "snap.json",
                               _snapshot(latencies=[0.5, 0.6]))
        out = io.StringIO()
        code = cli_main(["slo", "check", snapshot,
                         "--spec", self._spec_path(tmp_path, 1.0)],
                        out=out)
        assert code == 1
        assert "BREACH" in out.getvalue()

    def test_exit_two_on_missing_snapshot(self, tmp_path):
        out = io.StringIO()
        code = cli_main(["slo", "check", str(tmp_path / "nope.json"),
                         "--spec", self._spec_path(tmp_path, 1.0)],
                        out=out)
        assert code == 2

    def test_exit_two_on_bad_spec(self, tmp_path):
        snapshot = self._write(tmp_path, "snap.json", _snapshot())
        bad_spec = self._write(tmp_path, "bad.json", {"objectives": []})
        out = io.StringIO()
        assert cli_main(["slo", "check", snapshot,
                         "--spec", bad_spec], out=out) == 2

    def test_exit_two_on_non_snapshot_json(self, tmp_path):
        not_snapshot = self._write(tmp_path, "x.json",
                                   {"hello": "world"})
        out = io.StringIO()
        code = cli_main(["slo", "check", not_snapshot,
                         "--spec", self._spec_path(tmp_path, 1.0)],
                        out=out)
        assert code == 2
        assert "not a metrics snapshot" in out.getvalue()

    def test_benchmark_results_file_accepted(self, tmp_path):
        wrapped = self._write(tmp_path, "bench.json", {
            "name": "serve_throughput",
            "telemetry": _snapshot(latencies=[0.001])})
        out = io.StringIO()
        assert cli_main(["slo", "check", wrapped,
                         "--spec", self._spec_path(tmp_path, 1000.0)],
                        out=out) == 0
