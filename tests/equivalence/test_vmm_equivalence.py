"""Differential equivalence: tiled/batched analog VMM vs naive MACs.

``TiledVmm.multiply`` must equal :meth:`TiledVmm.naive_multiply` (fresh
per-tile conductance matrices, per-MAC accumulation) bit for bit, and
the batch paths must equal a Python loop over the scalar ``multiply``
with one shared generator -- ``np.array_equal`` throughout.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rngs import make_rng
from repro.inmemory.vmm import AnalogVmm, TiledVmm

BATCH_SIZES = [1, 2, 7, 33]


def random_weights(seed, shape=(6, 5), dtype="float64"):
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=shape).astype(dtype)


class TestTiledVsNaive:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), tile_size=st.sampled_from([1, 2, 4]),
           variability=st.sampled_from([0.0, 0.05]),
           noise=st.sampled_from([0.0, 0.02]))
    def test_tiled_multiply_matches_naive(self, seed, tile_size,
                                          variability, noise):
        weights = random_weights(seed)
        tiled = TiledVmm(weights, tile_size=tile_size,
                         variability=variability, rng=seed)
        vector = np.linspace(-1.0, 1.0, weights.shape[0])
        fast = tiled.multiply(vector, noise_sigma=noise, rng=make_rng(3))
        naive = tiled.naive_multiply(vector, noise_sigma=noise,
                                     rng=make_rng(3))
        assert np.array_equal(fast, naive)

    @settings(max_examples=6, deadline=None)
    @given(dtype=st.sampled_from(["float64", "float32"]),
           vec_dtype=st.sampled_from(["float64", "float32", "int64"]))
    def test_bit_identity_across_input_dtypes(self, dtype, vec_dtype):
        # inputs of any dtype coerce to float64 once; both paths must see
        # the same coerced values
        weights = random_weights(9, dtype=dtype)
        tiled = TiledVmm(weights, tile_size=2, variability=0.03, rng=1)
        rng = np.random.default_rng(4)
        vector = (rng.uniform(-5.0, 5.0, size=weights.shape[0]) * 10) \
            .astype(vec_dtype)
        fast = tiled.multiply(vector, noise_sigma=0.01, rng=make_rng(5))
        naive = tiled.naive_multiply(vector, noise_sigma=0.01,
                                     rng=make_rng(5))
        assert np.array_equal(fast, naive)

    def test_uneven_tile_edges(self):
        # 7x5 with tile_size=3 leaves ragged edge tiles
        weights = random_weights(2, shape=(7, 5))
        tiled = TiledVmm(weights, tile_size=3, variability=0.02, rng=0)
        vector = np.linspace(-2.0, 2.0, 7)
        assert np.array_equal(tiled.multiply(vector),
                              tiled.naive_multiply(vector))


class TestBatchVsLoopedMultiply:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), batch=st.sampled_from(BATCH_SIZES),
           noise=st.sampled_from([0.0, 0.02]))
    def test_analog_vmm_batch_matches_loop(self, seed, batch, noise):
        weights = random_weights(seed)
        vmm = AnalogVmm(weights, variability=0.05, rng=seed)
        vectors = np.random.default_rng(seed + 1).uniform(
            -1.0, 1.0, size=(batch, weights.shape[0]))
        batched = vmm.multiply_batch(vectors, noise_sigma=noise,
                                     rng=make_rng(7))
        loop_rng = make_rng(7)
        looped = np.stack([vmm.multiply(row, noise_sigma=noise,
                                        rng=loop_rng)
                           for row in vectors])
        assert np.array_equal(batched, looped)

    @settings(max_examples=5, deadline=None)
    @given(batch=st.sampled_from(BATCH_SIZES))
    def test_tiled_vmm_batch_matches_loop(self, batch):
        weights = random_weights(6)
        tiled = TiledVmm(weights, tile_size=2, variability=0.04, rng=2)
        vectors = np.random.default_rng(8).uniform(
            -1.0, 1.0, size=(batch, weights.shape[0]))
        batched = tiled.multiply_batch(vectors, noise_sigma=0.01,
                                       rng=make_rng(9))
        loop_rng = make_rng(9)
        looped = np.stack([tiled.multiply(row, noise_sigma=0.01,
                                          rng=loop_rng)
                           for row in vectors])
        assert np.array_equal(batched, looped)

    def test_zero_vector_row_uses_unit_scale(self):
        # the `or 1.0` full-scale fallback must fire identically in both
        # paths when a row is all zeros
        weights = random_weights(5)
        vmm = AnalogVmm(weights, rng=0)
        vectors = np.zeros((3, weights.shape[0]))
        vectors[1] = np.linspace(-1.0, 1.0, weights.shape[0])
        batched = vmm.multiply_batch(vectors)
        looped = np.stack([vmm.multiply(row) for row in vectors])
        assert np.array_equal(batched, looped)
