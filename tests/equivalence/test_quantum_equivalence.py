"""Differential equivalence: batched shot execution vs the scalar path.

The contract under test is *bit identity* (``np.array_equal`` /
``==`` on ints and floats, never ``allclose``): the prefix-tree shot
batcher in :meth:`MicroArchitecture.execute_shots` must reproduce the
looped scalar interpreter outcome-for-outcome, amplitude-for-amplitude,
and the runtime built on it must return identical histograms for every
worker count.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parallel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.microarch import MicroArchitecture, assemble
from repro.quantum.runtime import QuantumRuntime

SHOT_COUNTS = [1, 2, 7, 33]


def random_circuit(num_qubits, depth, seed, mid_measure):
    """A random ISA circuit with optional mid-circuit measurement."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(depth):
        kind = int(rng.integers(0, 6))
        q = int(rng.integers(0, num_qubits))
        if kind == 0:
            circuit.h(q)
        elif kind == 1:
            circuit.rx(q, float(rng.uniform(0.0, 3.0)))
        elif kind == 2:
            circuit.t(q)
        elif kind == 3:
            circuit.rz(q, float(rng.uniform(0.0, 3.0)))
        elif kind == 4 and num_qubits > 1:
            other = int(rng.integers(0, num_qubits))
            if other != q:
                circuit.cnot(q, other)
        else:
            circuit.permutation([1, 0], [q])
    if mid_measure:
        circuit.measure(0, "mid")
        circuit.h(num_qubits - 1)
    circuit.measure_all()
    return circuit


def assert_results_identical(reference, batched):
    assert len(reference) == len(batched)
    for ref, bat in zip(reference, batched):
        assert ref.classical_bits == bat.classical_bits
        # insertion order matters: it breaks most_common ties downstream
        assert list(ref.classical_bits) == list(bat.classical_bits)
        assert np.array_equal(ref.state.amplitudes, bat.state.amplitudes)
        assert ref.instructions_executed == bat.instructions_executed
        assert ref.elapsed_ns == bat.elapsed_ns
        assert ref.coherence_exceeded == bat.coherence_exceeded


class TestExecuteShotsBitIdentity:
    @settings(max_examples=20, deadline=None)
    @given(num_qubits=st.integers(1, 4), seed=st.integers(0, 2 ** 16),
           shots=st.sampled_from(SHOT_COUNTS),
           mid_measure=st.booleans())
    def test_unfused_matches_looped_execute(self, num_qubits, seed, shots,
                                            mid_measure):
        circuit = random_circuit(num_qubits, 16, seed, mid_measure)
        program = assemble(circuit)
        microarch = MicroArchitecture(num_qubits)
        loop_rng = np.random.default_rng(seed + 1)
        reference = [microarch.execute(program, rng=loop_rng)
                     for _ in range(shots)]
        batch_rng = np.random.default_rng(seed + 1)
        batched = microarch.execute_shots(program, shots, rng=batch_rng,
                                          fuse=False)
        assert_results_identical(reference, batched)
        # both paths must leave the generator in the same state
        assert loop_rng.bit_generator.state == batch_rng.bit_generator.state

    @settings(max_examples=10, deadline=None)
    @given(num_qubits=st.integers(1, 3), seed=st.integers(0, 2 ** 16),
           shots=st.sampled_from(SHOT_COUNTS))
    def test_fused_tree_matches_fused_per_shot_sweep(self, num_qubits,
                                                     seed, shots):
        circuit = random_circuit(num_qubits, 16, seed, True)
        program = assemble(circuit)
        microarch = MicroArchitecture(num_qubits)
        tree = microarch.execute_shots(program, shots,
                                       rng=np.random.default_rng(3))
        # forcing the budget to zero exercises the unmemoized fallback,
        # which must consume the identical pre-drawn uniform stream
        # (plain try/finally instead of monkeypatch: hypothesis forbids
        # function-scoped fixtures inside @given)
        microarch.PREFIX_TREE_BUDGET = 0
        try:
            flat = microarch.execute_shots(program, shots,
                                           rng=np.random.default_rng(3))
        finally:
            del microarch.PREFIX_TREE_BUDGET
        assert_results_identical(tree, flat)

    def test_zero_shots(self):
        circuit = random_circuit(2, 6, 0, False)
        microarch = MicroArchitecture(2)
        assert microarch.execute_shots(assemble(circuit), 0, rng=1) == []

    def test_branchy_program_falls_back_to_scalar(self):
        from repro.quantum.microarch import Instruction

        # a branch makes the program non-straight-line, so execute_shots
        # must refuse to batch and loop the scalar interpreter instead
        base = assemble(QuantumCircuit(1).h(0).measure(0).h(0).measure(0))
        branchy = base[:-1] + [
            Instruction("branch", condition=("c0", 2), target=0),
            base[-1]]
        microarch = MicroArchitecture(1)
        loop_rng = np.random.default_rng(5)
        reference = [microarch.execute(branchy, rng=loop_rng)
                     for _ in range(3)]
        batched = microarch.execute_shots(branchy, 3,
                                          rng=np.random.default_rng(5))
        assert_results_identical(reference, batched)


class TestRuntimeWorkerStability:
    def test_counts_identical_across_workers_1_2_auto(self):
        circuit = random_circuit(3, 12, 11, True)
        results = {}
        for workers in (1, 2, "auto"):
            runtime = QuantumRuntime(MicroArchitecture(3))
            results[workers] = runtime.run(circuit, shots=64, rng=42,
                                           workers=workers, chunk_size=16)
        for workers in (2, "auto"):
            assert results[workers].counts == results[1].counts
            # dict order feeds most_common tie-breaks: pin it too
            assert list(results[workers].counts) == list(results[1].counts)
            assert (results[workers].total_chip_time_ns
                    == results[1].total_chip_time_ns)

    def test_serial_fast_path_unchanged_by_batching(self):
        # the workers=1 / chunk_size=None fast path draws one stream;
        # the batcher must reproduce it exactly
        circuit = random_circuit(2, 10, 7, False)
        runtime = QuantumRuntime(MicroArchitecture(2))
        first = runtime.run(circuit, shots=48, rng=9)
        second = runtime.run(circuit, shots=48, rng=9)
        assert first.counts == second.counts
        assert list(first.counts) == list(second.counts)

    def test_cache_meta_stable_across_worker_counts(self):
        from repro.core import cache as result_cache

        circuit = random_circuit(2, 8, 3, False)
        runtime = QuantumRuntime(MicroArchitecture(2))
        cbits = [op.cbit for op in circuit.measure_ops]
        sizes = parallel.chunk_sizes(64, 16)
        meta = runtime._cache_meta(circuit, 64, cbits, 42, sizes=sizes)
        again = runtime._cache_meta(circuit, 64, cbits, 42, sizes=sizes)
        # the fingerprint has no worker-count input at all
        assert result_cache.digest(meta) == result_cache.digest(again)

    def test_checkpoint_resumes_across_worker_counts(self, tmp_path):
        path = str(tmp_path / "shots.ckpt")
        circuit = random_circuit(2, 10, 5, False)
        full = QuantumRuntime(MicroArchitecture(2)).run(
            circuit, shots=48, rng=4, workers=1, chunk_size=12)
        partial = QuantumRuntime(MicroArchitecture(2)).run(
            circuit, shots=48, rng=4, workers=1, chunk_size=12,
            checkpoint=path)
        resumed = QuantumRuntime(MicroArchitecture(2)).run(
            circuit, shots=48, rng=4, workers=2, chunk_size=12,
            resume_from=path)
        assert partial.counts == full.counts
        assert resumed.counts == full.counts
