"""Differential equivalence: batched oscillator sweeps vs scalar measures.

``measure_batch`` must equal a Python loop over :meth:`measure` bit for
bit (``np.array_equal``), in both operating modes, and ``measure_pairs``
must return identical values for every worker count and chunking.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oscillators.distance import OscillatorDistanceUnit

ARRAY_SIZES = [1, 2, 7, 64]


def intensity_arrays(seed, size, dtype):
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.0, 255.0, size=size)
    b = rng.uniform(0.0, 255.0, size=size)
    if np.issubdtype(np.dtype(dtype), np.integer):
        return a.astype(dtype), b.astype(dtype)
    return a.astype(dtype), b.astype(dtype)


class TestMeasureBatchBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), size=st.sampled_from(ARRAY_SIZES),
           dtype=st.sampled_from(["float64", "float32", "int64", "uint8"]),
           exponent=st.sampled_from([1.0, 1.6, 2.0]))
    def test_behavioral_matches_scalar_loop(self, seed, size, dtype,
                                            exponent):
        unit = OscillatorDistanceUnit(norm_exponent=exponent)
        a, b = intensity_arrays(seed, size, dtype)
        batched = unit.measure_batch(a, b)
        scalar = np.array([unit.measure(x, y) for x, y in zip(a, b)])
        assert np.array_equal(batched, scalar)

    def test_behavioral_matches_scalar_on_2d_arrays(self):
        unit = OscillatorDistanceUnit()
        a, b = intensity_arrays(3, (4, 5), "float64")
        batched = unit.measure_batch(a, b)
        scalar = np.array([[unit.measure(x, y) for x, y in zip(ra, rb)]
                           for ra, rb in zip(a, b)])
        assert batched.shape == (4, 5)
        assert np.array_equal(batched, scalar)

    def test_physical_fallback_matches_scalar_loop(self):
        # physical mode has no dense form; the batch API must still give
        # exactly the scalar ODE answers (few pairs, short sim: it's slow)
        unit = OscillatorDistanceUnit(mode="physical", cycles=10)
        a = np.array([10.0, 128.0, 200.0])
        b = np.array([12.0, 128.0, 100.0])
        batched = unit.measure_batch(a, b)
        scalar = np.array([unit.measure(x, y) for x, y in zip(a, b)])
        assert np.array_equal(batched, scalar)

    def test_identical_intensities_measure_baseline(self):
        unit = OscillatorDistanceUnit(behavioral_baseline=0.125)
        values = np.array([0.0, 17.0, 255.0])
        assert np.array_equal(unit.measure_batch(values, values),
                              np.full(3, 0.125))


class TestMeasurePairsWorkerStability:
    def pairs(self, count=40, seed=11):
        rng = np.random.default_rng(seed)
        return [(float(a), float(b))
                for a, b in rng.uniform(0.0, 255.0, size=(count, 2))]

    def test_identical_across_workers_1_2_auto(self):
        unit = OscillatorDistanceUnit()
        pairs = self.pairs()
        serial = unit.measure_pairs(pairs)
        for workers, chunk_size in ((1, 10), (2, 10), ("auto", 10),
                                    (2, 7), (2, 1)):
            chunked = unit.measure_pairs(pairs, workers=workers,
                                         chunk_size=chunk_size)
            assert chunked == serial, (workers, chunk_size)

    def test_matches_scalar_measure_loop(self):
        unit = OscillatorDistanceUnit()
        pairs = self.pairs(count=9)
        assert unit.measure_pairs(pairs) \
            == [unit.measure(a, b) for a, b in pairs]
