"""Differential equivalence: batched DMM ensembles vs the scalar system.

``BatchedDmm.rhs_batch`` must reproduce :meth:`DmmSystem.rhs` row for
row, ``euler_clip_advance`` must match a hand-rolled Euler-plus-clip
loop, and ``solve_ensemble`` must return the same solve-step array for
every worker count -- all under ``np.array_equal``, never ``allclose``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import integrators
from repro.core.rngs import make_rng
from repro.core.sat_instances import planted_ksat, random_ksat
from repro.memcomputing.ensemble import BatchedDmm, solve_ensemble

BATCH_SIZES = [1, 2, 5, 33]


def random_states(batched, batch, seed):
    rng = np.random.default_rng(seed)
    return batched.initial_states(batch, rng)


class TestBatchedRhsBitIdentity:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), batch=st.sampled_from(BATCH_SIZES))
    def test_rhs_batch_matches_scalar_rows(self, seed, batch):
        formula = random_ksat(8, 30, rng=seed)
        batched = BatchedDmm(formula)
        states = random_states(batched, batch, seed + 1)
        scalar = np.stack([batched.system.rhs(0.0, row) for row in states])
        assert np.array_equal(batched.rhs_batch(states), scalar)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), batch=st.sampled_from(BATCH_SIZES))
    def test_unsatisfied_counts_match_scalar(self, seed, batch):
        formula = random_ksat(8, 30, rng=seed)
        batched = BatchedDmm(formula)
        states = random_states(batched, batch, seed + 1)
        scalar = [batched.system.unsatisfied_count(row) for row in states]
        assert list(batched.unsatisfied_counts(states)) == scalar

    def test_sub_stack_advancement_is_bit_identical(self):
        # the freeze-solved loop advances a compacted sub-stack; rows must
        # evolve identically whether or not other rows share the stack
        formula = planted_ksat(8, 30, rng=3)
        batched = BatchedDmm(formula)
        states = random_states(batched, 6, 4)
        lower = batched.system.lower_bounds()[None, :]
        upper = batched.system.upper_bounds()[None, :]
        full = integrators.euler_clip_advance(
            batched.rhs_batch, states, 0.08, 40, lower, upper)
        sub = integrators.euler_clip_advance(
            batched.rhs_batch, states[[1, 3, 4]], 0.08, 40, lower, upper)
        assert np.array_equal(full[[1, 3, 4]], sub)


class TestEulerClipAdvance:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), steps=st.integers(0, 50))
    def test_matches_manual_euler_clip_loop(self, seed, steps):
        formula = random_ksat(6, 20, rng=seed)
        batched = BatchedDmm(formula)
        states = random_states(batched, 4, seed + 1)
        lower = batched.system.lower_bounds()[None, :]
        upper = batched.system.upper_bounds()[None, :]
        advanced = integrators.euler_clip_advance(
            batched.rhs_batch, states, 0.05, steps, lower, upper)
        manual = np.array(states, dtype=float)
        for _ in range(steps):
            manual = manual + 0.05 * np.asarray(
                batched.rhs_batch(manual), dtype=float)
            np.clip(manual, lower, upper, out=manual)
        assert np.array_equal(advanced, manual)

    def test_input_stack_is_not_mutated(self):
        formula = planted_ksat(6, 20, rng=0)
        batched = BatchedDmm(formula)
        states = random_states(batched, 3, 1)
        before = states.copy()
        integrators.euler_clip_advance(batched.rhs_batch, states, 0.05, 5,
                                       batched.system.lower_bounds(),
                                       batched.system.upper_bounds())
        assert np.array_equal(states, before)


class TestEnsembleWorkerStability:
    def test_solve_steps_identical_across_workers_1_2_auto(self):
        formula = planted_ksat(10, 40, rng=7)
        results = {}
        for workers in (1, 2, "auto"):
            results[workers] = solve_ensemble(
                formula, batch=12, max_steps=2_000, rng=5,
                workers=workers, chunk_size=4)
        assert np.array_equal(results[1].solve_steps,
                              results[2].solve_steps)
        assert np.array_equal(results[1].solve_steps,
                              results["auto"].solve_steps)

    def test_chunked_rerun_is_deterministic(self):
        formula = planted_ksat(10, 40, rng=7)
        first = solve_ensemble(formula, batch=12, max_steps=2_000, rng=5,
                               workers=1, chunk_size=4)
        second = solve_ensemble(formula, batch=12, max_steps=2_000, rng=5,
                                workers=1, chunk_size=4)
        assert np.array_equal(first.solve_steps, second.solve_steps)

    def test_checkpoint_resumes_across_worker_counts(self, tmp_path):
        path = str(tmp_path / "ensemble.ckpt")
        formula = planted_ksat(10, 40, rng=7)
        full = solve_ensemble(formula, batch=12, max_steps=2_000, rng=5,
                              workers=1, chunk_size=4)
        solve_ensemble(formula, batch=12, max_steps=2_000, rng=5,
                       workers=1, chunk_size=4, checkpoint=path)
        resumed = solve_ensemble(formula, batch=12, max_steps=2_000, rng=5,
                                 workers=2, chunk_size=4, resume_from=path)
        assert np.array_equal(full.solve_steps, resumed.solve_steps)
