"""Tests for the FAST detectors (Fig. 6) and the synthetic image suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oscillators.distance import OscillatorDistanceUnit
from repro.oscillators.fast.bresenham import (
    CIRCLE_OFFSETS_R3,
    circle_intensities,
    interior_pixels,
)
from repro.oscillators.fast.images import (
    add_noise,
    checkerboard_image,
    gradient_image,
    rectangle_image,
    triangle_image,
)
from repro.oscillators.fast.oscillator_fast import (
    OscillatorFastDetector,
    _circular_runs,
    agreement,
)
from repro.oscillators.fast.software import (
    SoftwareFastDetector,
    _max_circular_run,
    segment_test,
)


class TestBresenham:
    def test_sixteen_offsets(self):
        assert len(CIRCLE_OFFSETS_R3) == 16
        assert len(set(CIRCLE_OFFSETS_R3)) == 16

    def test_radius_three(self):
        for dr, dc in CIRCLE_OFFSETS_R3:
            assert 2.8 <= np.hypot(dr, dc) <= 3.2

    def test_circle_intensities_order(self):
        image = np.zeros((9, 9))
        image[0, 4] = 7.0  # offset (-3, 0) from center (3+0, 4)
        circle = circle_intensities(image, 3, 4)
        assert circle[0] == 7.0

    def test_interior_pixels_margin(self):
        pixels = list(interior_pixels(np.zeros((8, 8))))
        assert pixels == [(3, 3), (3, 4), (4, 3), (4, 4)]


class TestCircularRuns:
    def test_max_run_wraps(self):
        flags = [True, True] + [False] * 12 + [True, True]
        assert _max_circular_run(flags) == 4

    def test_all_true(self):
        assert _max_circular_run([True] * 16) == 16

    def test_all_false(self):
        assert _max_circular_run([False] * 16) == 0

    def test_runs_decomposition(self):
        flags = [True, False, True, True, False, True]
        runs = dict(_circular_runs(flags))
        # wrap-around run: start 5, length 2; middle run: start 2 length 2
        assert runs[2] == 2
        assert runs[5] == 2

    def test_runs_all_true(self):
        assert _circular_runs([True] * 4) == [(0, 4)]


class TestSegmentTest:
    def test_bright_corner(self):
        circle = [0.0] * 16
        for i in range(10):
            circle[i] = 100.0
        detected, kind = segment_test(10.0, circle, threshold=30, n=9)
        assert detected and kind == "brighter"

    def test_dark_corner(self):
        circle = [200.0] * 16
        for i in range(12):
            circle[i] = 10.0
        detected, kind = segment_test(150.0, circle, threshold=30, n=9)
        assert detected and kind == "darker"

    def test_edge_not_corner(self):
        # exactly half the circle bright: run of 8 < 9
        circle = [100.0] * 8 + [0.0] * 8
        detected, _ = segment_test(50.0, circle, threshold=30, n=9)
        assert not detected


class TestImages:
    def test_rectangle_ground_truth(self):
        image, corners = rectangle_image()
        assert len(corners) == 4
        for row, col in corners:
            assert image[row, col] == 200.0

    def test_rectangle_validation(self):
        with pytest.raises(ValueError):
            rectangle_image(top=40, bottom=10)

    def test_triangle(self):
        image, corners = triangle_image()
        assert len(corners) == 3
        assert image.max() == 200.0

    def test_checkerboard(self):
        image, corners = checkerboard_image()
        assert set(np.unique(image)) == {40.0, 200.0}
        assert corners

    def test_gradient_has_no_structure(self):
        image = gradient_image()
        assert np.all(np.diff(image, axis=0) == 0.0)

    def test_add_noise_clipped(self):
        image, _ = rectangle_image()
        noisy = add_noise(image, 50.0, rng=0)
        assert noisy.min() >= 0.0 and noisy.max() <= 255.0

    def test_add_noise_deterministic(self):
        image, _ = rectangle_image()
        assert np.array_equal(add_noise(image, 5.0, rng=1),
                              add_noise(image, 5.0, rng=1))


class TestSoftwareDetector:
    def test_finds_rectangle_corners(self):
        image, ground_truth = rectangle_image()
        detector = SoftwareFastDetector(threshold=30, n=9)
        corners = detector.detect(image)
        report = agreement(corners, ground_truth, tolerance=2)
        assert report["recall"] == 1.0

    def test_gradient_yields_nothing(self):
        detector = SoftwareFastDetector(threshold=30, n=9)
        assert detector.detect(gradient_image()) == []

    def test_stats_recorded(self):
        image, _ = rectangle_image()
        detector = SoftwareFastDetector()
        detector.detect(image)
        assert detector.last_stats["pixels"] == 42 * 42

    def test_high_speed_test_only_for_n12(self):
        assert SoftwareFastDetector(n=9).use_high_speed_test is False
        assert SoftwareFastDetector(n=12).use_high_speed_test is True

    def test_high_speed_test_consistent(self):
        image, _ = rectangle_image()
        with_test = SoftwareFastDetector(n=12, use_high_speed_test=True)
        without = SoftwareFastDetector(n=12, use_high_speed_test=False)
        assert with_test.detect(image) == without.detect(image)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            SoftwareFastDetector(n=0)

    def test_brightness_inversion_invariance(self):
        image, _ = rectangle_image()
        detector = SoftwareFastDetector(threshold=30, n=9)
        assert detector.detect(image) == detector.detect(255.0 - image)


class TestOscillatorDetector:
    def test_agrees_with_software_on_rectangle(self):
        image, _ = rectangle_image()
        software = SoftwareFastDetector(threshold=30, n=9).detect(image)
        oscillator = OscillatorFastDetector(threshold=30, n=9).detect(image)
        report = agreement(oscillator, software, tolerance=0)
        assert report["precision"] == 1.0
        assert report["recall"] == 1.0

    def test_agrees_on_noisy_image(self):
        image, _ = rectangle_image()
        noisy = add_noise(image, 8.0, rng=3)
        software = SoftwareFastDetector(threshold=30, n=9).detect(noisy)
        oscillator = OscillatorFastDetector(threshold=30, n=9).detect(noisy)
        report = agreement(oscillator, software, tolerance=1)
        assert report["precision"] > 0.9
        assert report["recall"] > 0.9

    def test_gradient_false_positive_free(self):
        detector = OscillatorFastDetector(threshold=30, n=9)
        assert detector.detect(gradient_image()) == []

    def test_two_step_comparison_accounting(self):
        image, _ = rectangle_image()
        detector = OscillatorFastDetector(threshold=30, n=9)
        detector.detect(image)
        stats = detector.last_stats
        # at least the 16 distance-step comparisons per pixel
        assert stats["comparisons_per_pixel"] >= 16.0
        # the second (rejection) step adds comparisons beyond step one
        assert stats["oscillator_comparisons"] > stats["pixels"] * 16

    def test_false_positive_rejection_step(self):
        # build a pathological pixel: alternating far-bright/far-dark
        # neighbours that an unsigned metric flags as one long run
        image = np.full((7, 7), 128.0)
        for index, (dr, dc) in enumerate(CIRCLE_OFFSETS_R3):
            image[3 + dr, 3 + dc] = 255.0 if index % 2 == 0 else 0.0
        detector = OscillatorFastDetector(threshold=30, n=9)
        assert not detector.is_corner(image, 3, 3)
        software = SoftwareFastDetector(threshold=30, n=9)
        assert not software.is_corner(image, 3, 3)

    def test_custom_distance_unit(self):
        unit = OscillatorDistanceUnit(norm_exponent=3.0)
        detector = OscillatorFastDetector(threshold=30, n=9,
                                          distance_unit=unit)
        image, _ = rectangle_image()
        assert detector.detect(image)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            OscillatorFastDetector(n=17)


class TestAgreement:
    def test_perfect(self):
        report = agreement([(1, 1)], [(1, 1)])
        assert report["precision"] == 1.0 and report["recall"] == 1.0

    def test_tolerance(self):
        report = agreement([(1, 2)], [(1, 1)], tolerance=1)
        assert report["precision"] == 1.0

    def test_empty_sets(self):
        report = agreement([], [])
        assert report["precision"] == 1.0 and report["recall"] == 1.0

    def test_miss(self):
        report = agreement([(0, 0)], [(9, 9)], tolerance=1)
        assert report["precision"] == 0.0 and report["recall"] == 0.0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 16 - 1))
def test_property_run_length_rotation_invariant(bits):
    """Max circular run is invariant under rotation of the circle."""
    flags = [(bits >> i) & 1 == 1 for i in range(16)]
    baseline = _max_circular_run(flags)
    for shift in (1, 5, 9):
        rotated = flags[shift:] + flags[:shift]
        assert _max_circular_run(rotated) == baseline
