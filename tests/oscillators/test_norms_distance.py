"""Tests for the l_k norm fitting (Fig. 5) and the distance primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import OscillatorError
from repro.oscillators.distance import OscillatorDistanceUnit
from repro.oscillators.norms import analytic_norm_curve, fit_norm_exponent


class TestFitNormExponent:
    @pytest.mark.parametrize("k", [1.0, 1.6, 2.0, 3.4])
    def test_recovers_known_exponent(self, k):
        deltas = np.array([0.0, 0.01, 0.02, 0.03, 0.05, 0.08])
        # normalize so the largest delta rises well above the noise floor
        scale = 1.0 / 0.08 ** k
        measures = analytic_norm_curve(deltas, k, scale=scale, baseline=0.1)
        assert fit_norm_exponent(deltas, measures) == pytest.approx(k,
                                                                    rel=1e-6)

    def test_noise_tolerance(self):
        rng = np.random.default_rng(0)
        deltas = np.array([0.0, 0.01, 0.02, 0.03, 0.05, 0.08])
        measures = analytic_norm_curve(deltas, 2.0, scale=5.0)
        measures = measures * (1.0 + rng.normal(0, 0.02, measures.shape))
        measures[0] = 0.0
        assert fit_norm_exponent(deltas, measures) == pytest.approx(2.0,
                                                                    abs=0.3)

    def test_requires_zero_point(self):
        with pytest.raises(OscillatorError):
            fit_norm_exponent([0.01, 0.02, 0.04], [0.1, 0.2, 0.4])

    def test_requires_enough_rising_points(self):
        with pytest.raises(OscillatorError):
            fit_norm_exponent([0.0, 0.01, 0.02], [0.5, 0.5, 0.5])

    def test_length_mismatch(self):
        with pytest.raises(OscillatorError):
            fit_norm_exponent([0.0, 0.1], [0.0])


class TestAnalyticCurve:
    def test_baseline_and_scale(self):
        curve = analytic_norm_curve([0.0, 1.0], 2.0, scale=3.0,
                                    baseline=0.5)
        assert curve.tolist() == [0.5, 3.5]

    def test_symmetric_in_sign(self):
        assert analytic_norm_curve([-0.5], 2.0)[0] == \
            analytic_norm_curve([0.5], 2.0)[0]


class TestDistanceUnitBehavioral:
    def test_zero_distance(self):
        unit = OscillatorDistanceUnit()
        assert unit.measure(128, 128) == pytest.approx(
            unit.behavioral_baseline)

    def test_monotone_in_difference(self):
        unit = OscillatorDistanceUnit()
        values = [unit.measure(100, 100 + d) for d in (0, 10, 40, 120)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_symmetric(self):
        unit = OscillatorDistanceUnit()
        assert unit.measure(30, 200) == pytest.approx(unit.measure(200, 30))

    def test_full_scale_reads_one(self):
        unit = OscillatorDistanceUnit()
        assert unit.measure(0, 255) == pytest.approx(1.0)

    def test_threshold_comparator(self):
        unit = OscillatorDistanceUnit()
        assert unit.exceeds(100, 160, 30)
        assert not unit.exceeds(100, 120, 30)

    def test_threshold_level_matches_measure(self):
        unit = OscillatorDistanceUnit()
        threshold = 25
        level = unit.measure_threshold(threshold)
        assert unit.measure(0, threshold) == pytest.approx(level)

    def test_voltage_encoding_span(self):
        unit = OscillatorDistanceUnit(base_v_gs=1.8, v_gs_span=0.08)
        assert unit.intensity_to_v_gs(0) == pytest.approx(1.76)
        assert unit.intensity_to_v_gs(255) == pytest.approx(1.84)
        assert unit.intensity_to_v_gs(127.5) == pytest.approx(1.8)

    def test_invalid_construction(self):
        with pytest.raises(OscillatorError):
            OscillatorDistanceUnit(mode="quantum")
        with pytest.raises(OscillatorError):
            OscillatorDistanceUnit(v_gs_span=0.0)

    def test_exponent_changes_shape(self):
        gentle = OscillatorDistanceUnit(norm_exponent=1.2)
        sharp = OscillatorDistanceUnit(norm_exponent=3.0)
        # below full scale the high-k unit reads relatively lower
        assert sharp.measure(100, 140) < gentle.measure(100, 140)


@pytest.mark.slow
class TestDistanceUnitPhysical:
    def test_physical_mode_monotone(self):
        unit = OscillatorDistanceUnit(mode="physical", cycles=80)
        near = unit.measure(128, 138)
        far = unit.measure(128, 230)
        assert far > near

    def test_calibrate_from_physics_updates_exponent(self):
        unit = OscillatorDistanceUnit(cycles=80)
        deltas, measures = unit.calibrate_from_physics(num_points=5)
        assert len(deltas) == len(measures) == 5
        assert 0.3 < unit.norm_exponent < 6.0


@settings(max_examples=30, deadline=None)
@given(a=st.integers(min_value=0, max_value=255),
       b=st.integers(min_value=0, max_value=255))
def test_property_behavioral_measure_bounded_and_symmetric(a, b):
    """The behavioral response is a bounded symmetric pseudo-distance."""
    unit = OscillatorDistanceUnit()
    measure = unit.measure(a, b)
    assert 0.0 <= measure <= 1.0
    assert measure == pytest.approx(unit.measure(b, a))
