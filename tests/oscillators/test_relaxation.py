"""Unit tests for the 1T1R relaxation oscillator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import DeviceModelError
from repro.core.signals import cycle_frequency
from repro.oscillators.relaxation import (
    RelaxationOscillator,
    frequency_tuning_curve,
)
from repro.oscillators.vo2 import INSULATING, METALLIC, Vo2Device

MID_THRESHOLD = 1.0  # midpoint of the default v_low=0.7 .. v_high=1.3 swing


class TestBiasPoint:
    def test_default_bias_oscillates(self):
        assert RelaxationOscillator(v_gs=1.8).can_oscillate()

    def test_weak_drive_does_not_oscillate(self):
        # barely above threshold: series resistance too large
        assert not RelaxationOscillator(v_gs=0.9).can_oscillate()

    def test_analytic_period_positive(self):
        oscillator = RelaxationOscillator(v_gs=1.8)
        assert oscillator.analytic_period() > 0.0

    def test_analytic_period_requires_oscillation(self):
        with pytest.raises(DeviceModelError):
            RelaxationOscillator(v_gs=0.9).analytic_period()

    def test_switching_levels(self):
        oscillator = RelaxationOscillator(v_gs=1.8, v_dd=1.8)
        assert oscillator.v_low == pytest.approx(1.8 - 1.1)
        assert oscillator.v_high == pytest.approx(1.8 - 0.5)

    def test_equilibria_ordering(self):
        oscillator = RelaxationOscillator(v_gs=1.8)
        assert oscillator.equilibrium_voltage(INSULATING) \
            < oscillator.equilibrium_voltage(METALLIC)

    def test_time_constants_ordering(self):
        oscillator = RelaxationOscillator(v_gs=1.8)
        # metallic phase has a much smaller RC
        assert oscillator.time_constant(METALLIC) \
            < oscillator.time_constant(INSULATING)

    def test_invalid_construction(self):
        with pytest.raises(DeviceModelError):
            RelaxationOscillator(v_gs=1.8, v_dd=-1.0)
        with pytest.raises(DeviceModelError):
            RelaxationOscillator(v_gs=1.8, c_p=0.0)
        with pytest.raises(DeviceModelError):
            # IMT threshold above the supply: device can never fire
            RelaxationOscillator(v_gs=1.8, v_dd=1.0,
                                 vo2=Vo2Device(v_imt=1.1, v_mit=0.5))


class TestSimulation:
    def test_simulated_frequency_matches_analytic(self):
        oscillator = RelaxationOscillator(v_gs=1.8)
        trajectory = oscillator.simulate(20 * oscillator.analytic_period())
        simulated = cycle_frequency(trajectory.times,
                                    trajectory.component(0), MID_THRESHOLD)
        assert simulated == pytest.approx(oscillator.natural_frequency(),
                                          rel=0.03)

    def test_waveform_bounded_by_switch_levels(self):
        oscillator = RelaxationOscillator(v_gs=1.8)
        trajectory = oscillator.simulate(10 * oscillator.analytic_period())
        steady = trajectory.component(0)[len(trajectory) // 3:]
        assert steady.min() >= oscillator.v_low - 0.05
        assert steady.max() <= oscillator.v_high + 0.05

    def test_phase_recording(self):
        oscillator = RelaxationOscillator(v_gs=1.8)
        _trajectory, phases = oscillator.simulate(
            5 * oscillator.analytic_period(), record_phases=True)
        assert INSULATING in phases and METALLIC in phases

    def test_finer_step_converges_to_analytic(self):
        oscillator = RelaxationOscillator(v_gs=1.8)
        period = oscillator.analytic_period()
        errors = []
        for divisor in (100, 800):
            trajectory = oscillator.simulate(20 * period,
                                             dt=period / divisor)
            simulated = cycle_frequency(trajectory.times,
                                        trajectory.component(0),
                                        MID_THRESHOLD)
            errors.append(abs(simulated - 1.0 / period) * period)
        assert errors[1] < errors[0]


class TestTuningCurve:
    def test_monotone_increasing_in_vgs(self):
        v_gs = np.linspace(1.3, 3.0, 8)
        frequencies = frequency_tuning_curve(v_gs)
        assert all(f is not None for f in frequencies)
        assert all(b > a for a, b in zip(frequencies, frequencies[1:]))

    def test_dead_zone_reported_as_none(self):
        curve = frequency_tuning_curve([0.2, 0.9, 1.8])
        assert curve[0] is None          # transistor cut off
        assert curve[1] is None          # no oscillation at this bias
        assert curve[2] is not None


@settings(max_examples=20, deadline=None)
@given(v_gs=st.floats(min_value=1.3, max_value=3.0))
def test_property_period_positive_in_operating_range(v_gs):
    """Across the tuning range the analytic period is finite-positive."""
    oscillator = RelaxationOscillator(v_gs=v_gs)
    assert oscillator.can_oscillate()
    period = oscillator.analytic_period()
    assert 0.0 < period < 1.0
