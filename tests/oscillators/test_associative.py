"""Tests for the oscillator associative memory ([39])."""

import numpy as np
import pytest

from repro.core.exceptions import OscillatorError
from repro.oscillators.coprocessor import AssociativeMemory


def distinct_patterns(rng, count=4, size=12):
    """Well-separated random patterns (spread across the full range)."""
    patterns = []
    for index in range(count):
        base = 255.0 * index / max(1, count - 1)
        pattern = np.clip(base + rng.normal(0, 10, size), 0, 255)
        patterns.append(pattern)
    return patterns


class TestStore:
    def test_store_returns_indices(self):
        memory = AssociativeMemory()
        assert memory.store([1.0, 2.0]) == 0
        assert memory.store([3.0, 4.0], label="x") == 1
        assert len(memory) == 2

    def test_length_mismatch_rejected(self):
        memory = AssociativeMemory()
        memory.store([1.0, 2.0])
        with pytest.raises(OscillatorError):
            memory.store([1.0, 2.0, 3.0])

    def test_empty_pattern_rejected(self):
        with pytest.raises(OscillatorError):
            AssociativeMemory().store([])

    def test_bad_threshold(self):
        with pytest.raises(OscillatorError):
            AssociativeMemory(match_threshold=0.0)


class TestRecall:
    def test_exact_probe_recalls_itself(self):
        rng = np.random.default_rng(0)
        memory = AssociativeMemory()
        patterns = distinct_patterns(rng)
        for index, pattern in enumerate(patterns):
            memory.store(pattern, label=index)
        for index, pattern in enumerate(patterns):
            recalled, label, score = memory.recall(pattern)
            assert label == index
            assert score == pytest.approx(1.0)
            assert np.allclose(recalled, pattern)

    def test_degraded_probe_recalls_original(self):
        rng = np.random.default_rng(1)
        memory = AssociativeMemory()
        patterns = distinct_patterns(rng)
        for index, pattern in enumerate(patterns):
            memory.store(pattern, label=index)
        probes = [np.clip(p + rng.normal(0, 12, p.shape), 0, 255)
                  for p in patterns]
        assert memory.recall_accuracy(probes, list(range(4))) == 1.0

    def test_far_probe_reports_no_association(self):
        memory = AssociativeMemory(match_threshold=0.8)
        memory.store(np.zeros(8), label="dark")
        pattern, label, score = memory.recall(np.full(8, 255.0))
        assert pattern is None and label is None
        assert score < 0.8

    def test_empty_memory_rejected(self):
        with pytest.raises(OscillatorError):
            AssociativeMemory().recall([1.0])

    def test_recalled_pattern_is_a_copy(self):
        memory = AssociativeMemory()
        memory.store([10.0, 20.0])
        recalled, _label, _score = memory.recall([10.0, 20.0])
        recalled[0] = -1.0
        again, _label, _score = memory.recall([10.0, 20.0])
        assert again[0] == 10.0
