"""Analytic validation of the XOR readout on synthetic waveforms.

The ODE-driven tests exercise the readout on simulated oscillators; here
we validate its arithmetic exactly on constructed square/sine waves with
known phase relationships, where the expected ``1 - Avg(XOR)`` has a
closed form.
"""

import numpy as np
import pytest

from repro.oscillators.readout import XorReadout


def square_pair(phase_offset_cycles, duty=0.5, cycles=40, samples=8000):
    """Two unit-frequency square waves offset by a phase, over [0, cycles]."""
    t = np.linspace(0.0, cycles, samples)
    def wave(offset):
        phase = (t - offset) % 1.0
        return np.where(phase < duty, 1.0, 0.0)
    return t, wave(0.0), wave(phase_offset_cycles)


class TestClosedFormOffsets:
    @pytest.mark.parametrize("offset,expected_measure", [
        (0.0, 1.0),      # identical -> XOR always 0 -> measure 1
        (0.5, 0.0),      # anti-phase, duty 0.5 -> XOR always 1
        (0.25, 0.5),     # quarter cycle -> XOR half the time
        (0.1, 0.8),      # differ during 2*0.1 of each cycle
    ])
    def test_measure_matches_overlap_formula(self, offset,
                                             expected_measure):
        t, a, b = square_pair(offset)
        readout = XorReadout(threshold=0.5, discard_fraction=0.0)
        assert readout.measure(t, a, b) == pytest.approx(
            expected_measure, abs=0.02)

    def test_symmetry_in_offset_sign(self):
        readout = XorReadout(threshold=0.5, discard_fraction=0.0)
        t, a, b = square_pair(0.2)
        forward = readout.measure(t, a, b)
        t, a2, b2 = square_pair(-0.2)
        backward = readout.measure(t, a2, b2)
        assert forward == pytest.approx(backward, abs=0.02)

    def test_asymmetric_duty_antiphase(self):
        # duty d, anti-phase: high windows never overlap for d <= 0.5,
        # so the waves differ during 2d of each cycle
        duty = 0.3
        t, a, b = square_pair(0.5, duty=duty)
        readout = XorReadout(threshold=0.5, discard_fraction=0.0)
        assert readout.measure(t, a, b) == pytest.approx(1.0 - 2 * duty,
                                                         abs=0.02)


class TestMedianThresholdOnSines:
    def test_median_slicer_gives_half_duty(self):
        t = np.linspace(0.0, 20.0, 8000)
        a = np.sin(2 * np.pi * t) + 3.0        # offset sine
        b = np.sin(2 * np.pi * (t - 0.5))      # anti-phase, no offset
        readout = XorReadout(discard_fraction=0.0)
        _w, square_a, square_b = readout.square_waves(t, a, b)
        assert np.mean(square_a) == pytest.approx(0.5, abs=0.01)
        assert np.mean(square_b) == pytest.approx(0.5, abs=0.01)
        # anti-phase sines slice into complementary squares
        assert readout.measure(t, a, b) == pytest.approx(0.0, abs=0.02)

    def test_discard_fraction_windows_the_record(self):
        # first half junk, second half identical: discarding the junk
        # must restore the identical-pair reading
        t = np.linspace(0.0, 20.0, 8000)
        clean = np.sin(2 * np.pi * t)
        corrupt = clean.copy()
        corrupt[: len(t) // 2] = np.sign(
            np.sin(2 * np.pi * 3.7 * t[: len(t) // 2]))
        readout = XorReadout(discard_fraction=0.6)
        assert readout.measure(t, clean, corrupt) == pytest.approx(
            1.0, abs=0.02)
