"""Tests for the oscillator morphological image processing ([43])."""

import numpy as np
import pytest

from repro.core.exceptions import OscillatorError
from repro.oscillators.fast.images import rectangle_image
from repro.oscillators.morphology import OscillatorRankFilter, edge_map


def bright_square(size=16, lo=4, hi=12):
    image = np.full((size, size), 40.0)
    image[lo:hi, lo:hi] = 200.0
    return image


class TestRankFilter:
    def test_erosion_matches_numpy_minimum(self):
        image = bright_square()
        eroded = OscillatorRankFilter().erode(image)
        for row in range(1, 15):
            for col in range(1, 15):
                expected = image[row - 1:row + 2, col - 1:col + 2].min()
                assert eroded[row, col] == expected

    def test_dilation_matches_numpy_maximum(self):
        image = bright_square()
        dilated = OscillatorRankFilter().dilate(image)
        for row in range(1, 15):
            for col in range(1, 15):
                expected = image[row - 1:row + 2, col - 1:col + 2].max()
                assert dilated[row, col] == expected

    def test_median_matches_numpy_median(self):
        rng = np.random.default_rng(0)
        image = rng.uniform(0, 255, size=(10, 10))
        filtered = OscillatorRankFilter().median(image)
        for row in range(1, 9):
            for col in range(1, 9):
                expected = np.median(image[row - 1:row + 2,
                                           col - 1:col + 2])
                assert filtered[row, col] == pytest.approx(expected)

    def test_median_removes_salt_and_pepper(self):
        image = bright_square()
        noisy = image.copy()
        rng = np.random.default_rng(1)
        mask = rng.random(image.shape) < 0.08
        noisy[mask] = rng.choice([0.0, 255.0], size=int(mask.sum()))
        restored = OscillatorRankFilter().median(noisy)
        interior = (slice(1, -1), slice(1, -1))
        assert np.abs(restored[interior] - image[interior]).mean() \
            < np.abs(noisy[interior] - image[interior]).mean()

    def test_opening_removes_bright_speck(self):
        image = np.full((12, 12), 40.0)
        image[6, 6] = 250.0  # isolated bright pixel
        opened = OscillatorRankFilter().opening(image)
        assert opened[6, 6] == 40.0

    def test_closing_fills_dark_pit(self):
        image = bright_square()
        image[8, 8] = 0.0
        closed = OscillatorRankFilter().closing(image)
        assert closed[8, 8] == 200.0

    def test_gradient_highlights_boundary(self):
        image = bright_square()
        gradient = OscillatorRankFilter().morphological_gradient(image)
        assert gradient[4, 8] > 0.0    # on the edge
        assert gradient[8, 8] == 0.0   # deep interior

    def test_validation(self):
        with pytest.raises(OscillatorError):
            OscillatorRankFilter(mode="spooky")
        with pytest.raises(OscillatorError):
            OscillatorRankFilter(radius=0)
        with pytest.raises(OscillatorError):
            OscillatorRankFilter().erode(np.zeros(5))
        with pytest.raises(OscillatorError):
            OscillatorRankFilter(radius=4).erode(np.zeros((3, 3)))

    @pytest.mark.slow
    def test_physical_mode_agrees_on_distinct_values(self):
        image = np.array([
            [10.0, 60.0, 110.0],
            [160.0, 210.0, 30.0],
            [80.0, 130.0, 180.0],
        ])
        behavioral = OscillatorRankFilter().erode(image)
        physical = OscillatorRankFilter(mode="physical",
                                        window_cycles=80.0).erode(image)
        assert behavioral[1, 1] == physical[1, 1] == 10.0


class TestEdgeMap:
    def test_flat_image_reads_zero(self):
        edges = edge_map(np.full((8, 8), 120.0))
        assert np.all(edges == 0.0)

    def test_step_edge_detected(self):
        image, _corners = rectangle_image(height=20, width=20, top=6,
                                          left=6, bottom=14, right=14)
        edges = edge_map(image)
        assert edges[6, 10] > 0.05   # boundary row
        assert edges[10, 10] == 0.0  # interior

    def test_border_zeroed(self):
        edges = edge_map(np.random.default_rng(0).uniform(0, 255, (6, 6)))
        assert np.all(edges[0, :] == 0.0)
        assert np.all(edges[:, -1] == 0.0)

    def test_requires_2d(self):
        with pytest.raises(OscillatorError):
            edge_map(np.zeros(10))
