"""Tests for the power models (the paper's 0.936 mW vs 3 mW claim)."""

import pytest

from repro.core.exceptions import OscillatorError
from repro.oscillators.power import (
    CmosFastPower,
    OscillatorBlockPower,
    oscillator_average_power,
    power_comparison,
    scaled_oscillator,
)
from repro.oscillators.relaxation import RelaxationOscillator


class TestImpedanceScaling:
    def test_waveform_invariance(self):
        reference = RelaxationOscillator(1.8)
        scaled = scaled_oscillator(v_gs=1.8, impedance_scale=3.0)
        assert scaled.analytic_period() == pytest.approx(
            reference.analytic_period(), rel=1e-9)
        assert scaled.v_low == reference.v_low
        assert scaled.v_high == reference.v_high

    def test_power_scales_inversely(self):
        p1 = oscillator_average_power(scaled_oscillator(impedance_scale=1.0))
        p3 = oscillator_average_power(scaled_oscillator(impedance_scale=3.0))
        assert p1 / p3 == pytest.approx(3.0, rel=1e-6)

    def test_invalid_scale(self):
        with pytest.raises(OscillatorError):
            scaled_oscillator(impedance_scale=0.0)


class TestOscillatorPower:
    def test_average_power_positive_and_small(self):
        power = oscillator_average_power(scaled_oscillator())
        assert 1e-6 < power < 1e-3

    def test_non_oscillating_bias_rejected(self):
        with pytest.raises(OscillatorError):
            oscillator_average_power(RelaxationOscillator(0.95))

    def test_block_breakdown_sums(self):
        block = OscillatorBlockPower()
        breakdown = block.breakdown()
        assert breakdown["total_w"] == pytest.approx(
            breakdown["oscillators_w"] + breakdown["xor_readout_w"])

    def test_block_matches_paper_value(self):
        # the calibrated design point reproduces 0.936 mW within 5 %
        total = OscillatorBlockPower().total_power()
        assert total == pytest.approx(0.936e-3, rel=0.05)

    def test_scales_with_pairs(self):
        p16 = OscillatorBlockPower(num_pairs=16).total_power()
        p32 = OscillatorBlockPower(num_pairs=32).total_power()
        assert p32 == pytest.approx(2.0 * p16, rel=1e-9)


class TestCmosPower:
    def test_matches_paper_value(self):
        total = CmosFastPower().total_power()
        assert total == pytest.approx(3.0e-3, rel=0.1)

    def test_breakdown_consistency(self):
        breakdown = CmosFastPower().breakdown()
        assert breakdown["total_w"] == pytest.approx(
            breakdown["dynamic_w"] + breakdown["clock_tree_w"]
            + breakdown["leakage_w"])

    def test_energy_per_pixel_order_of_magnitude(self):
        energy = CmosFastPower().energy_per_pixel()
        assert 0.5e-12 < energy < 10e-12  # a few pJ per pixel

    def test_power_scales_with_rate(self):
        slow = CmosFastPower(pixel_rate_hz=100e6)
        fast = CmosFastPower(pixel_rate_hz=200e6)
        dynamic_ratio = (fast.breakdown()["dynamic_w"]
                         / slow.breakdown()["dynamic_w"])
        assert dynamic_ratio == pytest.approx(2.0)


class TestComparison:
    def test_oscillators_win_by_paper_factor(self):
        result = power_comparison()
        assert result["oscillator_w"] < result["cmos_w"]
        # paper ratio is 3.0 / 0.936 ~ 3.2; require the same 2-4x band
        assert 2.0 < result["ratio"] < 4.5

    def test_paper_reference_fields(self):
        result = power_comparison()
        assert result["paper_oscillator_w"] == pytest.approx(0.936e-3)
        assert result["paper_cmos_w"] == pytest.approx(3.0e-3)
        assert result["paper_ratio"] == pytest.approx(3.0 / 0.936)
