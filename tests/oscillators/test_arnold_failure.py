"""Arnold-tongue structure and failure-injection tests for oscillator arrays.

The slow sweeps live in the benchmarks; here we verify the *ordering*
claims on a minimal grid plus the array's behaviour under component
failure (a dead oscillator — the kind of defect an accuracy-tunable
analog co-processor must tolerate gracefully).
"""

import numpy as np
import pytest

from repro.core.exceptions import DeviceModelError, OscillatorError
from repro.core.signals import cycle_frequency
from repro.oscillators.coupling import (
    CoupledOscillatorNetwork,
    CouplingBranch,
)
from repro.oscillators.locking import arnold_tongue, locking_range
from repro.oscillators.relaxation import RelaxationOscillator
from repro.oscillators.vo2 import Vo2Device


@pytest.mark.slow
class TestArnoldTongue:
    def test_stronger_coupling_locks_wider(self):
        """The Arnold tongue widens as R_C decreases."""
        weak = locking_range(1.8, 300e3, max_delta=0.24, steps=4,
                             cycles=80)
        strong = locking_range(1.8, 20e3, max_delta=0.24, steps=4,
                               cycles=80)
        assert strong > weak

    def test_arnold_tongue_rows(self):
        rows = arnold_tongue(1.8, [40e3, 250e3], max_delta=0.18, steps=3,
                             cycles=80)
        assert len(rows) == 2
        resistances = [r for r, _width in rows]
        assert resistances == [40e3, 250e3]
        widths = {r: w for r, w in rows}
        assert widths[40e3] >= widths[250e3]


class TestDeadOscillatorInjection:
    def _network_with_dead_member(self):
        # member 1 is biased below the oscillation region: a stuck node
        healthy_a = RelaxationOscillator(1.8)
        dead = RelaxationOscillator(0.95)       # transistor on, no cycle
        healthy_b = RelaxationOscillator(1.82)
        branches = [CouplingBranch(0, 1, r_c=35e3, c_c=30e-12),
                    CouplingBranch(1, 2, r_c=35e3, c_c=30e-12)]
        return CoupledOscillatorNetwork([healthy_a, dead, healthy_b],
                                        branches)

    def test_dead_member_does_not_crash_simulation(self):
        network = self._network_with_dead_member()
        period = network.oscillators[0].analytic_period()
        trajectory, _phases = network.simulate(40 * period)
        assert np.all(np.isfinite(trajectory.states))

    def test_healthy_members_keep_oscillating(self):
        network = self._network_with_dead_member()
        period = network.oscillators[0].analytic_period()
        trajectory, _phases = network.simulate(60 * period)
        freq_a = cycle_frequency(trajectory.times,
                                 trajectory.component(0), 1.0)
        freq_b = cycle_frequency(trajectory.times,
                                 trajectory.component(2), 1.0)
        assert freq_a is not None and freq_a > 1e5
        assert freq_b is not None and freq_b > 1e5

    def test_dead_member_is_flat(self):
        network = self._network_with_dead_member()
        period = network.oscillators[0].analytic_period()
        trajectory, _phases = network.simulate(60 * period)
        dead_wave = trajectory.component(1)
        steady = dead_wave[len(dead_wave) // 2:]
        # the stuck node only shows small coupled ripple, no full swing
        assert steady.max() - steady.min() < 0.3

    def test_all_dead_network_needs_explicit_dt(self):
        dead = [RelaxationOscillator(0.95), RelaxationOscillator(0.96)]
        network = CoupledOscillatorNetwork(
            dead, [CouplingBranch(0, 1, r_c=35e3, c_c=30e-12)])
        with pytest.raises(OscillatorError):
            network.simulate(1e-4)  # no member defines a period

    def test_cutoff_bias_raises_at_construction_time(self):
        with pytest.raises(DeviceModelError):
            # below threshold: the cell cannot conduct at all
            RelaxationOscillator(0.2).series_resistance


class TestParameterRobustness:
    def test_narrow_hysteresis_still_oscillates(self):
        device = Vo2Device(v_imt=1.0, v_mit=0.9)
        oscillator = RelaxationOscillator(1.8, vo2=device)
        assert oscillator.can_oscillate()
        assert oscillator.analytic_period() > 0

    def test_wide_hysteresis_changes_period(self):
        narrow = RelaxationOscillator(1.8,
                                      vo2=Vo2Device(v_imt=1.0, v_mit=0.9))
        wide = RelaxationOscillator(1.8,
                                    vo2=Vo2Device(v_imt=1.3, v_mit=0.4))
        assert wide.analytic_period() > narrow.analytic_period()

    def test_supply_scaling_shifts_levels(self):
        low = RelaxationOscillator(1.8, v_dd=1.6)
        high = RelaxationOscillator(1.8, v_dd=2.2)
        assert high.v_low > low.v_low
        assert high.v_high > low.v_high
