"""Tests for coupled networks, locking (Fig. 3) and the XOR readout (Fig. 4).

ODE-simulation tests are kept to short horizons; the full calibrated
sweeps live in the benchmarks.
"""

import numpy as np
import pytest

from repro.core.exceptions import OscillatorError, ReadoutError
from repro.core.signals import cycle_frequency
from repro.oscillators.coupling import (
    CoupledOscillatorNetwork,
    CouplingBranch,
    coupled_pair,
    simulate_pair,
)
from repro.oscillators.locking import check_locking, simulate_calibrated_pair
from repro.oscillators.readout import XorReadout
from repro.oscillators.relaxation import RelaxationOscillator

MID = 1.0


class TestCouplingBranch:
    def test_current_sign(self):
        branch = CouplingBranch(0, 1, r_c=1e4, c_c=1e-10)
        assert branch.current(1.0, 0.0, 0.0) > 0.0
        assert branch.current(0.0, 1.0, 0.0) < 0.0

    def test_capacitor_charge_opposes(self):
        branch = CouplingBranch(0, 1, r_c=1e4, c_c=1e-10)
        # fully charged capacitor cancels the voltage difference
        charge = 1.0 * 1e-10
        assert branch.current(1.0, 0.0, charge) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(OscillatorError):
            CouplingBranch(1, 1)
        with pytest.raises(OscillatorError):
            CouplingBranch(0, 1, r_c=-1.0)
        with pytest.raises(OscillatorError):
            CouplingBranch(0, 1, c_c=0.0)


class TestNetworkConstruction:
    def test_branch_endpoint_validation(self):
        oscillators = [RelaxationOscillator(1.8)]
        with pytest.raises(OscillatorError):
            CoupledOscillatorNetwork(oscillators, [CouplingBranch(0, 1)])

    def test_empty_network_rejected(self):
        with pytest.raises(OscillatorError):
            CoupledOscillatorNetwork([], [])

    def test_state_layout(self):
        network = coupled_pair(1.8, 1.9)
        trajectory, phases = network.simulate(
            5 * network.oscillators[0].analytic_period())
        assert trajectory.states.shape[1] == 3  # v1, v2, q
        assert len(phases) == len(trajectory)


class TestFrequencyLocking:
    def test_identical_pair_locks(self):
        result = check_locking(1.8, 1.8, r_c=35e3, cycles=80)
        assert result.locked
        assert result.freq_1 == pytest.approx(result.freq_2, rel=0.01)

    def test_small_detuning_locks(self):
        result = check_locking(1.8, 1.83, r_c=35e3, cycles=80)
        assert result.locked

    def test_large_detuning_unlocks(self):
        result = check_locking(1.8, 2.6, r_c=300e3, cycles=80)
        assert not result.locked

    def test_uncoupled_frequencies_recorded(self):
        result = check_locking(1.8, 1.9, r_c=35e3, cycles=60)
        natural_1 = RelaxationOscillator(1.8).natural_frequency()
        assert result.uncoupled_freq_1 == pytest.approx(natural_1)
        assert result.uncoupled_freq_2 > result.uncoupled_freq_1

    def test_locked_frequency_between_naturals_or_pulled(self):
        result = check_locking(1.8, 1.85, r_c=35e3, cycles=80)
        assert result.locked
        assert result.frequency_pull is not None


class TestXorReadout:
    def test_identical_pair_reads_near_zero(self):
        times, v_1, v_2 = simulate_calibrated_pair(1.8, 1.8, r_c=35e3,
                                                   cycles=100)
        measure = XorReadout().measure(times, v_1, v_2)
        assert measure < 0.1

    def test_measure_grows_with_detuning(self):
        readout = XorReadout()
        measures = []
        for delta in (0.0, 0.04, 0.08):
            times, v_1, v_2 = simulate_calibrated_pair(
                1.8, 1.8 + delta, r_c=35e3, cycles=100)
            measures.append(readout.measure(times, v_1, v_2))
        assert measures[0] < measures[1] < measures[2]

    def test_fixed_threshold_mode(self):
        times, v_1, v_2 = simulate_calibrated_pair(1.8, 1.8, r_c=35e3,
                                                   cycles=60)
        readout = XorReadout(threshold=MID)
        value = readout.measure(times, v_1, v_2)
        assert 0.0 <= value <= 1.0

    def test_average_xor_complement(self):
        times, v_1, v_2 = simulate_calibrated_pair(1.8, 1.84, r_c=35e3,
                                                   cycles=60)
        readout = XorReadout()
        assert readout.measure(times, v_1, v_2) == pytest.approx(
            1.0 - readout.average_xor(times, v_1, v_2))

    def test_short_record_rejected(self):
        readout = XorReadout()
        with pytest.raises(ReadoutError):
            readout.measure(np.linspace(0, 1, 10), np.zeros(10),
                            np.zeros(10))

    def test_bad_discard_fraction(self):
        with pytest.raises(ReadoutError):
            XorReadout(discard_fraction=1.5)

    def test_square_waves_are_binary(self):
        times, v_1, v_2 = simulate_calibrated_pair(1.8, 1.8, r_c=35e3,
                                                   cycles=60)
        _t, square_1, square_2 = XorReadout().square_waves(times, v_1, v_2)
        assert set(np.unique(square_1)) <= {0.0, 1.0}
        assert set(np.unique(square_2)) <= {0.0, 1.0}


class TestSimulatePair:
    def test_returns_waveforms(self):
        times, v_1, v_2 = simulate_pair(1.8, 1.9, cycles=20)
        assert len(times) == len(v_1) == len(v_2)
        assert cycle_frequency(times, v_1, MID) is not None

    def test_three_oscillator_chain(self):
        oscillators = [RelaxationOscillator(v) for v in (1.8, 1.82, 1.84)]
        branches = [CouplingBranch(0, 1, r_c=35e3, c_c=30e-12),
                    CouplingBranch(1, 2, r_c=35e3, c_c=30e-12)]
        network = CoupledOscillatorNetwork(oscillators, branches)
        period = max(o.analytic_period() for o in oscillators)
        trajectory, _phases = network.simulate(40 * period)
        frequencies = [cycle_frequency(trajectory.times,
                                       trajectory.component(i), MID)
                       for i in range(3)]
        assert all(f is not None for f in frequencies)
