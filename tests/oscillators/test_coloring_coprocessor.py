"""Tests for the cited secondary applications: coloring [42], co-processor [44]."""

import numpy as np
import pytest

from repro.core.exceptions import OscillatorError
from repro.oscillators.coloring import color_graph
from repro.oscillators.coprocessor import (
    best_match,
    degree_of_match,
    rank_order_sort,
    value_to_v_gs,
)


class TestColoring:
    def test_path_graph_two_colorable(self):
        result = color_graph([(0, 1), (1, 2), (2, 3)], 4, 2, cycles=120)
        assert result.is_proper
        assert result.num_colors == 2

    def test_even_cycle(self):
        result = color_graph([(0, 1), (1, 2), (2, 3), (3, 0)], 4, 2,
                             cycles=120)
        assert result.is_proper

    def test_triangle_three_phases(self):
        result = color_graph([(0, 1), (1, 2), (0, 2)], 3, 3, cycles=120)
        assert result.is_proper
        # the K3 fixed point is the symmetric splay state: phases near
        # 0, 1/3, 2/3 (Parihar et al. 2017)
        sorted_phases = np.sort(result.phases)
        gaps = np.diff(np.concatenate([sorted_phases,
                                       [sorted_phases[0] + 1.0]]))
        assert np.allclose(gaps, 1.0 / 3.0, atol=0.08)

    def test_validation(self):
        with pytest.raises(OscillatorError):
            color_graph([(0, 0)], 2, 2)
        with pytest.raises(OscillatorError):
            color_graph([(0, 5)], 2, 2)
        with pytest.raises(OscillatorError):
            color_graph([(0, 1)], 2, 1)

    def test_conflicts_counted(self):
        # force a single color bin... two colors on K3 must conflict
        result = color_graph([(0, 1), (1, 2), (0, 2)], 3, 2, cycles=100)
        assert result.conflicts >= 1


class TestValueEncoding:
    def test_range_mapping(self):
        assert value_to_v_gs(0.0, 100.0) == pytest.approx(1.6)
        assert value_to_v_gs(100.0, 100.0) == pytest.approx(2.6)

    def test_out_of_range_rejected(self):
        with pytest.raises(OscillatorError):
            value_to_v_gs(-1.0, 100.0)
        with pytest.raises(OscillatorError):
            value_to_v_gs(101.0, 100.0)


class TestRankOrderSort:
    def test_sorts_distinct_values(self):
        values = [30, 200, 90, 155, 10]
        order, counts = rank_order_sort(values)
        assert order == sorted(range(len(values)),
                               key=lambda i: values[i])

    def test_counts_monotone_in_value(self):
        values = [20, 120, 250]
        _order, counts = rank_order_sort(values)
        assert counts[0] < counts[1] < counts[2]

    def test_accuracy_dial(self):
        # near-ties resolve with a longer window
        values = [100.0, 104.0]
        order_long, counts_long = rank_order_sort(values,
                                                  window_cycles=120.0)
        assert order_long == [0, 1]
        assert counts_long[1] >= counts_long[0]

    def test_validation(self):
        with pytest.raises(OscillatorError):
            rank_order_sort([])
        with pytest.raises(OscillatorError):
            rank_order_sort([-5.0, 2.0])


class TestDegreeOfMatch:
    def test_identical_patterns_score_one(self):
        pattern = [10, 200, 30, 90]
        assert degree_of_match(pattern, pattern) == pytest.approx(1.0)

    def test_score_decreases_with_distortion(self):
        template = np.array([10.0, 200.0, 10.0, 200.0])
        near = template + np.array([5.0, -5.0, 5.0, -5.0])
        far = template[::-1]
        assert degree_of_match(template, near) \
            > degree_of_match(template, far)

    def test_shape_mismatch(self):
        with pytest.raises(OscillatorError):
            degree_of_match([1.0, 2.0], [1.0])

    def test_empty_pattern(self):
        with pytest.raises(OscillatorError):
            degree_of_match([], [])

    def test_best_match_picks_exact(self):
        template = [10, 200, 10, 200]
        candidates = [[200, 10, 200, 10], [12, 195, 12, 198],
                      [10, 200, 10, 200]]
        index, scores = best_match(template, candidates)
        assert index == 2
        assert scores[2] == pytest.approx(1.0)
