"""Unit tests for the VO2 device and series-transistor models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import DeviceModelError
from repro.oscillators.transistor import SeriesTransistor
from repro.oscillators.vo2 import INSULATING, METALLIC, Vo2Device


class TestVo2Device:
    def test_default_parameters_physical(self):
        device = Vo2Device()
        assert device.r_ins > device.r_met
        assert device.v_mit < device.v_imt

    def test_resistance_by_phase(self):
        device = Vo2Device(r_ins=100e3, r_met=2e3)
        assert device.resistance(INSULATING) == 100e3
        assert device.resistance(METALLIC) == 2e3
        assert device.conductance(METALLIC) == pytest.approx(1.0 / 2e3)

    def test_unknown_phase_rejected(self):
        with pytest.raises(DeviceModelError):
            Vo2Device().resistance("plasma")
        with pytest.raises(DeviceModelError):
            Vo2Device().next_phase("plasma", 1.0)

    def test_hysteretic_switching(self):
        device = Vo2Device(v_imt=1.1, v_mit=0.5)
        assert device.next_phase(INSULATING, 1.2) == METALLIC
        assert device.next_phase(INSULATING, 1.0) == INSULATING
        assert device.next_phase(METALLIC, 0.4) == INSULATING
        assert device.next_phase(METALLIC, 0.8) == METALLIC

    def test_hysteresis_window_persistence(self):
        # inside the window both phases are stable (memory!)
        device = Vo2Device(v_imt=1.1, v_mit=0.5)
        for voltage in (0.6, 0.8, 1.0):
            assert device.next_phase(INSULATING, voltage) == INSULATING
            assert device.next_phase(METALLIC, voltage) == METALLIC

    def test_invalid_parameters(self):
        with pytest.raises(DeviceModelError):
            Vo2Device(r_ins=1e3, r_met=2e3)  # inverted resistances
        with pytest.raises(DeviceModelError):
            Vo2Device(v_imt=0.5, v_mit=1.1)  # inverted thresholds
        with pytest.raises(DeviceModelError):
            Vo2Device(r_met=-1.0)
        with pytest.raises(DeviceModelError):
            Vo2Device(v_mit=-0.1, v_imt=1.0)

    def test_current(self):
        device = Vo2Device(r_met=2e3)
        assert device.current(METALLIC, 1.0) == pytest.approx(5e-4)

    def test_iv_curve_shows_hysteresis(self):
        device = Vo2Device()
        voltages = np.linspace(0.0, 1.5, 200)
        up, down = device.iv_curve(voltages)
        # at a mid-window voltage, down-sweep current (metallic) exceeds
        # up-sweep current (insulating)
        index = np.argmin(np.abs(voltages - 0.8))
        assert down[index] > up[index] * 10


class TestSeriesTransistor:
    def test_resistance_decreases_with_vgs(self):
        transistor = SeriesTransistor()
        r1 = transistor.channel_resistance(1.0)
        r2 = transistor.channel_resistance(2.0)
        assert r2 < r1

    def test_cutoff_raises(self):
        transistor = SeriesTransistor(v_threshold=0.4)
        with pytest.raises(DeviceModelError):
            transistor.channel_resistance(0.3)
        with pytest.raises(DeviceModelError):
            transistor.channel_resistance(0.4)

    def test_resistance_floor(self):
        transistor = SeriesTransistor(r_min=500.0)
        assert transistor.channel_resistance(1000.0) == 500.0

    def test_drain_current_regions(self):
        transistor = SeriesTransistor(k_n=1e-4, v_threshold=0.4)
        # triode for small vds
        triode = transistor.drain_current(1.4, 0.1)
        assert triode == pytest.approx(1e-4 * (1.0 * 0.1 - 0.005))
        # saturation for large vds
        saturation = transistor.drain_current(1.4, 5.0)
        assert saturation == pytest.approx(0.5e-4 * 1.0)

    def test_drain_current_cutoff(self):
        transistor = SeriesTransistor()
        assert transistor.drain_current(0.1, 1.0) == 0.0
        assert transistor.drain_current(1.0, -0.5) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(DeviceModelError):
            SeriesTransistor(k_n=0.0)
        with pytest.raises(DeviceModelError):
            SeriesTransistor(r_min=-5.0)


@settings(max_examples=40, deadline=None)
@given(v_gs=st.floats(min_value=0.5, max_value=5.0))
def test_property_channel_resistance_positive(v_gs):
    """Above threshold the channel resistance is always positive/finite."""
    resistance = SeriesTransistor().channel_resistance(v_gs)
    assert 0.0 < resistance < np.inf


@settings(max_examples=40, deadline=None)
@given(phase_voltage=st.floats(min_value=0.0, max_value=2.0))
def test_property_phase_machine_is_total(phase_voltage):
    """next_phase always returns a valid phase for any voltage."""
    device = Vo2Device()
    for phase in (INSULATING, METALLIC):
        assert device.next_phase(phase, phase_voltage) in (INSULATING,
                                                           METALLIC)
