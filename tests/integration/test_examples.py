"""Smoke tests: every shipped example must run to completion.

The examples are the library's front door; a release where any of them
crashes is broken regardless of unit-test status.  Each example runs in
a subprocess with a generous timeout; stdout is checked for its
signature output line.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

#: (script, expected stdout fragment, slow?)
EXAMPLES = [
    ("quickstart.py", "Digital memcomputing", False),
    ("factor_rsa_two_ways.py", "round trip", False),
    ("three_machines_one_problem.py", "machines reaching the ground "
     "state: quantum, thermal, dmm", False),
    ("inmemory_iot_node.py", "reduction:", False),
    ("selforganizing_logic_demo.py", "instanton", False),
    ("dna_similarity_pipeline.py", "closest relative by quantum score: "
     "self", True),
    ("corner_detection_camera.py", "ratio:", True),
    ("oscillator_vision_toolbox.py", "FAST corners", True),
]


def run_example(name, timeout=600):
    path = os.path.join(EXAMPLES_DIR, name)
    completed = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=timeout)
    return completed


@pytest.mark.parametrize(
    "script,fragment",
    [(s, f) for s, f, slow in EXAMPLES if not slow])
def test_fast_examples_run(script, fragment):
    completed = run_example(script)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert fragment in completed.stdout


@pytest.mark.slow
@pytest.mark.parametrize(
    "script,fragment",
    [(s, f) for s, f, slow in EXAMPLES if slow])
def test_slow_examples_run(script, fragment):
    completed = run_example(script)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert fragment in completed.stdout


def test_every_shipped_example_is_covered():
    shipped = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    covered = {script for script, _f, _s in EXAMPLES}
    assert shipped == covered, (
        "examples without smoke coverage: %s" % sorted(shipped - covered))
