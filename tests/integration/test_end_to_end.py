"""Cross-module integration tests: each paradigm exercised end to end."""

import numpy as np
import pytest

from repro.core.sat_instances import planted_ksat
from repro.memcomputing.baselines import DpllSolver, WalkSatSolver
from repro.memcomputing.solver import DmmSolver
from repro.oscillators.fast import (
    OscillatorFastDetector,
    SoftwareFastDetector,
    rectangle_image,
)
from repro.oscillators.fast.oscillator_fast import agreement
from repro.quantum.accelerator import QuantumAccelerator
from repro.quantum.algorithms.qft import qft_circuit
from repro.quantum.algorithms.shor import order_finding_circuit, shor_factor
from repro.quantum.circuit import QuantumCircuit


class TestQuantumFullStack:
    def test_qft_kernel_through_accelerator(self):
        """A QFT kernel survives compile+route+execute with correct stats."""
        accelerator = QuantumAccelerator(4)
        kernel = qft_circuit(4, name="qft4")
        kernel.measure_all()
        result, report = accelerator.execute_kernel(kernel, shots=256,
                                                    rng=0)
        # QFT of |0000> is uniform: all 16 outcomes should appear
        assert len(result.counts) == 16
        layers = dict(report.rows())
        assert layers["compiler (mapping+routing)"]["physical_qubits"] == 4

    def test_order_finding_on_microarchitecture(self):
        """Shor's order-finding kernel runs on the uarch, not just the
        reference simulator, and still recovers the order."""
        from repro.quantum.microarch import MicroArchitecture

        circuit, t, n = order_finding_circuit(7, 15)
        microarch = MicroArchitecture(circuit.num_qubits)
        # several shots: at least one should give a useful phase
        from repro.quantum.algorithms.shor import (
            continued_fraction_convergents,
        )

        orders = set()
        for seed in range(8):
            result = microarch.execute_circuit(circuit, rng=seed)
            measured = result.bits_as_int(["c%d" % q for q in range(t)])
            if measured == 0:
                continue
            for convergent in continued_fraction_convergents(
                    measured, 2 ** t):
                candidate = convergent.denominator
                if 0 < candidate < 15 and pow(7, candidate, 15) == 1:
                    orders.add(candidate)
        assert 4 in orders

    def test_shor_factors_through_default_path(self):
        result = shor_factor(35, rng=5)
        assert result.succeeded
        assert sorted(result.factors) == [5, 7]

    def test_compiled_bell_statistics_match_reference(self):
        """Routing must not change measured statistics."""
        accelerator = QuantumAccelerator(5)
        kernel = QuantumCircuit(5, name="bell_far").h(0).cnot(0, 4)
        kernel.measure(0, "a").measure(4, "b")
        result, _report = accelerator.execute_kernel(kernel, shots=400,
                                                     rng=1)
        agree = result.counts.get(0, 0) + result.counts.get(3, 0)
        assert agree == 400


class TestOscillatorPipeline:
    def test_oscillator_fast_matches_software_end_to_end(self):
        image, ground_truth = rectangle_image()
        software = SoftwareFastDetector(threshold=30, n=9)
        oscillator = OscillatorFastDetector(threshold=30, n=9)
        report = agreement(oscillator.detect(image),
                           software.detect(image), tolerance=0)
        assert report["precision"] == 1.0 and report["recall"] == 1.0
        # and both recover the true rectangle corners
        truth = agreement(software.detect(image), ground_truth,
                          tolerance=2)
        assert truth["recall"] == 1.0

    @pytest.mark.slow
    def test_physical_distance_unit_detects_corner(self):
        """One corner pixel checked with the full ODE-backed primitive."""
        from repro.oscillators.distance import OscillatorDistanceUnit

        image, corners = rectangle_image()
        unit = OscillatorDistanceUnit(mode="physical", cycles=60)
        detector = OscillatorFastDetector(threshold=30, n=9,
                                          distance_unit=unit)
        row, col = corners[0]
        assert detector.is_corner(image, row, col)


class TestMemcomputingAgainstBaselines:
    def test_dmm_walksat_dpll_agree_on_planted(self):
        formula = planted_ksat(40, 168, rng=0)
        dmm = DmmSolver().solve(formula, rng=1)
        walksat = WalkSatSolver().solve(formula, rng=2)
        dpll = DpllSolver().solve(formula)
        assert dmm.satisfied and walksat.satisfied and dpll.satisfiable
        for assignment in (dmm.assignment, walksat.assignment,
                           dpll.assignment):
            assert formula.is_satisfied_by(assignment)

    def test_dmm_competitive_work_on_planted(self):
        """DMM steps stay within a sane multiple of WalkSAT flips."""
        formula = planted_ksat(60, 252, rng=3)
        dmm = DmmSolver().solve(formula, rng=4)
        walksat = WalkSatSolver().solve(formula, rng=5)
        assert dmm.satisfied and walksat.satisfied
        assert dmm.steps < 200_000


class TestCrossParadigm:
    def test_factoring_two_ways(self):
        """15 factors identically via Shor and via memcomputing."""
        from repro.memcomputing.circuit import factor_with_memcomputing

        quantum = shor_factor(15, rng=0)
        mem_a, mem_b = factor_with_memcomputing(15, rng=1)
        assert sorted(quantum.factors) == sorted((mem_a, mem_b)) == [3, 5]
