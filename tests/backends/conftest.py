"""Fixtures for the backend differential tier: loopback worker-host
agents (real child processes, real TCP) plus teardown hygiene so dead
links, warm remote backends, and pool workers never leak across tests.
"""

import pytest

from repro.core import backends
from repro.core import parallel as parallel_module
from repro.core import shm
from repro.core.backends.hostagent import spawn_local_agent


def _spawn(count, capacity):
    # Fork after shutting the persistent pool down so agent children
    # never inherit pool pipes/queues.
    parallel_module.shutdown_pools()
    return [spawn_local_agent(capacity=capacity) for _ in range(count)]


def _reap(handles):
    for handle in handles:
        handle.terminate()
    # Warm RemoteBackends are cached per host set; these ports are gone
    # for good, so drop the links rather than letting a later test's
    # atexit pass deal with them.
    backends.shutdown_backends()


@pytest.fixture(scope="module")
def loopback_hosts():
    """Two healthy loopback agents, shared across a module's tests.

    Only for tests that leave the agents alive -- fault tests that kill
    agents use the function-scoped :func:`agents` fixture instead.
    """
    handles = _spawn(2, capacity=4)
    yield ",".join(handle.spec for handle in handles)
    _reap(handles)


@pytest.fixture
def agents():
    """Two fresh loopback agents per test (safe to kill)."""
    handles = _spawn(2, capacity=4)
    yield handles
    _reap(handles)


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    yield
    assert shm.active_segment_count() == 0, \
        "test leaked shared-memory segments"
