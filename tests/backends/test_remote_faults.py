"""Remote-backend fault injection: hosts killed mid-chunk, hung hosts
exceeding the per-chunk timeout, connections dropped mid-run, and
whole-fleet loss.  Every recovery must be *bit-exact* against a serial
baseline, visibly counted (``backend.reroutes``), and leak-free (the
package's autouse fixture asserts zero live shared-memory segments
after every test).
"""

import threading
import time

import pytest

from repro.core import telemetry
from repro.core.exceptions import ParallelError
from repro.core.parallel import ParallelMap, TaskFailure

from . import _tasks


def _hosts(handles):
    return ",".join(handle.spec for handle in handles)


def _remote_map(handles, fn, tasks, on_error="raise", **kwargs):
    kwargs.setdefault("workers", 4)
    return ParallelMap(backend="remote", hosts=_hosts(handles),
                       **kwargs).map(fn, tasks, on_error=on_error)


def _dead_count(handles, expected, deadline_s=5.0):
    """Wait briefly for agent processes to be reaped, return the count."""
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        dead = sum(1 for handle in handles if not handle.alive())
        if dead >= expected:
            return dead
    return sum(1 for handle in handles if not handle.alive())


class TestKilledHost:
    def test_kill_fault_reroutes_and_completes_bit_exact(
            self, agents, fault_plan):
        tasks = list(range(12))
        baseline = ParallelMap(workers=1).map(_tasks.square, tasks)
        # Chunk 1, first attempt: os._exit inside run_task takes the
        # whole agent process down -- "host killed mid-chunk".
        fault_plan([(1, 1, "kill")])
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            results = _remote_map(agents, _tasks.square, tasks)
        assert results == baseline
        assert registry.counter("backend.reroutes").value > 0
        assert registry.counter(
            "backend.reroutes", labels={"backend": "remote"}).value > 0
        assert _dead_count(agents, expected=1) == 1

    def test_host_killed_externally_mid_run_reroutes(self, agents):
        # Even indexes sleep long enough to be inflight when the first
        # agent is killed out from under the client.
        tasks = [(0.3 if index % 2 == 0 else 0.0, index)
                 for index in range(10)]
        expected = [index * index for _delay, index in tasks]
        killer = threading.Timer(0.15, agents[0].process.kill)
        registry = telemetry.MetricsRegistry()
        killer.start()
        try:
            with telemetry.use_registry(registry):
                results = _remote_map(agents, _tasks.sleep_then_square,
                                      tasks)
        finally:
            killer.cancel()
        assert results == expected
        assert registry.counter("backend.reroutes").value > 0


class TestHungHost:
    def test_hang_exceeding_timeout_reroutes_bit_exact(
            self, agents, fault_plan):
        tasks = list(range(8))
        baseline = ParallelMap(workers=1).map(_tasks.square, tasks)
        fault_plan([(0, 1, "hang")], hang_seconds=120.0)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            results = _remote_map(agents, _tasks.square, tasks,
                                  timeout=1.5)
        assert results == baseline
        assert registry.counter("backend.reroutes").value > 0
        # A hang wedges one executor thread, not the agent: both hosts
        # are still alive (the kill is the client's link drop).
        assert all(handle.alive() for handle in agents)


class TestFleetLoss:
    def test_all_hosts_dead_fails_chunks_without_hanging(self, agents):
        tasks = [(0.5, index) for index in range(8)]
        for handle in agents:
            threading.Timer(0.1, handle.process.kill).start()
        start = time.monotonic()
        results = _remote_map(agents, _tasks.sleep_then_square, tasks,
                              on_error="return")
        elapsed = time.monotonic() - start
        assert elapsed < 30.0
        assert any(isinstance(value, TaskFailure) for value in results)

    def test_unreachable_host_raises_when_never_connected(self):
        with pytest.raises(ParallelError):
            ParallelMap(workers=2, backend="remote",
                        hosts="127.0.0.1:9:1").map(_tasks.square, [1, 2])

    def test_partial_connectivity_uses_the_reachable_host(self, agents):
        agents[1].terminate()
        tasks = list(range(10))
        baseline = [value * value for value in tasks]
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            results = _remote_map(agents, _tasks.square, tasks)
        assert results == baseline
        assert registry.counter("remote.connect_failures").value > 0


class TestTransferTelemetry:
    def test_bytes_counters_with_host_labels(self, agents):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            _remote_map(agents, _tasks.square, list(range(6)))
        snapshot = registry.snapshot()
        assert registry.counter("remote.bytes_out").value > 0
        assert registry.counter("remote.bytes_in").value > 0
        for name in ("remote.bytes_out", "remote.bytes_in"):
            assert any(key.startswith(name + "{host=")
                       for key in snapshot), name
