"""Backend selection precedence: explicit argument > ambient
``use_backend`` scope > ``REPRO_BACKEND``/``REPRO_HOSTS`` environment >
the legacy automatic serial-vs-pool choice.
"""

import threading

import pytest

from repro.core import backends
from repro.core.backends import (
    PoolBackend,
    SerialBackend,
    resolve_backend,
    use_backend,
)
from repro.core.exceptions import ParallelError
from repro.core.parallel import ParallelMap


class TestResolvePrecedence:
    def test_explicit_instance_wins(self):
        mine = SerialBackend()
        with use_backend("pool"):
            assert resolve_backend(mine) is mine

    def test_explicit_name_beats_scope(self):
        with use_backend("pool"):
            assert resolve_backend("serial").name == "serial"

    def test_scope_beats_automatic(self):
        with use_backend("serial"):
            assert resolve_backend(fanout=True).name == "serial"

    def test_innermost_scope_wins(self):
        with use_backend("pool"):
            with use_backend("serial"):
                assert resolve_backend(fanout=True).name == "serial"
            assert resolve_backend(fanout=True).name == "pool"

    def test_none_scope_is_passthrough(self):
        with use_backend(None):
            assert resolve_backend(fanout=False).name == "serial"
            assert resolve_backend(fanout=True).name == "pool"

    def test_scope_is_visible_across_threads(self):
        # The serve dispatcher runs kernels on executor threads; the
        # override stack is deliberately process-global.
        seen = []
        with use_backend("serial"):
            thread = threading.Thread(
                target=lambda: seen.append(
                    resolve_backend(fanout=True).name))
            thread.start()
            thread.join()
        assert seen == ["serial"]

    def test_env_beats_automatic(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "serial")
        assert resolve_backend(fanout=True).name == "serial"

    def test_scope_beats_env(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "serial")
        with use_backend("pool"):
            assert resolve_backend(fanout=True).name == "pool"

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "quantum-teleport")
        with pytest.raises(ParallelError):
            resolve_backend(fanout=True)

    def test_automatic_without_fanout_is_serial(self):
        assert resolve_backend(fanout=False).name == "serial"

    def test_remote_without_hosts_raises(self):
        with pytest.raises(ParallelError, match="hosts"):
            resolve_backend("remote")

    def test_remote_hosts_from_env(self, monkeypatch):
        monkeypatch.setenv(backends.HOSTS_ENV, "127.0.0.1:19999:1")
        backend = resolve_backend("remote")
        assert backend.name == "remote"
        backends.shutdown_backends()

    def test_unknown_names_rejected(self):
        with pytest.raises(ParallelError):
            resolve_backend("carrier-pigeon")
        with pytest.raises(ParallelError):
            use_backend("carrier-pigeon")

    def test_pool_backend_reports_pool_name(self):
        assert PoolBackend().name == "pool"


class TestParallelMapWiring:
    def test_map_validates_backend_argument(self):
        with pytest.raises(ParallelError):
            ParallelMap(backend="warp-drive")
        with pytest.raises(ParallelError):
            ParallelMap(backend=42)

    def test_map_accepts_backend_instance(self):
        results = ParallelMap(workers=2,
                              backend=SerialBackend()).map(
            _double, [1, 2, 3])
        assert results == [2, 4, 6]

    def test_remote_map_without_hosts_raises(self):
        with pytest.raises(ParallelError, match="hosts"):
            ParallelMap(workers=2, backend="remote").map(_double, [1])


def _double(x):
    return 2 * x
