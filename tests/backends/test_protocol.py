"""The remote wire protocol in isolation: framing round-trips under
arbitrary fragmentation, corrupt-stream rejection, and host-spec
parsing.  No sockets -- the decoder is a pure byte-stream machine.
"""

import io
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends import wire
from repro.core.backends.remote import HostSpec, parse_hosts
from repro.core.exceptions import ParallelError


class TestFraming:
    def test_round_trip(self):
        message = ("chunk", "job-1", 3, 1, None, [1, 2, 3], None,
                   False, None)
        decoder = wire.FrameDecoder()
        assert decoder.feed(wire.encode_frame(message)) == [message]

    def test_multiple_frames_in_one_feed(self):
        messages = [("ping", n) for n in range(5)]
        blob = b"".join(wire.encode_frame(m) for m in messages)
        assert wire.FrameDecoder().feed(blob) == messages

    @settings(max_examples=30, deadline=None)
    @given(payload=st.lists(st.integers(-2**40, 2**40), max_size=50),
           cut=st.data())
    def test_any_fragmentation_reassembles(self, payload, cut):
        message = ("result", "job", 0, "ok", payload, None, 0.0)
        blob = wire.encode_frame(message)
        decoder = wire.FrameDecoder()
        seen = []
        position = 0
        while position < len(blob):
            step = cut.draw(st.integers(1, len(blob) - position))
            seen.extend(decoder.feed(blob[position:position + step]))
            position += step
        assert seen == [message]

    def test_read_frame_stream(self):
        messages = [("hello", {"version": wire.VERSION}), ("bye",)]
        stream = io.BytesIO(b"".join(wire.encode_frame(m)
                                     for m in messages))
        assert wire.read_frame(stream) == messages[0]
        assert wire.read_frame(stream) == messages[1]
        assert wire.read_frame(stream) is None  # clean EOF

    def test_read_frame_truncated_mid_frame_raises(self):
        blob = wire.encode_frame(("ping", 1))
        stream = io.BytesIO(blob[:-3])
        with pytest.raises(ParallelError):
            wire.read_frame(stream)

    def test_bad_magic_rejected(self):
        blob = wire.encode_frame(("ping", 1))
        corrupt = b"XXXX" + blob[4:]
        with pytest.raises(ParallelError, match="magic"):
            wire.FrameDecoder().feed(corrupt)

    def test_oversized_frame_rejected(self):
        header = wire.MAGIC + (wire.MAX_FRAME_BYTES + 1).to_bytes(8, "big")
        with pytest.raises(ParallelError):
            wire.FrameDecoder().feed(header)

    def test_frames_carry_pickled_numpy_payloads(self):
        import numpy as np

        array = np.arange(12.0).reshape(3, 4)
        message = ("result", "job", 1, "ok", array, None, 0.01)
        (decoded,) = wire.FrameDecoder().feed(wire.encode_frame(message))
        assert np.array_equal(decoded[4], array)
        assert decoded[4].dtype == array.dtype

    def test_encode_uses_highest_pickle_protocol(self):
        blob = wire.encode_frame(("ping", 0))
        # Strip the header; the body must be a current-protocol pickle.
        body = blob[12:]
        assert pickle.loads(body) == ("ping", 0)


class TestHostSpecs:
    def test_parse_host_port(self):
        spec = HostSpec.parse("127.0.0.1:9000")
        assert (spec.host, spec.port) == ("127.0.0.1", 9000)

    def test_parse_with_capacity(self):
        spec = HostSpec.parse("worker-3:9000:8")
        assert (spec.host, spec.port, spec.capacity) == ("worker-3",
                                                         9000, 8)

    def test_label_is_host_port(self):
        assert HostSpec.parse("h:1234:2").label == "h:1234"

    @pytest.mark.parametrize("bad", ["", "nohost", "h:notaport",
                                     "h:0", "h:70000", "h:80:0",
                                     "h:80:-1"])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ParallelError):
            HostSpec.parse(bad)

    def test_parse_hosts_comma_string(self):
        specs = parse_hosts("a:1000, b:2000:4")
        assert [(s.host, s.port) for s in specs] == [("a", 1000),
                                                     ("b", 2000)]

    def test_parse_hosts_iterable_and_passthrough(self):
        one = HostSpec.parse("a:1000")
        specs = parse_hosts([one, "b:2000"])
        assert specs[0] is one
        assert specs[1].port == 2000

    def test_parse_hosts_empty_rejected(self):
        with pytest.raises(ParallelError):
            parse_hosts("")
        with pytest.raises(ParallelError):
            parse_hosts([])
