"""The differential tier: serial, pool, and loopback-remote backends
must be *bit-identical* -- results (``np.array_equal``, never
``allclose``), spawned-RNG final states, merged telemetry snapshots,
cache keys, and checkpoints that resume across backends.

The chunking/RNG/cache/checkpoint machinery lives in the scheduler,
above the backend seam, so any divergence here means a backend leaked
into the determinism contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cache as cache_module
from repro.core import resilience, telemetry
from repro.core.backends import use_backend
from repro.core.exceptions import ParallelError
from repro.core.parallel import ParallelMap
from repro.core.rngs import spawn_rngs
from repro.core.sat_instances import planted_ksat
from repro.memcomputing.ensemble import solve_ensemble

from . import _tasks

BACKENDS = ("serial", "pool", "remote")


def _map_on(backend, hosts, fn, tasks, **kwargs):
    engine = ParallelMap(workers=kwargs.pop("workers", 2),
                         backend=backend,
                         hosts=hosts if backend == "remote" else None,
                         **kwargs)
    return engine.map(fn, tasks)


class TestResultEquivalence:
    def test_squares_identical_across_backends(self, loopback_hosts):
        tasks = list(range(23))
        baseline = _map_on("serial", None, _tasks.square, tasks)
        for backend in ("pool", "remote"):
            assert _map_on(backend, loopback_hosts, _tasks.square,
                           tasks) == baseline

    @settings(max_examples=10, deadline=None)
    @given(values=st.lists(st.integers(-10**6, 10**6), min_size=1,
                           max_size=40),
           workers=st.integers(1, 4))
    def test_property_serial_equals_pool(self, values, workers):
        serial = _map_on("serial", None, _tasks.square, values,
                         workers=workers)
        pooled = _map_on("pool", None, _tasks.square, values,
                         workers=workers)
        assert serial == pooled

    def test_array_tasks_bit_identical(self, loopback_hosts):
        rng = np.random.default_rng(7)
        tasks = [rng.normal(size=64) for _ in range(9)]
        baseline = _map_on("serial", None, _tasks.checksum_array, tasks)
        for backend in ("pool", "remote"):
            got = _map_on(backend, loopback_hosts,
                          _tasks.checksum_array, tasks)
            assert got == baseline  # exact float equality, no approx

    def test_spawned_rng_draws_and_final_state_identical(
            self, loopback_hosts):
        def run(backend):
            tasks = list(zip(spawn_rngs(1234, 8), [16] * 8))
            return _map_on(backend, loopback_hosts, _tasks.rng_draw,
                           tasks)

        baseline = run("serial")
        for backend in ("pool", "remote"):
            got = run(backend)
            for (values, state), (base_values, base_state) in zip(
                    got, baseline):
                assert np.array_equal(values, base_values)
                assert state == base_state


class TestTelemetryEquivalence:
    def _snapshot(self, backend, hosts):
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            _map_on(backend, hosts, _tasks.square_instrumented,
                    list(range(12)))
        snapshot = registry.snapshot()
        return {name: entry for name, entry in snapshot.items()
                if name.startswith("test.backends.")
                or name == "parallel.tasks"}

    def test_merged_snapshots_identical(self, loopback_hosts):
        baseline = self._snapshot("serial", None)
        assert baseline  # the instrumented task actually recorded
        for backend in ("pool", "remote"):
            assert self._snapshot(backend, loopback_hosts) == baseline

    def test_backend_chunks_counter_labeled_per_backend(
            self, loopback_hosts):
        for backend in BACKENDS:
            registry = telemetry.MetricsRegistry()
            with telemetry.use_registry(registry):
                _map_on(backend, loopback_hosts, _tasks.square,
                        list(range(10)))
            counter = registry.counter("backend.chunks",
                                       labels={"backend": backend})
            assert counter.value == 10


class TestCacheEquivalence:
    RUN_ARGS = dict(batch=6, max_steps=12_000, chunk_size=2, rng=2)
    FORMULA_ARGS = dict(num_variables=15, num_clauses=55, rng=1)

    def test_cache_keys_shared_across_backends(self, tmp_path,
                                               loopback_hosts):
        formula = planted_ksat(**self.FORMULA_ARGS)
        store = cache_module.ResultCache(cache_dir=str(tmp_path))
        with use_backend("serial"):
            cold = solve_ensemble(formula, workers=2, cache=store,
                                  **self.RUN_ARGS)
        stored = store.stores
        assert stored > 0
        entries_after_cold = sorted(path for path, _mtime, _size
                                    in store._disk_entries())
        with use_backend("remote", hosts=loopback_hosts):
            warm = solve_ensemble(formula, workers=2, cache=store,
                                  **self.RUN_ARGS)
        assert np.array_equal(cold.solve_steps, warm.solve_steps)
        # Every chunk the remote run needed hit the serial run's
        # entries: same fingerprints, nothing new stored.
        assert store.hits >= stored
        assert store.stores == stored
        assert sorted(path for path, _mtime, _size
                      in store._disk_entries()) == entries_after_cold


class TestCheckpointEquivalence:
    RUN_ARGS = dict(batch=6, max_steps=12_000, chunk_size=2, rng=2)
    FORMULA_ARGS = dict(num_variables=15, num_clauses=55, rng=1)

    def test_pool_checkpoint_resumes_on_remote(self, tmp_path,
                                               loopback_hosts):
        formula = planted_ksat(**self.FORMULA_ARGS)
        with use_backend("serial"):
            uninterrupted = solve_ensemble(formula, workers=1,
                                           **self.RUN_ARGS)
        path = str(tmp_path / "ensemble.json")
        # Pool run dies on chunk 2 (every attempt), checkpoint partial;
        # the plan is uninstalled before the resume, which must run
        # fault-free.
        plan = resilience.FaultPlan.from_spec(
            "2:1:raise,2:2:raise,2:3:raise")
        previous = resilience.set_fault_plan(plan)
        try:
            with use_backend("pool"):
                with pytest.raises(ParallelError):
                    solve_ensemble(
                        formula, workers=2,
                        retry=resilience.RetryPolicy(max_attempts=3,
                                                     backoff_base=0.0),
                        checkpoint=path, **self.RUN_ARGS)
        finally:
            resilience.set_fault_plan(previous)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            with use_backend("remote", hosts=loopback_hosts):
                resumed = solve_ensemble(formula, workers=2,
                                         checkpoint=path,
                                         **self.RUN_ARGS)
        assert np.array_equal(uninterrupted.solve_steps,
                              resumed.solve_steps)
        restored = registry.counter("resilience.chunks_restored").value
        assert restored > 0  # the pool run's chunks fed the remote run
