"""Module-level task functions for the backend differential tier.

Worker entry points must pickle by reference, so everything the
serial/pool/remote comparisons map over lives here (the remote host
agent imports this module by name when unpickling a chunk).
"""

import time

import numpy as np

from repro.core import telemetry


def square(x):
    return x * x


def square_instrumented(x):
    telemetry.counter("test.backends.calls").inc()
    telemetry.counter("test.backends.calls",
                      labels={"kind": "square"}).inc()
    telemetry.histogram("test.backends.values").observe(float(x))
    return x * x


def rng_draw(task):
    """Draw from a per-chunk spawned generator; return the draws plus
    the generator's final state (the cross-backend determinism
    contract covers both)."""
    rng, count = task
    values = rng.integers(0, 1 << 30, size=count)
    return values, rng.bit_generator.state


def sum_array(task):
    return float(task.sum())


def sleep_then_square(task):
    delay, x = task
    if delay:
        time.sleep(delay)
    return x * x


def checksum_array(task):
    """Bit-stable reduction over a float array (no reordering)."""
    return float(np.float64(0.0) + task.sum(dtype=np.float64))
