"""Tests for the DMM SAT solver."""

import pytest

from repro.core.cnf import Clause, CnfFormula
from repro.core.exceptions import DmmConvergenceError
from repro.core.sat_instances import planted_ksat, random_ksat
from repro.memcomputing.solver import DmmSolver


class TestDmmSolver:
    def test_solves_planted_instance(self):
        formula = planted_ksat(40, 160, rng=0)
        result = DmmSolver().solve(formula, rng=1)
        assert result.satisfied
        assert formula.is_satisfied_by(result.assignment)

    def test_solves_near_transition_random_instance(self):
        formula = random_ksat(60, 252, rng=7)  # ratio 4.2
        result = DmmSolver(max_steps=600_000).solve(formula, rng=2)
        assert result.satisfied
        assert formula.is_satisfied_by(result.assignment)

    def test_solves_unit_and_binary_clauses(self):
        formula = CnfFormula([Clause([1]), Clause([-1, 2]),
                              Clause([-2, 3])])
        result = DmmSolver().solve(formula, rng=0)
        assert result.satisfied
        assert result.assignment == {1: True, 2: True, 3: True}

    def test_deterministic_given_seed(self):
        formula = planted_ksat(30, 120, rng=5)
        a = DmmSolver().solve(formula, rng=9)
        b = DmmSolver().solve(formula, rng=9)
        assert a.steps == b.steps
        assert a.assignment == b.assignment

    def test_budget_exhaustion_reported(self):
        # x and not-x is unsatisfiable: the solver must run out of budget
        formula = CnfFormula([Clause([1]), Clause([-1])])
        result = DmmSolver(max_steps=2_000).solve(formula, rng=0)
        assert not result.satisfied
        assert result.steps == 2_000

    def test_raise_on_failure(self):
        formula = CnfFormula([Clause([1]), Clause([-1])])
        with pytest.raises(DmmConvergenceError):
            DmmSolver(max_steps=1_000).solve(formula, rng=0,
                                             raise_on_failure=True)

    def test_restarts_counted(self):
        formula = CnfFormula([Clause([1]), Clause([-1])])
        result = DmmSolver(max_steps=5_000,
                           restart_after=1_000).solve(formula, rng=0)
        # one restart fires every 1000 steps, including at the final step
        assert result.restarts == 5

    def test_unsat_trace_recorded(self):
        formula = planted_ksat(30, 120, rng=6)
        result = DmmSolver().solve(formula, rng=3)
        assert result.unsat_trace[0][1] >= 0
        assert result.unsat_trace[-1][1] == 0  # solved

    def test_noise_does_not_break_small_instances(self):
        formula = planted_ksat(20, 80, rng=8)
        result = DmmSolver(noise_sigma=0.3,
                           max_steps=200_000).solve(formula, rng=4)
        assert result.satisfied

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            DmmSolver(dt=0.0)

    def test_wall_time_recorded(self):
        formula = planted_ksat(20, 80, rng=9)
        result = DmmSolver().solve(formula, rng=5)
        assert result.wall_time >= 0.0

    @pytest.mark.parametrize("n", [20, 60, 120])
    def test_scaling_sizes_all_solved(self, n):
        formula = planted_ksat(n, int(4.0 * n), rng=n)
        result = DmmSolver(max_steps=500_000).solve(formula, rng=n + 1)
        assert result.satisfied
