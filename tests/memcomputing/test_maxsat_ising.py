"""Tests for memcomputing MaxSAT and the spin-glass pipeline."""

import numpy as np
import pytest

from repro.core.cnf import Clause, CnfFormula
from repro.core.exceptions import MemcomputingError
from repro.core.sat_instances import (
    frustrated_loop_ising,
    ising_energy,
    planted_maxsat,
)
from repro.memcomputing.ising import (
    flip_cluster_sizes,
    ising_to_maxsat,
    largest_cluster_fraction,
    solve_ising_dmm,
    spins_from_assignment,
)
from repro.memcomputing.maxsat import (
    DmmMaxSatSolver,
    anneal_maxsat,
)


class TestDmmMaxSat:
    def test_finds_feasible_good_solution(self):
        formula, _plant = planted_maxsat(30, 90, 40, rng=0)
        result = DmmMaxSatSolver(max_steps=25_000).solve(formula, rng=1)
        assert result.hard_feasible
        assert all(c.is_satisfied_by(result.assignment)
                   for c in formula.hard_clauses)
        total = sum(c.weight for c in formula.soft_clauses)
        assert result.satisfied_weight > 0.7 * total

    def test_anytime_trace_improves(self):
        formula, _plant = planted_maxsat(30, 90, 40, rng=2)
        result = DmmMaxSatSolver(max_steps=25_000).solve(formula, rng=3)
        weights = [w for _step, w in result.weight_trace]
        assert weights == sorted(weights)

    def test_all_satisfiable_stops_early(self):
        # soft clauses that a single assignment satisfies entirely
        clauses = [Clause([1], weight=1.0), Clause([2], weight=1.0),
                   Clause([1, 2])]
        formula = CnfFormula(clauses)
        result = DmmMaxSatSolver(max_steps=50_000).solve(formula, rng=0)
        assert result.satisfied_weight == pytest.approx(2.0)

    def test_requires_soft_clauses(self):
        with pytest.raises(MemcomputingError):
            DmmMaxSatSolver().solve(CnfFormula([Clause([1])]))


class TestAnnealMaxSat:
    def test_feasible_solution_found(self):
        formula, _plant = planted_maxsat(30, 90, 40, rng=4)
        result = anneal_maxsat(formula, sweeps=400, rng=5)
        assert result.hard_feasible

    def test_requires_soft_clauses(self):
        with pytest.raises(MemcomputingError):
            anneal_maxsat(CnfFormula([Clause([1])]))

    def test_dmm_competitive_with_annealing(self):
        formula, _plant = planted_maxsat(40, 120, 60, rng=9)
        dmm = DmmMaxSatSolver(max_steps=30_000).solve(formula, rng=3)
        annealed = anneal_maxsat(formula, sweeps=800, rng=4)
        assert dmm.satisfied_weight >= 0.97 * annealed.satisfied_weight


class TestIsingEncoding:
    def test_encoding_exact_energy_relation(self):
        """E + 2 * satisfied_weight is constant over all states."""
        couplings, _bound = frustrated_loop_ising(8, 2, loop_length=4,
                                                  rng=0)
        formula = ising_to_maxsat(couplings, 8)
        constants = set()
        for state in range(256):
            spins = np.array([1 if (state >> i) & 1 else -1
                              for i in range(8)])
            assignment = {i + 1: spins[i] > 0 for i in range(8)}
            energy = ising_energy(couplings, spins)
            weight = formula.weight_satisfied(assignment)
            constants.add(round(energy + 2.0 * weight, 9))
        assert len(constants) == 1

    def test_ground_states_maximize_weight(self):
        couplings = {(0, 1): -1.0}  # ferromagnetic pair
        formula = ising_to_maxsat(couplings, 2)
        aligned = formula.weight_satisfied({1: True, 2: True})
        anti = formula.weight_satisfied({1: True, 2: False})
        assert aligned > anti

    def test_empty_couplings_rejected(self):
        with pytest.raises(MemcomputingError):
            ising_to_maxsat({}, 4)
        with pytest.raises(MemcomputingError):
            ising_to_maxsat({(0, 1): 0.0}, 2)

    def test_spins_decode(self):
        spins = spins_from_assignment({1: True, 2: False, 3: True}, 3)
        assert spins.tolist() == [1, -1, 1]


class TestDmmSpinGlass:
    def test_reaches_frustrated_loop_ground_state(self):
        couplings, bound = frustrated_loop_ising(40, 10, rng=1)
        result = solve_ising_dmm(couplings, 40, rng=2, max_steps=30_000)
        assert result.energy <= bound + 4.0  # within two violated bonds
        assert ising_energy(couplings, result.spins) == pytest.approx(
            result.energy)

    def test_fields_supported(self):
        couplings = {(0, 1): -1.0}
        fields = [0.0, 5.0]  # strong field pushing spin 1 down
        result = solve_ising_dmm(couplings, 2, fields=fields, rng=0,
                                 max_steps=5_000)
        assert result.spins[1] == -1

    def test_traces_recorded(self):
        couplings, _bound = frustrated_loop_ising(20, 4, rng=3)
        result = solve_ising_dmm(couplings, 20, rng=4, max_steps=4_000)
        assert result.spin_trace.shape[1] == 20
        assert len(result.energy_trace) == len(result.spin_trace)


class TestClusterFlips:
    def test_sizes_from_synthetic_trace(self):
        trace = np.array([
            [1, 1, 1, 1],
            [1, 1, 1, 1],     # no event
            [-1, -1, 1, 1],   # cluster of 2
            [-1, -1, -1, -1],  # cluster of 2
        ])
        assert flip_cluster_sizes(trace) == [2, 2]

    def test_largest_fraction(self):
        trace = np.array([[1, 1, 1, 1], [-1, -1, -1, 1]])
        assert largest_cluster_fraction(trace) == pytest.approx(0.75)

    def test_empty_trace(self):
        assert flip_cluster_sizes([]) == []
        assert largest_cluster_fraction(np.ones((1, 4))) == 0.0

    def test_dmm_shows_multi_spin_events(self):
        """The DLRO signature: some DMM transitions flip many spins."""
        couplings, _bound = frustrated_loop_ising(40, 10, rng=5)
        result = solve_ising_dmm(couplings, 40, rng=6, max_steps=10_000)
        sizes = flip_cluster_sizes(result.spin_trace)
        assert sizes, "expected at least one flip event"
        assert max(sizes) >= 3
