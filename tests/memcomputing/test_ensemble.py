"""Tests for the batched DMM ensemble solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cnf import Clause, CnfFormula
from repro.core.exceptions import MemcomputingError
from repro.core.rngs import make_rng
from repro.core.sat_instances import planted_ksat
from repro.memcomputing.ensemble import (
    BatchedDmm,
    EnsembleResult,
    solve_ensemble,
)


class TestBatchedRhs:
    def test_matches_single_trajectory_rhs(self):
        formula = planted_ksat(15, 60, rng=0)
        batched = BatchedDmm(formula)
        rng = make_rng(1)
        states = batched.initial_states(8, rng)
        expected = np.stack([batched.system.rhs(0.0, state)
                             for state in states])
        actual = batched.rhs_batch(states)
        assert np.allclose(expected, actual)

    def test_weighted_formula_supported(self):
        formula = CnfFormula([Clause([1, 2], weight=3.0),
                              Clause([-1, 2])])
        batched = BatchedDmm(formula)
        states = batched.initial_states(4, make_rng(2))
        expected = np.stack([batched.system.rhs(0.0, state)
                             for state in states])
        assert np.allclose(expected, batched.rhs_batch(states))

    def test_unsat_counts_match_system(self):
        formula = planted_ksat(12, 48, rng=3)
        batched = BatchedDmm(formula)
        states = batched.initial_states(6, make_rng(4))
        expected = [batched.system.unsatisfied_count(state)
                    for state in states]
        assert batched.unsatisfied_counts(states).tolist() == expected

    def test_batch_validation(self):
        batched = BatchedDmm(planted_ksat(5, 15, rng=5))
        with pytest.raises(MemcomputingError):
            batched.initial_states(0, make_rng(0))


class TestSolveEnsemble:
    def test_all_trajectories_solve_planted(self):
        formula = planted_ksat(30, 120, rng=6)
        result = solve_ensemble(formula, batch=16, max_steps=60_000,
                                rng=7)
        assert result.solved_fraction == 1.0
        assert np.all(np.isfinite(result.solve_steps))

    def test_quantiles_ordered(self):
        formula = planted_ksat(40, 168, rng=8)
        result = solve_ensemble(formula, batch=24, max_steps=60_000,
                                rng=9)
        assert result.quantile(0.5) <= result.quantile(0.9)

    def test_unsatisfiable_never_solves(self):
        formula = CnfFormula([Clause([1]), Clause([-1])])
        result = solve_ensemble(formula, batch=8, max_steps=2_000, rng=0)
        assert result.solved_fraction == 0.0
        assert result.quantile(0.5) == float("inf")

    def test_deterministic_given_seed(self):
        formula = planted_ksat(20, 80, rng=10)
        a = solve_ensemble(formula, batch=8, max_steps=20_000, rng=11)
        b = solve_ensemble(formula, batch=8, max_steps=20_000, rng=11)
        assert np.array_equal(a.solve_steps, b.solve_steps)

    def test_quantile_inf_when_under_solved(self):
        result = EnsembleResult([100.0, np.inf, np.inf, np.inf], 1_000)
        assert result.quantile(0.5) == float("inf")
        assert result.quantile(0.25) == 100.0


class TestUnsolvedMask:
    def test_mask_flags_inf_sentinels(self):
        result = EnsembleResult([10.0, np.inf, 30.0, np.inf], 1_000)
        assert result.unsolved_mask.tolist() == [False, True, False, True]
        assert result.solved_steps.tolist() == [10.0, 30.0]
        assert result.solved_fraction == 0.5

    def test_all_solved_mask_empty(self):
        result = EnsembleResult([5.0, 6.0], 100)
        assert not result.unsolved_mask.any()
        assert result.solved_steps.tolist() == [5.0, 6.0]

    def test_quantile_reads_solved_subset_only(self):
        # Rank is over the whole ensemble, but the returned value must
        # come from the solved subset -- never the inf sentinel.
        result = EnsembleResult([10.0, 20.0, np.inf, np.inf], 1_000)
        assert result.quantile(0.5) == 20.0
        assert result.quantile(0.25) == 10.0
        assert result.quantile(0.75) == float("inf")

    def test_quantile_never_returns_sentinel_when_guard_passes(self):
        result = EnsembleResult([1.0, 2.0, 3.0, np.inf], 1_000)
        for q in (0.1, 0.25, 0.5, 0.75):
            assert np.isfinite(result.quantile(q))

    def test_summaries_ignore_unsolved_trajectories(self):
        solved = EnsembleResult([10.0, 20.0, 30.0, 40.0], 1_000)
        partial = EnsembleResult([10.0, 20.0, 30.0, 40.0,
                                  np.inf, np.inf, np.inf, np.inf], 1_000)
        # the same solved values rank differently (the unsolved half
        # occupies the slow tail) but the values read out stay finite
        # and come from the solved subset
        assert partial.quantile(0.5) == 40.0
        assert np.median(partial.solved_steps) == \
            np.median(solved.solved_steps)


class TestParallelEnsemble:
    def test_chunked_serial_matches_parallel(self):
        formula = planted_ksat(20, 80, rng=10)
        serial = solve_ensemble(formula, batch=8, max_steps=20_000,
                                rng=11, workers=1, chunk_size=4)
        parallel = solve_ensemble(formula, batch=8, max_steps=20_000,
                                  rng=11, workers=2, chunk_size=4)
        assert np.array_equal(serial.solve_steps, parallel.solve_steps)

    def test_chunked_batch_size_preserved(self):
        formula = planted_ksat(15, 55, rng=1)
        result = solve_ensemble(formula, batch=7, max_steps=10_000,
                                rng=2, workers=2, chunk_size=3)
        assert len(result.solve_steps) == 7

    def test_invalid_batch_rejected(self):
        formula = planted_ksat(10, 30, rng=1)
        with pytest.raises(MemcomputingError):
            solve_ensemble(formula, batch=0, workers=2)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_property_ensemble_median_comparable_to_single_solver(seed):
    """The ensemble's fastest trajectories are no slower than generous
    single-run budgets (sanity link between the two code paths)."""
    from repro.memcomputing.solver import DmmSolver

    formula = planted_ksat(20, 80, rng=seed)
    single = DmmSolver(max_steps=60_000).solve(formula, rng=seed)
    ensemble = solve_ensemble(formula, batch=8, max_steps=60_000,
                              rng=seed)
    assert single.satisfied
    assert ensemble.solved_fraction == 1.0


class TestTrajectoryStepAccounting:
    def test_total_counts_solved_and_budgeted_steps(self):
        result = EnsembleResult(
            solve_steps=np.array([100.0, np.inf, 250.0]), max_steps=500)
        # the unsolved trajectory burned its whole max_steps budget
        assert result.total_trajectory_steps == 100.0 + 500.0 + 250.0

    def test_ensemble_records_throughput_instrument(self):
        from repro.core import telemetry

        formula = planted_ksat(12, 50, rng=0)
        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            result = solve_ensemble(formula, batch=4, max_steps=20_000,
                                    rng=1)
        histogram = registry.histogram("dmm.ensemble.traj_steps_per_s")
        assert histogram.count == 1
        units = registry.counter("dmm.ensemble.traj_steps_units").value
        assert units == pytest.approx(result.total_trajectory_steps)

    def test_chunked_path_units_exact_and_worker_invariant(self):
        # batched + chunked execution must not change the unit count:
        # the instrument sees exactly total_trajectory_steps, and that
        # total is itself identical for every worker count
        from repro.core import telemetry

        formula = planted_ksat(12, 50, rng=0)
        totals = []
        for workers in (1, 2):
            registry = telemetry.MetricsRegistry()
            with telemetry.use_registry(registry):
                result = solve_ensemble(formula, batch=6,
                                        max_steps=20_000, rng=1,
                                        workers=workers, chunk_size=2)
            units = registry.counter(
                "dmm.ensemble.traj_steps_units").value
            assert units == result.total_trajectory_steps
            totals.append(result.total_trajectory_steps)
        assert totals[0] == totals[1]
