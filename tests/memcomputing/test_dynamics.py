"""Unit and property tests for the DMM equations of motion (Eqs. 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cnf import Clause, CnfFormula
from repro.core.exceptions import MemcomputingError
from repro.core.rngs import make_rng
from repro.core.sat_instances import planted_ksat
from repro.memcomputing.dynamics import DEFAULT_PARAMS, DmmSystem


def single_clause_system(literals):
    return DmmSystem(CnfFormula([Clause(literals)]))


class TestConstruction:
    def test_state_layout(self):
        formula = planted_ksat(10, 30, rng=0)
        system = DmmSystem(formula)
        assert system.state_size == 10 + 2 * 30
        state = system.initial_state(make_rng(0))
        v, x_s, x_l = system.unpack(state)
        assert len(v) == 10 and len(x_s) == 30 and len(x_l) == 30

    def test_initial_state_in_bounds(self):
        system = DmmSystem(planted_ksat(8, 20, rng=1))
        state = system.initial_state(make_rng(2))
        assert np.all(state >= system.lower_bounds())
        assert np.all(state <= system.upper_bounds())

    def test_narrow_clauses_padded(self):
        formula = CnfFormula([Clause([1]), Clause([1, -2]),
                              Clause([1, 2, 3])])
        system = DmmSystem(formula)
        assert system.clause_width == 3

    def test_unknown_params_rejected(self):
        with pytest.raises(MemcomputingError):
            DmmSystem(planted_ksat(5, 10, rng=0), params={"omega": 1.0})

    def test_empty_formula_rejected(self):
        with pytest.raises(MemcomputingError):
            DmmSystem(CnfFormula([], num_variables=3))

    def test_requires_formula_type(self):
        with pytest.raises(MemcomputingError):
            DmmSystem([[1, 2]])

    def test_default_params_copied(self):
        system = DmmSystem(planted_ksat(5, 10, rng=0),
                           params={"alpha": 9.0})
        assert system.params["alpha"] == 9.0
        assert DEFAULT_PARAMS["alpha"] == 5.0  # untouched


class TestClauseFunctions:
    def test_satisfied_literal_gives_zero_c(self):
        system = single_clause_system([1, 2, 3])
        state = system.initial_state(make_rng(0))
        v, _x_s, _x_l = system.unpack(state)
        v[:] = [1.0, -1.0, -1.0]
        _q, big_c = system.clause_functions(v)
        assert big_c[0] == pytest.approx(0.0)

    def test_fully_violated_clause(self):
        system = single_clause_system([1, 2, 3])
        v = np.array([-1.0, -1.0, -1.0])
        _q, big_c = system.clause_functions(v)
        assert big_c[0] == pytest.approx(1.0)

    def test_midpoint(self):
        system = single_clause_system([1, 2, 3])
        v = np.zeros(3)
        _q, big_c = system.clause_functions(v)
        assert big_c[0] == pytest.approx(0.5)


class TestVectorField:
    def test_gradient_pushes_toward_satisfaction(self):
        system = single_clause_system([1, 2, 3])
        state = np.concatenate([[-0.5, -0.5, -0.5], [1.0], [1.0]])
        derivative = system.rhs(0.0, state)
        dv = derivative[:3]
        # an unsatisfied all-positive clause drives voltages upward
        assert np.all(dv > 0.0)

    def test_negated_literals_pushed_down(self):
        system = single_clause_system([-1, -2, -3])
        state = np.concatenate([[0.5, 0.5, 0.5], [1.0], [1.0]])
        dv = system.rhs(0.0, state)[:3]
        assert np.all(dv < 0.0)

    def test_satisfied_clause_relaxes_memory(self):
        system = single_clause_system([1, 2, 3])
        state = np.concatenate([[1.0, 1.0, 1.0], [0.5], [5.0]])
        derivative = system.rhs(0.0, state)
        _dv, dx_s, dx_l = system.unpack(derivative)
        assert dx_s[0] < 0.0  # short memory decays when C < gamma
        assert dx_l[0] < 0.0  # long memory decays when C < delta

    def test_frustrated_clause_grows_memory(self):
        system = single_clause_system([1, 2, 3])
        state = np.concatenate([[-1.0, -1.0, -1.0], [0.5], [1.0]])
        derivative = system.rhs(0.0, state)
        _dv, dx_s, dx_l = system.unpack(derivative)
        assert dx_s[0] > 0.0
        assert dx_l[0] > 0.0

    def test_weights_scale_voltage_drive(self):
        base = DmmSystem(CnfFormula([Clause([1, 2, 3])]))
        heavy = DmmSystem(CnfFormula([Clause([1, 2, 3], weight=4.0)]))
        state = np.concatenate([[-0.3, -0.2, -0.1], [0.7], [2.0]])
        dv_base = base.rhs(0.0, state)[:3]
        dv_heavy = heavy.rhs(0.0, state)[:3]
        assert np.allclose(dv_heavy, 4.0 * dv_base)

    def test_solution_is_fixed_point_of_voltages(self):
        formula, plant = planted_ksat(12, 40, rng=3,
                                      return_assignment=True)
        system = DmmSystem(formula)
        voltages = np.array([1.0 if plant[i + 1] else -1.0
                             for i in range(12)])
        state = np.concatenate([voltages, np.zeros(40), np.ones(40)])
        dv = system.rhs(0.0, state)[:12]
        assert np.max(np.abs(dv)) == pytest.approx(0.0)


class TestDigitalReadout:
    def test_assignment_thresholding(self):
        system = single_clause_system([1, -2])
        state = np.concatenate([[0.3, -0.7], [0.5], [1.0]])
        assert system.assignment_from_state(state) == {1: True, 2: False}

    def test_unsatisfied_count(self):
        formula = CnfFormula([Clause([1]), Clause([-1])])
        system = DmmSystem(formula)
        state = np.concatenate([[1.0], [0.5, 0.5], [1.0, 1.0]])
        assert system.unsatisfied_count(state) == 1
        assert not system.is_solution(state)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_memory_bounds_hold_under_integration(seed):
    """Eq. 2's box constraints hold along any clipped trajectory."""
    formula = planted_ksat(8, 30, rng=seed)
    system = DmmSystem(formula)
    rng = make_rng(seed)
    state = system.initial_state(rng)
    lower, upper = system.lower_bounds(), system.upper_bounds()
    for step in range(200):
        state = np.clip(state + 0.08 * system.rhs(step * 0.08, state),
                        lower, upper)
        assert np.all(state >= lower) and np.all(state <= upper)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_rhs_is_finite_everywhere_in_box(seed):
    """The vector field never produces NaN/inf inside the state box."""
    formula = planted_ksat(6, 20, rng=seed)
    system = DmmSystem(formula)
    rng = make_rng(seed + 1)
    for _ in range(10):
        v = rng.uniform(-1, 1, 6)
        x_s = rng.uniform(0, 1, 20)
        x_l = rng.uniform(1, system.x_l_max, 20)
        derivative = system.rhs(0.0, np.concatenate([v, x_s, x_l]))
        assert np.all(np.isfinite(derivative))
