"""Tests for self-organizing gates and circuits (terminal agnosticism)."""

import itertools

import pytest

from repro.core.exceptions import SolgError
from repro.memcomputing.circuit import (
    SolgCircuit,
    factor_with_memcomputing,
    factorization_circuit,
    multiplier_circuit,
    ripple_adder_circuit,
)
from repro.memcomputing.solg import (
    GATE_TYPES,
    SelfOrganizingGate,
    gate_clauses,
    gate_truth,
)
from repro.memcomputing.solver import DmmSolver


class TestGateTruth:
    def test_all_gates_all_inputs(self):
        expected = {
            ("and", (0, 0)): 0, ("and", (0, 1)): 0, ("and", (1, 1)): 1,
            ("or", (0, 0)): 0, ("or", (0, 1)): 1, ("or", (1, 1)): 1,
            ("xor", (0, 1)): 1, ("xor", (1, 1)): 0,
            ("nand", (1, 1)): 0, ("nor", (0, 0)): 1,
            ("xnor", (1, 1)): 1, ("xnor", (0, 1)): 0,
        }
        for (gate, inputs), output in expected.items():
            assert gate_truth(gate, inputs) == bool(output)

    def test_not(self):
        assert gate_truth("not", (0,)) is True
        assert gate_truth("not", (1,)) is False

    def test_arity_enforced(self):
        with pytest.raises(SolgError):
            gate_truth("and", (1,))
        with pytest.raises(SolgError):
            gate_truth("not", (1, 0))

    def test_unknown_gate(self):
        with pytest.raises(SolgError):
            gate_truth("majority", (1, 0, 1))


class TestGateClauses:
    @pytest.mark.parametrize("gate_type", GATE_TYPES)
    def test_clauses_characterize_gate(self, gate_type):
        """The CNF relation holds exactly on the gate's truth table."""
        arity = 1 if gate_type == "not" else 2
        variables = list(range(1, arity + 2))
        clauses = gate_clauses(gate_type, variables)
        for bits in itertools.product([False, True], repeat=arity + 1):
            assignment = {var: bits[i] for i, var in enumerate(variables)}
            consistent = all(c.is_satisfied_by(assignment) for c in clauses)
            expected = gate_truth(gate_type, bits[:arity]) == bits[arity]
            assert consistent == expected, (gate_type, bits)

    def test_terminal_count_enforced(self):
        with pytest.raises(SolgError):
            gate_clauses("and", [1, 2])


class TestSelfOrganizingGate:
    def test_forward_direction(self):
        gate = SelfOrganizingGate("and")
        settled = gate.self_organize({"in0": True, "in1": False}, rng=0)
        assert settled["out"] is False

    def test_backward_direction_and(self):
        # pinning the output of AND to 1 forces both inputs to 1
        gate = SelfOrganizingGate("and")
        settled = gate.self_organize({"out": True}, rng=1)
        assert settled == {"in0": True, "in1": True, "out": True}

    def test_backward_xor_many_to_one(self):
        # XOR out=1 has two consistent input pairs; either is acceptable
        gate = SelfOrganizingGate("xor")
        settled = gate.self_organize({"out": True}, rng=2)
        assert settled["in0"] != settled["in1"]

    def test_partial_pinning(self):
        gate = SelfOrganizingGate("or")
        settled = gate.self_organize({"out": False, "in0": False}, rng=3)
        assert settled["in1"] is False

    def test_free_gate_settles_consistently(self):
        gate = SelfOrganizingGate("nand")
        settled = gate.self_organize(rng=4)
        assert settled["out"] == gate_truth("nand", (settled["in0"],
                                                     settled["in1"]))

    def test_inconsistent_pins_rejected(self):
        gate = SelfOrganizingGate("and")
        with pytest.raises(SolgError):
            gate.self_organize({"in0": False, "out": True}, rng=5)

    def test_unknown_terminal(self):
        with pytest.raises(SolgError):
            SelfOrganizingGate("and").self_organize({"in9": True})

    def test_unknown_gate_type(self):
        with pytest.raises(SolgError):
            SelfOrganizingGate("flux")

    def test_forward_helper(self):
        assert SelfOrganizingGate("xor").forward(True, False) is True


class TestSolgCircuit:
    def test_forward_evaluation_matches_dynamics(self):
        circuit = SolgCircuit("c")
        circuit.gate_and("a", "b", "ab")
        circuit.gate_xor("ab", "c", "out")
        pins = {"a": True, "b": True, "c": False}
        forward = circuit.evaluate_forward(pins)
        settled = circuit.solve(pinned=pins, rng=0)
        assert settled["out"] == forward["out"] is True

    def test_backward_solving(self):
        # out = a AND b; pin out=1 -> both inputs must rise to 1
        circuit = SolgCircuit("c")
        circuit.gate_and("a", "b", "out")
        settled = circuit.solve(pinned={"out": True}, rng=1)
        assert settled["a"] and settled["b"]

    def test_forward_requires_driven_wires(self):
        circuit = SolgCircuit("c")
        circuit.gate_and("a", "b", "out")
        with pytest.raises(SolgError):
            circuit.evaluate_forward({"a": True})

    def test_pinning_unknown_wire(self):
        circuit = SolgCircuit("c")
        circuit.gate_not("a", "na")
        with pytest.raises(SolgError):
            circuit.to_cnf(pinned={"zz": True})

    def test_inconsistent_circuit_raises(self):
        circuit = SolgCircuit("c")
        circuit.gate_not("a", "na")
        solver = DmmSolver(max_steps=3_000)
        with pytest.raises(SolgError):
            circuit.solve(pinned={"a": True, "na": True}, solver=solver,
                          rng=2)


class TestAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (7, 7), (6, 1)])
    def test_forward_addition(self, a, b):
        circuit, sums = ripple_adder_circuit(3)
        values = {"a%d" % i: bool((a >> i) & 1) for i in range(3)}
        values.update({"b%d" % i: bool((b >> i) & 1) for i in range(3)})
        out = circuit.evaluate_forward(values)
        total = sum((1 << i) for i, wire in enumerate(sums) if out[wire])
        assert total == a + b

    def test_backward_subtraction(self):
        # pin the sum and one operand; the dynamics recover the other
        circuit, sums = ripple_adder_circuit(3)
        pinned = {"a%d" % i: bool((5 >> i) & 1) for i in range(3)}
        target = 5 + 2
        pinned.update({wire: bool((target >> i) & 1)
                       for i, wire in enumerate(sums)})
        settled = circuit.solve(pinned=pinned, rng=3)
        recovered = sum((1 << i) for i in range(3)
                        if settled["b%d" % i])
        assert recovered == 2


class TestMultiplier:
    def test_forward_products_exhaustive_3bit(self):
        circuit, a_wires, b_wires, product_wires = multiplier_circuit(3)
        for a in range(8):
            for b in range(8):
                values = {w: bool((a >> i) & 1)
                          for i, w in enumerate(a_wires)}
                values.update({w: bool((b >> i) & 1)
                               for i, w in enumerate(b_wires)})
                out = circuit.evaluate_forward(values)
                product = sum((1 << i)
                              for i, w in enumerate(product_wires)
                              if out[w])
                assert product == a * b, (a, b)

    def test_invalid_width(self):
        with pytest.raises(SolgError):
            multiplier_circuit(0)


class TestFactorization:
    @pytest.mark.parametrize("composite,expected", [
        (15, {3, 5}), (21, {3, 7}), (35, {5, 7}),
    ])
    def test_factors_small_semiprimes(self, composite, expected):
        factor_a, factor_b = factor_with_memcomputing(composite, rng=0)
        assert {factor_a, factor_b} == expected

    def test_rejects_tiny_input(self):
        with pytest.raises(SolgError):
            factorization_circuit(3)

    def test_circuit_pins_product_bits(self):
        _circuit, pinned, extra, a_wires, b_wires = factorization_circuit(15)
        # exactly popcount(15) product wires are pinned high
        assert sum(1 for value in pinned.values() if value) == 4
        # both operands carry a non-triviality constraint
        assert len(extra) == 2
        assert all(len(constraint) == len(a_wires) - 1
                   for constraint in extra)
