"""Additional semantics tests: MaxSAT traces, Ising fields, hetero edges."""

import numpy as np
import pytest

from repro.core.cnf import Clause, CnfFormula
from repro.core.sat_instances import planted_maxsat
from repro.memcomputing.maxsat import DmmMaxSatSolver, anneal_maxsat


class TestWeightTraceSemantics:
    def test_trace_steps_increase(self):
        formula, _plant = planted_maxsat(25, 75, 35, rng=0)
        result = DmmMaxSatSolver(max_steps=20_000).solve(formula, rng=1)
        steps = [step for step, _weight in result.weight_trace]
        assert steps == sorted(steps)

    def test_final_weight_matches_assignment(self):
        formula, _plant = planted_maxsat(25, 75, 35, rng=2)
        result = DmmMaxSatSolver(max_steps=20_000).solve(formula, rng=3)
        assert result.satisfied_weight == pytest.approx(
            formula.weight_satisfied(result.assignment))

    def test_anneal_trace_monotone_best(self):
        formula, _plant = planted_maxsat(20, 60, 30, rng=4)
        result = anneal_maxsat(formula, sweeps=200, rng=5)
        weights = [weight for _moves, weight in result.weight_trace]
        assert all(b >= a - 1e-9 for a, b in zip(weights, weights[1:]))

    def test_optimal_early_stop(self):
        # a trivially all-satisfiable soft set stops before the budget
        clauses = [Clause([1], weight=1.0), Clause([2], weight=2.0)]
        formula = CnfFormula(clauses)
        solver = DmmMaxSatSolver(max_steps=50_000, check_every=10)
        result = solver.solve(formula, rng=0)
        assert result.satisfied_weight == pytest.approx(3.0)
        last_step = result.weight_trace[-1][0]
        assert last_step < 50_000


class TestMaxSatAgainstBruteForce:
    def brute_force_optimum(self, formula):
        import itertools

        best = -np.inf
        for bits in itertools.product([False, True],
                                      repeat=formula.num_variables):
            assignment = formula.assignment_from_bools(bits)
            if not all(c.is_satisfied_by(assignment)
                       for c in formula.hard_clauses):
                continue
            best = max(best, formula.weight_satisfied(assignment))
        return best

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dmm_within_ten_percent_of_optimum_small(self, seed):
        formula, _plant = planted_maxsat(12, 30, 18, rng=seed)
        optimum = self.brute_force_optimum(formula)
        result = DmmMaxSatSolver(max_steps=30_000).solve(formula,
                                                         rng=seed)
        assert result.hard_feasible
        assert result.satisfied_weight >= 0.9 * optimum
