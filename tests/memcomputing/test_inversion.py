"""Tests for memcomputing numerical inversion ([29]): the squarer."""

import pytest

from repro.core.exceptions import SolgError
from repro.memcomputing.circuit import (
    integer_sqrt_memcomputing,
    squarer_circuit,
)
from repro.memcomputing.solver import DmmSolver


class TestSquarerForward:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_exhaustive_squares(self, bits):
        circuit, x_wires, output_wires = squarer_circuit(bits)
        for x in range(2 ** bits):
            values = {w: bool((x >> i) & 1)
                      for i, w in enumerate(x_wires)}
            out = circuit.evaluate_forward(values)
            square = sum((1 << i) for i, w in enumerate(output_wires)
                         if out[w])
            assert square == x * x

    def test_invalid_width(self):
        with pytest.raises(SolgError):
            squarer_circuit(0)


class TestIntegerSqrt:
    @pytest.mark.parametrize("square,root", [
        (0, 0), (1, 1), (4, 2), (9, 3), (25, 5), (49, 7), (121, 11),
    ])
    def test_perfect_squares(self, square, root):
        assert integer_sqrt_memcomputing(square, rng=0) == root

    def test_non_square_has_no_steady_state(self):
        solver = DmmSolver(max_steps=20_000)
        with pytest.raises(SolgError):
            integer_sqrt_memcomputing(50, solver=solver, rng=1)

    def test_negative_rejected(self):
        with pytest.raises(SolgError):
            integer_sqrt_memcomputing(-4)
