"""Tests for the RBM and its training schemes."""

import numpy as np
import pytest

from repro.core.exceptions import MemcomputingError
from repro.core.sat_instances import ising_energy
from repro.memcomputing.rbm import (
    RestrictedBoltzmannMachine,
    exact_kl_divergence,
    sigmoid,
    synthetic_patterns,
    train_rbm,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(0.0) == pytest.approx(0.5)

    def test_saturation_without_overflow(self):
        assert sigmoid(1000.0) == pytest.approx(1.0)
        assert sigmoid(-1000.0) == pytest.approx(0.0)

    def test_vectorized(self):
        out = sigmoid(np.array([-1.0, 0.0, 1.0]))
        assert out.shape == (3,)
        assert out[0] + out[2] == pytest.approx(1.0)


class TestSyntheticPatterns:
    def test_shapes_and_values(self):
        data, labels = synthetic_patterns(40, side=4, rng=0)
        assert data.shape == (40, 16)
        assert set(np.unique(data)) <= {0.0, 1.0}
        assert set(np.unique(labels)) <= {0, 1}

    def test_noise_zero_gives_clean_stripes(self):
        data, labels = synthetic_patterns(20, side=4, noise=0.0, rng=1)
        for row, label in zip(data, labels):
            image = row.reshape(4, 4)
            if label == 0:
                assert np.all(image == image[:, :1])  # rows constant
            else:
                assert np.all(image == image[:1, :])  # columns constant

    def test_deterministic(self):
        a, _ = synthetic_patterns(10, rng=2)
        b, _ = synthetic_patterns(10, rng=2)
        assert np.array_equal(a, b)


class TestRbmBasics:
    def test_conditionals_shapes(self):
        rbm = RestrictedBoltzmannMachine(6, 4, rng=0)
        batch = np.zeros((5, 6))
        assert rbm.hidden_probabilities(batch).shape == (5, 4)
        assert rbm.visible_probabilities(np.zeros((5, 4))).shape == (5, 6)

    def test_probabilities_in_unit_interval(self):
        rbm = RestrictedBoltzmannMachine(6, 4, rng=1)
        probs = rbm.hidden_probabilities(np.ones((3, 6)))
        assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_joint_energy_value(self):
        rbm = RestrictedBoltzmannMachine(2, 2, rng=2)
        rbm.weights = np.array([[1.0, 0.0], [0.0, 2.0]])
        rbm.visible_bias = np.array([0.5, 0.0])
        rbm.hidden_bias = np.array([0.0, -0.5])
        energy = rbm.joint_energy(np.array([1.0, 1.0]),
                                  np.array([1.0, 1.0]))
        assert energy == pytest.approx(-(1.0 + 2.0) - 0.5 + 0.5)

    def test_reconstruction_error_nonnegative(self):
        rbm = RestrictedBoltzmannMachine(16, 8, rng=3)
        data, _ = synthetic_patterns(20, rng=4)
        assert rbm.reconstruction_error(data) >= 0.0


class TestIsingCompilation:
    def test_energy_equivalence_on_all_states(self):
        rbm = RestrictedBoltzmannMachine(4, 3, rng=5)
        couplings, fields, constant = rbm.to_ising()
        rng = np.random.default_rng(6)
        for _ in range(30):
            visible = rng.integers(0, 2, 4).astype(float)
            hidden = rng.integers(0, 2, 3).astype(float)
            spins = np.concatenate([2 * visible - 1, 2 * hidden - 1])
            direct = rbm.joint_energy(visible, hidden)
            compiled = ising_energy(couplings, spins, fields) + constant
            assert direct == pytest.approx(compiled)

    def test_mode_search_finds_low_energy_state(self):
        rbm = RestrictedBoltzmannMachine(5, 3, rng=7)
        mode_v, mode_h = rbm.mode_search(method="sa", rng=8, budget=4_000)
        mode_energy = rbm.joint_energy(mode_v, mode_h)
        rng = np.random.default_rng(9)
        random_energies = []
        for _ in range(40):
            visible = rng.integers(0, 2, 5).astype(float)
            hidden = rng.integers(0, 2, 3).astype(float)
            random_energies.append(rbm.joint_energy(visible, hidden))
        assert mode_energy <= np.median(random_energies)

    def test_mode_search_methods(self):
        rbm = RestrictedBoltzmannMachine(4, 3, rng=10)
        for method in ("mem", "sa"):
            visible, hidden = rbm.mode_search(method=method, rng=11,
                                              budget=1_000)
            assert visible.shape == (4,)
            assert hidden.shape == (3,)
        with pytest.raises(MemcomputingError):
            rbm.mode_search(method="dwave")


class TestExactKl:
    def test_zero_for_matching_distribution(self):
        # a data set drawn exactly from a known RBM has small KL against it
        rbm = RestrictedBoltzmannMachine(4, 2, rng=12)
        rbm.weights *= 0.0  # uniform model
        data = ((np.arange(16)[:, None] >> np.arange(4)) & 1).astype(float)
        assert exact_kl_divergence(rbm, data) == pytest.approx(0.0,
                                                               abs=1e-9)

    def test_positive_for_mismatched(self):
        rbm = RestrictedBoltzmannMachine(4, 2, rng=13)
        data = np.zeros((10, 4))
        assert exact_kl_divergence(rbm, data) > 0.0

    def test_width_limit(self):
        rbm = RestrictedBoltzmannMachine(20, 2, rng=14)
        with pytest.raises(MemcomputingError):
            exact_kl_divergence(rbm, np.zeros((2, 20)))


class TestTraining:
    def test_cd_reduces_reconstruction_error(self):
        data, _ = synthetic_patterns(80, rng=15)
        rbm = RestrictedBoltzmannMachine(16, 10, rng=16)
        initial = rbm.reconstruction_error(data)
        history = train_rbm(rbm, data, epochs=10, method="cd", rng=17)
        assert history.final_error < initial

    def test_kl_tracking(self):
        data, _ = synthetic_patterns(60, side=3, rng=18)
        rbm = RestrictedBoltzmannMachine(9, 5, rng=19)
        history = train_rbm(rbm, data, epochs=3, method="cd",
                            track_kl=True, rng=20)
        assert len(history.kl_divergences) == 3
        assert history.final_kl is not None

    def test_mode_assisted_ramps_in_late(self):
        data, _ = synthetic_patterns(60, side=3, rng=21)
        rbm = RestrictedBoltzmannMachine(9, 5, rng=22)
        history = train_rbm(rbm, data, epochs=8, method="sa",
                            mode_budget=500, rng=23)
        # the sigmoid schedule concentrates mode updates in the second half
        assert history.mode_updates > 0

    def test_data_width_checked(self):
        rbm = RestrictedBoltzmannMachine(9, 5, rng=24)
        with pytest.raises(MemcomputingError):
            train_rbm(rbm, np.zeros((4, 7)))

    def test_mem_mode_runs(self):
        data, _ = synthetic_patterns(40, side=3, rng=25)
        rbm = RestrictedBoltzmannMachine(9, 4, rng=26)
        history = train_rbm(rbm, data, epochs=4, method="mem",
                            mode_budget=400, rng=27)
        assert len(history.reconstruction_errors) == 4
