"""Tests for memcomputing integer linear programming ([48])."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cnf import Clause, CnfFormula
from repro.core.exceptions import MemcomputingError
from repro.memcomputing.baselines import DpllSolver
from repro.memcomputing.ilp import (
    BinaryLinearProgram,
    ilp_to_maxsat,
    knapsack,
    solve_ilp_bruteforce,
    solve_ilp_memcomputing,
)


class TestModel:
    def test_objective_and_feasibility(self):
        program = BinaryLinearProgram(3, [5.0, -2.0, 3.0])
        program.add_constraint([1, 1, 1], 2)
        assignment = {1: True, 2: False, 3: True}
        assert program.objective_value(assignment) == 8.0
        assert program.is_feasible(assignment)
        assert not program.is_feasible({1: True, 2: True, 3: True})

    def test_validation(self):
        with pytest.raises(MemcomputingError):
            BinaryLinearProgram(0, [])
        with pytest.raises(MemcomputingError):
            BinaryLinearProgram(2, [1.0])
        program = BinaryLinearProgram(2, [1.0, 1.0])
        with pytest.raises(MemcomputingError):
            program.add_constraint([1], 3)


class TestEncoding:
    def _feasibility_via_dpll(self, program, formula, bits):
        hard = [c for c in formula.clauses if c.weight is None]
        fixed = hard + [Clause([j + 1 if bits[j] else -(j + 1)])
                        for j in range(program.num_variables)]
        verdict = DpllSolver().solve(
            CnfFormula(fixed, num_variables=formula.num_variables))
        return bool(verdict.satisfiable)

    def test_knapsack_encoding_exact(self):
        program = knapsack([3, 5, 2, 7], [2, 4, 3, 5], 8)
        formula, _offset = ilp_to_maxsat(program)
        for bits in itertools.product([False, True], repeat=4):
            assignment = {j + 1: bits[j] for j in range(4)}
            assert self._feasibility_via_dpll(program, formula, bits) \
                == program.is_feasible(assignment)

    def test_negative_coefficients_exact(self):
        program = BinaryLinearProgram(4, [1.0] * 4)
        program.add_constraint([2, -3, 1, -1], 0)
        formula, _offset = ilp_to_maxsat(program)
        for bits in itertools.product([False, True], repeat=4):
            assignment = {j + 1: bits[j] for j in range(4)}
            assert self._feasibility_via_dpll(program, formula, bits) \
                == program.is_feasible(assignment)

    def test_vacuous_constraint_dropped(self):
        program = BinaryLinearProgram(3, [1.0, 2.0, 3.0])
        program.add_constraint([1, 1, 1], 5)  # always satisfied
        formula, _offset = ilp_to_maxsat(program)
        assert not formula.hard_clauses

    def test_infeasible_constraint_rejected(self):
        program = BinaryLinearProgram(2, [1.0, 1.0])
        program.add_constraint([-1, -1], -3)  # even x=1,1 gives -2 > -3 ok
        # truly impossible: sum of positives must be <= -1
        bad = BinaryLinearProgram(2, [1.0, 1.0])
        bad.add_constraint([1, 1], -1)
        with pytest.raises(MemcomputingError):
            ilp_to_maxsat(bad)

    def test_objective_weights(self):
        program = BinaryLinearProgram(2, [4.0, -3.0])
        formula, offset = ilp_to_maxsat(program)
        assert offset == pytest.approx(-3.0)
        weights = sorted(c.weight for c in formula.soft_clauses)
        assert weights == [3.0, 4.0]


class TestBruteForce:
    def test_small_knapsack_optimum(self):
        program = knapsack([6, 10, 12], [1, 2, 3], 5)
        result = solve_ilp_bruteforce(program)
        assert result.objective == 22.0  # items 2 and 3

    def test_infeasible_program(self):
        program = BinaryLinearProgram(2, [1.0, 1.0])
        program.add_constraint([1, 0], 0)
        program.add_constraint([-1, 0], -1)  # forces x1 = 1 -- conflict
        result = solve_ilp_bruteforce(program)
        assert not result.feasible

    def test_size_limit(self):
        with pytest.raises(MemcomputingError):
            solve_ilp_bruteforce(BinaryLinearProgram(30, [1.0] * 30))


class TestMemcomputingIlp:
    def test_small_knapsack_solved_exactly(self):
        program = knapsack([6, 10, 12], [1, 2, 3], 5)
        result = solve_ilp_memcomputing(program, max_steps=20_000, rng=0)
        assert result.feasible
        assert result.objective == 22.0

    def test_returned_solutions_always_feasible(self):
        rng = np.random.default_rng(3)
        for trial in range(3):
            values = rng.integers(1, 20, 8).tolist()
            weights = rng.integers(1, 12, 8).tolist()
            program = knapsack(values, weights, int(sum(weights) * 0.4))
            result = solve_ilp_memcomputing(program, max_steps=20_000,
                                            rng=trial)
            if result.feasible:
                assert program.is_feasible(result.assignment)
                assert result.objective == program.objective_value(
                    result.assignment)

    def test_quality_within_gap_of_optimum(self):
        rng = np.random.default_rng(7)
        gaps = []
        for trial in range(4):
            values = rng.integers(1, 20, 9).tolist()
            weights = rng.integers(1, 12, 9).tolist()
            program = knapsack(values, weights, int(sum(weights) * 0.45))
            exact = solve_ilp_bruteforce(program)
            mem = solve_ilp_memcomputing(program, max_steps=30_000,
                                         rng=trial)
            assert mem.feasible
            gaps.append((exact.objective - mem.objective)
                        / exact.objective)
        assert np.median(gaps) < 0.35

    def test_multi_constraint(self):
        program = BinaryLinearProgram(6, [4, 7, 2, 9, 5, 3])
        program.add_constraint([2, 3, 1, 4, 2, 1], 7)
        program.add_constraint([1, -1, 2, 1, -2, 3], 3)
        exact = solve_ilp_bruteforce(program)
        mem = solve_ilp_memcomputing(program, max_steps=30_000, rng=1)
        assert mem.feasible
        assert mem.objective >= 0.6 * exact.objective


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_property_encoding_feasibility_exact(seed):
    """Hard clauses of the encoding accept exactly the feasible points."""
    rng = np.random.default_rng(seed)
    num_vars = 5
    program = BinaryLinearProgram(num_vars,
                                  rng.integers(1, 9, num_vars).tolist())
    coefficients = rng.integers(-4, 7, num_vars).tolist()
    positives = sum(a for a in coefficients if a > 0)
    negatives = sum(a for a in coefficients if a < 0)
    bound = int(rng.integers(negatives, positives + 1))
    program.add_constraint(coefficients, bound)
    formula, _offset = ilp_to_maxsat(program)
    hard = [c for c in formula.clauses if c.weight is None]
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {j + 1: bits[j] for j in range(num_vars)}
        fixed = hard + [Clause([j + 1 if bits[j] else -(j + 1)])
                        for j in range(num_vars)]
        verdict = DpllSolver().solve(
            CnfFormula(fixed, num_variables=formula.num_variables))
        assert bool(verdict.satisfiable) == program.is_feasible(assignment)
