"""Cross-validation properties between independent solver implementations.

These tests pit implementations against each other (and against brute
force) on small instances: any disagreement flags a bug in one of them.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cnf import Clause, CnfFormula
from repro.memcomputing.baselines import DpllSolver, WalkSatSolver
from repro.memcomputing.solver import DmmSolver


def brute_force_satisfiable(formula):
    """Exhaustive satisfiability check for tiny formulas."""
    for bits in itertools.product([False, True],
                                  repeat=formula.num_variables):
        if formula.is_satisfied_by(formula.assignment_from_bools(bits)):
            return True
    return False


@st.composite
def tiny_formulas(draw):
    num_vars = draw(st.integers(min_value=2, max_value=6))
    num_clauses = draw(st.integers(min_value=1, max_value=14))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        literals = set()
        for _ in range(width):
            var = draw(st.integers(min_value=1, max_value=num_vars))
            literals.add(var if draw(st.booleans()) else -var)
        clauses.append(Clause(literals))
    return CnfFormula(clauses, num_variables=num_vars)


@settings(max_examples=40, deadline=None)
@given(tiny_formulas())
def test_property_dpll_matches_brute_force(formula):
    """DPLL's verdict equals exhaustive enumeration on tiny formulas."""
    expected = brute_force_satisfiable(formula)
    result = DpllSolver().solve(formula)
    assert result.satisfiable == expected
    if expected:
        assert formula.is_satisfied_by(result.assignment)


@settings(max_examples=25, deadline=None)
@given(tiny_formulas())
def test_property_dmm_never_claims_false_solutions(formula):
    """Whatever the DMM returns, a claimed solution must verify."""
    result = DmmSolver(max_steps=30_000).solve(formula, rng=0)
    if result.satisfied:
        assert formula.is_satisfied_by(result.assignment)
        assert brute_force_satisfiable(formula)


@settings(max_examples=25, deadline=None)
@given(tiny_formulas())
def test_property_dmm_solves_whatever_dpll_proves_sat(formula):
    """On tiny satisfiable formulas the DMM finds a solution quickly."""
    verdict = DpllSolver().solve(formula)
    if verdict.satisfiable:
        result = DmmSolver(max_steps=60_000).solve(formula, rng=1)
        assert result.satisfied


@settings(max_examples=20, deadline=None)
@given(tiny_formulas(), st.integers(min_value=0, max_value=100))
def test_property_walksat_dmm_agree_on_success(formula, seed):
    """Two incomplete solvers can only both succeed on satisfiable input."""
    walksat = WalkSatSolver(max_flips=5_000, max_tries=2).solve(
        formula, rng=seed)
    dmm = DmmSolver(max_steps=20_000).solve(formula, rng=seed)
    if walksat.satisfied and dmm.satisfied:
        assert formula.is_satisfied_by(walksat.assignment)
        assert formula.is_satisfied_by(dmm.assignment)
    # a complete check: if either solved it, DPLL must agree it is SAT
    if walksat.satisfied or dmm.satisfied:
        assert DpllSolver().solve(formula).satisfiable


class TestKnownInstances:
    def test_pigeonhole_2_into_1_unsat(self):
        # two pigeons, one hole: p1 and p2 both in hole, but not together
        formula = CnfFormula([Clause([1]), Clause([2]),
                              Clause([-1, -2])])
        assert DpllSolver().solve(formula).satisfiable is False
        assert not DmmSolver(max_steps=5_000).solve(formula,
                                                    rng=0).satisfied

    def test_xor_chain_satisfiable(self):
        # x1 xor x2 = 1, x2 xor x3 = 1 encoded in CNF
        clauses = [
            Clause([1, 2]), Clause([-1, -2]),
            Clause([2, 3]), Clause([-2, -3]),
        ]
        formula = CnfFormula(clauses)
        dmm = DmmSolver().solve(formula, rng=2)
        assert dmm.satisfied
        assignment = dmm.assignment
        assert assignment[1] != assignment[2]
        assert assignment[2] != assignment[3]
