"""Tests for the noise-robustness and instanton diagnostics."""

import numpy as np
import pytest

from repro.core.sat_instances import planted_ksat
from repro.memcomputing.instantons import (
    instanton_census,
    lyapunov_estimate,
    residual_at_solution,
)
from repro.memcomputing.noise import solve_with_noise, success_vs_noise
from repro.memcomputing.solver import DmmSolver


class TestNoise:
    def test_noiseless_baseline_solves(self):
        formula = planted_ksat(25, 100, rng=0)
        result = solve_with_noise(formula, 0.0, rng=1, max_steps=100_000)
        assert result.satisfied

    def test_moderate_noise_still_solves(self):
        formula = planted_ksat(25, 100, rng=2)
        result = solve_with_noise(formula, 0.5, rng=3, max_steps=150_000)
        assert result.satisfied

    def test_sweep_structure(self):
        formulas = [planted_ksat(15, 60, rng=s) for s in (4, 5)]
        rows = success_vs_noise(formulas, [0.0, 0.3], trials_per_sigma=2,
                                rng=6, max_steps=60_000)
        assert [row["sigma"] for row in rows] == [0.0, 0.3]
        for row in rows:
            assert 0.0 <= row["success_rate"] <= 1.0

    def test_sweep_noiseless_perfect(self):
        formulas = [planted_ksat(15, 55, rng=7)]
        rows = success_vs_noise(formulas, [0.0], trials_per_sigma=3,
                                rng=8, max_steps=60_000)
        assert rows[0]["success_rate"] == 1.0
        assert rows[0]["median_steps"] is not None


class TestInstantonCensus:
    def test_synthetic_trace(self):
        trace = [(0.0, 5), (1.0, 5), (2.0, 3), (3.0, 3), (4.0, 1),
                 (5.0, 0)]
        census = instanton_census(trace)
        assert census["jumps"] == 3
        assert census["jump_sizes"] == [2, 2, 1]
        assert census["plateaus"] == 4
        assert census["monotone_fraction"] == 1.0

    def test_non_monotone_counted(self):
        trace = [(0.0, 3), (1.0, 4), (2.0, 0)]
        census = instanton_census(trace)
        assert census["monotone_fraction"] == pytest.approx(0.5)

    def test_trivial_traces(self):
        assert instanton_census([])["jumps"] == 0
        assert instanton_census([(0.0, 2)])["plateaus"] == 1

    def test_real_solver_trace_descends(self):
        formula = planted_ksat(40, 160, rng=9)
        result = DmmSolver().solve(formula, rng=10)
        census = instanton_census(result.unsat_trace)
        assert census["monotone_fraction"] > 0.5
        assert result.unsat_trace[-1][1] == 0


class TestDynamicalClaims:
    def test_lyapunov_non_positive_for_solvable(self):
        """Absence of chaos: solvable instances contract on average."""
        formula = planted_ksat(20, 80, rng=11)
        exponent = lyapunov_estimate(formula, rng=12, steps=3_000)
        assert exponent < 0.5  # non-expanding within estimator noise

    def test_residual_zero_at_solution(self):
        """The solution is an exact fixed point of the voltage dynamics."""
        formula = planted_ksat(20, 80, rng=13)
        residual, solved = residual_at_solution(formula, rng=14)
        assert solved
        assert residual == pytest.approx(0.0, abs=1e-12)

    def test_residual_inf_when_unsolved(self):
        from repro.core.cnf import Clause, CnfFormula

        formula = CnfFormula([Clause([1]), Clause([-1])])
        residual, solved = residual_at_solution(formula, rng=0,
                                                max_steps=2_000)
        assert not solved
        assert residual == np.inf
