"""Tests for the conventional solver baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cnf import Clause, CnfFormula
from repro.core.sat_instances import (
    frustrated_loop_ising,
    ising_energy,
    planted_ksat,
)
from repro.memcomputing.baselines import (
    DpllSolver,
    GsatSolver,
    WalkSatSolver,
    anneal_ising,
)


class TestWalkSat:
    def test_solves_planted(self):
        formula = planted_ksat(50, 200, rng=0)
        result = WalkSatSolver().solve(formula, rng=1)
        assert result.satisfied
        assert formula.is_satisfied_by(result.assignment)

    def test_flip_accounting(self):
        formula = planted_ksat(30, 120, rng=2)
        result = WalkSatSolver().solve(formula, rng=3)
        assert result.flips >= 0
        assert result.tries >= 1

    def test_gives_up_on_unsat(self):
        formula = CnfFormula([Clause([1]), Clause([-1])])
        result = WalkSatSolver(max_flips=500, max_tries=2).solve(formula,
                                                                 rng=0)
        assert not result.satisfied
        assert result.tries == 2

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            WalkSatSolver(noise=1.5)

    def test_deterministic_with_seed(self):
        formula = planted_ksat(25, 100, rng=4)
        a = WalkSatSolver().solve(formula, rng=7)
        b = WalkSatSolver().solve(formula, rng=7)
        assert a.flips == b.flips

    def test_unit_clauses(self):
        formula = CnfFormula([Clause([2]), Clause([-1])])
        result = WalkSatSolver().solve(formula, rng=0)
        assert result.satisfied
        assert result.assignment == {1: False, 2: True}


class TestGsat:
    def test_solves_planted(self):
        formula = planted_ksat(30, 110, rng=5)
        result = GsatSolver().solve(formula, rng=6)
        assert result.satisfied
        assert formula.is_satisfied_by(result.assignment)

    def test_sideways_flag(self):
        formula = planted_ksat(20, 70, rng=7)
        result = GsatSolver(sideways=False).solve(formula, rng=8)
        # may or may not solve, but must terminate and report sanely
        assert result.flips >= 0

    def test_reports_failure_on_unsat(self):
        formula = CnfFormula([Clause([1]), Clause([-1])])
        result = GsatSolver(max_flips=100, max_tries=2).solve(formula,
                                                              rng=0)
        assert not result.satisfied


class TestDpll:
    def test_sat_verdict_with_assignment(self):
        formula = planted_ksat(25, 100, rng=9)
        result = DpllSolver().solve(formula)
        assert result.satisfiable
        assert formula.is_satisfied_by(result.assignment)

    def test_unsat_verdict(self):
        formula = CnfFormula([Clause([1, 2]), Clause([1, -2]),
                              Clause([-1, 2]), Clause([-1, -2])])
        result = DpllSolver().solve(formula)
        assert result.satisfiable is False

    def test_unit_propagation_short_circuit(self):
        formula = CnfFormula([Clause([1]), Clause([-1, 2]),
                              Clause([-2, 3])])
        result = DpllSolver().solve(formula)
        assert result.satisfiable
        assert result.nodes == 0  # pure propagation, no branching

    def test_pure_literal_rule(self):
        # variable 3 appears only positively
        formula = CnfFormula([Clause([1, 3]), Clause([-1, 3]),
                              Clause([1, 2])])
        result = DpllSolver().solve(formula)
        assert result.satisfiable
        assert result.assignment[3] is True

    def test_budget_returns_unknown(self):
        # hard random instance with a tiny node budget
        formula = planted_ksat(60, 255, rng=11)
        result = DpllSolver(max_nodes=1).solve(formula)
        assert result.satisfiable in (True, None)

    def test_free_variables_completed(self):
        formula = CnfFormula([Clause([1])], num_variables=3)
        result = DpllSolver().solve(formula)
        assert set(result.assignment) == {1, 2, 3}


class TestAnnealIsing:
    def test_reaches_frustrated_loop_ground_state(self):
        couplings, bound = frustrated_loop_ising(40, 8, rng=0)
        result = anneal_ising(couplings, 40, sweeps=400, rng=1)
        assert result.energy == pytest.approx(bound)

    def test_energy_trace_monotone_nonincreasing(self):
        couplings, _bound = frustrated_loop_ising(30, 6, rng=2)
        result = anneal_ising(couplings, 30, sweeps=100, rng=3)
        trace = result.energy_trace
        assert all(b <= a + 1e-12 for a, b in zip(trace, trace[1:]))

    def test_best_spins_match_best_energy(self):
        couplings, _bound = frustrated_loop_ising(20, 4, rng=4)
        result = anneal_ising(couplings, 20, sweeps=100, rng=5)
        assert ising_energy(couplings, result.spins) == pytest.approx(
            result.energy)

    def test_fields_respected(self):
        # single spin with a strong field prefers alignment against it
        result = anneal_ising({}, 1, fields=[5.0], sweeps=50, rng=6)
        assert result.spins[0] == -1

    def test_initial_spins_accepted(self):
        couplings, _bound = frustrated_loop_ising(10, 2, loop_length=4,
                                                  rng=7)
        result = anneal_ising(couplings, 10, sweeps=10, rng=8,
                              initial_spins=np.ones(10))
        assert result.sweeps == 10

    def test_sweeps_validation(self):
        with pytest.raises(ValueError):
            anneal_ising({(0, 1): 1.0}, 2, sweeps=0)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_property_walksat_solutions_verify(seed):
    """Whenever WalkSAT claims success the assignment truly satisfies."""
    formula = planted_ksat(15, 55, rng=seed)
    result = WalkSatSolver(max_flips=20_000, max_tries=3).solve(
        formula, rng=seed)
    if result.satisfied:
        assert formula.is_satisfied_by(result.assignment)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_property_dpll_agrees_with_walksat_on_sat(seed):
    """DPLL must never call a planted (satisfiable) instance UNSAT."""
    formula = planted_ksat(12, 45, rng=seed)
    verdict = DpllSolver().solve(formula)
    assert verdict.satisfiable is True
