"""Unit tests for the Fig. 2 accelerator stack and Fig. 1 hetero model."""

import pytest

from repro.core.exceptions import QuantumError
from repro.quantum.accelerator import QuantumAccelerator, StackReport
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.hetero import (
    Device,
    HeterogeneousSystem,
    Task,
    default_devices,
    example_workload,
)


class TestStackReport:
    def test_layers_ordered(self):
        report = StackReport()
        report.record("application", name="x")
        rows = report.rows()
        assert rows[0][0] == "application"
        assert rows[-1][0] == "quantum chip"

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError):
            StackReport().record("hypervisor", foo=1)

    def test_fields_merge(self):
        report = StackReport()
        report.record("runtime", shots=10)
        report.record("runtime", outcomes=2)
        assert report.entries["runtime"] == {"shots": 10, "outcomes": 2}


class TestQuantumAccelerator:
    def test_bell_kernel_through_stack(self):
        accelerator = QuantumAccelerator(3)
        kernel = QuantumCircuit(2, name="bell").h(0).cnot(0, 1)
        kernel.measure(0, "a").measure(1, "b")
        result, report = accelerator.execute_kernel(kernel, shots=200,
                                                    rng=0)
        assert sum(result.counts.values()) == 200
        # Bell statistics: only 00 (0) and 11 (3) appear
        assert set(result.counts) <= {0, 3}
        layers = dict(report.rows())
        assert layers["application"]["logical_qubits"] == 2
        assert layers["quantum chip"]["physical_qubits"] == 3
        assert "total_chip_time_ns" in layers["runtime"]

    def test_distant_cnot_gets_routed(self):
        accelerator = QuantumAccelerator(5)
        kernel = QuantumCircuit(5, name="distant").h(0).cnot(0, 4)
        kernel.measure(0, "a").measure(4, "b")
        _result, report = accelerator.execute_kernel(kernel, shots=50,
                                                     rng=1)
        layers = dict(report.rows())
        assert layers["compiler (mapping+routing)"]["swaps_inserted"] > 0

    def test_qasm_layer_exercised(self):
        accelerator = QuantumAccelerator(2)
        kernel = QuantumCircuit(2, name="q").h(0).measure(0)
        _result, report = accelerator.execute_kernel(kernel, shots=10,
                                                     rng=2)
        layers = dict(report.rows())
        assert layers["algorithm/language"]["qasm_lines"] > 0

    def test_coherence_accounting(self):
        accelerator = QuantumAccelerator(2, coherence_ns=1.0)
        kernel = QuantumCircuit(1, name="slow").h(0).measure(0)
        _result, report = accelerator.execute_kernel(kernel, shots=5, rng=0)
        layers = dict(report.rows())
        assert layers["micro-architecture"]["within_coherence"] is False


class TestHeterogeneousSystem:
    def test_default_devices_cover_fig1(self):
        names = {d.name for d in default_devices()}
        assert names == {"CPU", "GPU", "TPU", "FPGA", "QPU"}

    def test_task_validation(self):
        with pytest.raises(QuantumError):
            Task("bad", "antimatter", 1.0)
        with pytest.raises(QuantumError):
            Task("bad", "scalar", 0.0)

    def test_device_capability(self):
        gpu = Device("GPU", {"dense_linear": 50.0}, offload_latency=5.0)
        task = Task("mm", "dense_linear", 500.0)
        assert gpu.can_run(task)
        assert gpu.time_for(task) == pytest.approx(5.0 + 10.0)
        with pytest.raises(QuantumError):
            gpu.time_for(Task("s", "scalar", 1.0))

    def test_dispatch_assigns_by_speed(self):
        system = HeterogeneousSystem()
        report = system.dispatch(example_workload())
        assignment = {task: device.name
                      for task, device, _t in report.assignments}
        by_name = {t.name: d for t, d in assignment.items()}
        assert by_name["dna-similarity-kernel"] == "QPU"
        assert by_name["parse-reads"] == "CPU"
        assert by_name["train-classifier"] == "TPU"
        assert by_name["filter-stream"] == "FPGA"

    def test_hetero_speedup_positive(self):
        system = HeterogeneousSystem()
        report = system.dispatch(example_workload())
        assert report.speedup > 1.0
        assert report.hetero_time < report.cpu_only_time

    def test_small_scalar_tasks_stay_on_cpu(self):
        system = HeterogeneousSystem()
        report = system.dispatch([Task("tiny", "dense_linear", 1.0)])
        # 1 work unit: CPU takes 1.0; GPU takes 5 + 0.02 -- CPU wins
        assert report.assignments[0][1].name == "CPU"

    def test_requires_cpu(self):
        with pytest.raises(QuantumError):
            HeterogeneousSystem([Device("GPU", {"tensor": 10.0})])

    def test_rows_shape(self):
        system = HeterogeneousSystem()
        rows = system.dispatch(example_workload()).rows()
        assert all(len(row) == 3 for row in rows)
