"""Tests for the adiabatic simulator and the density-matrix backend."""

import numpy as np
import pytest

from repro.core.exceptions import QuantumError
from repro.core.sat_instances import frustrated_loop_ising, ising_energy
from repro.quantum import gates
from repro.quantum.adiabatic import (
    anneal_quantum,
    ising_diagonal,
    success_vs_annealing_time,
)
from repro.quantum.density import DensityMatrix, bell_agreement_exact
from repro.quantum.state import StateVector


class TestIsingDiagonal:
    def test_matches_direct_energy(self):
        couplings, _bound = frustrated_loop_ising(6, 1, loop_length=4,
                                                  rng=0)
        diagonal = ising_diagonal(couplings, 6)
        for index in range(64):
            spins = np.where((index >> np.arange(6)) & 1, 1, -1)
            assert diagonal[index] == pytest.approx(
                ising_energy(couplings, spins))

    def test_fields(self):
        diagonal = ising_diagonal({}, 2, fields=[1.0, -2.0])
        # index 0 -> spins (-1, -1): E = -1 + 2 = 1
        assert diagonal[0] == pytest.approx(1.0)
        # index 3 -> spins (+1, +1): E = 1 - 2 = -1
        assert diagonal[3] == pytest.approx(-1.0)

    def test_size_limit(self):
        with pytest.raises(QuantumError):
            ising_diagonal({}, 24)


class TestAdiabaticEvolution:
    def test_slow_anneal_reaches_ground(self):
        couplings, bound = frustrated_loop_ising(8, 2, loop_length=4,
                                                 rng=0)
        result = anneal_quantum(couplings, 8, total_time=30.0, steps=600,
                                rng=1)
        assert result.reached_ground
        assert result.success_probability > 0.9
        assert result.ground_energy == pytest.approx(bound)

    def test_adiabatic_theorem_monotonicity(self):
        couplings, _bound = frustrated_loop_ising(8, 2, loop_length=4,
                                                  rng=2)
        rows = success_vs_annealing_time(couplings, 8,
                                         [1.0, 8.0, 40.0], rng=3)
        probabilities = [p for _t, p in rows]
        assert probabilities[0] < probabilities[-1]
        assert probabilities[-1] > 0.95

    def test_fast_anneal_fails_sometimes(self):
        couplings, _bound = frustrated_loop_ising(8, 2, loop_length=4,
                                                  rng=4)
        result = anneal_quantum(couplings, 8, total_time=0.3, steps=60,
                                rng=5)
        assert result.success_probability < 0.9

    def test_parameter_validation(self):
        with pytest.raises(QuantumError):
            anneal_quantum({}, 0)
        with pytest.raises(QuantumError):
            anneal_quantum({(0, 1): 1.0}, 20)
        with pytest.raises(QuantumError):
            anneal_quantum({(0, 1): 1.0}, 2, total_time=-1.0)

    def test_single_ferromagnetic_pair(self):
        result = anneal_quantum({(0, 1): -1.0}, 2, total_time=20.0,
                                steps=400, rng=6)
        assert result.spins[0] == result.spins[1]


class TestDensityMatrix:
    def test_starts_pure_in_zero(self):
        rho = DensityMatrix(2)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.probabilities()[0] == pytest.approx(1.0)

    def test_unitary_matches_statevector(self):
        rho = DensityMatrix(3)
        state = StateVector(3)
        for matrix, qubits in ((gates.H, [0]), (gates.CNOT, [0, 2]),
                               (gates.ry(0.7), [1])):
            rho.apply_unitary(matrix, qubits)
            state.apply_gate(matrix, qubits)
        assert np.allclose(rho.probabilities(), state.probabilities())
        assert rho.purity() == pytest.approx(1.0)

    def test_from_statevector(self):
        state = StateVector(2)
        state.apply_gate(gates.H, [0])
        rho = DensityMatrix.from_statevector(state)
        assert np.allclose(rho.probabilities(), state.probabilities())

    def test_depolarizing_reduces_purity(self):
        rho = DensityMatrix(1).apply_unitary(gates.H, [0])
        rho.depolarize(0, 0.3)
        assert rho.purity() < 1.0

    def test_kraus_completeness_checked(self):
        rho = DensityMatrix(1)
        with pytest.raises(QuantumError):
            rho.apply_kraus([0.5 * np.eye(2)], [0])

    def test_trace_validation(self):
        with pytest.raises(QuantumError):
            DensityMatrix(1, np.eye(2))

    def test_expectation_of_z(self):
        rho = DensityMatrix(1)
        assert rho.expectation(gates.Z, [0]) == pytest.approx(1.0)
        rho.apply_unitary(gates.X, [0])
        assert rho.expectation(gates.Z, [0]) == pytest.approx(-1.0)

    def test_measure_probability(self):
        rho = DensityMatrix(2).apply_unitary(gates.H, [1])
        assert rho.measure_probability(1, 1) == pytest.approx(0.5)
        assert rho.measure_probability(0, 1) == pytest.approx(0.0)


class TestExactVsMonteCarlo:
    def test_bell_agreement_cross_validation(self):
        """Exact channel average matches the trajectory sampler."""
        from repro.quantum.noise import bell_fidelity_vs_noise

        exact = bell_agreement_exact(0.1)
        sampled = bell_fidelity_vs_noise([0.1], shots=3000, rng=0)[0][1]
        assert sampled == pytest.approx(exact, abs=0.03)

    def test_noiseless_agreement_is_one(self):
        assert bell_agreement_exact(0.0) == pytest.approx(1.0)

    def test_agreement_decreases_with_error(self):
        values = [bell_agreement_exact(e) for e in (0.0, 0.1, 0.3, 0.6)]
        assert all(b < a for a, b in zip(values, values[1:]))
