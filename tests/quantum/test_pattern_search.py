"""Tests for Grover-based DNA pattern search."""

import pytest

from repro.core.exceptions import QuantumError
from repro.quantum.algorithms.dna import grover_pattern_search, random_dna


class TestGroverPatternSearch:
    def test_finds_unique_occurrence(self):
        genome = random_dna(28, rng=0)
        pattern = genome[9:14]
        position, iterations, matches = grover_pattern_search(
            genome, pattern, rng=1)
        assert genome[position:position + len(pattern)] == pattern
        assert iterations >= 1

    def test_absent_pattern(self):
        genome = "ACGT" * 8
        position, _iterations, matches = grover_pattern_search(
            genome, "AAAAAAAA", rng=2)
        assert position is None
        assert matches == 0

    def test_multiple_occurrences(self):
        genome = "ACGTACGTACGT"
        position, _iterations, matches = grover_pattern_search(
            genome, "ACGT", rng=3)
        assert matches == 3
        assert position in (0, 4, 8)

    def test_pattern_at_boundaries(self):
        genome = "TTTTACGT"
        position, _it, _m = grover_pattern_search(genome, "ACGT", rng=4)
        assert position == 4
        position, _it, _m = grover_pattern_search(genome, "TTTT", rng=5)
        assert position == 0

    def test_quadratic_oracle_advantage(self):
        """Grover's oracle-call count beats half-the-positions scanning."""
        genome = random_dna(60, rng=6)
        pattern = genome[31:37]
        position, iterations, matches = grover_pattern_search(
            genome, pattern, rng=7)
        assert genome[position:position + 6] == pattern
        positions = len(genome) - 6 + 1
        expected_classical = positions / 2.0
        assert iterations < expected_classical

    def test_validation(self):
        with pytest.raises(QuantumError):
            grover_pattern_search("ACGT", "")
        with pytest.raises(QuantumError):
            grover_pattern_search("AC", "ACGT")
