"""Tests for the standalone phase-estimation kernel."""

import fractions

import numpy as np
import pytest

from repro.core.exceptions import QuantumError
from repro.quantum import gates
from repro.quantum.algorithms.qpe import (
    estimate_phase,
    phase_as_fraction,
    phase_estimation_circuit,
)


class TestPhaseEstimation:
    @pytest.mark.parametrize("gate,eigenstate,expected", [
        (gates.Z, [0.0, 1.0], 0.5),
        (gates.S, [0.0, 1.0], 0.25),
        (gates.T, [0.0, 1.0], 0.125),
        (gates.Z, [1.0, 0.0], 0.0),
    ])
    def test_diagonal_gate_phases(self, gate, eigenstate, expected):
        phi, _raw = estimate_phase(gate, np.array(eigenstate),
                                   num_counting=5, rng=0)
        assert phi == pytest.approx(expected)

    def test_hadamard_eigenphase(self):
        # H eigenvalues are +1 and -1; the -1 eigenvector gives phi=1/2
        eigenvalues, eigenvectors = np.linalg.eigh(gates.H)
        minus_index = int(np.argmin(eigenvalues))
        phi, _raw = estimate_phase(gates.H,
                                   eigenvectors[:, minus_index],
                                   num_counting=5, rng=1)
        assert phi == pytest.approx(0.5)

    def test_resolution_scales_with_counting_bits(self):
        # phi = 1/3 is not exactly representable; more bits -> closer
        gate = gates.phase_gate(2.0 * np.pi / 3.0)
        coarse, _ = estimate_phase(gate, np.array([0.0, 1.0]),
                                   num_counting=3, rng=2)
        fine, _ = estimate_phase(gate, np.array([0.0, 1.0]),
                                 num_counting=8, rng=2)
        assert abs(fine - 1.0 / 3.0) <= abs(coarse - 1.0 / 3.0) + 1e-12
        assert phase_as_fraction(fine, 10) == fractions.Fraction(1, 3)

    def test_two_qubit_unitary(self):
        # CZ on |11> has eigenvalue -1
        eigenstate = np.zeros(4)
        eigenstate[3] = 1.0
        phi, _raw = estimate_phase(gates.CZ, eigenstate,
                                   num_counting=4, rng=3)
        assert phi == pytest.approx(0.5)

    def test_circuit_dimensions(self):
        circuit, t, work = phase_estimation_circuit(gates.T, 6)
        assert t == 6 and work == 1
        assert circuit.num_qubits == 7

    def test_validation(self):
        with pytest.raises(QuantumError):
            phase_estimation_circuit(np.ones((2, 2)), 4)
        with pytest.raises(QuantumError):
            phase_estimation_circuit(gates.T, 0)
        with pytest.raises(QuantumError):
            estimate_phase(gates.T, np.array([1.0, 1.0]))  # unnormalized
        with pytest.raises(QuantumError):
            estimate_phase(gates.T, np.array([1.0, 0.0, 0.0]))
