"""Quantum teleportation with classical feed-forward on the micro-architecture.

The paper's Fig. 2 stack requires "a micro-architecture that executes a
well-defined set of quantum instructions" including classical control.
Teleportation is the canonical exercise: two mid-circuit measurements
steer conditional X/Z corrections through branch instructions, and the
payload state must arrive intact.
"""

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.circuit import MeasureOp, QuantumCircuit
from repro.quantum.microarch import Instruction, MicroArchitecture


def teleportation_program(theta):
    """Build the 3-qubit teleportation instruction stream.

    Qubit 0 carries the payload ``ry(theta)|0>``; qubits 1-2 share a
    Bell pair; measurements of qubits 0-1 classically steer corrections
    on qubit 2.
    """
    prep = QuantumCircuit(3)
    prep.ry(0, theta)          # payload
    prep.h(1).cnot(1, 2)       # Bell pair
    prep.cnot(0, 1).h(0)       # Bell measurement basis
    program = [Instruction("gate", op=op) for op in prep.ops]
    program.append(Instruction("measure", op=MeasureOp(0, "m0")))
    program.append(Instruction("measure", op=MeasureOp(1, "m1")))
    x_gate = QuantumCircuit(3).x(2).ops[0]
    z_gate = QuantumCircuit(3).z(2).ops[0]
    # if m1 == 0 skip the X correction
    program.append(Instruction("branch", condition=("m1", 0),
                               target=len(program) + 2))
    program.append(Instruction("gate", op=x_gate))
    # if m0 == 0 skip the Z correction
    program.append(Instruction("branch", condition=("m0", 0),
                               target=len(program) + 2))
    program.append(Instruction("gate", op=z_gate))
    program.append(Instruction("halt"))
    return program


@pytest.mark.parametrize("theta", [0.0, 0.7, 1.3, np.pi / 2, 2.6])
def test_teleportation_transfers_arbitrary_states(theta):
    microarch = MicroArchitecture(3)
    expected = gates.ry(theta) @ np.array([1.0, 0.0], dtype=complex)
    for seed in range(6):
        result = microarch.execute(teleportation_program(theta), rng=seed)
        # qubits 0 and 1 are collapsed; compare qubit 2's marginal and
        # coherence via probabilities of the corrected state
        p_one = result.state.probability_of(2, 1)
        assert p_one == pytest.approx(abs(expected[1]) ** 2, abs=1e-9)


def test_teleportation_all_branch_paths_visited():
    """Across seeds all four (m0, m1) outcomes occur and all succeed."""
    microarch = MicroArchitecture(3)
    seen = set()
    theta = 1.1
    expected_p1 = float(np.sin(theta / 2.0) ** 2)
    for seed in range(40):
        result = microarch.execute(teleportation_program(theta), rng=seed)
        seen.add((result.bit("m0"), result.bit("m1")))
        assert result.state.probability_of(2, 1) == pytest.approx(
            expected_p1, abs=1e-9)
    assert seen == {(0, 0), (0, 1), (1, 0), (1, 1)}
