"""Unit tests for repro.quantum.qasm."""

import pytest

from repro.core.exceptions import QasmError
from repro.quantum import qasm
from repro.quantum.circuit import QuantumCircuit


class TestEmit:
    def test_simple_program(self):
        circuit = QuantumCircuit(2).h(0).cnot(0, 1).measure(1, "m")
        text = qasm.emit(circuit)
        assert "qubits 2" in text
        assert "h q0" in text
        assert "cnot q0, q1" in text
        assert "measure q1 -> m" in text

    def test_parameters_serialized(self):
        text = qasm.emit(QuantumCircuit(1).rz(0, 0.5))
        assert "rz q0, 0.5" in text

    def test_non_primitive_rejected(self):
        import numpy as np

        circuit = QuantumCircuit(1).unitary(np.eye(2), [0])
        with pytest.raises(QasmError):
            qasm.emit(circuit)


class TestParse:
    def test_roundtrip_preserves_semantics(self):
        source = QuantumCircuit(3, name="rt")
        source.h(0).cnot(0, 2).rz(1, 0.25).cp(1, 2, 1.5).swap(0, 1)
        parsed = qasm.parse(qasm.emit(source))
        import numpy as np

        fidelity = abs(np.vdot(source.statevector().amplitudes,
                               parsed.statevector().amplitudes)) ** 2
        assert fidelity == pytest.approx(1.0)

    def test_comments_and_blanks(self):
        circuit = qasm.parse("""
            # full line comment
            version 1.0
            qubits 1

            h q0  # trailing comment
        """)
        assert len(circuit.ops) == 1

    def test_case_insensitive_mnemonics(self):
        circuit = qasm.parse("qubits 1\nH q0\n")
        assert circuit.ops[0].name == "h"

    def test_measure_parsing(self):
        circuit = qasm.parse("qubits 2\nmeasure q1 -> result\n")
        op = circuit.ops[0]
        assert op.qubit == 1 and op.cbit == "result"

    def test_missing_qubits_declaration(self):
        with pytest.raises(QasmError):
            qasm.parse("h q0\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(QasmError):
            qasm.parse("qubits 1\nwarp q0\n")

    def test_wrong_operand_count(self):
        with pytest.raises(QasmError):
            qasm.parse("qubits 2\ncnot q0\n")

    def test_bad_parameter(self):
        with pytest.raises(QasmError):
            qasm.parse("qubits 1\nrz q0, half\n")

    def test_bad_qubit_token(self):
        with pytest.raises(QasmError):
            qasm.parse("qubits 1\nh x0\n")

    def test_out_of_range_qubit(self):
        from repro.core.exceptions import QubitIndexError

        with pytest.raises(QubitIndexError):
            qasm.parse("qubits 1\nh q5\n")

    def test_measure_without_arrow(self):
        with pytest.raises(QasmError):
            qasm.parse("qubits 1\nmeasure q0\n")

    def test_zero_qubits_rejected(self):
        with pytest.raises(QasmError):
            qasm.parse("qubits 0\n")

    def test_empty_program_rejected(self):
        with pytest.raises(QasmError):
            qasm.parse("")
