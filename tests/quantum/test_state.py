"""Unit and property tests for repro.quantum.state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import QubitIndexError, QuantumError
from repro.quantum import gates
from repro.quantum.state import StateVector


class TestConstruction:
    def test_starts_in_zero_state(self):
        state = StateVector(3)
        assert state.amplitudes[0] == 1.0
        assert np.sum(np.abs(state.amplitudes)) == 1.0

    def test_explicit_amplitudes(self):
        amplitudes = np.zeros(4)
        amplitudes[2] = 1.0
        state = StateVector(2, amplitudes)
        assert state.probabilities()[2] == 1.0

    def test_unnormalized_rejected(self):
        with pytest.raises(QuantumError):
            StateVector(1, [1.0, 1.0])

    def test_zero_qubits_rejected(self):
        with pytest.raises(QuantumError):
            StateVector(0)

    def test_huge_register_rejected(self):
        with pytest.raises(QuantumError):
            StateVector(64)


class TestApplyGate:
    def test_x_flips_target_qubit(self):
        state = StateVector(3)
        state.apply_gate(gates.X, [1])
        assert np.argmax(state.probabilities()) == 2  # bit 1 set

    def test_hadamard_uniform(self):
        state = StateVector(2)
        state.apply_gate(gates.H, [0])
        state.apply_gate(gates.H, [1])
        assert np.allclose(state.probabilities(), 0.25)

    def test_cnot_control_order(self):
        state = StateVector(2)
        state.apply_gate(gates.X, [0])           # control qubit 0 set
        state.apply_gate(gates.CNOT, [0, 1])     # [control, target]
        assert np.argmax(state.probabilities()) == 3

    def test_cnot_no_action_when_control_clear(self):
        state = StateVector(2)
        state.apply_gate(gates.CNOT, [0, 1])
        assert state.probabilities()[0] == pytest.approx(1.0)

    def test_gate_on_distant_qubits(self):
        state = StateVector(4)
        state.apply_gate(gates.X, [0])
        state.apply_gate(gates.CNOT, [0, 3])
        assert np.argmax(state.probabilities()) == 0b1001

    def test_wrong_matrix_size_rejected(self):
        with pytest.raises(QuantumError):
            StateVector(2).apply_gate(gates.CNOT, [0])

    def test_out_of_range_qubit(self):
        with pytest.raises(QubitIndexError):
            StateVector(2).apply_gate(gates.X, [2])

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(QubitIndexError):
            StateVector(2).apply_gate(gates.CNOT, [1, 1])

    def test_norm_preserved_by_random_circuit(self):
        rng = np.random.default_rng(0)
        state = StateVector(4)
        for _ in range(30):
            qubit = int(rng.integers(0, 4))
            theta = float(rng.uniform(-np.pi, np.pi))
            state.apply_gate(gates.ry(theta), [qubit])
            other = int(rng.integers(0, 4))
            if other != qubit:
                state.apply_gate(gates.CNOT, [qubit, other])
        assert state.norm() == pytest.approx(1.0)


class TestPermutation:
    def test_increment_permutation(self):
        state = StateVector(2)
        state.apply_permutation([1, 2, 3, 0], [0, 1])
        assert np.argmax(state.probabilities()) == 1

    def test_permutation_on_subset(self):
        state = StateVector(3)
        state.apply_gate(gates.X, [2])
        # swap qubits 0 and 1 via permutation; qubit 2 untouched
        state.apply_permutation([0, 2, 1, 3], [0, 1])
        assert np.argmax(state.probabilities()) == 0b100

    def test_non_permutation_rejected(self):
        with pytest.raises(QuantumError):
            StateVector(1).apply_permutation([0, 0], [0])

    def test_matches_equivalent_matrix(self):
        mapping = [2, 0, 3, 1]
        matrix = np.zeros((4, 4), dtype=complex)
        matrix[mapping, np.arange(4)] = 1.0
        a = StateVector(2)
        a.apply_gate(gates.H, [0])
        a.apply_gate(gates.ry(0.3), [1])
        b = a.copy()
        a.apply_permutation(mapping, [0, 1])
        b.apply_gate(matrix, [0, 1])
        assert np.allclose(a.amplitudes, b.amplitudes)


class TestMeasurement:
    def test_deterministic_outcome(self):
        state = StateVector(2)
        state.apply_gate(gates.X, [1])
        assert state.measure(1, rng=0) == 1
        assert state.measure(0, rng=0) == 0

    def test_collapse(self):
        state = StateVector(1)
        state.apply_gate(gates.H, [0])
        outcome = state.measure(0, rng=3)
        assert state.probabilities()[outcome] == pytest.approx(1.0)

    def test_statistics_of_plus_state(self):
        ones = 0
        for seed in range(200):
            state = StateVector(1)
            state.apply_gate(gates.H, [0])
            ones += state.measure(0, rng=seed)
        assert 60 < ones < 140

    def test_measure_all_bell_correlation(self):
        for seed in range(30):
            state = StateVector(2)
            state.apply_gate(gates.H, [0])
            state.apply_gate(gates.CNOT, [0, 1])
            bits = state.measure_all(rng=seed)
            assert bits[0] == bits[1]

    def test_sample_counts_sane(self):
        state = StateVector(1)
        state.apply_gate(gates.H, [0])
        counts = state.sample_counts(1000, rng=1)
        assert sum(counts.values()) == 1000
        assert set(counts) <= {0, 1}
        assert 400 < counts.get(0, 0) < 600

    def test_sample_counts_rejects_zero_shots(self):
        with pytest.raises(ValueError):
            StateVector(1).sample_counts(0)


class TestAnalysis:
    def test_probability_of(self):
        state = StateVector(2)
        state.apply_gate(gates.H, [0])
        assert state.probability_of(0, 1) == pytest.approx(0.5)
        assert state.probability_of(1, 1) == pytest.approx(0.0)

    def test_fidelity_of_identical_states(self):
        a = StateVector(2)
        a.apply_gate(gates.H, [0])
        assert a.fidelity(a.copy()) == pytest.approx(1.0)

    def test_fidelity_of_orthogonal_states(self):
        a = StateVector(1)
        b = StateVector(1)
        b.apply_gate(gates.X, [0])
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_fidelity_type_checks(self):
        with pytest.raises(TypeError):
            StateVector(1).fidelity("state")
        with pytest.raises(QuantumError):
            StateVector(1).fidelity(StateVector(2))

    def test_reduced_probabilities_of_bell(self):
        state = StateVector(2)
        state.apply_gate(gates.H, [0])
        state.apply_gate(gates.CNOT, [0, 1])
        marginal = state.reduced_probabilities([0])
        assert np.allclose(marginal, [0.5, 0.5])

    def test_reduced_probabilities_multi(self):
        state = StateVector(3)
        state.apply_gate(gates.X, [2])
        marginal = state.reduced_probabilities([2, 0])
        # qubit 2 -> local bit 0 (value 1), qubit 0 -> local bit 1 (0)
        assert marginal[1] == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2),
                          st.floats(min_value=-3.0, max_value=3.0)),
                min_size=1, max_size=15))
def test_property_norm_preserved(ops):
    """Arbitrary rotation sequences keep the state normalized."""
    state = StateVector(3)
    for qubit, theta in ops:
        state.apply_gate(gates.ry(theta), [qubit])
        state.apply_gate(gates.rz(theta * 0.5), [qubit])
    assert state.norm() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.permutations(list(range(4))))
def test_property_permutation_preserves_distribution_mass(perm):
    """Permutations only relabel probabilities, never create or destroy."""
    state = StateVector(2)
    state.apply_gate(gates.H, [0])
    state.apply_gate(gates.ry(0.7), [1])
    before = sorted(state.probabilities().tolist())
    state.apply_permutation(list(perm), [0, 1])
    after = sorted(state.probabilities().tolist())
    assert np.allclose(before, after)
