"""Unit tests for repro.quantum.microarch and runtime."""

import pytest

from repro.core.exceptions import MicroArchError, QuantumError
from repro.quantum.circuit import MeasureOp, QuantumCircuit
from repro.quantum.microarch import (
    DEFAULT_DURATIONS_NS,
    Instruction,
    MicroArchitecture,
    assemble,
)
from repro.quantum.runtime import QuantumRuntime


class TestAssemble:
    def test_straight_line_plus_halt(self):
        circuit = QuantumCircuit(2).h(0).cnot(0, 1).measure(0)
        program = assemble(circuit)
        assert [i.kind for i in program] == ["gate", "gate", "measure",
                                             "halt"]

    def test_rejects_garbage(self):
        with pytest.raises(MicroArchError):
            assemble(type("Fake", (), {"ops": ["x"]})())


class TestExecution:
    def test_bell_measurement_correlated(self):
        microarch = MicroArchitecture(2)
        circuit = QuantumCircuit(2).h(0).cnot(0, 1)
        circuit.measure(0, "a").measure(1, "b")
        for seed in range(20):
            result = microarch.execute_circuit(circuit, rng=seed)
            assert result.bit("a") == result.bit("b")

    def test_instruction_count(self):
        microarch = MicroArchitecture(1)
        circuit = QuantumCircuit(1).h(0).measure(0)
        result = microarch.execute_circuit(circuit, rng=0)
        assert result.instructions_executed == 3  # h, measure, halt

    def test_timing_model(self):
        microarch = MicroArchitecture(2)
        circuit = QuantumCircuit(2).h(0).cnot(0, 1).measure(0)
        result = microarch.execute_circuit(circuit, rng=0)
        expected = (DEFAULT_DURATIONS_NS["single_qubit"]
                    + DEFAULT_DURATIONS_NS["two_qubit"]
                    + DEFAULT_DURATIONS_NS["measure"])
        assert result.elapsed_ns == pytest.approx(expected)

    def test_coherence_flag(self):
        microarch = MicroArchitecture(1, coherence_ns=10.0)
        circuit = QuantumCircuit(1).h(0).measure(0)
        result = microarch.execute_circuit(circuit, rng=0)
        assert result.coherence_exceeded

    def test_custom_durations(self):
        microarch = MicroArchitecture(1,
                                      durations_ns={"single_qubit": 100.0})
        circuit = QuantumCircuit(1).h(0).measure(0)
        result = microarch.execute_circuit(circuit, rng=0)
        assert result.elapsed_ns == pytest.approx(
            100.0 + DEFAULT_DURATIONS_NS["measure"])

    def test_branch_instruction(self):
        # measure qubit 0; if it reads 0, skip the X on qubit 1
        circuit = QuantumCircuit(2).x(0)
        program = assemble(circuit)[:-1]  # drop halt
        program.append(Instruction("measure", op=MeasureOp(0, "m")))
        x_op = QuantumCircuit(2).x(1).ops[0]
        program.append(Instruction("branch", condition=("m", 0),
                                   target=len(program) + 2))
        program.append(Instruction("gate", op=x_op))
        program.append(Instruction("halt"))
        result = MicroArchitecture(2).execute(program, rng=0)
        # qubit 0 was set, so the branch falls through and X(1) runs
        assert result.state.probability_of(1, 1) == pytest.approx(1.0)

    def test_branch_taken(self):
        program = []
        program.append(Instruction("measure", op=MeasureOp(0, "m")))
        x_op = QuantumCircuit(2).x(1).ops[0]
        program.append(Instruction("branch", condition=("m", 0),
                                   target=3))
        program.append(Instruction("gate", op=x_op))
        program.append(Instruction("halt"))
        result = MicroArchitecture(2).execute(program, rng=0)
        # qubit 0 measures 0 -> branch skips the X
        assert result.state.probability_of(1, 1) == pytest.approx(0.0)

    def test_runaway_program_detected(self):
        program = [Instruction("branch", condition=("never", 0), target=0)]
        with pytest.raises(MicroArchError):
            MicroArchitecture(1).execute(program, max_instructions=100)

    def test_pc_out_of_range(self):
        program = [Instruction("branch", condition=("never", 0),
                               target=99)]
        with pytest.raises(MicroArchError):
            MicroArchitecture(1).execute(program)

    def test_circuit_wider_than_chip(self):
        with pytest.raises(MicroArchError):
            MicroArchitecture(1).execute_circuit(QuantumCircuit(2).h(1))

    def test_bits_as_int_packing(self):
        circuit = QuantumCircuit(3).x(0).x(2)
        circuit.measure(0, "b0").measure(1, "b1").measure(2, "b2")
        result = MicroArchitecture(3).execute_circuit(circuit, rng=0)
        assert result.bits_as_int(["b0", "b1", "b2"]) == 0b101


class TestRuntime:
    def test_shot_histogram(self):
        runtime = QuantumRuntime()
        circuit = QuantumCircuit(1).h(0).measure(0)
        result = runtime.run(circuit, shots=500, rng=1)
        assert result.shots == 500
        assert sum(result.counts.values()) == 500
        assert 150 < result.counts.get(0, 0) < 350

    def test_probability_and_most_common(self):
        runtime = QuantumRuntime()
        circuit = QuantumCircuit(1).x(0).measure(0)
        result = runtime.run(circuit, shots=100, rng=2)
        assert result.probability(1) == 1.0
        assert result.most_common() == [(1, 100)]

    def test_chip_time_accumulates(self):
        runtime = QuantumRuntime()
        circuit = QuantumCircuit(1).h(0).measure(0)
        result = runtime.run(circuit, shots=10, rng=0)
        single = (DEFAULT_DURATIONS_NS["single_qubit"]
                  + DEFAULT_DURATIONS_NS["measure"])
        assert result.total_chip_time_ns == pytest.approx(10 * single)

    def test_requires_measurement(self):
        with pytest.raises(QuantumError):
            QuantumRuntime().run(QuantumCircuit(1).h(0), shots=10)

    def test_rejects_zero_shots(self):
        with pytest.raises(QuantumError):
            QuantumRuntime().run(QuantumCircuit(1).measure(0), shots=0)

    def test_kernel_too_wide_for_attached_chip(self):
        from repro.quantum.microarch import MicroArchitecture

        runtime = QuantumRuntime(MicroArchitecture(1))
        with pytest.raises(QuantumError):
            runtime.run(QuantumCircuit(2).measure(0), shots=1)
