"""Property test: random primitive circuits survive the QASM round trip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import qasm
from repro.quantum.circuit import QuantumCircuit

_SINGLE = ("x", "y", "z", "h", "s", "sdg", "t", "tdg")
_ROTATION = ("rx", "ry", "rz", "p")
_TWO = ("cnot", "cz", "swap")


@st.composite
def primitive_circuits(draw):
    num_qubits = draw(st.integers(min_value=2, max_value=4))
    circuit = QuantumCircuit(num_qubits, name="fuzz")
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        family = draw(st.integers(min_value=0, max_value=3))
        qubit = draw(st.integers(min_value=0, max_value=num_qubits - 1))
        if family == 0:
            circuit.gate(draw(st.sampled_from(_SINGLE)), qubit)
        elif family == 1:
            angle = draw(st.floats(min_value=-3.0, max_value=3.0))
            circuit.gate(draw(st.sampled_from(_ROTATION)), qubit,
                         params=(angle,))
        elif family == 2:
            other = draw(st.integers(min_value=0,
                                     max_value=num_qubits - 1))
            if other == qubit:
                other = (qubit + 1) % num_qubits
            circuit.gate(draw(st.sampled_from(_TWO)), qubit, other)
        else:
            other = (qubit + 1) % num_qubits
            angle = draw(st.floats(min_value=-3.0, max_value=3.0))
            circuit.cp(qubit, other, angle)
    return circuit


@settings(max_examples=40, deadline=None)
@given(primitive_circuits())
def test_property_qasm_roundtrip_preserves_state(circuit):
    """emit -> parse reproduces the exact statevector."""
    parsed = qasm.parse(qasm.emit(circuit))
    original = circuit.statevector().amplitudes
    reparsed = parsed.statevector().amplitudes
    assert np.allclose(original, reparsed, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(primitive_circuits())
def test_property_compile_then_qasm_roundtrip(circuit):
    """The physical circuit after routing is still QASM-expressible."""
    from repro.quantum.compiler import compile_circuit, verify_equivalence

    compiled, _report = compile_circuit(circuit)
    text = qasm.emit(compiled.circuit)
    parsed = qasm.parse(text)
    assert len(parsed.ops) == len(compiled.circuit.ops)
