"""Tests for Deutsch-Jozsa and Bernstein-Vazirani on the full stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import QuantumError
from repro.quantum.algorithms.oracles import (
    bernstein_vazirani_circuit,
    deutsch_jozsa_circuit,
    run_bernstein_vazirani,
    run_deutsch_jozsa,
)


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", [0b1, 0b101, 0b1111, 0b10010])
    def test_recovers_secret(self, secret):
        found, _report = run_bernstein_vazirani(secret, rng=0)
        assert found == secret

    def test_zero_secret(self):
        found, _report = run_bernstein_vazirani(0, num_bits=3, rng=1)
        assert found == 0

    def test_single_oracle_call(self):
        circuit = bernstein_vazirani_circuit(0b101)
        # the oracle is the CNOT fan; its size equals popcount(secret)
        assert circuit.gate_counts().get("cnot", 0) == 2

    def test_secret_too_wide_rejected(self):
        with pytest.raises(QuantumError):
            bernstein_vazirani_circuit(0b111, num_bits=2)

    def test_routing_engaged_on_wide_secrets(self):
        _found, report = run_bernstein_vazirani(0b10001, rng=2)
        layers = dict(report.rows())
        assert layers["compiler (mapping+routing)"]["swaps_inserted"] > 0


class TestDeutschJozsa:
    def test_constant_oracles(self):
        for kind in ("constant0", "constant1"):
            verdict, _report = run_deutsch_jozsa(kind, 4, rng=0)
            assert verdict == "constant"

    @pytest.mark.parametrize("secret", [0b1, 0b0110, 0b1111])
    def test_balanced_oracles(self, secret):
        verdict, _report = run_deutsch_jozsa("balanced", 4,
                                             secret=secret, rng=1)
        assert verdict == "balanced"

    def test_balanced_needs_secret(self):
        with pytest.raises(QuantumError):
            deutsch_jozsa_circuit("balanced", 3, secret=0)

    def test_unknown_oracle(self):
        with pytest.raises(QuantumError):
            deutsch_jozsa_circuit("random", 3)


@settings(max_examples=20, deadline=None)
@given(secret=st.integers(min_value=0, max_value=2 ** 6 - 1))
def test_property_bv_exact_for_any_secret(secret):
    """BV recovers every 6-bit secret exactly through the stack."""
    found, _report = run_bernstein_vazirani(secret, num_bits=6, rng=0)
    assert found == secret
