"""Tests for the compiler's peephole optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.compiler import compile_circuit, optimize


class TestCancellation:
    def test_double_hadamard_removed(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        assert len(optimize(circuit).ops) == 0

    def test_dagger_pairs_removed(self):
        circuit = QuantumCircuit(1).s(0).sdg(0).t(0).tdg(0).tdg(0).t(0)
        assert len(optimize(circuit).ops) == 0

    def test_double_cnot_removed(self):
        circuit = QuantumCircuit(2).cnot(0, 1).cnot(0, 1)
        assert len(optimize(circuit).ops) == 0

    def test_reversed_cnot_not_removed(self):
        # cnot(0,1); cnot(1,0) is NOT the identity
        circuit = QuantumCircuit(2).cnot(0, 1).cnot(1, 0)
        assert len(optimize(circuit).ops) == 2

    def test_different_qubits_untouched(self):
        circuit = QuantumCircuit(2).h(0).h(1)
        assert len(optimize(circuit).ops) == 2

    def test_cascading_cancellation(self):
        # the middle pair cancels first, exposing the outer pair
        circuit = QuantumCircuit(1).h(0).x(0).x(0).h(0)
        assert len(optimize(circuit).ops) == 0

    def test_measurement_is_a_barrier(self):
        circuit = QuantumCircuit(1).h(0).measure(0).h(0)
        circuit2 = optimize(circuit)
        assert len(circuit2.ops) == 3  # nothing cancels across measure


class TestRotationMerging:
    def test_angles_add(self):
        circuit = QuantumCircuit(1).rz(0, 0.3).rz(0, 0.4)
        merged = optimize(circuit)
        assert len(merged.ops) == 1
        assert merged.ops[0].params[0] == pytest.approx(0.7)

    def test_zero_sum_drops_entirely(self):
        circuit = QuantumCircuit(1).rx(0, 0.5).rx(0, -0.5)
        assert len(optimize(circuit).ops) == 0

    def test_chains_merge_fully(self):
        circuit = QuantumCircuit(1)
        for _ in range(5):
            circuit.p(0, 0.1)
        merged = optimize(circuit)
        assert len(merged.ops) == 1
        assert merged.ops[0].params[0] == pytest.approx(0.5)

    def test_different_rotation_axes_not_merged(self):
        circuit = QuantumCircuit(1).rx(0, 0.3).ry(0, 0.3)
        assert len(optimize(circuit).ops) == 2


class TestPipelineIntegration:
    def test_report_counts_removed_ops(self):
        circuit = QuantumCircuit(2).h(0).h(0).cnot(0, 1)
        _compiled, report = compile_circuit(circuit)
        assert report["peephole_ops_removed"] == 2

    def test_peephole_disable(self):
        circuit = QuantumCircuit(2).h(0).h(0)
        _compiled, report = compile_circuit(circuit, peephole=False)
        assert report["peephole_ops_removed"] == 0

    def test_input_circuit_untouched(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        optimize(circuit)
        assert len(circuit.ops) == 2


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_optimization_preserves_semantics(seed):
    """Random redundant circuits keep their statevector when optimized."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(3)
    for _ in range(14):
        choice = rng.integers(0, 5)
        qubit = int(rng.integers(0, 3))
        if choice == 0:
            circuit.h(qubit)
        elif choice == 1:
            circuit.t(qubit)
        elif choice == 2:
            circuit.rz(qubit, float(rng.uniform(-1, 1)))
        elif choice == 3:
            circuit.h(qubit).h(qubit)  # guaranteed fodder
        else:
            other = (qubit + 1) % 3
            circuit.cnot(qubit, other)
    optimized = optimize(circuit)
    assert len(optimized.ops) <= len(circuit.ops)
    fidelity = abs(np.vdot(circuit.statevector().amplitudes,
                           optimized.statevector().amplitudes)) ** 2
    assert fidelity == pytest.approx(1.0)
