"""Unit and property tests for repro.quantum.gates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import QuantumError
from repro.quantum import gates


class TestFixedGates:
    def test_pauli_algebra(self):
        assert np.allclose(gates.X @ gates.X, gates.I)
        assert np.allclose(gates.Y @ gates.Y, gates.I)
        assert np.allclose(gates.Z @ gates.Z, gates.I)
        assert np.allclose(gates.X @ gates.Y - gates.Y @ gates.X,
                           2j * gates.Z)

    def test_hadamard_squares_to_identity(self):
        assert np.allclose(gates.H @ gates.H, gates.I)

    def test_hadamard_conjugates_x_to_z(self):
        assert np.allclose(gates.H @ gates.X @ gates.H, gates.Z)

    def test_s_squared_is_z(self):
        assert np.allclose(gates.S @ gates.S, gates.Z)

    def test_t_squared_is_s(self):
        assert np.allclose(gates.T @ gates.T, gates.S)

    def test_daggers(self):
        assert np.allclose(gates.SDG, gates.S.conj().T)
        assert np.allclose(gates.TDG, gates.T.conj().T)

    def test_cnot_is_controlled_x_low_bit_control(self):
        assert np.allclose(gates.CNOT, gates.controlled(gates.X))

    def test_toffoli_is_doubly_controlled_x(self):
        assert np.allclose(gates.TOFFOLI, gates.controlled(gates.X, 2))

    def test_swap_involution(self):
        assert np.allclose(gates.SWAP @ gates.SWAP, np.eye(4))

    def test_cnot_action_on_basis(self):
        # local index: control bit 0, target bit 1
        state = np.zeros(4)
        state[1] = 1.0  # control=1, target=0
        out = gates.CNOT @ state
        assert out[3] == 1.0


class TestParametricGates:
    def test_rx_pi_is_minus_i_x(self):
        assert np.allclose(gates.rx(np.pi), -1j * gates.X)

    def test_ry_pi_is_minus_i_y(self):
        assert np.allclose(gates.ry(np.pi), -1j * gates.Y)

    def test_rz_zero_is_identity(self):
        assert np.allclose(gates.rz(0.0), gates.I)

    def test_phase_pi_is_z(self):
        assert np.allclose(gates.phase_gate(np.pi), gates.Z)

    def test_u3_reduces_to_ry(self):
        assert np.allclose(gates.u3(0.7, 0.0, 0.0), gates.ry(0.7))

    def test_rotation_composition(self):
        assert np.allclose(gates.rz(0.3) @ gates.rz(0.4), gates.rz(0.7))


class TestControlled:
    def test_controlled_block_position(self):
        cu = gates.controlled(gates.phase_gate(0.5))
        # only local states with control bit set are touched
        assert cu[0, 0] == 1.0 and cu[2, 2] == 1.0
        assert cu[3, 3] == pytest.approx(np.exp(0.5j))

    def test_double_control(self):
        ccz = gates.controlled(gates.Z, 2)
        diag = np.diag(ccz)
        assert diag[-1] == -1.0
        assert np.all(diag[:-1] == 1.0)

    def test_rejects_non_square(self):
        with pytest.raises(QuantumError):
            gates.controlled(np.ones((2, 3)))


class TestRegistry:
    def test_every_fixed_gate_is_unitary(self):
        for name, (entry, _arity, n_params) in gates.GATE_SET.items():
            if n_params == 0:
                assert gates.is_unitary(entry), name

    def test_gate_matrix_with_params(self):
        assert np.allclose(gates.gate_matrix("rz", [0.4]), gates.rz(0.4))

    def test_unknown_gate_rejected(self):
        with pytest.raises(QuantumError):
            gates.gate_matrix("frobnicate")

    def test_wrong_param_count_rejected(self):
        with pytest.raises(QuantumError):
            gates.gate_matrix("rz", [])
        with pytest.raises(QuantumError):
            gates.gate_matrix("h", [0.5])

    def test_arities(self):
        assert gates.gate_arity("h") == 1
        assert gates.gate_arity("cnot") == 2
        assert gates.gate_arity("toffoli") == 3
        with pytest.raises(QuantumError):
            gates.gate_arity("nope")


class TestIsUnitary:
    def test_identity(self):
        assert gates.is_unitary(np.eye(4))

    def test_non_unitary(self):
        assert not gates.is_unitary(np.ones((2, 2)))

    def test_non_square(self):
        assert not gates.is_unitary(np.ones((2, 3)))


@settings(max_examples=40, deadline=None)
@given(theta=st.floats(min_value=-np.pi, max_value=np.pi))
def test_property_rotations_are_unitary(theta):
    """Every rotation angle yields a unitary gate."""
    for maker in (gates.rx, gates.ry, gates.rz, gates.phase_gate):
        assert gates.is_unitary(maker(theta))


@settings(max_examples=40, deadline=None)
@given(theta=st.floats(min_value=-np.pi, max_value=np.pi),
       phi=st.floats(min_value=-np.pi, max_value=np.pi),
       lam=st.floats(min_value=-np.pi, max_value=np.pi))
def test_property_u3_unitary(theta, phi, lam):
    """U3 is unitary across its parameter space."""
    assert gates.is_unitary(gates.u3(theta, phi, lam))
