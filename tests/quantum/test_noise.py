"""Tests for the quantum noise channels (Section II.B's coherence challenge)."""

import pytest

from repro.core.exceptions import QuantumError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.microarch import assemble
from repro.quantum.noise import (
    DepolarizingNoise,
    NoisyMicroArchitecture,
    bell_fidelity_vs_noise,
)


class TestDepolarizingNoise:
    def test_probability_validation(self):
        with pytest.raises(QuantumError):
            DepolarizingNoise(gate_error=1.5)
        with pytest.raises(QuantumError):
            DepolarizingNoise(readout_error=-0.1)

    def test_zero_noise_is_identity(self):
        from repro.core.rngs import make_rng
        from repro.quantum.state import StateVector

        noise = DepolarizingNoise()
        state = StateVector(1)
        before = state.amplitudes.copy()
        noise.apply_after_gate(state, [0], make_rng(0))
        assert (state.amplitudes == before).all()
        assert noise.corrupt_readout(1, make_rng(0)) == 1

    def test_full_readout_error_always_flips(self):
        from repro.core.rngs import make_rng

        noise = DepolarizingNoise(readout_error=1.0)
        rng = make_rng(0)
        assert noise.corrupt_readout(0, rng) == 1
        assert noise.corrupt_readout(1, rng) == 0


class TestNoisyMicroArchitecture:
    def _bell_program(self):
        kernel = QuantumCircuit(2).h(0).cnot(0, 1)
        kernel.measure(0, "a").measure(1, "b")
        return assemble(kernel)

    def test_noiseless_matches_ideal(self):
        noisy = NoisyMicroArchitecture(2, DepolarizingNoise())
        program = self._bell_program()
        for seed in range(10):
            result = noisy.execute(program, rng=seed)
            assert result.bit("a") == result.bit("b")

    def test_noise_breaks_correlations(self):
        noisy = NoisyMicroArchitecture(
            2, DepolarizingNoise(gate_error=0.5))
        program = self._bell_program()
        disagreements = sum(
            1 for seed in range(120)
            if noisy.execute(program, rng=seed).bit("a")
            != noisy.execute(program, rng=seed + 1000).bit("b"))
        assert disagreements > 10

    def test_requires_noise_object(self):
        with pytest.raises(QuantumError):
            NoisyMicroArchitecture(2, noise=0.1)

    def test_timing_model_inherited(self):
        noisy = NoisyMicroArchitecture(2, DepolarizingNoise())
        result = noisy.execute(self._bell_program(), rng=0)
        assert result.elapsed_ns > 0.0


class TestBellFidelityCurve:
    def test_monotone_degradation(self):
        rows = bell_fidelity_vs_noise([0.0, 0.2, 0.6], shots=250, rng=1)
        agreements = [agreement for _error, agreement in rows]
        assert agreements[0] == 1.0
        assert agreements[0] > agreements[1] > agreements[2]
        # fully scrambled limit approaches 0.5
        assert agreements[2] > 0.35
