"""Unit tests for repro.quantum.circuit."""

import numpy as np
import pytest

from repro.core.exceptions import QuantumError, QubitIndexError
from repro.quantum import gates
from repro.quantum.circuit import GateOp, MeasureOp, QuantumCircuit


class TestGateOp:
    def test_primitive_resolution(self):
        op = GateOp("h", [0])
        assert op.is_primitive
        assert np.allclose(op.resolved_matrix(), gates.H)

    def test_arity_checked(self):
        with pytest.raises(QuantumError):
            GateOp("cnot", [0])

    def test_matrix_op_not_primitive(self):
        op = GateOp("custom", [0], matrix=gates.X)
        assert not op.is_primitive

    def test_permutation_resolves_to_matrix(self):
        op = GateOp("perm", [0, 1], permutation=[1, 0, 2, 3])
        matrix = op.resolved_matrix()
        state = np.zeros(4)
        state[0] = 1.0
        assert (matrix @ state)[1] == 1.0

    def test_remapped(self):
        op = GateOp("cnot", [0, 1]).remapped({0: 3, 1: 2})
        assert op.qubits == (3, 2)


class TestBuilders:
    def test_fluent_chaining(self):
        circuit = QuantumCircuit(2).h(0).cnot(0, 1).measure_all()
        assert len(circuit.ops) == 4

    def test_every_named_builder(self):
        circuit = QuantumCircuit(3)
        circuit.i(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0)
        circuit.rx(1, 0.1).ry(1, 0.2).rz(1, 0.3).p(1, 0.4)
        circuit.cnot(0, 1).cz(1, 2).swap(0, 2).cp(0, 2, 0.5)
        circuit.toffoli(0, 1, 2)
        assert len(circuit.gate_ops) == 18

    def test_out_of_range_rejected(self):
        with pytest.raises(QubitIndexError):
            QuantumCircuit(2).h(5)

    def test_unitary_builder_validates(self):
        with pytest.raises(QuantumError):
            QuantumCircuit(1).unitary(np.ones((2, 2)), [0])

    def test_measure_default_cbit_name(self):
        circuit = QuantumCircuit(2).measure(1)
        assert circuit.measure_ops[0].cbit == "c1"

    def test_append_type_checked(self):
        with pytest.raises(TypeError):
            QuantumCircuit(1).append("h 0")


class TestAnalysis:
    def test_gate_counts(self):
        circuit = QuantumCircuit(2).h(0).h(1).cnot(0, 1)
        assert circuit.gate_counts() == {"h": 2, "cnot": 1}

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(2).h(0).h(1)
        assert circuit.depth() == 1

    def test_depth_serial_chain(self):
        circuit = QuantumCircuit(2).h(0).cnot(0, 1).h(1)
        assert circuit.depth() == 3

    def test_two_qubit_gate_count(self):
        circuit = QuantumCircuit(3).h(0).cnot(0, 1).swap(1, 2)
        assert circuit.two_qubit_gate_count() == 2

    def test_measurement_counts_in_depth(self):
        circuit = QuantumCircuit(1).h(0).measure(0)
        assert circuit.depth() == 2


class TestExecution:
    def test_bell_state(self):
        state = QuantumCircuit(2).h(0).cnot(0, 1).statevector()
        assert state.probabilities()[0] == pytest.approx(0.5)
        assert state.probabilities()[3] == pytest.approx(0.5)

    def test_ghz_state(self):
        circuit = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2)
        probs = circuit.statevector().probabilities()
        assert probs[0] == pytest.approx(0.5)
        assert probs[7] == pytest.approx(0.5)

    def test_run_with_measurements(self):
        circuit = QuantumCircuit(2).x(0).measure(0, "m").measure(1, "n")
        _state, cbits = circuit.run(rng=0)
        assert cbits == {"m": 1, "n": 0}

    def test_statevector_rejects_measured_circuit(self):
        with pytest.raises(QuantumError):
            QuantumCircuit(1).measure(0).statevector()

    def test_run_from_initial_state(self):
        from repro.quantum.state import StateVector

        initial = StateVector(1, [0.0, 1.0])
        state, _ = QuantumCircuit(1).x(0).run(initial_state=initial)
        assert state.probabilities()[0] == pytest.approx(1.0)


class TestInverse:
    def test_inverse_cancels(self):
        circuit = QuantumCircuit(3).h(0).cnot(0, 1).t(2).cp(1, 2, 0.4)
        combined = circuit.extended(circuit.inverse())
        amplitude = combined.statevector().amplitudes[0]
        assert abs(amplitude) ** 2 == pytest.approx(1.0)

    def test_inverse_rejects_measurements(self):
        with pytest.raises(QuantumError):
            QuantumCircuit(1).h(0).measure(0).inverse()

    def test_extend_width_mismatch(self):
        with pytest.raises(QuantumError):
            QuantumCircuit(2).extended(QuantumCircuit(3))
