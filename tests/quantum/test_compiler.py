"""Unit and property tests for repro.quantum.compiler."""

import cmath

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import CompilationError
from repro.quantum import gates
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.compiler import (
    GridTopology,
    LinearTopology,
    compile_circuit,
    decompose,
    route,
    verify_equivalence,
    zyz_angles,
)


def random_unitary(seed):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, _r = np.linalg.qr(matrix)
    return q


class TestZyz:
    @pytest.mark.parametrize("seed", range(8))
    def test_reconstruction(self, seed):
        unitary = random_unitary(seed)
        alpha, a, b, c = zyz_angles(unitary)
        rebuilt = cmath.exp(1j * alpha) * (
            gates.rz(c) @ gates.ry(b) @ gates.rz(a))
        assert np.allclose(rebuilt, unitary, atol=1e-9)

    def test_identity(self):
        alpha, a, b, c = zyz_angles(np.eye(2))
        assert b == pytest.approx(0.0)

    def test_diagonal_gate(self):
        alpha, a, b, c = zyz_angles(gates.rz(0.7))
        assert b == pytest.approx(0.0, abs=1e-12)

    def test_antidiagonal_gate(self):
        alpha, a, b, c = zyz_angles(gates.X)
        assert b == pytest.approx(np.pi, abs=1e-9)

    def test_rejects_wrong_shape(self):
        with pytest.raises(CompilationError):
            zyz_angles(np.eye(3))


class TestDecompose:
    def test_toffoli_semantics(self):
        circuit = QuantumCircuit(3).toffoli(0, 1, 2)
        lowered = decompose(circuit)
        assert all(op.name != "toffoli" for op in lowered.gate_ops)
        for index in range(8):
            amplitudes = np.zeros(8, dtype=complex)
            amplitudes[index] = 1.0
            from repro.quantum.state import StateVector

            expected = StateVector(3, amplitudes.copy())
            expected.apply_gate(gates.TOFFOLI, [0, 1, 2])
            actual = StateVector(3, amplitudes.copy())
            for op in lowered.gate_ops:
                actual.apply_gate(op.resolved_matrix(), op.qubits)
            assert expected.fidelity(actual) == pytest.approx(1.0)

    def test_swap_becomes_cnots(self):
        lowered = decompose(QuantumCircuit(2).swap(0, 1))
        assert lowered.gate_counts() == {"cnot": 3}

    def test_swap_kept_when_requested(self):
        lowered = decompose(QuantumCircuit(2).swap(0, 1), keep_swap=True)
        assert lowered.gate_counts() == {"swap": 1}

    def test_single_qubit_matrix_lowered(self):
        unitary = random_unitary(3)
        circuit = QuantumCircuit(1).unitary(unitary, [0])
        lowered = decompose(circuit)
        assert all(op.is_primitive for op in lowered.gate_ops)
        from repro.quantum.state import StateVector

        expected = StateVector(1)
        expected.apply_gate(unitary, [0])
        assert lowered.statevector().fidelity(expected) == pytest.approx(1.0)

    def test_measurements_pass_through(self):
        circuit = QuantumCircuit(1).h(0).measure(0)
        lowered = decompose(circuit)
        assert len(lowered.measure_ops) == 1


class TestTopologies:
    def test_linear_adjacency(self):
        topo = LinearTopology(5)
        assert topo.are_adjacent(2, 3)
        assert not topo.are_adjacent(0, 2)

    def test_linear_path(self):
        assert LinearTopology(5).path(1, 4) == [1, 2, 3, 4]
        assert LinearTopology(5).path(4, 1) == [4, 3, 2, 1]

    def test_grid_adjacency(self):
        topo = GridTopology(2, 3)
        assert topo.are_adjacent(0, 1)
        assert topo.are_adjacent(0, 3)
        assert not topo.are_adjacent(0, 4)
        assert not topo.are_adjacent(2, 3)  # row wrap is not an edge

    def test_grid_path_endpoints(self):
        topo = GridTopology(3, 3)
        path = topo.path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        for a, b in zip(path, path[1:]):
            assert topo.are_adjacent(a, b)


class TestRouting:
    def test_adjacent_gates_need_no_swaps(self):
        circuit = QuantumCircuit(3).cnot(0, 1).cnot(1, 2)
        compiled = route(circuit)
        assert compiled.swap_count == 0

    def test_distant_gate_inserts_swaps(self):
        circuit = QuantumCircuit(4).cnot(0, 3)
        compiled = route(circuit)
        assert compiled.swap_count == 2

    def test_routed_equivalence_random_circuits(self):
        rng = np.random.default_rng(1)
        for trial in range(5):
            circuit = QuantumCircuit(5, name="rand%d" % trial)
            for _ in range(12):
                kind = rng.integers(0, 3)
                a, b = rng.choice(5, size=2, replace=False)
                if kind == 0:
                    circuit.h(int(a))
                elif kind == 1:
                    circuit.cnot(int(a), int(b))
                else:
                    circuit.cp(int(a), int(b), float(rng.uniform(0, 3)))
            compiled = route(circuit)
            assert verify_equivalence(circuit, compiled) == pytest.approx(
                1.0)

    def test_measurements_follow_layout(self):
        circuit = QuantumCircuit(4).cnot(0, 3).measure(0, "m0")
        compiled = route(circuit)
        measured_qubit = compiled.circuit.measure_ops[0].qubit
        assert measured_qubit == compiled.final_layout[0]

    def test_grid_routing(self):
        circuit = QuantumCircuit(6).cnot(0, 5).h(3).cnot(2, 4)
        compiled = route(circuit, topology=GridTopology(2, 3))
        assert verify_equivalence(circuit, compiled) == pytest.approx(1.0)

    def test_macro_blocks_bypass_routing(self):
        circuit = QuantumCircuit(4)
        circuit.permutation(list(range(8)), [0, 1, 3], name="macro")
        compiled = route(circuit, allow_macros=True)
        assert compiled.swap_count == 0

    def test_macros_rejected_when_disallowed(self):
        circuit = QuantumCircuit(4)
        circuit.permutation(list(range(8)), [0, 1, 3], name="macro")
        with pytest.raises(CompilationError):
            route(circuit, allow_macros=False)

    def test_topology_too_small(self):
        with pytest.raises(CompilationError):
            route(QuantumCircuit(4).h(0), topology=LinearTopology(2))


class TestCompilePipeline:
    def test_report_structure(self):
        circuit = QuantumCircuit(4).toffoli(0, 2, 3).h(1)
        compiled, report = compile_circuit(circuit, verify=True)
        assert report["fidelity"] == pytest.approx(1.0)
        assert report["compiled"]["swaps_inserted"] == compiled.swap_count
        assert report["source_ops"] == 2

    def test_verification_catches_bad_layout(self):
        circuit = QuantumCircuit(3).h(0).cnot(0, 2)
        compiled = route(circuit)
        assert compiled.final_layout != {0: 0, 1: 1, 2: 2}
        compiled.final_layout = {0: 0, 1: 1, 2: 2}  # corrupt it
        with pytest.raises(CompilationError):
            verify_equivalence(circuit, compiled)

    def test_verify_rejects_measured_circuits(self):
        circuit = QuantumCircuit(2).h(0).measure(0)
        compiled = route(QuantumCircuit(2).h(0))
        with pytest.raises(CompilationError):
            verify_equivalence(circuit, compiled)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_routing_preserves_semantics(seed):
    """Random 4-qubit circuits stay equivalent through decompose+route."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(4)
    for _ in range(8):
        choice = rng.integers(0, 4)
        a, b = rng.choice(4, size=2, replace=False)
        if choice == 0:
            circuit.h(int(a))
        elif choice == 1:
            circuit.t(int(a))
        elif choice == 2:
            circuit.cnot(int(a), int(b))
        else:
            circuit.swap(int(a), int(b))
    compiled, report = compile_circuit(circuit, verify=True)
    assert report["fidelity"] == pytest.approx(1.0)
