"""Unit tests for the quantum application algorithms (Section II.C)."""

import fractions

import numpy as np
import pytest

from repro.core.exceptions import QuantumError
from repro.quantum.algorithms.dna import (
    edit_distance,
    encode_sequence,
    kmer_similarity,
    kmer_spectrum,
    mutate,
    quantum_similarity,
    random_dna,
    swap_test_circuit,
)
from repro.quantum.algorithms.grover import (
    grover_circuit,
    grover_iterations,
    grover_search,
)
from repro.quantum.algorithms.qft import inverse_qft_circuit, qft_circuit
from repro.quantum.algorithms.shor import (
    ShorResult,
    continued_fraction_convergents,
    find_order,
    order_finding_circuit,
    shor_factor,
)
from repro.quantum.state import StateVector


class TestQft:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        circuit = qft_circuit(n)
        dim = 2 ** n
        columns = []
        for x in range(dim):
            amplitudes = np.zeros(dim, dtype=complex)
            amplitudes[x] = 1.0
            state, _ = circuit.run(initial_state=StateVector(n, amplitudes))
            columns.append(state.amplitudes)
        actual = np.array(columns).T
        expected = np.array([[np.exp(2j * np.pi * x * y / dim)
                              for x in range(dim)]
                             for y in range(dim)]) / np.sqrt(dim)
        assert np.allclose(actual, expected, atol=1e-9)

    def test_inverse_cancels(self):
        combined = qft_circuit(4).extended(inverse_qft_circuit(4))
        probability = abs(combined.statevector().amplitudes[0]) ** 2
        assert probability == pytest.approx(1.0)

    def test_without_swaps_is_bit_reversed(self):
        n = 3
        x = 5
        amplitudes = np.zeros(8, dtype=complex)
        amplitudes[x] = 1.0
        with_swaps, _ = qft_circuit(n).run(
            initial_state=StateVector(n, amplitudes.copy()))
        without, _ = qft_circuit(n, with_swaps=False).run(
            initial_state=StateVector(n, amplitudes.copy()))
        reversed_amplitudes = np.zeros(8, dtype=complex)
        for index in range(8):
            rev = int("".join(reversed(format(index, "03b"))), 2)
            reversed_amplitudes[rev] = without.amplitudes[index]
        assert np.allclose(with_swaps.amplitudes, reversed_amplitudes)


class TestContinuedFractions:
    def test_convergents_of_known_fraction(self):
        convergents = continued_fraction_convergents(5, 8)
        assert fractions.Fraction(5, 8) in convergents

    def test_phase_recovery(self):
        # measured 192 out of 256 -> phase 3/4 -> denominator 4
        convergents = continued_fraction_convergents(192, 256)
        assert any(c.denominator == 4 for c in convergents)


class TestShor:
    def test_order_finding_7_mod_15(self):
        assert find_order(7, 15, rng=1) == 4

    def test_order_finding_2_mod_15(self):
        assert find_order(2, 15, rng=2) == 4

    def test_order_finding_rejects_non_coprime(self):
        with pytest.raises(QuantumError):
            find_order(5, 15)

    def test_order_circuit_dimensions(self):
        circuit, t, n = order_finding_circuit(7, 15)
        assert n == 4
        assert t == 8
        assert circuit.num_qubits == 12

    def test_factor_15(self):
        result = shor_factor(15, rng=0)
        assert result.succeeded
        assert sorted(result.factors) == [3, 5]

    def test_factor_21(self):
        result = shor_factor(21, rng=1)
        assert result.succeeded
        assert sorted(result.factors) == [3, 7]

    def test_even_shortcut(self):
        result = shor_factor(14, rng=0)
        assert result.method == "classical-shortcut"
        assert result.factors == (2, 7)

    def test_perfect_power_shortcut(self):
        result = shor_factor(27, rng=0)
        assert result.method == "classical-shortcut"
        assert result.factors[0] * result.factors[1] == 27

    def test_small_n_rejected(self):
        with pytest.raises(QuantumError):
            shor_factor(3)

    def test_result_repr(self):
        result = ShorResult(15, (3, 5), "quantum-order-finding", 1, [])
        assert "15" in repr(result)


class TestGrover:
    def test_iteration_count(self):
        assert grover_iterations(4, 1) == 3
        assert grover_iterations(8, 1) == 12

    def test_single_marked_state_amplified(self):
        circuit = grover_circuit(4, [11])
        probabilities = circuit.statevector().probabilities()
        assert probabilities[11] > 0.9

    def test_multiple_marked_states(self):
        circuit = grover_circuit(4, [3, 12])
        probabilities = circuit.statevector().probabilities()
        assert probabilities[3] + probabilities[12] > 0.9

    def test_search_finds_target(self):
        found, success, iterations = grover_search(
            5, lambda s: s == 19, rng=0)
        assert success and found == 19
        assert iterations == grover_iterations(5, 1)

    def test_search_no_solutions(self):
        found, success, _ = grover_search(3, lambda s: False, rng=0)
        assert found is None and not success

    def test_search_all_marked(self):
        found, success, iterations = grover_search(3, lambda s: True,
                                                   rng=0)
        assert success and iterations == 0

    def test_empty_marked_rejected(self):
        with pytest.raises(QuantumError):
            grover_circuit(3, [])

    def test_out_of_range_marked_rejected(self):
        with pytest.raises(QuantumError):
            grover_circuit(2, [9])


class TestDnaEncoding:
    def test_two_bits_per_base(self):
        value, bits = encode_sequence("ACGT")
        assert bits == 8
        assert value == 0b11_10_01_00

    def test_invalid_base_rejected(self):
        with pytest.raises(QuantumError):
            encode_sequence("ACGX")

    def test_kmer_spectrum_normalized(self):
        spectrum = kmer_spectrum("ACGTACGT", k=3)
        assert np.linalg.norm(spectrum) == pytest.approx(1.0)

    def test_kmer_spectrum_too_short(self):
        with pytest.raises(QuantumError):
            kmer_spectrum("AC", k=3)


class TestClassicalBaselines:
    def test_edit_distance_basics(self):
        assert edit_distance("ACGT", "ACGT") == 0
        assert edit_distance("ACGT", "ACGA") == 1
        assert edit_distance("", "ACG") == 3
        assert edit_distance("AC", "CA") == 2

    def test_edit_distance_symmetry(self):
        assert edit_distance("ACGTT", "AGT") == edit_distance("AGT",
                                                              "ACGTT")

    def test_kmer_similarity_range(self):
        a = random_dna(30, rng=0)
        assert kmer_similarity(a, a) == pytest.approx(1.0)
        b = random_dna(30, rng=1)
        assert 0.0 <= kmer_similarity(a, b) <= 1.0


class TestQuantumSimilarity:
    def test_identical_sequences_high(self):
        sequence = random_dna(20, rng=2)
        result = quantum_similarity(sequence, sequence, shots=4096, rng=3)
        assert result.similarity > 0.95

    def test_tracks_kmer_similarity(self):
        base = random_dna(24, rng=4)
        close = mutate(base, 2, rng=5)
        far = random_dna(24, rng=6)
        sim_close = quantum_similarity(base, close, shots=4096, rng=7)
        sim_far = quantum_similarity(base, far, shots=4096, rng=8)
        assert sim_close.similarity > sim_far.similarity
        assert sim_close.similarity == pytest.approx(
            kmer_similarity(base, close), abs=0.1)

    def test_swap_test_circuit_width(self):
        circuit = swap_test_circuit(np.ones(4) / 2.0, np.ones(4) / 2.0)
        assert circuit.num_qubits == 1 + 2 * 2

    def test_mutate_changes_expected_positions(self):
        sequence = random_dna(20, rng=9)
        mutated = mutate(sequence, 5, rng=10)
        differences = sum(a != b for a, b in zip(sequence, mutated))
        assert differences == 5

    def test_mutate_too_many_rejected(self):
        with pytest.raises(QuantumError):
            mutate("ACGT", 10)
