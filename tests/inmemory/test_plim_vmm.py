"""Tests for the PLIM computer and the analog VMM."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inmemory.memristor import MemristorError
from repro.inmemory.plim import (
    PlimComputer,
    PlimError,
    PlimProgram,
    compile_expression,
    plim_full_adder,
)
from repro.inmemory.vmm import AnalogVmm, data_movement_comparison


def evaluate(node, env):
    kind = node[0]
    if kind == "var":
        return env[node[1]]
    if kind == "const":
        return node[1]
    if kind == "not":
        return 1 - evaluate(node[1], env)
    left, right = evaluate(node[1], env), evaluate(node[2], env)
    return {"and": left & right, "or": left | right,
            "xor": left ^ right}[kind]


class TestPlimPrimitives:
    @pytest.mark.parametrize("kind,table", [
        ("and", {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
        ("or", {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
        ("xor", {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
    ])
    def test_binary_gates(self, kind, table):
        program, cell = compile_expression(
            (kind, ("var", "a"), ("var", "b")))
        program.declare_output("f", cell)
        for (a, b), expected in table.items():
            out = PlimComputer().run(program, {"a": a, "b": b})
            assert out["f"] == expected, (kind, a, b)

    def test_not_gate(self):
        program, cell = compile_expression(("not", ("var", "a")))
        program.declare_output("f", cell)
        assert PlimComputer().run(program, {"a": 0})["f"] == 1
        assert PlimComputer().run(program, {"a": 1})["f"] == 0

    def test_constants(self):
        program, cell = compile_expression(
            ("or", ("const", 0), ("const", 1)))
        program.declare_output("f", cell)
        assert PlimComputer().run(program, {})["f"] == 1

    def test_malformed_expression(self):
        with pytest.raises(PlimError):
            compile_expression(("nand", ("var", "a"), ("var", "b")))
        with pytest.raises(PlimError):
            compile_expression("a")

    def test_missing_input_rejected(self):
        program, cell = compile_expression(("var", "a"))
        program.declare_output("f", cell)
        with pytest.raises(PlimError):
            PlimComputer().run(program, {})

    def test_program_too_big_for_array(self):
        from repro.inmemory.crossbar import Crossbar

        program = plim_full_adder()
        with pytest.raises(PlimError):
            PlimComputer(Crossbar(2, 2)).run(
                program, {"a": 0, "b": 0, "cin": 0})


class TestFullAdder:
    def test_truth_table(self):
        program = plim_full_adder()
        for a, b, cin in itertools.product([0, 1], repeat=3):
            out = PlimComputer().run(program,
                                     {"a": a, "b": b, "cin": cin})
            total = a + b + cin
            assert out["sum"] == total % 2
            assert out["cout"] == total // 2

    def test_cost_accounting(self):
        program = plim_full_adder()
        counts = program.op_count()
        assert counts["rm3"] > 0
        assert len(program) == sum(counts.values())
        assert program.cells_used > 3  # inputs plus working cells


class TestCompilerProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_expressions_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        names = ["x", "y", "z"]

        def random_expr(depth):
            if depth == 0 or rng.random() < 0.3:
                if rng.random() < 0.15:
                    return ("const", int(rng.integers(0, 2)))
                return ("var", names[rng.integers(0, len(names))])
            kind = ["and", "or", "xor", "not"][rng.integers(0, 4)]
            if kind == "not":
                return ("not", random_expr(depth - 1))
            return (kind, random_expr(depth - 1), random_expr(depth - 1))

        expression = random_expr(3)
        program, cell = compile_expression(expression)
        program.declare_output("f", cell)
        for x, y, z in itertools.product([0, 1], repeat=3):
            env = {"x": x, "y": y, "z": z}
            assert PlimComputer().run(program, env)["f"] \
                == evaluate(expression, env)


class TestAnalogVmm:
    def test_ideal_multiply_is_exact(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(6, 3))
        vmm = AnalogVmm(weights)
        vector = rng.normal(size=6)
        assert vmm.relative_error(vector) < 1e-10

    def test_error_grows_with_variability(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(8, 4))
        vector = rng.normal(size=8)
        clean = AnalogVmm(weights, variability=0.0).relative_error(vector)
        rough = AnalogVmm(weights, variability=0.1,
                          rng=2).relative_error(vector)
        assert rough > clean

    def test_zero_vector(self):
        weights = np.ones((3, 2))
        vmm = AnalogVmm(weights)
        assert np.allclose(vmm.multiply(np.zeros(3)), 0.0)

    def test_validation(self):
        with pytest.raises(MemristorError):
            AnalogVmm(np.ones(3))
        with pytest.raises(MemristorError):
            AnalogVmm(np.ones((2, 2)), g_min=1e-4, g_max=1e-6)
        with pytest.raises(MemristorError):
            AnalogVmm(np.ones((2, 2))).multiply([1.0])

    def test_negative_weights_supported(self):
        weights = np.array([[1.0, -2.0], [-0.5, 0.25]])
        vmm = AnalogVmm(weights)
        vector = np.array([1.0, 2.0])
        assert np.allclose(vmm.multiply(vector), vector @ weights,
                           atol=1e-10)


class TestDataMovement:
    def test_in_memory_wins_at_scale(self):
        report = data_movement_comparison(256, 64, 1000)
        assert report["ratio"] > 10.0
        assert report["in_memory_bytes"] < report["von_neumann_bytes"]

    def test_single_multiply_near_parity(self):
        report = data_movement_comparison(16, 16, 1)
        # one multiply: the crossbar still had to be programmed once
        assert report["ratio"] < 2.0

    def test_ratio_grows_with_reuse(self):
        few = data_movement_comparison(64, 64, 10)["ratio"]
        many = data_movement_comparison(64, 64, 10_000)["ratio"]
        assert many > few
