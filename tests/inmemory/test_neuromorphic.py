"""Tests for the in-memory spiking classifier (intro's neuromorphic thread)."""

import numpy as np
import pytest

from repro.inmemory.neuromorphic import (
    LifLayer,
    NeuromorphicError,
    SpikingClassifier,
    prototype_patterns,
    rate_encode,
    train_rate_weights,
)


class TestLifLayer:
    def test_integrates_and_fires(self):
        layer = LifLayer(1, threshold=1.0, leak=1.0 - 1e-12)
        spikes = [layer.step([0.4])[0] for _ in range(3)]
        assert spikes == [0.0, 0.0, 1.0]

    def test_reset_after_spike(self):
        layer = LifLayer(1, threshold=1.0, leak=0.9)
        layer.step([1.5])
        assert layer.membrane[0] == 0.0

    def test_leak_decays_subthreshold_charge(self):
        layer = LifLayer(1, threshold=10.0, leak=0.5)
        layer.step([1.0])
        layer.step([0.0])
        assert layer.membrane[0] == pytest.approx(0.5)

    def test_negative_current_never_spikes(self):
        layer = LifLayer(1)
        for _ in range(20):
            assert layer.step([-2.0])[0] == 0.0

    def test_validation(self):
        with pytest.raises(NeuromorphicError):
            LifLayer(0)
        with pytest.raises(NeuromorphicError):
            LifLayer(2, leak=1.0)
        with pytest.raises(NeuromorphicError):
            LifLayer(2, threshold=0.0)
        with pytest.raises(NeuromorphicError):
            LifLayer(2).step([1.0])


class TestRateEncoding:
    def test_density_proportional_to_value(self):
        trains = rate_encode([1.0, 0.5, 0.0], num_steps=100)
        counts = trains.sum(axis=0)
        assert counts[0] > counts[1] > counts[2]
        assert counts[2] == 0.0

    def test_binary_output(self):
        trains = rate_encode([0.3, 0.9], num_steps=40)
        assert set(np.unique(trains)) <= {0.0, 1.0}

    def test_negative_rejected(self):
        with pytest.raises(NeuromorphicError):
            rate_encode([-1.0], 10)


class TestPrototypePatterns:
    def test_shapes_and_labels(self):
        samples, labels = prototype_patterns(30, side=4, num_classes=2,
                                             rng=0)
        assert samples.shape == (30, 16)
        assert set(np.unique(labels)) <= {0, 1}

    def test_noiseless_prototypes_distinct(self):
        samples, labels = prototype_patterns(40, side=4, noise=0.0, rng=1)
        class0 = samples[labels == 0]
        class1 = samples[labels == 1]
        assert not np.array_equal(class0[0], class1[0])
        # all noiseless members of a class are identical
        assert np.all(class0 == class0[0])

    def test_class_count_validation(self):
        with pytest.raises(NeuromorphicError):
            prototype_patterns(10, side=4, num_classes=1)
        with pytest.raises(NeuromorphicError):
            prototype_patterns(10, side=4, num_classes=5)


class TestSpikingClassifier:
    @pytest.fixture()
    def task(self):
        samples, labels = prototype_patterns(160, side=4, noise=0.08,
                                             rng=0)
        weights = train_rate_weights(samples[:120], labels[:120], 2,
                                     rng=1)
        return weights, samples[120:], labels[120:]

    def test_clean_accuracy(self, task):
        weights, test_x, test_y = task
        classifier = SpikingClassifier(weights, gain=2.0)
        assert classifier.accuracy(test_x, test_y) >= 0.95

    def test_robust_to_device_variability(self, task):
        weights, test_x, test_y = task
        classifier = SpikingClassifier(weights, variability=0.1, rng=2,
                                       gain=2.0)
        assert classifier.accuracy(test_x, test_y,
                                   noise_sigma=0.03, rng=3) >= 0.9

    def test_four_classes(self):
        samples, labels = prototype_patterns(240, side=4, num_classes=4,
                                             noise=0.05, rng=4)
        weights = train_rate_weights(samples[:180], labels[:180], 4,
                                     rng=5)
        classifier = SpikingClassifier(weights, gain=2.0)
        assert classifier.accuracy(samples[180:], labels[180:]) >= 0.9

    def test_infer_returns_counts(self, task):
        weights, test_x, _test_y = task
        classifier = SpikingClassifier(weights, gain=2.0)
        predicted, counts = classifier.infer(test_x[0])
        assert counts.shape == (2,)
        assert predicted == int(np.argmax(counts))
