"""Tests for the memristor device and crossbar array."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inmemory.crossbar import Crossbar
from repro.inmemory.memristor import HRS, LRS, Memristor, MemristorError


class TestMemristor:
    def test_starts_in_hrs(self):
        device = Memristor()
        assert device.state == HRS
        assert device.resistance == device.r_off

    def test_set_and_reset(self):
        device = Memristor(v_set=1.0, v_reset=1.0)
        device.apply_voltage(1.5)
        assert device.state == LRS
        assert device.resistance == device.r_on
        device.apply_voltage(-1.5)
        assert device.state == HRS

    def test_subthreshold_is_nondestructive(self):
        device = Memristor()
        device.write_bit(1)
        for voltage in (0.5, -0.5, 0.0):
            device.apply_voltage(voltage)
            assert device.state == LRS

    def test_write_read_roundtrip(self):
        device = Memristor()
        for bit in (1, 0, 1, 1, 0):
            device.write_bit(bit)
            assert device.read_bit() == bit

    def test_validation(self):
        with pytest.raises(MemristorError):
            Memristor(r_on=1e6, r_off=1e3)
        with pytest.raises(MemristorError):
            Memristor(v_set=-1.0)
        with pytest.raises(MemristorError):
            Memristor(state=7)

    def test_analog_programming_window(self):
        device = Memristor(r_on=1e4, r_off=1e6)
        conductance = device.program_conductance(5e-5)
        assert 1e-6 <= conductance <= 1e-4
        assert device.conductance == pytest.approx(conductance)

    def test_analog_clipping(self):
        device = Memristor(r_on=1e4, r_off=1e6)
        assert device.program_conductance(1.0) == pytest.approx(1e-4)
        assert device.program_conductance(0.0) == pytest.approx(1e-6)

    def test_variability_stays_in_window(self):
        device = Memristor(r_on=1e4, r_off=1e6)
        for seed in range(20):
            conductance = device.program_conductance(
                5e-5, variability=0.3, rng=seed)
            assert 1e-6 <= conductance <= 1e-4

    def test_digital_write_clears_analog(self):
        device = Memristor()
        device.program_conductance(5e-5)
        device.write_bit(1)
        assert device.resistance == device.r_on


class TestCrossbar:
    def test_storage_roundtrip(self):
        array = Crossbar(3, 4)
        array.write_row(1, [1, 0, 1, 1])
        assert array.read_row(1) == [1, 0, 1, 1]
        assert array.read_row(0) == [0, 0, 0, 0]

    def test_bounds_checked(self):
        array = Crossbar(2, 2)
        with pytest.raises(MemristorError):
            array.read_bit(2, 0)
        with pytest.raises(MemristorError):
            array.write_row(0, [1])

    def test_conditional_set_majority(self):
        array = Crossbar(1, 4)
        array.write_row(0, [1, 1, 0, 0])
        # target (0,3) starts 0; operands read 1, 1 -> majority(1,1,0)=1
        result = array.conditional_set((0, 3), [(0, 0), (0, 1)])
        assert result == 1
        assert array.read_bit(0, 3) == 1

    def test_conditional_set_needs_odd_votes(self):
        array = Crossbar(1, 4)
        with pytest.raises(MemristorError):
            array.conditional_set((0, 3), [(0, 0)])

    def test_analog_read_is_v_dot_g(self):
        array = Crossbar(2, 2)
        g = array.conductance_matrix()
        currents = array.analog_read([0.3, -0.1])
        expected = np.array([0.3, -0.1]) @ g
        assert np.allclose(currents, expected)

    def test_analog_read_shape_checked(self):
        with pytest.raises(MemristorError):
            Crossbar(2, 2).analog_read([1.0])

    def test_read_noise_perturbs(self):
        array = Crossbar(4, 4)
        for row in range(4):
            array.write_row(row, [1, 1, 1, 1])
        clean = array.analog_read([0.2] * 4)
        noisy = array.analog_read([0.2] * 4, noise_sigma=0.1, rng=0)
        assert not np.allclose(clean, noisy)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=6,
                max_size=6))
def test_property_storage_is_faithful(bits):
    """Any bit pattern survives a write/read cycle."""
    array = Crossbar(2, 3)
    array.write_row(0, bits[:3])
    array.write_row(1, bits[3:])
    assert array.read_row(0) + array.read_row(1) == bits
