"""Golden-claims tier: the paper's headline numbers as fast regressions.

``EXPERIMENTS.md`` records what the full benchmark suite measures for
every figure and in-text claim of *Rebooting Our Computing Models*.
This package pins the headline subset of those numbers -- the ones a
refactor is most likely to silently move -- as plain pytest tests with
explicit tolerances, cheap enough to run on every change
(``make test-goldens``, well under a minute):

* FIG4 -- the XOR readout measure is minimal at dVgs = 0 and rises
  monotonically,
* FIG5 -- the fitted l_k exponent family is strictly monotone in
  coupling strength (k = 1.00 -> 1.87 -> 2.30),
* POWER -- the oscillator corner block beats 32 nm CMOS by ~3.17x
  (0.936 mW vs 2.971 mW),
* DMM-SAT -- the DMM's fitted work exponent (1.06) stays below
  WalkSAT's (1.68) on the same planted instances.

Every expected value below was produced by the corresponding benchmark
(``benchmarks/bench_*.py``) at the recorded config; the tolerances say
how far a measured value may drift before the claim itself is in
doubt.  The physics and the seeded solvers are deterministic, so drift
means a code change -- these are regression tripwires, not statistical
tests.
"""

#: FIG4 (bench_fig4_readout): measure = 1 - Avg(XOR) per dVgs, at the
#: reduced cycles=60 config this tier runs (the cycles=120 benchmark
#: values are 0.002 / 0.090 / 0.191 / 0.286 / 0.395 -- same shape).
FIG4_CYCLES = 60
FIG4_DELTAS = (0.0, 0.02, 0.04, 0.06, 0.08)
FIG4_MEASURES = (0.003, 0.088, 0.192, 0.285, 0.384)
FIG4_ABS_TOL = 0.02
#: The minimum-at-zero claim: measure(0) must stay below this.
FIG4_ZERO_CEILING = 0.05

#: FIG5 (bench_fig5_norms): fitted k per coupling resistance, weak to
#: strong coupling.  EXPERIMENTS.md: "k = 1.00 -> 1.87 -> 2.30".
FIG5_CYCLES = 140
FIG5_SWEEP_R_C = (60e3, 22e3, 15e3)
FIG5_EXPONENTS = (1.00, 1.87, 2.30)
FIG5_ABS_TOL = 0.15
#: Qualitative band edges from the paper (sub- vs super-parabolic).
FIG5_WEAK_BELOW = 1.6
FIG5_STRONG_ABOVE = 2.0

#: POWER (bench_power_comparison): block watts and the headline ratio.
#: EXPERIMENTS.md: "0.936 mW vs 2.971 mW, ratio 3.17x".
POWER_OSCILLATOR_W = 0.936e-3
POWER_CMOS_W = 2.971e-3
POWER_RATIO = 3.17
POWER_REL_TOL = 0.05
#: The claim band the benchmark itself enforces for the ratio.
POWER_RATIO_BAND = (2.0, 4.5)

#: DMM-SAT (bench_dmm_sat): fitted work exponents on planted 3-SAT at
#: clause ratio 4.2.  EXPERIMENTS.md: "DMM work exponent 1.06 vs
#: WalkSAT 1.68 (median steps 50->550 vs flips 67->2458)".
DMM_SAT_SIZES = (50, 100, 200, 400)
DMM_SAT_CLAUSE_RATIO = 4.2
DMM_SAT_SEEDS = (0, 1, 2)
DMM_SAT_MAX_WORK = 2_000_000
DMM_SAT_DMM_EXPONENT = 1.06
DMM_SAT_WALKSAT_EXPONENT = 1.68
DMM_SAT_ABS_TOL = 0.15
DMM_SAT_MEDIAN_STEPS = {50: 50.0, 400: 550.0}
DMM_SAT_MEDIAN_FLIPS = {50: 67.0, 400: 2458.0}
DMM_SAT_MEDIAN_REL_TOL = 0.10
