"""The golden-claims suite: headline paper numbers as regressions.

See :mod:`tests.goldens` for the provenance of every expected value and
the meaning of each tolerance.  Each test states its claim twice: the
*shape* assertion is the paper's qualitative claim (what EXPERIMENTS.md
calls the reproduction target) and must never be loosened; the *pin*
assertion holds the measured number inside its recorded tolerance so an
accidental physics or solver change is caught even while the shape
still holds.
"""

import numpy as np
import pytest

from tests import goldens


class TestFig4Readout:
    """FIG4: XOR readout measure -- minimum at zero, monotone rise."""

    @pytest.fixture(scope="class")
    def measures(self):
        from repro.oscillators.locking import simulate_calibrated_pair
        from repro.oscillators.readout import XorReadout

        readout = XorReadout()
        values = []
        for delta in goldens.FIG4_DELTAS:
            times, v_1, v_2 = simulate_calibrated_pair(
                1.8, 1.8 + delta, r_c=35e3, cycles=goldens.FIG4_CYCLES)
            values.append(readout.measure(times, v_1, v_2))
        return values

    def test_minimum_at_zero(self, measures):
        assert measures[0] < goldens.FIG4_ZERO_CEILING

    def test_monotone_rise(self, measures):
        assert all(later > earlier for earlier, later
                   in zip(measures, measures[1:]))

    def test_pinned_values(self, measures):
        for measured, expected in zip(measures, goldens.FIG4_MEASURES):
            assert measured == pytest.approx(
                expected, abs=goldens.FIG4_ABS_TOL)


class TestFig5NormFamily:
    """FIG5: the l_k exponent family is monotone in coupling strength."""

    @pytest.fixture(scope="class")
    def exponents(self):
        from repro.oscillators.norms import effective_norm_exponent

        return [effective_norm_exponent(r_c, cycles=goldens.FIG5_CYCLES)[0]
                for r_c in goldens.FIG5_SWEEP_R_C]

    def test_monotone_in_coupling_strength(self, exponents):
        assert exponents[0] < exponents[1] < exponents[2]

    def test_band_edges(self, exponents):
        assert exponents[0] < goldens.FIG5_WEAK_BELOW
        assert exponents[-1] > goldens.FIG5_STRONG_ABOVE

    def test_pinned_values(self, exponents):
        for measured, expected in zip(exponents, goldens.FIG5_EXPONENTS):
            assert measured == pytest.approx(
                expected, abs=goldens.FIG5_ABS_TOL)


class TestPowerComparison:
    """POWER: oscillator corner block vs 32 nm CMOS, ratio ~3.17x."""

    @pytest.fixture(scope="class")
    def result(self):
        from repro.oscillators.power import power_comparison

        return power_comparison()

    def test_oscillator_wins_inside_the_band(self, result):
        assert result["oscillator_w"] < result["cmos_w"]
        low, high = goldens.POWER_RATIO_BAND
        assert low < result["ratio"] < high

    def test_pinned_values(self, result):
        assert result["oscillator_w"] == pytest.approx(
            goldens.POWER_OSCILLATOR_W, rel=goldens.POWER_REL_TOL)
        assert result["cmos_w"] == pytest.approx(
            goldens.POWER_CMOS_W, rel=goldens.POWER_REL_TOL)
        assert result["ratio"] == pytest.approx(
            goldens.POWER_RATIO, rel=goldens.POWER_REL_TOL)


class TestDmmSatScaling:
    """DMM-SAT: the DMM work exponent stays below WalkSAT's."""

    @pytest.fixture(scope="class")
    def medians(self):
        from repro.core.sat_instances import planted_ksat
        from repro.memcomputing.baselines import WalkSatSolver
        from repro.memcomputing.solver import DmmSolver

        steps, flips = {}, {}
        for n in goldens.DMM_SAT_SIZES:
            per_seed_steps, per_seed_flips = [], []
            for seed in goldens.DMM_SAT_SEEDS:
                formula = planted_ksat(
                    n, int(goldens.DMM_SAT_CLAUSE_RATIO * n),
                    rng=1000 * n + seed)
                dmm = DmmSolver(
                    max_steps=goldens.DMM_SAT_MAX_WORK).solve(
                    formula, rng=seed)
                assert dmm.satisfied
                per_seed_steps.append(dmm.steps)
                walksat = WalkSatSolver(
                    max_flips=goldens.DMM_SAT_MAX_WORK,
                    max_tries=3).solve(formula, rng=seed)
                assert walksat.satisfied
                per_seed_flips.append(walksat.flips)
            steps[n] = float(np.median(per_seed_steps))
            flips[n] = float(np.median(per_seed_flips))
        return steps, flips

    @staticmethod
    def _fit_exponent(work_by_size):
        sizes = sorted(work_by_size)
        slope, _ = np.polyfit(np.log(np.asarray(sizes, dtype=float)),
                              np.log([work_by_size[n] for n in sizes]), 1)
        return float(slope)

    def test_exponent_ordering(self, medians):
        steps, flips = medians
        assert self._fit_exponent(steps) < self._fit_exponent(flips)

    def test_pinned_exponents(self, medians):
        steps, flips = medians
        assert self._fit_exponent(steps) == pytest.approx(
            goldens.DMM_SAT_DMM_EXPONENT, abs=goldens.DMM_SAT_ABS_TOL)
        assert self._fit_exponent(flips) == pytest.approx(
            goldens.DMM_SAT_WALKSAT_EXPONENT, abs=goldens.DMM_SAT_ABS_TOL)

    def test_pinned_endpoint_medians(self, medians):
        steps, flips = medians
        for size, expected in goldens.DMM_SAT_MEDIAN_STEPS.items():
            assert steps[size] == pytest.approx(
                expected, rel=goldens.DMM_SAT_MEDIAN_REL_TOL)
        for size, expected in goldens.DMM_SAT_MEDIAN_FLIPS.items():
            assert flips[size] == pytest.approx(
                expected, rel=goldens.DMM_SAT_MEDIAN_REL_TOL)
