"""Command-line interface: ``python -m repro <command>``.

Small utilities a downstream user reaches for first:

* ``info``       -- library overview and version.
* ``solve``      -- solve a DIMACS CNF file (DMM, WalkSAT, or DPLL).
* ``factor``     -- factor a composite (Shor or memcomputing).
* ``distance``   -- oscillator distance-primitive evaluations.
* ``profile``    -- run one of the above under the performance
  profiler: self/cumulative attribution table plus a Chrome trace
  (open in Perfetto; see ``docs/observability.md``).
* ``serve``      -- long-running asyncio HTTP job service over the
  kernels: priority admission, request coalescing, and the result
  cache as a multi-tenant store (see ``docs/serving.md``).
* ``slo``        -- evaluate a declarative SLO spec against a saved
  metrics snapshot; ``slo check`` exits nonzero on breach, so it slots
  straight into CI (see ``docs/observability.md``).
* ``reproduce``  -- how to regenerate every paper figure/claim.

``solve``, ``factor``, and ``distance`` accept the shared observability
flags -- ``--trace out.jsonl`` streams telemetry spans/events to a JSONL
file, ``--metrics`` prints the metrics summary table after the run (see
``docs/observability.md``) -- the shared ``--workers N`` flag, which
fans the command's hot loop out over the parallel execution engine
(DMM restart portfolio, Shor order-finding attempts, distance pair
scoring; see ``docs/parallelism.md``), the shared resilience flags
``--retries N`` / ``--timeout S`` / ``--checkpoint PATH`` / ``--resume
PATH`` (per-chunk retry budget, wall-clock budget, and JSON
checkpoint/resume; see ``docs/resilience.md``), and the shared caching
flags ``--cache-dir PATH`` / ``--no-cache`` (content-addressed result
reuse across runs; see ``docs/caching.md``).
"""

import argparse
import contextlib
import sys


def _add_observability_flags(subparser):
    subparser.add_argument("--trace", metavar="PATH", default=None,
                           help="write telemetry spans/events to a JSONL "
                                "trace file")
    subparser.add_argument("--metrics", action="store_true",
                           help="print the metrics summary table after "
                                "the run")


def _workers_flag(text):
    """Parse ``--workers``: a positive integer or the string ``auto``."""
    if text.strip().lower() == "auto":
        return "auto"
    return int(text)


def _add_parallel_flags(subparser):
    subparser.add_argument("--workers", type=_workers_flag, default=None,
                           metavar="N",
                           help="worker processes for the command's "
                                "fan-out path: a count, or 'auto' to "
                                "size the pool from the machine's cores "
                                "(default: REPRO_WORKERS env or 1 == "
                                "serial; see docs/parallelism.md)")
    subparser.add_argument("--backend", default=None,
                           choices=("serial", "pool", "remote"),
                           help="where chunks execute: inline, the "
                                "persistent local worker pool, or "
                                "remote 'repro worker-host' agents "
                                "(default: REPRO_BACKEND env or the "
                                "automatic serial/pool choice; see "
                                "docs/backends.md)")
    subparser.add_argument("--hosts", default=None, metavar="HOSTS",
                           help="comma-separated worker hosts for "
                                "--backend remote: host:port or "
                                "host:port:capacity (default: "
                                "REPRO_HOSTS env)")


@contextlib.contextmanager
def _backend_scope(args):
    """Install the --backend/--hosts choice as the ambient backend.

    Kernel call sites construct their own ``ParallelMap``s; the ambient
    scope (:func:`repro.core.backends.use_backend`) is how one CLI flag
    reaches all of them without threading a parameter through every
    kernel signature.
    """
    backend = getattr(args, "backend", None)
    hosts = getattr(args, "hosts", None)
    if backend is None and hosts is None:
        yield
        return
    from .core import backends
    with backends.use_backend(backend, hosts):
        yield


def _add_resilience_flags(subparser):
    subparser.add_argument("--retries", type=int, default=None,
                           metavar="N",
                           help="attempts per failed parallel chunk "
                                "(1 == no retry; see docs/resilience.md)")
    subparser.add_argument("--timeout", type=float, default=None,
                           metavar="S",
                           help="per-chunk wall-clock budget in seconds "
                                "(enforced when worker processes are in "
                                "use)")
    subparser.add_argument("--checkpoint", metavar="PATH", default=None,
                           help="JSON checkpoint updated as chunks "
                                "finish; an existing file is resumed "
                                "(finished chunks are skipped)")
    subparser.add_argument("--resume", metavar="PATH", default=None,
                           help="resume from this checkpoint file (must "
                                "exist; implies --checkpoint PATH)")


def _add_cache_flags(subparser):
    subparser.add_argument("--cache-dir", metavar="PATH", default=None,
                           help="content-addressed result cache "
                                "directory; repeated workloads replay "
                                "stored results bit-identically (see "
                                "docs/caching.md)")
    subparser.add_argument("--no-cache", action="store_true",
                           help="disable result caching for this run "
                                "(overrides --cache-dir and the "
                                "REPRO_CACHE_DIR environment variable)")


def _cache_arg(args):
    """The caching flags as the kernels' ``cache=`` argument.

    ``--no-cache`` wins (``False`` disables caching outright, including
    the ``REPRO_CACHE_DIR`` environment default); ``--cache-dir``
    selects a directory; otherwise ``None`` defers to the environment.
    """
    if getattr(args, "no_cache", False):
        return False
    return getattr(args, "cache_dir", None)


def _wants_cache(args):
    """True when --cache-dir was given explicitly."""
    return getattr(args, "cache_dir", None) is not None


def _resilience_kwargs(args):
    """The resilience flags as call-site keyword arguments."""
    return {"retry": getattr(args, "retries", None),
            "timeout": getattr(args, "timeout", None),
            "checkpoint": getattr(args, "checkpoint", None),
            "resume_from": getattr(args, "resume", None)}


def _wants_resilience(args):
    """True when any resilience flag was given."""
    return any(value is not None
               for value in _resilience_kwargs(args).values())


@contextlib.contextmanager
def _telemetry_scope(args, out):
    """Enable telemetry for one command when --trace/--metrics ask for it.

    Installs a fresh registry (with a JSONL sink when tracing), restores
    the previous registry afterwards, and renders the summary table when
    requested.
    """
    from .core import telemetry
    from .core.tracing import JsonlSink

    if not (getattr(args, "trace", None) or getattr(args, "metrics", False)):
        yield None
        return
    registry = telemetry.MetricsRegistry()
    sink = None
    if args.trace:
        # fail fast on an unwritable path, and truncate: each CLI run
        # produces its own trace (the sink itself appends, for library
        # users who share one file across runs).
        try:
            open(args.trace, "w").close()
        except OSError as error:
            raise SystemExit("repro: cannot write trace file %r: %s"
                             % (args.trace, error))
        sink = registry.add_sink(JsonlSink(args.trace))
    try:
        with telemetry.use_registry(registry):
            yield registry
    finally:
        if sink is not None:
            sink.close()
            out.write("trace: %d events -> %s\n"
                      % (sink.events_written, sink.path))
        if args.metrics:
            out.write("\n" + telemetry.render_summary(registry.snapshot())
                      + "\n")


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Rebooting Our Computing Models' "
                    "(DATE 2019): quantum accelerator, VO2 oscillators, "
                    "digital memcomputing.")
    commands = parser.add_subparsers(dest="command")

    commands.add_parser("info", help="library overview")

    solve = commands.add_parser("solve",
                                help="solve a DIMACS CNF file")
    solve.add_argument("path", help="DIMACS .cnf file")
    solve.add_argument("--solver", choices=("dmm", "walksat", "dpll"),
                       default="dmm")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--max-steps", type=int, default=500_000,
                       help="DMM integration / WalkSAT flip budget")
    _add_observability_flags(solve)
    _add_parallel_flags(solve)
    _add_resilience_flags(solve)
    _add_cache_flags(solve)

    factor = commands.add_parser("factor",
                                 help="factor a composite integer")
    factor.add_argument("n", type=int)
    factor.add_argument("--method", choices=("shor", "memcomputing"),
                        default="shor")
    factor.add_argument("--seed", type=int, default=0)
    _add_observability_flags(factor)
    _add_parallel_flags(factor)
    _add_resilience_flags(factor)
    _add_cache_flags(factor)

    distance = commands.add_parser(
        "distance",
        help="evaluate the oscillator distance primitive on intensity "
             "pairs")
    distance.add_argument("values", type=float, nargs="+", metavar="V",
                          help="an even number of intensities, read as "
                               "(a, b) pairs")
    distance.add_argument("--mode", choices=("behavioral", "physical"),
                          default="behavioral",
                          help="closed-form calibrated response or full "
                               "coupled-pair ODE simulation")
    _add_observability_flags(distance)
    _add_parallel_flags(distance)
    _add_resilience_flags(distance)
    _add_cache_flags(distance)

    profile = commands.add_parser(
        "profile",
        help="run a repro command under the performance profiler",
        description="Wrap another repro command (solve, factor, "
                    "distance) in the performance-attribution profiler: "
                    "prints the self-time vs. cumulative-time table and "
                    "writes a Chrome trace loadable in Perfetto "
                    "(https://ui.perfetto.dev) or chrome://tracing.")
    profile.add_argument("--out", metavar="PATH",
                         default="repro-profile-trace.json",
                         help="Chrome trace output file (default: "
                              "%(default)s)")
    profile.add_argument("--sort", choices=("self", "cum"),
                         default="self",
                         help="attribution table order: 'self' ranks "
                              "hot spots flat by self time, 'cum' keeps "
                              "tree order (default: %(default)s)")
    profile.add_argument("--top", type=int, default=30, metavar="N",
                         help="rows in the attribution table (default: "
                              "%(default)s)")
    profile.add_argument("rest", nargs=argparse.REMAINDER,
                         metavar="COMMAND ...",
                         help="the repro command to profile, with its "
                              "own arguments (e.g. 'factor 15 --seed 1')")

    serve = commands.add_parser(
        "serve",
        help="run the asyncio job service over the paradigm kernels",
        description="Serve solve/factor/distance/detect jobs over HTTP "
                    "on the shared persistent worker pool, with "
                    "priority admission control, request coalescing, "
                    "and the content-addressed result cache as the "
                    "multi-tenant result store (see docs/serving.md).")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port; 0 picks a free one (default: "
                            "%(default)s)")
    serve.add_argument("--queue-depth", type=int, default=64, metavar="N",
                       help="queued jobs beyond this are rejected with "
                            "429 (default: %(default)s)")
    serve.add_argument("--tenant-quota", type=int, default=16,
                       metavar="N",
                       help="max jobs one tenant may hold queued or "
                            "running; 0 disables quotas (default: "
                            "%(default)s)")
    serve.add_argument("--retries", type=int, default=2, metavar="N",
                       help="attempts per failed kernel chunk -- the "
                            "default 2 retries a crashed worker once "
                            "(default: %(default)s)")
    serve.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-chunk wall-clock budget for every job "
                            "(enforced through the pool even at "
                            "--workers 1)")
    serve.add_argument("--batch-pairs", type=int, default=4096,
                       metavar="N",
                       help="pair budget when merging compatible queued "
                            "distance jobs into one vectorized call "
                            "(default: %(default)s)")
    serve.add_argument("--job-concurrency", type=int, default=2,
                       metavar="N",
                       help="jobs dispatched concurrently (default: "
                            "%(default)s)")
    serve.add_argument("--slo", metavar="PATH", default=None,
                       help="SLO spec (TOML or JSON) served at /v1/slo "
                            "as a burn-rate report (see "
                            "docs/observability.md)")
    serve.add_argument("--flight-dir", metavar="PATH", default=None,
                       help="directory for flight-recorder dumps: the "
                            "last --flight-events telemetry events are "
                            "written as JSONL when a job fails or a "
                            "worker is killed")
    serve.add_argument("--flight-events", type=int, default=256,
                       metavar="N",
                       help="flight-recorder ring size (default: "
                            "%(default)s)")
    _add_observability_flags(serve)
    _add_parallel_flags(serve)
    _add_cache_flags(serve)

    worker_host = commands.add_parser(
        "worker-host",
        help="run a worker-host agent executing remote chunks",
        description="Run a worker-host agent: listens on TCP for "
                    "chunk payloads from --backend remote clients, "
                    "executes them through the same run_task path as a "
                    "local pool worker, and ships results (and merged "
                    "telemetry) back.  Point clients at it with "
                    "--hosts host:port[:capacity].  See "
                    "docs/backends.md.")
    worker_host.add_argument("--host", default="127.0.0.1",
                             help="bind address (default: %(default)s)")
    worker_host.add_argument("--port", type=int, default=0,
                             help="bind port (default: 0 == pick a "
                                  "free port and print it)")
    worker_host.add_argument("--capacity", type=int, default=None,
                             metavar="N",
                             help="concurrent chunk budget advertised "
                                  "to clients (default: CPU count)")
    worker_host.add_argument("--name", default=None,
                             help="stable identity reported to clients "
                                  "(default: host:port)")

    slo = commands.add_parser(
        "slo",
        help="evaluate an SLO spec against a saved metrics snapshot",
        description="Evaluate a declarative SLO spec (TOML or JSON) "
                    "against a metrics snapshot saved from "
                    "GET /v1/metrics or a benchmark results file with a "
                    "'telemetry' key.  'check' prints the burn-rate "
                    "report and exits 1 when any objective is breached "
                    "-- a CI gate in one command.")
    slo.add_argument("action", choices=("check",),
                     help="'check': exit 0 when every objective holds, "
                          "1 on breach, 2 on usage errors")
    slo.add_argument("snapshot", metavar="SNAPSHOT",
                     help="metrics snapshot JSON (a /v1/metrics body, "
                          "or any JSON object with a 'telemetry' key "
                          "holding one)")
    slo.add_argument("--spec", metavar="PATH", required=True,
                     help="SLO spec file (.toml or .json)")

    commands.add_parser("reproduce",
                        help="how to regenerate the paper's results")
    return parser


def _run_info(_args, out):
    import repro

    out.write("repro %s -- reproduction of 'Rebooting Our Computing "
              "Models' (DATE 2019)\n\n" % repro.__version__)
    out.write("packages:\n")
    out.write("  repro.quantum       Section II  (accelerator stack, "
              "Shor, DNA, adiabatic)\n")
    out.write("  repro.oscillators   Section III (VO2 cells, locking, "
              "FAST, power models)\n")
    out.write("  repro.memcomputing  Section IV  (SOLGs, DMM SAT/MaxSAT/"
              "ILP, RBM, spin glass)\n")
    out.write("  repro.core          shared substrate (integrators, CNF, "
              "signals)\n")
    return 0


def _run_solve(args, out):
    from .core.io import load_dimacs

    formula = load_dimacs(args.path)
    out.write("instance: %d variables, %d clauses\n"
              % (formula.num_variables, formula.num_clauses))
    from .core.parallel import DEFAULT_CHUNKS, resolve_workers, wants_fanout

    workers = resolve_workers(getattr(args, "workers", None))
    if args.solver == "dmm":
        from .memcomputing.solver import DmmSolver, solve_portfolio

        if wants_fanout(workers) or _wants_resilience(args) \
                or _wants_cache(args):
            # The attempt count shapes the portfolio workload (and so
            # its result): it must come from the request, never from the
            # machine, so "auto" pins the engine's default fan-out width
            # rather than the local core count.
            attempts = DEFAULT_CHUNKS if isinstance(workers, str) \
                else max(workers, 2)
            portfolio = solve_portfolio(formula,
                                        attempts=attempts,
                                        workers=workers,
                                        max_steps=args.max_steps,
                                        rng=args.seed,
                                        cache=_cache_arg(args),
                                        **_resilience_kwargs(args))
            result = portfolio.best
            if result is None:
                out.write("s UNKNOWN (every portfolio member failed)\n")
                return 1
            satisfied = result.satisfied
            work = "%d steps, best of %d restarts" % (result.steps,
                                                      portfolio.attempts)
        else:
            result = DmmSolver(max_steps=args.max_steps).solve(
                formula, rng=args.seed)
            satisfied, work = result.satisfied, "%d steps" % result.steps
        assignment = result.assignment
    elif args.solver == "walksat":
        from .memcomputing.baselines import WalkSatSolver

        result = WalkSatSolver(max_flips=args.max_steps).solve(
            formula, rng=args.seed)
        satisfied, work = result.satisfied, "%d flips" % result.flips
        assignment = result.assignment
    else:
        from .memcomputing.baselines import DpllSolver

        result = DpllSolver().solve(formula)
        satisfied = bool(result.satisfiable)
        work = "%d nodes" % result.nodes
        assignment = result.assignment
    if satisfied:
        literals = " ".join(str(v if assignment[v] else -v)
                            for v in sorted(assignment))
        out.write("s SATISFIABLE (%s)\nv %s 0\n" % (work, literals))
        return 0
    out.write("s %s (%s)\n"
              % ("UNSATISFIABLE" if args.solver == "dpll"
                 and result.satisfiable is False else "UNKNOWN", work))
    return 1


def _run_factor(args, out):
    if args.n < 4:
        out.write("error: need a composite >= 4\n")
        return 2
    if args.method == "shor":
        from .quantum.algorithms.shor import shor_factor

        # find_order's checkpoint is a rolling file pinned to the base
        # and RNG state, so --resume is just the same path.
        checkpoint = getattr(args, "checkpoint", None) \
            or getattr(args, "resume", None)
        result = shor_factor(args.n, rng=args.seed,
                             workers=getattr(args, "workers", None),
                             timeout=getattr(args, "timeout", None),
                             retry=getattr(args, "retries", None),
                             checkpoint=checkpoint,
                             cache=_cache_arg(args))
        if not result.succeeded:
            out.write("no factors found (try another seed)\n")
            return 1
        factors = result.factors
        out.write("%d = %d * %d   (%s)\n"
                  % (args.n, factors[0], factors[1], result.method))
        return 0
    from .core.exceptions import SolgError
    from .memcomputing.circuit import factor_with_memcomputing

    try:
        factor_a, factor_b = factor_with_memcomputing(args.n,
                                                      rng=args.seed)
    except SolgError as error:
        out.write("memcomputing found no steady state: %s\n" % error)
        return 1
    out.write("%d = %d * %d   (inverted SOLG multiplier)\n"
              % (args.n, factor_a, factor_b))
    return 0


def _run_distance(args, out):
    from .core import telemetry
    from .oscillators.distance import OscillatorDistanceUnit

    if len(args.values) % 2 != 0:
        out.write("error: distance needs an even number of intensities "
                  "(read as (a, b) pairs)\n")
        return 2
    pairs = [(args.values[i], args.values[i + 1])
             for i in range(0, len(args.values), 2)]
    unit = OscillatorDistanceUnit(mode=args.mode)
    if len(pairs) == 1:
        (a, b), = pairs
        with telemetry.span("oscillator.distance.evaluate", mode=args.mode,
                            a=a, b=b) as eval_span:
            measure = unit.measure(a, b)
            eval_span.set_attr("measure", measure)
        out.write("distance(%g, %g) = %.6f   (mode=%s, |delta|=%g)\n"
                  % (a, b, measure, args.mode, abs(a - b)))
        return 0
    with telemetry.span("oscillator.distance.evaluate", mode=args.mode,
                        pairs=len(pairs)) as eval_span:
        measures = unit.measure_pairs(
            pairs, workers=getattr(args, "workers", None),
            cache=_cache_arg(args), **_resilience_kwargs(args))
        eval_span.set_attr("pairs", len(pairs))
    for (a, b), measure in zip(pairs, measures):
        out.write("distance(%g, %g) = %.6f   (mode=%s, |delta|=%g)\n"
                  % (a, b, measure, args.mode, abs(a - b)))
    out.write("%d pairs scored\n" % len(pairs))
    return 0


#: Commands `repro profile` may wrap: the ones with real kernels behind
#: them (profiling `info` or `reproduce` would trace nothing).
_PROFILABLE = ("solve", "factor", "distance")


def _run_profile(args, out):
    """Run a wrapped command under the profiler; emit table + trace."""
    from .core import profiling, telemetry
    from .core.tracing import JsonlSink, write_chrome_trace

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest or rest[0] not in _PROFILABLE:
        out.write("error: profile needs a command to wrap: "
                  "repro profile [--out PATH] {%s} ...\n"
                  % ",".join(_PROFILABLE))
        return 2
    if args.top is not None and args.top < 1:
        out.write("error: --top must be >= 1\n")
        return 2
    inner = _build_parser().parse_args(rest)
    # fail fast on an unwritable trace path, before any compute
    try:
        open(args.out, "w").close()
    except OSError as error:
        raise SystemExit("repro: cannot write trace file %r: %s"
                         % (args.out, error))
    registry = telemetry.MetricsRegistry()
    sink = registry.add_sink(profiling.ProfileSink())
    jsonl = None
    if getattr(inner, "trace", None):
        try:
            open(inner.trace, "w").close()
        except OSError as error:
            raise SystemExit("repro: cannot write trace file %r: %s"
                             % (inner.trace, error))
        jsonl = registry.add_sink(JsonlSink(inner.trace))
    handlers = {"solve": _run_solve, "factor": _run_factor,
                "distance": _run_distance}
    try:
        with telemetry.use_registry(registry):
            code = handlers[inner.command](inner, out)
    finally:
        if jsonl is not None:
            jsonl.close()
    events = write_chrome_trace(sink.events, args.out)
    profile = sink.profile()
    out.write("\n" + profile.render(sort=args.sort, limit=args.top,
                                    title="performance profile: %s"
                                    % " ".join(rest)) + "\n")
    out.write("\nchrome trace: %d events -> %s "
              "(open at https://ui.perfetto.dev or chrome://tracing)\n"
              % (events, args.out))
    if jsonl is not None:
        out.write("trace: %d events -> %s\n"
                  % (jsonl.events_written, jsonl.path))
    if getattr(inner, "metrics", False):
        out.write("\n" + telemetry.render_summary(registry.snapshot())
                  + "\n")
    return code


def _run_serve(args, out):
    import asyncio

    from .serve import JobService, ServeApp, ServeConfig

    from .core.exceptions import SloError

    try:
        config = ServeConfig(
            workers=args.workers, timeout=args.timeout,
            retries=args.retries, cache=_cache_arg(args),
            queue_depth=args.queue_depth,
            tenant_quota=args.tenant_quota if args.tenant_quota > 0
            else None,
            batch_pairs=args.batch_pairs,
            job_concurrency=args.job_concurrency,
            slo=args.slo, flight_dir=args.flight_dir,
            flight_events=args.flight_events,
            backend=args.backend, hosts=args.hosts)
    except SloError as error:
        out.write("error: %s\n" % error)
        return 2

    async def _serve():
        app = ServeApp(JobService(config), host=args.host, port=args.port)
        await app.start()
        out.write("repro serve listening on http://%s:%d\n"
                  % (args.host, app.port))
        out.write("POST /v1/jobs; GET /v1/jobs/<id>, /v1/healthz, "
                  "/v1/metrics, /v1/slo, /v1/stats; Ctrl-C stops\n")
        try:
            await app.serve_forever()
        finally:
            await app.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        out.write("repro serve stopped\n")
    return 0


def _run_worker_host(args, out):
    from .core.backends import hostagent

    try:
        agent = hostagent.WorkerHostAgent(
            host=args.host, port=args.port, capacity=args.capacity,
            name=args.name)
        host, port = agent.start()
    except OSError as error:
        out.write("error: cannot bind %s:%d: %s\n"
                  % (args.host, args.port, error))
        return 2
    out.write("repro worker-host listening on %s:%d (capacity %d)\n"
              % (host, port, agent.capacity))
    out.write("point clients at it with --backend remote "
              "--hosts %s:%d; Ctrl-C stops\n" % (host, port))
    try:
        agent.serve_forever()
    except KeyboardInterrupt:
        out.write("repro worker-host stopped\n")
    finally:
        agent.close()
    return 0


def _render_slo_report(report, out):
    """Human-readable burn-rate lines, one per objective."""
    for entry in report["objectives"]:
        scope = "kind=%s tenant=%s" % (entry["kind"], entry["tenant"])
        verdict = "ok" if entry["ok"] else "BREACH"
        parts = []
        latency = entry.get("latency")
        if latency is not None:
            observed = latency["observed_ms"]
            parts.append(
                "p%02d %s / %gms objective (burn %s)"
                % (round(latency["quantile"] * 100),
                   "n/a" if observed is None else "%.1fms" % observed,
                   latency["objective_ms"],
                   "n/a" if latency["burn_rate"] is None
                   else "%.2f" % latency["burn_rate"]))
        errors = entry.get("errors")
        if errors is not None:
            rate = errors["observed_rate"]
            parts.append(
                "errors %s / %g objective (%d of %d jobs)"
                % ("n/a" if rate is None else "%.4f" % rate,
                   errors["objective_rate"], errors["errors"],
                   errors["total"]))
        out.write("%-7s %s [%s]: %s\n"
                  % (verdict, entry["name"], scope, "; ".join(parts)))
    counts = report["counts"]
    out.write("%d objective(s), %d breached\n"
              % (counts["total"], counts["breached"]))


def _run_slo(args, out):
    import json

    from .core.exceptions import SloError
    from .serve.slo import evaluate, load_slo

    try:
        spec = load_slo(args.spec)
    except (OSError, SloError) as error:
        out.write("error: %s\n" % error)
        return 2
    try:
        with open(args.snapshot) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        out.write("error: cannot read snapshot %r: %s\n"
                  % (args.snapshot, error))
        return 2
    # A benchmark results file wraps the registry snapshot under a
    # "telemetry" key; a /v1/metrics body *is* the snapshot.
    if isinstance(data, dict) and isinstance(data.get("telemetry"), dict):
        data = data["telemetry"]
    if not isinstance(data, dict) or not all(
            isinstance(entry, dict) and "kind" in entry
            for entry in data.values()):
        out.write("error: %r is not a metrics snapshot (expected a "
                  "JSON object of metric entries, each with a 'kind')\n"
                  % args.snapshot)
        return 2
    report = evaluate(spec, data)
    _render_slo_report(report, out)
    return 0 if report["ok"] else 1


def _run_reproduce(_args, out):
    out.write("regenerate every figure and in-text claim of the paper:\n\n")
    out.write("  pytest benchmarks/ --benchmark-only\n\n")
    out.write("tables are printed and saved under benchmarks/results/;\n")
    out.write("see DESIGN.md (experiment index) and EXPERIMENTS.md\n")
    out.write("(paper-vs-measured) for the mapping.\n")
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "info": _run_info,
        "solve": _run_solve,
        "factor": _run_factor,
        "distance": _run_distance,
        "profile": _run_profile,
        "serve": _run_serve,
        "worker-host": _run_worker_host,
        "slo": _run_slo,
        "reproduce": _run_reproduce,
    }
    if args.command is None:
        parser.print_help(out)
        return 0
    with _telemetry_scope(args, out), _backend_scope(args):
        return handlers[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
