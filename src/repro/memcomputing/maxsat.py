"""Memcomputing MaxSAT (the paper's [54]: beating specialized MaxSAT codes).

Weighted partial MaxSAT: hard clauses must hold; soft clauses carry
weights and the objective is the total satisfied weight.  The DMM handles
this natively -- clause weights simply scale each clause's contribution
to the voltage dynamics (the conductances of Eq. 1), with hard clauses
given a weight exceeding the total soft weight.  The solver is *anytime*:
it tracks the best feasible assignment seen along the trajectory.

A simulated-annealing baseline over assignments is included as the
conventional comparator.
"""

import math

import numpy as np

from ..core.cnf import Clause, CnfFormula
from ..core.exceptions import MemcomputingError
from ..core.rngs import make_rng
from .dynamics import DmmSystem


class MaxSatResult:
    """Outcome of a MaxSAT run.

    Attributes
    ----------
    assignment : dict or None
        Best feasible (all hard clauses satisfied) assignment seen.
    satisfied_weight : float
        Its total satisfied soft weight (-inf when never feasible).
    hard_feasible : bool
        Whether any feasible assignment was seen.
    steps : int
        Work spent (integration steps or annealing moves).
    weight_trace : list of (step, weight)
        Anytime progress curve.
    """

    def __init__(self, assignment, satisfied_weight, hard_feasible, steps,
                 weight_trace):
        self.assignment = assignment
        self.satisfied_weight = float(satisfied_weight)
        self.hard_feasible = bool(hard_feasible)
        self.steps = int(steps)
        self.weight_trace = list(weight_trace)

    def __repr__(self):
        return ("MaxSatResult(weight=%g, feasible=%s, steps=%d)"
                % (self.satisfied_weight, self.hard_feasible, self.steps))


class DmmMaxSatSolver:
    """Anytime memcomputing MaxSAT solver.

    Parameters
    ----------
    dt, check_every, params : see :class:`repro.memcomputing.solver.DmmSolver`
    max_steps : int
        Total integration budget (the solver always runs it out; MaxSAT
        has no natural early stop unless all clauses are satisfied).
    """

    def __init__(self, dt=0.08, max_steps=60_000, check_every=25,
                 params=None, x_l_max=20.0):
        self.dt = float(dt)
        self.max_steps = int(max_steps)
        self.check_every = int(check_every)
        self.params = params
        # Optimization problems are generically unsatisfiable as SAT, so
        # the long-term memory must saturate rather than diverge; a small
        # bound keeps frustrated clauses competitive instead of dominant.
        self.x_l_max = x_l_max

    def solve(self, formula, rng=None):
        """Run the weighted dynamics; returns a :class:`MaxSatResult`."""
        rng = make_rng(rng)
        soft = formula.soft_clauses
        if not soft:
            raise MemcomputingError("MaxSAT needs at least one soft clause")
        total_soft = sum(c.weight for c in soft)
        hard_weight = total_soft + 1.0
        reweighted = [Clause(c.literals, weight=c.weight) for c in soft]
        reweighted += [Clause(c.literals, weight=hard_weight)
                       for c in formula.hard_clauses]
        weighted = CnfFormula(reweighted,
                              num_variables=formula.num_variables)
        system = DmmSystem(weighted, params=self.params,
                           x_l_max=self.x_l_max)
        lower, upper = system.lower_bounds(), system.upper_bounds()

        state = system.initial_state(rng)
        best_weight = -math.inf
        best_assignment = None
        trace = []
        for step in range(1, self.max_steps + 1):
            state = state + self.dt * system.rhs(step * self.dt, state)
            np.clip(state, lower, upper, out=state)
            if step % self.check_every == 0 or step == self.max_steps:
                assignment = system.assignment_from_state(state)
                if all(c.is_satisfied_by(assignment)
                       for c in formula.hard_clauses):
                    weight = formula.weight_satisfied(assignment)
                    if weight > best_weight:
                        best_weight = weight
                        best_assignment = assignment
                        trace.append((step, weight))
                        if weight >= total_soft:
                            break  # everything satisfied; optimal
        return MaxSatResult(best_assignment, best_weight,
                            best_assignment is not None, self.max_steps,
                            trace)


def anneal_maxsat(formula, sweeps=300, t_start=None, t_end=0.05, rng=None):
    """Simulated-annealing MaxSAT baseline over Boolean assignments.

    Energy = (unsatisfied soft weight) + hard_penalty * (unsatisfied hard
    clauses); single-variable flips under a geometric schedule.
    ``t_start`` defaults to half the hard penalty so the walk can
    rearrange hard-clause conflicts early in the schedule (a fixed small
    start temperature freezes the hard constraints immediately).  Returns
    a :class:`MaxSatResult` with moves as the work metric.
    """
    rng = make_rng(rng)
    num_vars = formula.num_variables
    soft = formula.soft_clauses
    hard = formula.hard_clauses
    if not soft:
        raise MemcomputingError("MaxSAT needs at least one soft clause")
    total_soft = sum(c.weight for c in soft)
    hard_penalty = total_soft + 1.0
    if t_start is None:
        t_start = 0.5 * hard_penalty

    def energy(assign):
        e = 0.0
        for clause in soft:
            if not clause.is_satisfied_by(assign):
                e += clause.weight
        for clause in hard:
            if not clause.is_satisfied_by(assign):
                e += hard_penalty
        return e

    assign = {v: bool(rng.integers(0, 2))
              for v in range(1, num_vars + 1)}
    current = energy(assign)
    best_assignment = dict(assign)
    best_energy = current
    trace = []
    moves = 0
    ratio = (t_end / t_start) ** (1.0 / max(1, sweeps - 1))
    temperature = t_start
    for sweep in range(sweeps):
        for _ in range(num_vars):
            variable = int(rng.integers(1, num_vars + 1))
            assign[variable] = not assign[variable]
            proposed = energy(assign)
            delta = proposed - current
            if delta <= 0.0 or rng.random() < math.exp(-delta / temperature):
                current = proposed
                if current < best_energy:
                    best_energy = current
                    best_assignment = dict(assign)
            else:
                assign[variable] = not assign[variable]
            moves += 1
        trace.append((moves, total_soft - min(best_energy, total_soft)))
        temperature *= ratio
    feasible = all(c.is_satisfied_by(best_assignment) for c in hard)
    weight = formula.weight_satisfied(best_assignment) if feasible \
        else -math.inf
    return MaxSatResult(best_assignment if feasible else None, weight,
                        feasible, moves, trace)
