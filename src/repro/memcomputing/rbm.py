"""RBM training accelerated by memcomputing (the paper's [55]).

"simulations of DMMs were employed to the training of Restricted
Boltzmann Machines that are difficult to pre-train ... one can accelerate
(in number of iterations) the pre-training of RBMs as much as the
reported hardware application of the quantum annealing method ... the
memcomputing approach is found to perform far better ... in terms of
training-quality."

Three trainers share one RBM implementation:

* ``cd``  -- standard contrastive divergence (CD-k), the conventional
  baseline,
* ``mem`` -- mode-assisted training: periodically the negative phase is
  replaced by the *mode* of the model distribution, found by relaxing the
  DMM on the RBM's joint energy (compiled through QUBO -> Ising ->
  weighted Max-2-SAT).  This is the published memcomputing-assisted
  scheme (Manukian, Traversa & Di Ventra),
* ``sa``  -- the same mode-assisted scheme but with simulated annealing
  finding the mode: the stand-in for the D-Wave quantum annealer of the
  paper's comparison [57].

The dataset is synthetic (DESIGN.md substitution: no MNIST offline):
binary stripe/block patterns with label structure, enough to expose
training-quality differences between the negative-phase strategies.
"""

import numpy as np

from ..core.exceptions import MemcomputingError
from ..core.rngs import make_rng

from .baselines.sa_ising import anneal_ising
from .ising import solve_ising_dmm


def sigmoid(x):
    """Numerically clipped logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def synthetic_patterns(num_samples, side=4, noise=0.05, rng=None):
    """Binary stripe patterns: ``side x side`` images, flattened.

    Each sample is a horizontal or vertical stripe pair with bit-flip
    noise -- a structured, multimodal distribution an RBM must capture.
    Returns ``(data, labels)`` with data in {0,1}^(num_samples, side^2)
    and labels 0 (horizontal) / 1 (vertical).
    """
    rng = make_rng(rng)
    data = np.zeros((num_samples, side * side))
    labels = np.zeros(num_samples, dtype=np.int64)
    for index in range(num_samples):
        image = np.zeros((side, side))
        orientation = int(rng.integers(0, 2))
        offset = int(rng.integers(0, 2))
        if orientation == 0:
            image[offset::2, :] = 1.0
        else:
            image[:, offset::2] = 1.0
        flips = rng.random(image.shape) < noise
        image = np.abs(image - flips)
        data[index] = image.ravel()
        labels[index] = orientation
    return data, labels


class RestrictedBoltzmannMachine:
    """Bernoulli-Bernoulli RBM.

    Energy ``E(v, h) = -v.W.h - a.v - b.h`` over binary units.

    Parameters
    ----------
    num_visible, num_hidden : int
    rng : seed or Generator
        Initializer randomness (weights ~ N(0, 0.1)).
    """

    def __init__(self, num_visible, num_hidden, rng=None):
        rng = make_rng(rng)
        self.num_visible = int(num_visible)
        self.num_hidden = int(num_hidden)
        self.weights = rng.normal(0.0, 0.1,
                                  size=(num_visible, num_hidden))
        self.visible_bias = np.zeros(num_visible)
        self.hidden_bias = np.zeros(num_hidden)

    # -- conditionals -------------------------------------------------------

    def hidden_probabilities(self, visible):
        """P(h=1 | v) for a batch of visible vectors."""
        return sigmoid(visible @ self.weights + self.hidden_bias)

    def visible_probabilities(self, hidden):
        """P(v=1 | h) for a batch of hidden vectors."""
        return sigmoid(hidden @ self.weights.T + self.visible_bias)

    def sample_hidden(self, visible, rng):
        """Bernoulli sample of the hidden layer given visibles."""
        probs = self.hidden_probabilities(visible)
        return (rng.random(probs.shape) < probs).astype(float)

    def sample_visible(self, hidden, rng):
        """Bernoulli sample of the visible layer given hiddens."""
        probs = self.visible_probabilities(hidden)
        return (rng.random(probs.shape) < probs).astype(float)

    # -- diagnostics -------------------------------------------------------

    def joint_energy(self, visible, hidden):
        """``E(v, h)`` for single vectors."""
        return float(-visible @ self.weights @ hidden
                     - self.visible_bias @ visible
                     - self.hidden_bias @ hidden)

    def reconstruction_error(self, data):
        """Mean squared one-step reconstruction error over a dataset."""
        hidden = self.hidden_probabilities(data)
        reconstruction = self.visible_probabilities(hidden)
        return float(np.mean((data - reconstruction) ** 2))

    # -- QUBO / Ising compilation of the joint energy -------------------------

    def to_ising(self):
        """Compile ``E(v, h)`` to Ising couplings/fields over [v, h] spins.

        Binary x in {0,1} maps to spin s = 2x - 1.  Returns
        ``(couplings, fields, constant)`` such that the Ising energy plus
        the constant equals the RBM energy for corresponding states.
        """
        nv, nh = self.num_visible, self.num_hidden
        couplings = {}
        fields = np.zeros(nv + nh)
        constant = 0.0
        # quadratic terms: -W_ij v_i h_j
        for i in range(nv):
            for j in range(nh):
                q = -self.weights[i, j]
                if q == 0.0:
                    continue
                couplings[(i, nv + j)] = couplings.get((i, nv + j), 0.0) \
                    + q / 4.0
                fields[i] += q / 4.0
                fields[nv + j] += q / 4.0
                constant += q / 4.0
        # linear terms: -a_i v_i and -b_j h_j
        for i in range(nv):
            c = -self.visible_bias[i]
            fields[i] += c / 2.0
            constant += c / 2.0
        for j in range(nh):
            c = -self.hidden_bias[j]
            fields[nv + j] += c / 2.0
            constant += c / 2.0
        return couplings, fields, constant

    def mode_search(self, method="mem", rng=None, budget=6_000):
        """Find a low-energy joint mode ``(v*, h*)`` of the model.

        ``method`` is "mem" (DMM relaxation) or "sa" (simulated annealing,
        the quantum-annealer stand-in).  Returns binary vectors.
        """
        rng = make_rng(rng)
        couplings, fields, _constant = self.to_ising()
        total = self.num_visible + self.num_hidden
        if not couplings:
            raise MemcomputingError("degenerate RBM: all weights zero")
        if method == "mem":
            result = solve_ising_dmm(couplings, total, fields=fields,
                                     max_steps=budget, rng=rng)
            spins = result.spins
        elif method == "sa":
            sweeps = max(10, budget // total)
            result = anneal_ising(couplings, total, fields=fields,
                                  sweeps=sweeps, rng=rng)
            spins = result.spins
        else:
            raise MemcomputingError("unknown mode_search method %r" % method)
        bits = (np.asarray(spins) + 1) // 2
        return bits[:self.num_visible].astype(float), \
            bits[self.num_visible:].astype(float)


def exact_kl_divergence(rbm, data):
    """Exact KL(p_data || p_model) for small RBMs (<= ~16 visible units).

    Enumerates every visible state to get the exact model marginal; the
    data distribution is the empirical histogram.  This is the
    training-quality metric of the mode-assisted RBM literature (the
    "training-quality" axis of the paper's D-Wave comparison) -- unlike
    reconstruction error, it exposes the bias of CD's negative phase.
    """
    nv = rbm.num_visible
    if nv > 16:
        raise MemcomputingError("exact KL needs <= 16 visible units")
    states = ((np.arange(2 ** nv)[:, None] >> np.arange(nv)) & 1).astype(float)
    pre_activation = states @ rbm.weights + rbm.hidden_bias
    free_energy = -states @ rbm.visible_bias \
        - np.sum(np.logaddexp(0.0, pre_activation), axis=1)
    log_model = -free_energy - np.logaddexp.reduce(-free_energy)
    data = np.asarray(data, dtype=float)
    indices = (data.astype(int) * (1 << np.arange(nv))).sum(axis=1)
    histogram = np.bincount(indices, minlength=2 ** nv).astype(float)
    p_data = histogram / histogram.sum()
    support = p_data > 0
    return float(np.sum(p_data[support]
                        * (np.log(p_data[support]) - log_model[support])))


class TrainingHistory:
    """Per-epoch training curve.

    Attributes
    ----------
    reconstruction_errors : list of float
    kl_divergences : list of float
        Exact KL per epoch (only when tracked; small RBMs).
    mode_updates : int
        Number of mode-assisted (non-CD) updates applied.
    """

    def __init__(self):
        self.reconstruction_errors = []
        self.kl_divergences = []
        self.mode_updates = 0

    @property
    def final_error(self):
        """Reconstruction error after the last epoch."""
        return self.reconstruction_errors[-1]

    @property
    def final_kl(self):
        """Exact KL after the last epoch (when tracked)."""
        return self.kl_divergences[-1] if self.kl_divergences else None

    def __repr__(self):
        return "TrainingHistory(epochs=%d, final=%.4f)" % (
            len(self.reconstruction_errors),
            self.reconstruction_errors[-1]
            if self.reconstruction_errors else float("nan"))


def train_rbm(rbm, data, epochs=20, learning_rate=0.3, batch_size=16,
              method="cd", cd_steps=1, mode_probability_max=0.5,
              mode_lr_scale=0.15, mode_budget=1_200, track_kl=False,
              rng=None):
    """Train an RBM in place; returns a :class:`TrainingHistory`.

    Parameters
    ----------
    method : str
        "cd" (pure contrastive divergence), "mem" (mode-assisted, DMM mode
        search) or "sa" (mode-assisted, annealing mode search -- the
        quantum-annealer stand-in).
    mode_probability_max : float
        Mode-assisted updates follow the published sigmoid schedule: the
        per-batch probability of a mode update ramps from ~0 to this
        ceiling, centred at half the run -- early training is pure CD,
        late training increasingly anchors the model mode to the data.
    mode_lr_scale : float
        Mode updates are rank-one and aggressive; they use
        ``learning_rate * mode_lr_scale``.
    mode_budget : int
        DMM integration steps (or SA move budget) per mode search.
    track_kl : bool
        Record :func:`exact_kl_divergence` each epoch (small RBMs only).
    """
    rng = make_rng(rng)
    data = np.asarray(data, dtype=float)
    if data.shape[1] != rbm.num_visible:
        raise MemcomputingError("data width %d != visible units %d"
                                % (data.shape[1], rbm.num_visible))
    history = TrainingHistory()
    num_samples = len(data)
    batches_per_epoch = int(np.ceil(num_samples / batch_size))
    total_batches = max(1, epochs * batches_per_epoch)
    batch_counter = 0
    for _epoch in range(epochs):
        order = rng.permutation(num_samples)
        for start in range(0, num_samples, batch_size):
            batch = data[order[start:start + batch_size]]
            positive_hidden = rbm.hidden_probabilities(batch)
            ramp = (batch_counter - 0.5 * total_batches) \
                / (0.08 * total_batches)
            mode_probability = mode_probability_max * sigmoid(ramp)
            use_mode = (method in ("mem", "sa")
                        and rng.random() < mode_probability)
            step = learning_rate
            if use_mode:
                mode_v, mode_h = rbm.mode_search(
                    method=method, rng=rng, budget=mode_budget)
                negative_visible = np.tile(mode_v, (len(batch), 1))
                negative_hidden = np.tile(mode_h, (len(batch), 1))
                step = learning_rate * mode_lr_scale
                history.mode_updates += 1
            else:
                visible = batch
                hidden = rbm.sample_hidden(visible, rng)
                for _ in range(cd_steps):
                    visible = rbm.sample_visible(hidden, rng)
                    hidden = rbm.sample_hidden(visible, rng)
                negative_visible = visible
                negative_hidden = rbm.hidden_probabilities(visible)
            gradient = (batch.T @ positive_hidden
                        - negative_visible.T @ negative_hidden) / len(batch)
            rbm.weights += step * gradient
            rbm.visible_bias += step * np.mean(
                batch - negative_visible, axis=0)
            rbm.hidden_bias += step * np.mean(
                positive_hidden - negative_hidden, axis=0)
            batch_counter += 1
        history.reconstruction_errors.append(rbm.reconstruction_error(data))
        if track_kl:
            history.kl_divergences.append(exact_kl_divergence(rbm, data))
    return history
