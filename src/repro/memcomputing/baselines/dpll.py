"""DPLL: complete backtracking search with unit propagation.

The complete-solver reference point for the DMM comparisons.  Classic
Davis-Putnam-Logemann-Loveland with unit propagation, pure-literal
elimination, and a most-frequent-variable branching heuristic.  Work
metric: decision nodes explored.
"""

from ...core.exceptions import FormulaError


class DpllResult:
    """Outcome of a DPLL search.

    Attributes
    ----------
    satisfiable : bool or None
        None when the node budget ran out before a verdict.
    assignment : dict or None
        A satisfying assignment when satisfiable.
    nodes : int
        Decision nodes explored.
    """

    def __init__(self, satisfiable, assignment, nodes):
        self.satisfiable = satisfiable
        self.assignment = assignment
        self.nodes = int(nodes)

    def __repr__(self):
        return "DpllResult(satisfiable=%s, nodes=%d)" % (
            self.satisfiable, self.nodes)


class DpllSolver:
    """Recursive DPLL with a decision-node budget.

    Parameters
    ----------
    max_nodes : int
        Abort (verdict None) after exploring this many decision nodes.
    use_pure_literals : bool
        Enable the pure-literal rule.
    """

    def __init__(self, max_nodes=1_000_000, use_pure_literals=True):
        self.max_nodes = int(max_nodes)
        self.use_pure_literals = bool(use_pure_literals)

    def solve(self, formula):
        """Decide satisfiability; returns a :class:`DpllResult`."""
        if formula.num_variables == 0:
            raise FormulaError("formula has no variables")
        clauses = [frozenset(c.literals) for c in formula.clauses]
        self._nodes = 0
        self._budget_hit = False
        verdict, assignment = self._search(clauses, {})
        if self._budget_hit and verdict is False:
            return DpllResult(None, None, self._nodes)
        if verdict:
            # complete the assignment: unconstrained variables default False
            full = {v: assignment.get(v, False)
                    for v in range(1, formula.num_variables + 1)}
            return DpllResult(True, full, self._nodes)
        return DpllResult(False, None, self._nodes)

    def _search(self, clauses, assignment):
        clauses, assignment, conflict = _propagate_units(clauses, assignment)
        if conflict:
            return False, None
        if self.use_pure_literals:
            clauses, assignment = _assign_pure_literals(clauses, assignment)
        if not clauses:
            return True, assignment
        if self._nodes >= self.max_nodes:
            self._budget_hit = True
            return False, None
        self._nodes += 1
        variable = _most_frequent_variable(clauses)
        for value in (True, False):
            literal = variable if value else -variable
            reduced = _condition(clauses, literal)
            if reduced is None:
                continue
            extended = dict(assignment)
            extended[variable] = value
            verdict, result = self._search(reduced, extended)
            if verdict:
                return True, result
        return False, None


def _condition(clauses, literal):
    """Clauses after asserting ``literal``; None on an empty clause."""
    reduced = []
    for clause in clauses:
        if literal in clause:
            continue
        if -literal in clause:
            shrunk = clause - {-literal}
            if not shrunk:
                return None
            reduced.append(shrunk)
        else:
            reduced.append(clause)
    return reduced


def _propagate_units(clauses, assignment):
    """Repeated unit propagation; returns (clauses, assignment, conflict)."""
    assignment = dict(assignment)
    while True:
        unit = next((clause for clause in clauses if len(clause) == 1), None)
        if unit is None:
            return clauses, assignment, False
        literal = next(iter(unit))
        assignment[abs(literal)] = literal > 0
        clauses = _condition(clauses, literal)
        if clauses is None:
            return [], assignment, True


def _assign_pure_literals(clauses, assignment):
    """Assign variables occurring with a single polarity."""
    assignment = dict(assignment)
    while True:
        polarity = {}
        for clause in clauses:
            for literal in clause:
                var = abs(literal)
                seen = polarity.get(var)
                if seen is None:
                    polarity[var] = literal > 0
                elif seen != (literal > 0):
                    polarity[var] = "mixed"
        pures = [var for var, p in polarity.items() if p != "mixed"]
        if not pures:
            return clauses, assignment
        for var in pures:
            value = polarity[var]
            assignment[var] = bool(value)
            clauses = _condition(clauses, var if value else -var)
            if clauses is None:  # cannot happen for a pure literal
                return [], assignment


def _most_frequent_variable(clauses):
    counts = {}
    for clause in clauses:
        for literal in clause:
            counts[abs(literal)] = counts.get(abs(literal), 0) + 1
    return max(counts, key=counts.get)
