"""Conventional solvers the memcomputing results are compared against.

The paper's Section IV claims are *relative* ("perform much better than
traditional algorithmic approaches"); these baselines are the other side
of every such comparison: stochastic local search (WalkSAT, GSAT),
complete search (DPLL), and simulated annealing for Ising/QUBO problems.
"""

from .dpll import DpllResult, DpllSolver
from .gsat import GsatSolver
from .sa_ising import SimulatedAnnealingResult, anneal_ising
from .walksat import WalkSatResult, WalkSatSolver

__all__ = [
    "DpllResult",
    "DpllSolver",
    "GsatSolver",
    "SimulatedAnnealingResult",
    "anneal_ising",
    "WalkSatResult",
    "WalkSatSolver",
]
