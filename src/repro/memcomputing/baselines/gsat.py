"""GSAT: greedy local search over total satisfied-clause count.

Used in ablations against WalkSAT and the DMM: at every step flip the
variable whose flip maximizes the number of satisfied clauses (ties
broken at random), with random restarts.  Simpler and typically weaker
than WalkSAT -- which is exactly why it is useful as a second reference
point on the scaling plots.
"""

import time

import numpy as np

from ...core import telemetry
from ...core.rngs import make_rng
from .walksat import WalkSatResult, _satisfied_literals


class GsatSolver:
    """GSAT with restarts; work metric is variable flips.

    Parameters
    ----------
    max_flips : int
        Flips per try.
    max_tries : int
        Random restarts.
    sideways : bool
        Allow zero-gain ("sideways") moves, the standard GSAT tweak.
    """

    def __init__(self, max_flips=20_000, max_tries=10, sideways=True):
        self.max_flips = int(max_flips)
        self.max_tries = int(max_tries)
        self.sideways = bool(sideways)

    def solve(self, formula, rng=None):
        """Run GSAT; returns a :class:`WalkSatResult` (same shape)."""
        rng = make_rng(rng)
        start = time.perf_counter()
        flip_counter = telemetry.counter("dmm.gsat.flips")
        num_vars = formula.num_variables
        clauses = [np.array(c.literals, dtype=np.int64)
                   for c in formula.clauses]
        occurrence = [[] for _ in range(num_vars)]
        for index, literals in enumerate(clauses):
            for literal in literals:
                occurrence[abs(literal) - 1].append(index)

        total_flips = 0
        for attempt in range(1, self.max_tries + 1):
            assign = rng.integers(0, 2, size=num_vars).astype(bool)
            sat_count = np.array([_satisfied_literals(lits, assign)
                                  for lits in clauses])
            num_unsat = int(np.sum(sat_count == 0))
            for _ in range(self.max_flips):
                if num_unsat == 0:
                    assignment = {i + 1: bool(assign[i])
                                  for i in range(num_vars)}
                    flip_counter.inc(total_flips)
                    return WalkSatResult(True, assignment, total_flips,
                                         attempt,
                                         time.perf_counter() - start)
                gains = np.array([
                    self._flip_gain(var, assign, clauses, occurrence,
                                    sat_count)
                    for var in range(num_vars)
                ])
                best_gain = gains.max()
                if best_gain < 0 or (best_gain == 0 and not self.sideways):
                    break  # local minimum; restart
                candidates = np.flatnonzero(gains == best_gain)
                chosen = int(candidates[rng.integers(0, len(candidates))])
                num_unsat -= self._apply_flip(chosen, assign, clauses,
                                              occurrence, sat_count)
                total_flips += 1
        assignment = {i + 1: bool(assign[i]) for i in range(num_vars)}
        flip_counter.inc(total_flips)
        return WalkSatResult(False, assignment, total_flips, self.max_tries,
                             time.perf_counter() - start)

    @staticmethod
    def _flip_gain(var, assign, clauses, occurrence, sat_count):
        """Net newly-satisfied clauses if ``var`` were flipped."""
        gain = 0
        current = bool(assign[var])
        for index in occurrence[var]:
            for literal in clauses[index]:
                if abs(literal) - 1 != var:
                    continue
                if (literal > 0) == current:
                    # flipping loses this literal
                    if sat_count[index] == 1:
                        gain -= 1
                else:
                    if sat_count[index] == 0:
                        gain += 1
        return gain

    @staticmethod
    def _apply_flip(var, assign, clauses, occurrence, sat_count):
        """Flip ``var``; returns the reduction in unsatisfied-clause count."""
        reduction = 0
        old_value = bool(assign[var])
        assign[var] = not old_value
        for index in occurrence[var]:
            for literal in clauses[index]:
                if abs(literal) - 1 != var:
                    continue
                if (literal > 0) == old_value:
                    sat_count[index] -= 1
                    if sat_count[index] == 0:
                        reduction -= 1
                else:
                    sat_count[index] += 1
                    if sat_count[index] == 1:
                        reduction += 1
        return reduction
