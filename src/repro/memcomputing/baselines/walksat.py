"""WalkSAT/SKC: the canonical stochastic local-search SAT baseline.

Selman-Kautz-Cohen variant: pick a random unsatisfied clause; if some
variable in it can be flipped without breaking any currently satisfied
clause (break-count 0), flip it; otherwise with probability ``noise``
flip a random clause variable, else flip the minimum-break variable.
Work metric: variable flips (compared against DMM integration steps in
the scaling study).
"""

import time

import numpy as np

from ...core import telemetry
from ...core.exceptions import FormulaError
from ...core.rngs import make_rng


class WalkSatResult:
    """Outcome of a WalkSAT run.

    Attributes
    ----------
    satisfied : bool
    assignment : dict or None
    flips : int
        Total variable flips across all tries.
    tries : int
        Random restarts used.
    wall_time : float
        Wall-clock seconds spent.
    """

    def __init__(self, satisfied, assignment, flips, tries, wall_time=0.0):
        self.satisfied = bool(satisfied)
        self.assignment = assignment
        self.flips = int(flips)
        self.tries = int(tries)
        self.wall_time = float(wall_time)

    def __repr__(self):
        return ("WalkSatResult(satisfied=%s, flips=%s, wall_time=%s, "
                "tries=%d)"
                % (self.satisfied, telemetry.fmt_quantity(self.flips),
                   telemetry.fmt_seconds(self.wall_time), self.tries))


class WalkSatSolver:
    """WalkSAT/SKC with restarts.

    Parameters
    ----------
    noise : float
        Random-walk probability ``p`` (0.5 is standard for random 3-SAT).
    max_flips : int
        Flips per try.
    max_tries : int
        Number of random restarts.
    """

    def __init__(self, noise=0.5, max_flips=100_000, max_tries=10):
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        self.noise = float(noise)
        self.max_flips = int(max_flips)
        self.max_tries = int(max_tries)

    def solve(self, formula, rng=None):
        """Run WalkSAT; returns a :class:`WalkSatResult`."""
        rng = make_rng(rng)
        num_vars = formula.num_variables
        if num_vars == 0:
            raise FormulaError("formula has no variables")
        registry = telemetry.get_registry()
        with telemetry.span("dmm.walksat.solve", variables=num_vars,
                            clauses=formula.num_clauses) as solve_span:
            result = self._search(formula, rng, num_vars)
            solve_span.set_attr("satisfied", result.satisfied)
            solve_span.set_attr("flips", result.flips)
        if registry.enabled:
            registry.counter("dmm.walksat.solves").inc()
            registry.counter("dmm.walksat.flips").inc(result.flips)
            registry.counter("dmm.walksat.tries").inc(result.tries)
        return result

    def _search(self, formula, rng, num_vars):
        start = time.perf_counter()
        clauses = [np.array(c.literals, dtype=np.int64)
                   for c in formula.clauses]
        # occurrence lists: variable (0-based) -> clause indices
        occurrence = [[] for _ in range(num_vars)]
        for index, literals in enumerate(clauses):
            for literal in literals:
                occurrence[abs(literal) - 1].append(index)

        total_flips = 0
        for attempt in range(1, self.max_tries + 1):
            assign = rng.integers(0, 2, size=num_vars).astype(bool)
            sat_count = np.zeros(len(clauses), dtype=np.int64)
            for index, literals in enumerate(clauses):
                sat_count[index] = _satisfied_literals(literals, assign)
            unsat = set(i for i, count in enumerate(sat_count) if count == 0)
            for _ in range(self.max_flips):
                if not unsat:
                    assignment = {i + 1: bool(assign[i])
                                  for i in range(num_vars)}
                    return WalkSatResult(True, assignment, total_flips,
                                         attempt,
                                         time.perf_counter() - start)
                unsat_list = list(unsat)
                clause_index = unsat_list[rng.integers(0, len(unsat_list))]
                literals = clauses[clause_index]
                variables = [abs(l) - 1 for l in literals]
                breaks = [_break_count(var, assign, clauses, occurrence,
                                       sat_count) for var in variables]
                if min(breaks) == 0:
                    chosen = variables[int(np.argmin(breaks))]
                elif rng.random() < self.noise:
                    chosen = variables[rng.integers(0, len(variables))]
                else:
                    chosen = variables[int(np.argmin(breaks))]
                _flip(chosen, assign, clauses, occurrence, sat_count, unsat)
                total_flips += 1
        assignment = {i + 1: bool(assign[i]) for i in range(num_vars)}
        return WalkSatResult(False, assignment, total_flips, self.max_tries,
                             time.perf_counter() - start)


def _satisfied_literals(literals, assign):
    count = 0
    for literal in literals:
        if (literal > 0) == bool(assign[abs(literal) - 1]):
            count += 1
    return count


def _break_count(var, assign, clauses, occurrence, sat_count):
    """Clauses that become unsatisfied if ``var`` flips."""
    broken = 0
    for index in occurrence[var]:
        if sat_count[index] == 1:
            # broken only when the single satisfying literal is on var
            for literal in clauses[index]:
                if abs(literal) - 1 == var \
                        and (literal > 0) == bool(assign[var]):
                    broken += 1
                    break
    return broken


def _flip(var, assign, clauses, occurrence, sat_count, unsat):
    """Flip ``var``; update satisfied-literal counts and the unsat set."""
    old_value = bool(assign[var])
    assign[var] = not old_value
    for index in occurrence[var]:
        for literal in clauses[index]:
            if abs(literal) - 1 == var:
                if (literal > 0) == old_value:
                    sat_count[index] -= 1
                else:
                    sat_count[index] += 1
        if sat_count[index] == 0:
            unsat.add(index)
        else:
            unsat.discard(index)
