"""Simulated annealing for Ising / QUBO problems.

The classical reference for the spin-glass study (DMM-SPIN) and the
stand-in for the D-Wave quantum annealer in the RBM comparison (the paper
cites [57]: quantum annealing applied to RBM pre-training).  Single-spin-
flip Metropolis dynamics under a geometric temperature schedule -- by
construction it can only flip one spin per move, which is exactly the
contrast the paper draws against the DMM's collective cluster flips.
"""

import math

import numpy as np

from ...core.rngs import make_rng
from ...core.sat_instances import ising_energy


class SimulatedAnnealingResult:
    """Outcome of an annealing run.

    Attributes
    ----------
    spins : numpy.ndarray
        Best +-1 configuration found.
    energy : float
        Its Ising energy.
    sweeps : int
        Monte-Carlo sweeps performed.
    accepted_moves : int
        Accepted single-spin flips.
    energy_trace : list of float
        Best energy after each sweep.
    """

    def __init__(self, spins, energy, sweeps, accepted_moves, energy_trace):
        self.spins = spins
        self.energy = float(energy)
        self.sweeps = int(sweeps)
        self.accepted_moves = int(accepted_moves)
        self.energy_trace = list(energy_trace)

    def __repr__(self):
        return "SimulatedAnnealingResult(energy=%g, sweeps=%d)" % (
            self.energy, self.sweeps)


def _local_fields(couplings, num_spins):
    """Adjacency structure: spin -> list of (neighbour, J)."""
    neighbours = [[] for _ in range(num_spins)]
    for (i, j), coupling in couplings.items():
        neighbours[i].append((j, coupling))
        neighbours[j].append((i, coupling))
    return neighbours


def anneal_ising(couplings, num_spins, fields=None, sweeps=500,
                 t_start=3.0, t_end=0.05, rng=None, initial_spins=None):
    """Anneal ``E = sum J_ij s_i s_j + sum h_i s_i`` over +-1 spins.

    Geometric schedule from ``t_start`` to ``t_end`` across ``sweeps``
    sweeps (one sweep = ``num_spins`` single-spin Metropolis proposals).
    Returns a :class:`SimulatedAnnealingResult` tracking the best
    configuration seen.
    """
    rng = make_rng(rng)
    if initial_spins is None:
        spins = rng.choice([-1, 1], size=num_spins).astype(np.int64)
    else:
        spins = np.asarray(initial_spins, dtype=np.int64).copy()
    neighbours = _local_fields(couplings, num_spins)
    fields = np.zeros(num_spins) if fields is None \
        else np.asarray(fields, dtype=float)
    energy = ising_energy(couplings, spins, fields)
    best_energy = energy
    best_spins = spins.copy()
    accepted = 0
    trace = []
    if sweeps < 1:
        raise ValueError("sweeps must be positive")
    ratio = (t_end / t_start) ** (1.0 / max(1, sweeps - 1))
    temperature = t_start
    for _sweep in range(sweeps):
        for _ in range(num_spins):
            spin = int(rng.integers(0, num_spins))
            local = fields[spin]
            for neighbour, coupling in neighbours[spin]:
                local += coupling * spins[neighbour]
            delta = -2.0 * spins[spin] * local
            if delta <= 0.0 or rng.random() < math.exp(-delta / temperature):
                spins[spin] = -spins[spin]
                energy += delta
                accepted += 1
                if energy < best_energy:
                    best_energy = energy
                    best_spins = spins.copy()
        trace.append(best_energy)
        temperature *= ratio
    return SimulatedAnnealingResult(best_spins, best_energy, sweeps,
                                    accepted, trace)
