"""Digital memcomputing machines (Section IV of the paper).

* the equations of motion (Eqs. 1-2, SAT instantiation) --
  :mod:`repro.memcomputing.dynamics`
* self-organizing logic gates and circuits --
  :mod:`repro.memcomputing.solg`, :mod:`repro.memcomputing.circuit`
* SAT / MaxSAT solvers -- :mod:`repro.memcomputing.solver`,
  :mod:`repro.memcomputing.maxsat`
* conventional baselines -- :mod:`repro.memcomputing.baselines`
* spin glasses and DLRO -- :mod:`repro.memcomputing.ising`
* RBM training acceleration -- :mod:`repro.memcomputing.rbm`
* noise robustness -- :mod:`repro.memcomputing.noise`
* instanton / chaos diagnostics -- :mod:`repro.memcomputing.instantons`
"""

from .circuit import (
    SolgCircuit,
    factor_with_memcomputing,
    factorization_circuit,
    multiplier_circuit,
    ripple_adder_circuit,
)
from .dynamics import DEFAULT_PARAMS, DmmSystem
from .ensemble import BatchedDmm, EnsembleResult, solve_ensemble
from .ilp import (
    BinaryLinearProgram,
    IlpResult,
    ilp_to_maxsat,
    knapsack,
    solve_ilp_bruteforce,
    solve_ilp_memcomputing,
)
from .instantons import instanton_census, lyapunov_estimate, residual_at_solution
from .ising import (
    DmmIsingResult,
    flip_cluster_sizes,
    ising_to_maxsat,
    largest_cluster_fraction,
    solve_ising_dmm,
    spins_from_assignment,
)
from .maxsat import DmmMaxSatSolver, MaxSatResult, anneal_maxsat
from .noise import solve_with_noise, success_vs_noise
from .rbm import (
    RestrictedBoltzmannMachine,
    TrainingHistory,
    exact_kl_divergence,
    synthetic_patterns,
    train_rbm,
)
from .solg import GATE_TYPES, SelfOrganizingGate, gate_clauses, gate_truth
from .solver import DmmResult, DmmSolver

__all__ = [
    "SolgCircuit",
    "factor_with_memcomputing",
    "factorization_circuit",
    "multiplier_circuit",
    "ripple_adder_circuit",
    "DEFAULT_PARAMS",
    "DmmSystem",
    "BatchedDmm",
    "EnsembleResult",
    "solve_ensemble",
    "BinaryLinearProgram",
    "IlpResult",
    "ilp_to_maxsat",
    "knapsack",
    "solve_ilp_bruteforce",
    "solve_ilp_memcomputing",
    "instanton_census",
    "lyapunov_estimate",
    "residual_at_solution",
    "DmmIsingResult",
    "flip_cluster_sizes",
    "ising_to_maxsat",
    "largest_cluster_fraction",
    "solve_ising_dmm",
    "spins_from_assignment",
    "DmmMaxSatSolver",
    "MaxSatResult",
    "anneal_maxsat",
    "solve_with_noise",
    "success_vs_noise",
    "RestrictedBoltzmannMachine",
    "TrainingHistory",
    "exact_kl_divergence",
    "synthetic_patterns",
    "train_rbm",
    "GATE_TYPES",
    "SelfOrganizingGate",
    "gate_clauses",
    "gate_truth",
    "DmmResult",
    "DmmSolver",
]
