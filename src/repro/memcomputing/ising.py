"""Spin glasses through the DMM: frustrated loops and cluster flips ([56]).

"this DLRO was more clearly demonstrated in the solution of ... the
problem of the frustrated-loop using spin glass.  In this case, it was
shown that DMMs allow for the collective flipping of clusters of spins
spanning the entire lattice."

Pipeline:

1. frustrated-loop couplings come from
   :func:`repro.core.sat_instances.frustrated_loop_ising` (known ground
   energy by construction),
2. the Ising objective is compiled to weighted Max-2-SAT
   (:func:`ising_to_maxsat`): coupling J > 0 penalizes aligned spins via
   the clause pair {(i or j), (not i or not j)}, J < 0 penalizes
   anti-aligned spins via {(i or not j), (not i or j)}, each of weight
   |J| -- an exact reduction,
3. the DMM MaxSAT solver relaxes it; spins are read from the voltages,
4. :func:`flip_cluster_sizes` measures the DLRO signature: how many spins
   flip *simultaneously* (within one integration window) along the DMM
   trajectory, versus the strictly single-spin moves of annealing.
"""

import numpy as np

from ..core.cnf import Clause, CnfFormula
from ..core.exceptions import MemcomputingError
from ..core.rngs import make_rng
from ..core.sat_instances import ising_energy
from .dynamics import DmmSystem


def ising_to_maxsat(couplings, num_spins):
    """Exact weighted Max-2-SAT encoding of an Ising coupling dict.

    Variable ``i+1`` true <-> spin ``i`` = +1.  Satisfying weight is
    maximal exactly on ground states; the Ising energy of an assignment
    equals ``sum|J| - 2 * (satisfied-above-baseline weight)`` up to the
    fixed offset worked out below (each coupling contributes one always-
    satisfiable clause pair whose violation count is 0 or 1).

    Returns a :class:`CnfFormula` of soft clauses only.
    """
    clauses = []
    for (i, j), coupling in couplings.items():
        if coupling == 0.0:
            continue
        weight = abs(coupling)
        a, b = i + 1, j + 1
        if coupling > 0:  # penalize aligned spins
            clauses.append(Clause([a, b], weight=weight))
            clauses.append(Clause([-a, -b], weight=weight))
        else:  # penalize anti-aligned spins
            clauses.append(Clause([a, -b], weight=weight))
            clauses.append(Clause([-a, b], weight=weight))
    if not clauses:
        raise MemcomputingError("no non-zero couplings")
    return CnfFormula(clauses, num_variables=num_spins)


def spins_from_assignment(assignment, num_spins):
    """Decode a Boolean assignment into a +-1 spin vector."""
    return np.array([1 if assignment.get(i + 1, False) else -1
                     for i in range(num_spins)], dtype=np.int64)


class DmmIsingResult:
    """Outcome of a DMM spin-glass run.

    Attributes
    ----------
    spins : numpy.ndarray
        Best +-1 configuration found.
    energy : float
        Its Ising energy.
    steps : int
        Integration steps.
    spin_trace : numpy.ndarray, shape (checkpoints, num_spins)
        Thresholded spin configuration at each checkpoint (the raw
        material of the cluster-flip analysis).
    energy_trace : list of float
        Ising energy at each checkpoint.
    """

    def __init__(self, spins, energy, steps, spin_trace, energy_trace):
        self.spins = spins
        self.energy = float(energy)
        self.steps = int(steps)
        self.spin_trace = np.asarray(spin_trace)
        self.energy_trace = list(energy_trace)

    def __repr__(self):
        return "DmmIsingResult(energy=%g, steps=%d)" % (self.energy,
                                                        self.steps)


def solve_ising_dmm(couplings, num_spins, fields=None, max_steps=40_000,
                    dt=0.08, check_every=20, rng=None, params=None,
                    x_l_max=20.0):
    """Relax the DMM on the Max-2-SAT encoding of an Ising instance.

    ``fields`` (linear terms) are encoded as weight-|h| unit clauses.
    Returns a :class:`DmmIsingResult` tracking the best configuration.
    """
    rng = make_rng(rng)
    formula = ising_to_maxsat(couplings, num_spins)
    clauses = list(formula.clauses)
    if fields is not None:
        for index, field in enumerate(np.asarray(fields, dtype=float)):
            if field == 0.0:
                continue
            # energy h*s: h > 0 prefers s = -1 (variable false)
            literal = -(index + 1) if field > 0 else (index + 1)
            clauses.append(Clause([literal], weight=abs(field)))
        formula = CnfFormula(clauses, num_variables=num_spins)
    system = DmmSystem(formula, params=params, x_l_max=x_l_max)
    lower, upper = system.lower_bounds(), system.upper_bounds()
    state = system.initial_state(rng)

    best_energy = np.inf
    best_spins = None
    spin_trace = []
    energy_trace = []
    for step in range(1, max_steps + 1):
        state = state + dt * system.rhs(step * dt, state)
        np.clip(state, lower, upper, out=state)
        if step % check_every == 0 or step == max_steps:
            assignment = system.assignment_from_state(state)
            spins = spins_from_assignment(assignment, num_spins)
            energy = ising_energy(couplings, spins, fields)
            spin_trace.append(spins)
            energy_trace.append(energy)
            if energy < best_energy:
                best_energy = energy
                best_spins = spins.copy()
    return DmmIsingResult(best_spins, best_energy, max_steps,
                          np.asarray(spin_trace), energy_trace)


def flip_cluster_sizes(spin_trace):
    """Sizes of simultaneous spin flips between consecutive checkpoints.

    The DLRO signature: a checkpoint-to-checkpoint transition flipping
    ``c`` spins counts as one cluster event of size ``c``.  Single-spin
    dynamics (annealing) can only produce sizes bounded by the number of
    sweeps between snapshots; DMMs produce heavy-tailed size
    distributions ("clusters of spins spanning the entire lattice").

    Returns a list of cluster sizes (zero-size transitions excluded).
    """
    spin_trace = np.asarray(spin_trace)
    if spin_trace.ndim != 2 or len(spin_trace) < 2:
        return []
    changed = (np.diff(spin_trace, axis=0) != 0).sum(axis=1)
    return [int(c) for c in changed if c > 0]


def largest_cluster_fraction(spin_trace):
    """Largest simultaneous flip as a fraction of the lattice size."""
    sizes = flip_cluster_sizes(spin_trace)
    if not sizes:
        return 0.0
    return max(sizes) / spin_trace.shape[1]
