"""Self-organizing logic gates (SOLGs).

Section IV: "The gates of the circuit are then replaced by
Self-Organizing Logic Gates (SOLGs), whose only requirement is to
self-organize into the correct logical proposition of the given gate
irrespective of whether the signal comes from the traditional inputs or
the traditional outputs.  In other words, SOLGs are terminal agnostic,
although not necessarily invertible in a one-to-one sense."

A SOLG is realized here the way the DMM literature constructs them: the
gate's logical relation is a small set of clauses over its terminal
variables, and the gate's electrical dynamics are the DMM equations of
motion over those clauses.  Pinning any subset of terminals adds unit
clauses; the remaining terminals relax to a consistent truth assignment
(one of possibly many -- "not necessarily invertible in a one-to-one
sense").
"""

from ..core.cnf import Clause, CnfFormula
from ..core.exceptions import SolgError
from ..core.rngs import make_rng

#: Clause templates encoding ``out = f(inputs)`` per gate type, written
#: over terminal slots: inputs are slots 0..arity-1, output is the last
#: slot.  Positive integers index slots (1-based to allow negation).
_GATE_CLAUSES = {
    "and": {
        "arity": 2,
        "clauses": [(-1, -2, 3), (1, -3), (2, -3)],
    },
    "or": {
        "arity": 2,
        "clauses": [(1, 2, -3), (-1, 3), (-2, 3)],
    },
    "xor": {
        "arity": 2,
        "clauses": [(-1, -2, -3), (1, 2, -3), (1, -2, 3), (-1, 2, 3)],
    },
    "nand": {
        "arity": 2,
        "clauses": [(-1, -2, -3), (1, 3), (2, 3)],
    },
    "nor": {
        "arity": 2,
        "clauses": [(1, 2, 3), (-1, -3), (-2, -3)],
    },
    "xnor": {
        "arity": 2,
        "clauses": [(-1, -2, 3), (1, 2, 3), (1, -2, -3), (-1, 2, -3)],
    },
    "not": {
        "arity": 1,
        "clauses": [(1, 2), (-1, -2)],
    },
}

GATE_TYPES = tuple(sorted(_GATE_CLAUSES))


def gate_truth(gate_type, inputs):
    """Boolean output of the named gate for a tuple of inputs."""
    a = bool(inputs[0])
    b = bool(inputs[1]) if len(inputs) > 1 else None
    table = {
        "and": lambda: a and b,
        "or": lambda: a or b,
        "xor": lambda: a != b,
        "nand": lambda: not (a and b),
        "nor": lambda: not (a or b),
        "xnor": lambda: a == b,
        "not": lambda: not a,
    }
    if gate_type not in table:
        raise SolgError("unknown gate type %r" % gate_type)
    expected_arity = _GATE_CLAUSES[gate_type]["arity"]
    if len(inputs) != expected_arity:
        raise SolgError("gate %r wants %d inputs, got %d"
                        % (gate_type, expected_arity, len(inputs)))
    return table[gate_type]()


def gate_clauses(gate_type, terminal_variables):
    """Instantiate the gate's relation clauses over concrete variables.

    ``terminal_variables`` lists DIMACS variable indices: inputs first,
    output last (arity + 1 entries).
    """
    if gate_type not in _GATE_CLAUSES:
        raise SolgError("unknown gate type %r" % gate_type)
    template = _GATE_CLAUSES[gate_type]
    expected = template["arity"] + 1
    if len(terminal_variables) != expected:
        raise SolgError("gate %r has %d terminals, got %d"
                        % (gate_type, expected, len(terminal_variables)))
    clauses = []
    for pattern in template["clauses"]:
        literals = []
        for slot_literal in pattern:
            variable = terminal_variables[abs(slot_literal) - 1]
            literals.append(variable if slot_literal > 0 else -variable)
        clauses.append(Clause(literals))
    return clauses


class SelfOrganizingGate:
    """One SOLG: a logic gate solvable from any subset of its terminals.

    Parameters
    ----------
    gate_type : str
        One of :data:`GATE_TYPES`.
    solver : DmmSolver, optional
        The dynamics integrator; a default is created lazily.
    """

    def __init__(self, gate_type, solver=None):
        if gate_type not in _GATE_CLAUSES:
            raise SolgError("unknown gate type %r" % gate_type)
        self.gate_type = gate_type
        self._solver = solver

    @property
    def arity(self):
        """Number of input terminals."""
        return _GATE_CLAUSES[self.gate_type]["arity"]

    @property
    def terminal_names(self):
        """Terminal labels: in0, in1, ..., out."""
        return ["in%d" % i for i in range(self.arity)] + ["out"]

    def _formula(self, pinned):
        variables = list(range(1, self.arity + 2))
        clauses = gate_clauses(self.gate_type, variables)
        names = self.terminal_names
        for terminal, value in pinned.items():
            if terminal not in names:
                raise SolgError("unknown terminal %r (have %s)"
                                % (terminal, names))
            variable = names.index(terminal) + 1
            clauses.append(Clause([variable if value else -variable]))
        return CnfFormula(clauses, num_variables=self.arity + 1)

    def self_organize(self, pinned=None, rng=None):
        """Relax the gate's dynamics with the given terminals pinned.

        Returns a dict mapping every terminal name to its settled Boolean
        value.  Raises :class:`SolgError` when the pinned values are
        logically inconsistent (e.g. an AND pinned to in0=0, out=1): the
        dynamics then have no fixed point, which is detected by the step
        budget expiring.
        """
        from .solver import DmmSolver

        rng = make_rng(rng)
        pinned = dict(pinned or {})
        solver = self._solver or DmmSolver(max_steps=60_000)
        result = solver.solve(self._formula(pinned), rng=rng)
        if not result.satisfied:
            raise SolgError(
                "gate %r cannot satisfy pinned terminals %r"
                % (self.gate_type, pinned))
        names = self.terminal_names
        settled = {name: result.assignment[index + 1]
                   for index, name in enumerate(names)}
        # pinned terminals must be honoured exactly
        for terminal, value in pinned.items():
            if settled[terminal] != bool(value):
                raise SolgError("pinned terminal %r drifted" % terminal)
        return settled

    def forward(self, *inputs):
        """Conventional evaluation (inputs -> output), for reference."""
        return gate_truth(self.gate_type, inputs)

    def __repr__(self):
        return "SelfOrganizingGate(%r)" % self.gate_type
