"""Memcomputing 0-1 integer linear programming (the paper's [48]).

"The problem is first written in Boolean form (or in algebraic form if
the problem is an integer linear programming one, as seen in [48])."

[48] (Traversa & Di Ventra, "Memcomputing integer linear programming")
solves ILPs with self-organizing *algebraic* gates; this module reaches
the same class of problems through the library's Boolean machinery: a
0-1 ILP is compiled exactly to weighted MaxSAT and relaxed by the DMM.

* Linear constraints ``sum_j a_j x_j <= b`` become hard clauses through a
  reduced-ordered-BDD (interval-memoized) construction with Tseitin
  extraction -- the standard exact pseudo-Boolean encoding.  Negative
  coefficients are normalized away by the substitution ``x -> 1 - x``.
* The objective ``maximize sum_j c_j x_j`` becomes soft unit clauses of
  weight ``|c_j|`` (polarity by sign).

:class:`BinaryLinearProgram` holds the model;
:func:`solve_ilp_memcomputing` runs the DMM;
:func:`solve_ilp_bruteforce` provides the exact reference for tests and
benchmarks; :func:`knapsack` is the classic instance builder.
"""

import itertools

import numpy as np

from ..core.cnf import Clause, CnfFormula
from ..core.exceptions import MemcomputingError
from ..core.rngs import make_rng


class BinaryLinearProgram:
    """maximize c.x subject to A x <= b over binary x.

    Parameters
    ----------
    num_variables : int
    objective : sequence of float
        Coefficients ``c`` (any sign).
    """

    def __init__(self, num_variables, objective):
        if num_variables < 1:
            raise MemcomputingError("need at least one variable")
        self.num_variables = int(num_variables)
        self.objective = [float(c) for c in objective]
        if len(self.objective) != self.num_variables:
            raise MemcomputingError("objective length mismatch")
        self.constraints = []  # list of (coefficients list, bound)

    def add_constraint(self, coefficients, bound):
        """Add ``sum_j coefficients[j] x_j <= bound`` (integers, any sign)."""
        coefficients = [int(a) for a in coefficients]
        if len(coefficients) != self.num_variables:
            raise MemcomputingError("coefficient length mismatch")
        self.constraints.append((coefficients, int(bound)))
        return self

    def objective_value(self, assignment):
        """c.x for a dict assignment (variable 1-indexed -> bool)."""
        return sum(c for j, c in enumerate(self.objective)
                   if assignment.get(j + 1, False))

    def is_feasible(self, assignment):
        """True when every constraint holds under the assignment."""
        for coefficients, bound in self.constraints:
            total = sum(a for j, a in enumerate(coefficients)
                        if assignment.get(j + 1, False))
            if total > bound:
                return False
        return True

    def __repr__(self):
        return "BinaryLinearProgram(vars=%d, constraints=%d)" % (
            self.num_variables, len(self.constraints))


class _VariablePool:
    """Fresh-variable allocator shared across constraint encodings."""

    def __init__(self, first_free):
        self.next_variable = first_free

    def fresh(self):
        variable = self.next_variable
        self.next_variable += 1
        return variable


def ilp_to_maxsat(program):
    """Compile a :class:`BinaryLinearProgram` to weighted MaxSAT.

    Returns ``(formula, objective_offset)`` where the ILP objective of an
    assignment equals ``formula.weight_satisfied(assignment) +
    objective_offset`` restricted to the original variables.
    """
    clauses = []
    offset = 0.0
    for j, c in enumerate(program.objective):
        variable = j + 1
        if c > 0:
            clauses.append(Clause([variable], weight=c))
        elif c < 0:
            clauses.append(Clause([-variable], weight=-c))
            offset += c  # choosing x_j = 1 loses |c|
    pool = _VariablePool(program.num_variables + 1)
    for coefficients, bound in program.constraints:
        # normalize negative coefficients with x -> 1 - x
        normalized = []
        shifted_bound = bound
        flips = []
        for j, a in enumerate(coefficients):
            if a < 0:
                normalized.append(-a)
                shifted_bound += -a
                flips.append(j)
            else:
                normalized.append(a)
        if shifted_bound < 0:
            raise MemcomputingError("constraint infeasible for all x")
        if sum(normalized) <= shifted_bound:
            continue  # vacuous constraint
        hard_clauses = []
        root = _encode_leq_flipped(normalized, shifted_bound, flips, pool,
                                   hard_clauses)
        if root == "F":
            raise MemcomputingError("constraint infeasible for all x")
        if root != "T":
            hard_clauses.append(Clause([root]))
        clauses.extend(hard_clauses)
    num_variables = pool.next_variable - 1
    if not any(c.weight is not None for c in clauses):
        raise MemcomputingError("ILP has a constant objective")
    return CnfFormula(clauses, num_variables=num_variables), offset


def _encode_leq_flipped(coefficients, bound, flipped_positions, pool,
                        clauses):
    """BDD encoding where some problem variables enter negated."""
    flipped = set(flipped_positions)
    suffix_max = np.concatenate([np.cumsum(coefficients[::-1])[::-1],
                                 [0]])
    memo = {}

    def literal_for(index):
        variable = index + 1
        return -variable if index in flipped else variable

    def node(index, slack):
        if slack < 0:
            return "F"
        if suffix_max[index] <= slack:
            return "T"
        key = (index, slack)
        if key in memo:
            return memo[key]
        high = node(index + 1, slack - coefficients[index])
        low = node(index + 1, slack)
        if high == low:
            memo[key] = high
            return high
        y = pool.fresh()
        x = literal_for(index)
        # Tseitin-encode y <-> (x ? high : low), folding constant branches.
        if high == "T" and low == "F":
            # y <-> x
            clauses.append(Clause([-y, x]))
            clauses.append(Clause([y, -x]))
        elif high == "F" and low == "T":
            # y <-> not x
            clauses.append(Clause([-y, -x]))
            clauses.append(Clause([y, x]))
        elif high == "T":
            # y <-> (x or low)
            clauses.append(Clause([-y, x, low]))
            clauses.append(Clause([y, -x]))
            clauses.append(Clause([y, -low]))
        elif high == "F":
            # y <-> (not x and low)
            clauses.append(Clause([-y, -x]))
            clauses.append(Clause([-y, low]))
            clauses.append(Clause([y, x, -low]))
        elif low == "T":
            # y <-> (not x or high)
            clauses.append(Clause([-y, -x, high]))
            clauses.append(Clause([y, x]))
            clauses.append(Clause([y, -high]))
        elif low == "F":
            # y <-> (x and high)
            clauses.append(Clause([-y, x]))
            clauses.append(Clause([-y, high]))
            clauses.append(Clause([y, -x, -high]))
        else:
            clauses.append(Clause([-y, -x, high]))
            clauses.append(Clause([-y, x, low]))
            clauses.append(Clause([y, -x, -high]))
            clauses.append(Clause([y, x, -low]))
        memo[key] = y
        return y

    return node(0, bound)


class IlpResult:
    """Outcome of an ILP solve.

    Attributes
    ----------
    assignment : dict or None
        Binary solution over the original variables (1-indexed).
    objective : float
        c.x of the returned assignment (-inf if infeasible/not found).
    feasible : bool
    """

    def __init__(self, assignment, objective, feasible):
        self.assignment = assignment
        self.objective = float(objective)
        self.feasible = bool(feasible)

    def __repr__(self):
        return "IlpResult(objective=%g, feasible=%s)" % (self.objective,
                                                         self.feasible)


def solve_ilp_memcomputing(program, max_steps=60_000, dt=0.08,
                           check_every=25, x_l_max=20.0, restarts=4,
                           hard_scale=2.0, rng=None):
    """Solve a 0-1 ILP with the DMM MaxSAT dynamics (anytime).

    The weighted dynamics run on the compiled formula, but feasibility
    and objective are evaluated directly on the *original* variables at
    every checkpoint: the BDD auxiliaries are definitions, so their
    instantaneous thresholded values need not be self-consistent for the
    original assignment to be judged.  Hard clauses carry
    ``hard_scale * max(soft weight)`` -- strong enough to steer toward
    feasibility, weak enough that the objective terms stay audible (a
    total-soft-dominating hard weight flattens the objective landscape).
    The budget is split across ``restarts`` fresh initial conditions.

    Returns an :class:`IlpResult` over the original variables.
    """
    from .dynamics import DmmSystem

    rng = make_rng(rng)
    formula, _offset = ilp_to_maxsat(program)
    max_soft = max(c.weight for c in formula.soft_clauses)
    reweighted = [Clause(c.literals, weight=c.weight)
                  for c in formula.soft_clauses]
    reweighted += [Clause(c.literals, weight=hard_scale * max_soft)
                   for c in formula.hard_clauses]
    weighted = CnfFormula(reweighted, num_variables=formula.num_variables)
    system = DmmSystem(weighted, x_l_max=x_l_max)
    lower, upper = system.lower_bounds(), system.upper_bounds()
    best = IlpResult(None, -np.inf, False)
    steps_per_restart = max(1, max_steps // max(1, restarts))
    for _restart in range(max(1, restarts)):
        state = system.initial_state(rng)
        for step in range(1, steps_per_restart + 1):
            state = state + dt * system.rhs(step * dt, state)
            np.clip(state, lower, upper, out=state)
            if step % check_every == 0 or step == steps_per_restart:
                full_assignment = system.assignment_from_state(state)
                assignment = {v: full_assignment[v]
                              for v in range(1, program.num_variables + 1)}
                if not program.is_feasible(assignment):
                    continue
                objective = program.objective_value(assignment)
                if objective > best.objective:
                    best = IlpResult(assignment, objective, True)
    return best


def solve_ilp_bruteforce(program):
    """Exact optimum by enumeration (tests/benchmarks reference)."""
    if program.num_variables > 22:
        raise MemcomputingError("brute force limited to 22 variables")
    best = IlpResult(None, -np.inf, False)
    for bits in itertools.product([False, True],
                                  repeat=program.num_variables):
        assignment = {j + 1: bits[j]
                      for j in range(program.num_variables)}
        if not program.is_feasible(assignment):
            continue
        value = program.objective_value(assignment)
        if value > best.objective:
            best = IlpResult(assignment, value, True)
    return best


def knapsack(values, weights, capacity):
    """The classic 0-1 knapsack as a :class:`BinaryLinearProgram`."""
    if len(values) != len(weights):
        raise MemcomputingError("values/weights length mismatch")
    program = BinaryLinearProgram(len(values), values)
    program.add_constraint(weights, capacity)
    return program
