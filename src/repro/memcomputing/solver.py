"""DMMSolver: solve CNF-SAT by integrating the memcomputing dynamics.

"The original problem is then solved by applying the appropriate signals
at specific input terminals, and then letting the circuit reach a
steady-state.  The signals at the appropriate output terminals then
represent the solution to the original problem."

The solver integrates :class:`repro.memcomputing.dynamics.DmmSystem` with
forward Euler and per-component clipping (the box constraints of Eq. 2),
periodically thresholding the voltages into a digital assignment; it
stops as soon as that assignment satisfies the formula.  Integration
*steps* are the solver's work metric -- the quantity the scaling
benchmarks compare against WalkSAT flips and DPLL nodes.
"""

import time

import numpy as np

from ..core import cache as result_cache
from ..core import parallel, profiling, resilience, telemetry
from ..core.exceptions import DmmConvergenceError
from ..core.rngs import make_rng, spawn_rngs
from .dynamics import DmmSystem


class DmmResult:
    """Outcome of a DMM solve.

    Attributes
    ----------
    satisfied : bool
        True when a satisfying assignment was found.
    assignment : dict or None
        DIMACS-style variable -> bool mapping (best-effort when
        unsatisfied).
    steps : int
        Forward-Euler integration steps consumed.
    sim_time : float
        Dynamical (integrated) time reached.
    wall_time : float
        Wall-clock seconds spent.
    restarts : int
        Number of fresh random initial conditions used.
    unsat_trace : list of (sim_time, unsat_count)
        Coarse trace of the digital unsatisfied-clause count, used by the
        instanton diagnostics.
    """

    def __init__(self, satisfied, assignment, steps, sim_time, wall_time,
                 restarts, unsat_trace):
        self.satisfied = bool(satisfied)
        self.assignment = assignment
        self.steps = int(steps)
        self.sim_time = float(sim_time)
        self.wall_time = float(wall_time)
        self.restarts = int(restarts)
        self.unsat_trace = list(unsat_trace)

    def __repr__(self):
        return ("DmmResult(satisfied=%s, steps=%s, sim_time=%s, "
                "wall_time=%s, restarts=%d)"
                % (self.satisfied, telemetry.fmt_quantity(self.steps),
                   telemetry.fmt_quantity(self.sim_time),
                   telemetry.fmt_seconds(self.wall_time), self.restarts))


class DmmSolver:
    """Digital-memcomputing SAT solver.

    Parameters
    ----------
    dt : float
        Forward-Euler step.  The published DMM-SAT integrations use steps
        of this order; the dynamics' robustness to integration error is
        itself one of the paper's claims (topological critical points).
    max_steps : int
        Total step budget across restarts.
    check_every : int
        Steps between digital solution checks.
    restart_after : int or None
        Steps before drawing a fresh initial condition (None: never).
    params, x_l_max :
        Forwarded to :class:`DmmSystem`.
    noise_sigma : float
        Optional additive white noise amplitude on dv/dt (used by the
        robustness study DMM-NOISE; 0 disables).
    """

    def __init__(self, dt=0.08, max_steps=2_000_000, check_every=25,
                 restart_after=None, params=None, x_l_max=None,
                 noise_sigma=0.0):
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = float(dt)
        self.max_steps = int(max_steps)
        self.check_every = int(check_every)
        self.restart_after = restart_after
        self.params = params
        self.x_l_max = x_l_max
        self.noise_sigma = float(noise_sigma)

    def solve(self, formula, rng=None, raise_on_failure=False):
        """Integrate until the formula is satisfied or the budget is spent.

        Returns a :class:`DmmResult`; raises
        :class:`DmmConvergenceError` instead when ``raise_on_failure``.

        Telemetry (when enabled): a ``dmm.solver.solve`` span, counters
        for steps / checkpoints / restarts / instanton events (checkpoint
        transitions where the digital unsat count jumped), and a
        ``dmm.solver.instanton`` trace event per jump.
        """
        rng = make_rng(rng)
        registry = telemetry.get_registry()
        with telemetry.span("dmm.solver.solve",
                            variables=formula.num_variables,
                            clauses=formula.num_clauses) as solve_span:
            result = self._integrate(formula, rng, registry)
            solve_span.set_attr("satisfied", result.satisfied)
            solve_span.set_attr("steps", result.steps)
            solve_span.set_attr("restarts", result.restarts)
        if raise_on_failure and not result.satisfied:
            raise DmmConvergenceError(
                "DMM did not satisfy the formula in %d steps" % self.max_steps)
        return result

    def _integrate(self, formula, rng, registry):
        """The forward-Euler loop; returns a :class:`DmmResult`."""
        system = DmmSystem(formula, params=self.params, x_l_max=self.x_l_max)
        lower = system.lower_bounds()
        upper = system.upper_bounds()
        num_variables = system.num_variables
        enabled = registry.enabled

        start = time.perf_counter()
        state = system.initial_state(rng)
        steps = 0
        restarts = 0
        steps_since_restart = 0
        sim_time = 0.0
        satisfied = None
        last_unsat = system.unsatisfied_count(state)
        instanton_events = 0
        unsat_trace = [(0.0, last_unsat)]

        while steps < self.max_steps:
            derivative = system.rhs(sim_time, state)
            if self.noise_sigma > 0.0:
                derivative[:num_variables] += rng.normal(
                    0.0, self.noise_sigma, size=num_variables)
            state = state + self.dt * derivative
            np.clip(state, lower, upper, out=state)
            steps += 1
            steps_since_restart += 1
            sim_time += self.dt
            if steps % self.check_every == 0:
                unsat = system.unsatisfied_count(state)
                unsat_trace.append((sim_time, unsat))
                if unsat != last_unsat:
                    instanton_events += 1
                    if enabled:
                        telemetry.event("dmm.solver.instanton",
                                        sim_time=sim_time,
                                        unsat_from=last_unsat,
                                        unsat_to=unsat)
                    last_unsat = unsat
                if unsat == 0:
                    satisfied = True
                    break
            if (self.restart_after is not None
                    and steps_since_restart >= self.restart_after):
                state = system.initial_state(rng)
                restarts += 1
                steps_since_restart = 0

        if satisfied is None:
            satisfied = system.is_solution(state)
        wall_time = time.perf_counter() - start
        if enabled:
            registry.counter("dmm.solver.solves").inc()
            registry.counter("dmm.solver.steps").inc(steps)
            registry.counter("dmm.solver.checkpoints").inc(
                len(unsat_trace) - 1)
            registry.counter("dmm.solver.restarts").inc(restarts)
            registry.counter("dmm.solver.instanton_events").inc(
                instanton_events)
            registry.gauge("dmm.solver.sim_time").set(sim_time)
            registry.histogram("dmm.solver.steps_per_solve").observe(steps)
            profiling.record_throughput("dmm.solver.steps", steps,
                                        wall_time)
        return DmmResult(satisfied, system.assignment_from_state(state),
                         steps, sim_time, wall_time, restarts, unsat_trace)


class PortfolioResult:
    """Outcome of a parallel-restart portfolio solve.

    Attributes
    ----------
    results : list
        One entry per portfolio member, in member order: a
        :class:`DmmResult`, or a
        :class:`~repro.core.parallel.TaskFailure` for a member whose
        worker failed.
    """

    def __init__(self, results):
        self.results = list(results)

    @property
    def attempts(self):
        """Number of portfolio members launched."""
        return len(self.results)

    @property
    def best(self):
        """The winning member, chosen by a worker-count-independent rule.

        Satisfied members win over unsatisfied; ties break on fewest
        integration steps, then lowest member index -- a deterministic
        function of the member results alone, so the winner does not
        depend on which worker finished first.  ``None`` when every
        member failed.
        """
        ranked = [
            (not result.satisfied, result.steps, index)
            for index, result in enumerate(self.results)
            if isinstance(result, DmmResult)
        ]
        if not ranked:
            return None
        return self.results[min(ranked)[2]]

    @property
    def satisfied(self):
        """True when any member satisfied the formula."""
        best = self.best
        return best is not None and best.satisfied

    def __repr__(self):
        return "PortfolioResult(attempts=%d, satisfied=%s, best=%r)" % (
            self.attempts, self.satisfied, self.best)


def _portfolio_attempt(payload):
    """Worker entry point: one independent restart of the DMM solver."""
    formula, solver_kwargs, rng = payload
    return DmmSolver(**solver_kwargs).solve(formula, rng=rng)


def _member_is_result(value):
    """Validate hook: anything but a :class:`DmmResult` is corrupted."""
    return isinstance(value, DmmResult)


def _encode_member(result):
    return {"satisfied": result.satisfied,
            "assignment": None if result.assignment is None
            else {str(var): bool(val)
                  for var, val in result.assignment.items()},
            "steps": result.steps, "sim_time": result.sim_time,
            "wall_time": result.wall_time, "restarts": result.restarts,
            "unsat_trace": [[float(t), int(u)]
                            for t, u in result.unsat_trace]}


def _decode_member(doc):
    assignment = doc["assignment"]
    if assignment is not None:
        assignment = {int(var): bool(val) for var, val in assignment.items()}
    return DmmResult(doc["satisfied"], assignment, doc["steps"],
                     doc["sim_time"], doc["wall_time"], doc["restarts"],
                     [tuple(entry) for entry in doc["unsat_trace"]])


def solve_portfolio(formula, attempts=4, rng=None, workers=None,
                    timeout=None, retry=None, checkpoint=None,
                    resume_from=None, checkpoint_every=1, cache=None,
                    **solver_kwargs):
    """Race ``attempts`` independent restarts; returns a portfolio result.

    The parallel analogue of :class:`DmmSolver`'s ``restart_after``
    budget: instead of restarting *sequentially* inside one step budget,
    the portfolio draws ``attempts`` independent initial conditions
    (child generators spawned from ``rng``, one per member, so the
    streams do not depend on the worker count) and integrates them
    concurrently.  Member results are collected in member order and the
    winner picked by :attr:`PortfolioResult.best` -- deterministic given
    the seed, whatever ``workers`` is.

    ``timeout`` (seconds per member) and worker crashes mark individual
    members failed without sinking the portfolio; ``retry`` (attempt
    budget or :class:`~repro.core.resilience.RetryPolicy`) re-runs a
    failed member with its original stream before giving up;
    ``checkpoint``/``resume_from`` (paths) persist finished members to a
    JSON checkpoint so a killed portfolio resumes instead of restarting;
    ``cache`` (None / False / path / :class:`~repro.core.cache.ResultCache`)
    reuses per-member results content-addressed by formula, settings, and
    RNG fingerprint (:mod:`repro.core.cache`; seeded runs only);
    ``solver_kwargs`` are forwarded to every member's
    :class:`DmmSolver`.
    """
    if attempts < 1:
        raise ValueError("attempts must be positive, got %r" % attempts)
    # Fingerprint the RNG argument before spawn_rngs advances it.
    meta = {"attempts": int(attempts),
            "solver_kwargs": resilience.jsonable(solver_kwargs),
            "rng": resilience.rng_fingerprint(rng)}
    ckpt = None
    if checkpoint is not None or resume_from is not None:
        ckpt = resilience.Checkpointer(
            checkpoint if checkpoint is not None else resume_from,
            "dmm-portfolio", meta=meta, encode=_encode_member,
            decode=_decode_member, every=checkpoint_every,
            resume_from=resume_from)
    cache_meta = dict(meta,
                      formula=result_cache.formula_fingerprint(formula))
    spec = result_cache.spec_for(cache, "dmm-portfolio", cache_meta,
                                 encode=_encode_member,
                                 decode=_decode_member)
    rngs = spawn_rngs(rng, attempts)
    tasks = [(formula, solver_kwargs, member_rng) for member_rng in rngs]
    engine = parallel.ParallelMap(workers=workers, timeout=timeout)
    with telemetry.span("dmm.portfolio.solve", attempts=attempts):
        results = engine.map(_portfolio_attempt, tasks, on_error="return",
                             retry=retry, validate=_member_is_result,
                             checkpoint=ckpt, cache=spec)
    registry = telemetry.get_registry()
    if registry.enabled:
        registry.counter("dmm.portfolio.solves").inc()
        registry.counter("dmm.portfolio.attempts").inc(attempts)
    return PortfolioResult(results)
