"""Vectorized DMM ensembles: time-to-solution distributions ([54]).

The paper's [54] ("Evidence of exponential speed-up ...") does not report
single runs: its claims live in *time-to-solution quantiles* over many
random initial conditions per instance.  This module provides that
methodology: a batched integrator advances ``B`` independent DMM
trajectories of the same formula simultaneously (one numpy tensor, no
Python-level per-trajectory loop), records when each trajectory first
satisfies the formula, and summarizes the TTS distribution.

The batched right-hand side evaluates the same Eqs. 1-2 vector field as
:class:`~repro.memcomputing.dynamics.DmmSystem` -- verified equal
trajectory-for-trajectory by the test suite.
"""

import time

import numpy as np

from ..core import cache as result_cache
from ..core import integrators, parallel, profiling, resilience
from ..core.exceptions import MemcomputingError
from ..core.rngs import make_rng, spawn_rngs
from .dynamics import DmmSystem


class EnsembleResult:
    """Outcome of a batched DMM run.

    Attributes
    ----------
    solve_steps : numpy.ndarray, shape (batch,)
        Integration step at which each trajectory first satisfied the
        formula (``inf`` for trajectories that never did).
    solved_fraction : float
        Share of trajectories that solved within the budget.
    max_steps : int
        The step budget.
    """

    def __init__(self, solve_steps, max_steps):
        self.solve_steps = np.asarray(solve_steps, dtype=float)
        self.max_steps = int(max_steps)

    @property
    def unsolved_mask(self):
        """Boolean array: True where a trajectory never solved.

        The ``inf`` entries of ``solve_steps`` are a sentinel, not data;
        quantile summaries must slice them away through this mask rather
        than rank the sentinel itself.
        """
        return ~np.isfinite(self.solve_steps)

    @property
    def solved_steps(self):
        """Solve steps of the solved trajectories only (sentinel-free)."""
        return self.solve_steps[~self.unsolved_mask]

    @property
    def solved_fraction(self):
        """Fraction of trajectories that reached a solution."""
        return float(np.mean(~self.unsolved_mask))

    @property
    def total_trajectory_steps(self):
        """Integration steps summed over the ensemble.

        Unsolved trajectories contribute the full ``max_steps`` budget
        (their sentinel is ``inf``, which is bookkeeping, not work).
        This is the unit count behind the ``dmm.ensemble.traj_steps``
        throughput instrument.
        """
        return float(np.where(np.isfinite(self.solve_steps),
                              self.solve_steps, self.max_steps).sum())

    def quantile(self, q):
        """TTS quantile in steps; ``inf`` when too few runs solved.

        This is [54]'s headline statistic (they report the median and
        higher quantiles of the TTS distribution).  The rank is taken
        over the *whole* ensemble (unsolved trajectories count as
        slower-than-everything), but the returned value is always read
        from the solved subset -- the ``inf`` sentinels are excluded via
        :attr:`unsolved_mask`.
        """
        if self.solved_fraction < q:
            return float("inf")
        finite = np.sort(self.solved_steps)
        index = int(np.ceil(q * len(self.solve_steps))) - 1
        return float(finite[max(0, min(index, len(finite) - 1))])

    def __repr__(self):
        return ("EnsembleResult(batch=%d, solved=%.0f%%, median=%s)"
                % (len(self.solve_steps), 100 * self.solved_fraction,
                   self.quantile(0.5)))


class BatchedDmm:
    """B simultaneous trajectories of one formula's DMM dynamics.

    The state is a ``(B, state_size)`` array; the vector field is the
    batched transliteration of :meth:`DmmSystem.rhs` (same parameters,
    same clipping).
    """

    def __init__(self, formula, params=None, x_l_max=None):
        self.system = DmmSystem(formula, params=params, x_l_max=x_l_max)
        self._scatter_cache = {}

    def _batched_scatter_index(self, batch):
        """Flat dv scatter indices for a ``batch``-trajectory stack.

        Trajectory ``b``'s literal slots map into bins ``[b*N, (b+1)*N)``
        so one :func:`np.bincount` covers the whole stack.  Cached per
        batch size: the freeze-solved integration loop shrinks the
        active stack as trajectories drain, so a handful of sizes recur
        thousands of times.
        """
        index = self._scatter_cache.get(batch)
        if index is None:
            n = self.system.num_variables
            flat = self.system.var_index.ravel()
            index = (flat[None, :]
                     + (np.arange(batch) * n)[:, None]).ravel()
            self._scatter_cache[batch] = index
        return index

    def initial_states(self, batch, rng):
        """Stack of ``batch`` independent random initial states."""
        if batch < 1:
            raise MemcomputingError("batch must be positive")
        return np.stack([self.system.initial_state(rng)
                         for _ in range(batch)])

    def rhs_batch(self, states):
        """Vector field for every trajectory at once.

        ``states`` has shape ``(B, N + 2M)``; returns the same shape.
        """
        system = self.system
        p = system.params
        n, m = system.num_variables, system.num_clauses
        v = states[:, :n]                       # (B, N)
        x_s = states[:, n:n + m]                # (B, M)
        x_l = states[:, n + m:]                 # (B, M)
        # per-literal q: (B, M, K)
        q = 0.5 * (1.0 - system.sign[None, :, :]
                   * v[:, system.var_index])
        order = np.argsort(q, axis=2)
        batch_index = np.arange(states.shape[0])[:, None]
        row_index = np.arange(m)[None, :]
        smallest = q[batch_index, row_index, order[:, :, 0]]
        second = q[batch_index, row_index, order[:, :, 1]]
        width = q.shape[2]
        min_others = np.where(
            np.arange(width)[None, None, :] == order[:, :, 0:1],
            second[:, :, None], smallest[:, :, None])
        grad = 0.5 * system.sign[None, :, :] * min_others

        best_slot = order[:, :, 0]              # (B, M)
        rigid = np.zeros_like(q)
        best_sign = system.sign[row_index, best_slot]
        best_var = system.var_index[row_index, best_slot]
        rigid[batch_index, row_index, best_slot] = 0.5 * (
            best_sign - v[batch_index, best_var])

        gain_g = (system.weights[None, :] * x_l * x_s)[:, :, None]
        gain_r = (system.weights[None, :]
                  * (1.0 + p["zeta"] * x_l) * (1.0 - x_s))[:, :, None]
        contribution = (gain_g * grad + gain_r * rigid) \
            * system._slot_mask[None, :, :]

        # One order-preserving bincount over all trajectories: indices
        # are offset by b*N so every trajectory scatters into its own
        # bin range, and within a bin the weights arrive in the same
        # order as the per-trajectory np.add.at loop this replaces --
        # the sums are bit-identical, without the Python-level batch
        # loop.
        dv = np.bincount(
            self._batched_scatter_index(states.shape[0]),
            weights=contribution.ravel(),
            minlength=states.shape[0] * n).reshape(states.shape[0], n)

        big_c = q.min(axis=2)
        dx_s = p["beta"] * (x_s + p["epsilon"]) * (big_c - p["gamma"])
        dx_l = p["alpha"] * (big_c - p["delta"])
        return np.concatenate([dv, dx_s, dx_l], axis=1)

    def unsatisfied_counts(self, states):
        """Digital unsat count per trajectory."""
        system = self.system
        n = system.num_variables
        v = states[:, :n]
        q = 0.5 * (1.0 - system.sign[None, :, :]
                   * v[:, system.var_index])
        return (q.min(axis=2) >= 0.5).sum(axis=1)


def _integrate_batch(formula, batch, dt, max_steps, check_every, params,
                     x_l_max, rng):
    """Advance ``batch`` trajectories; returns the solve-step array.

    The chunkable integration core behind :func:`solve_ensemble`: one
    call integrates one contiguous block of trajectories with one RNG
    stream, so the parallel engine can run blocks on separate workers.
    """
    batched = BatchedDmm(formula, params=params, x_l_max=x_l_max)
    system = batched.system
    lower = system.lower_bounds()[None, :]
    upper = system.upper_bounds()[None, :]
    states = batched.initial_states(batch, rng)
    solve_steps = np.full(batch, np.inf)
    active = np.ones(batch, dtype=bool)

    # trajectories that start on a solution
    initial_unsat = batched.unsatisfied_counts(states)
    solve_steps[initial_unsat == 0] = 0
    active &= initial_unsat > 0

    # Advance the *compacted* active stack in runs between solve checks
    # (trajectories only retire at checks, so nothing is lost by not
    # re-testing ``active`` every step).  The Euler-clip update is
    # row-elementwise, so the compacted runs are bit-identical to the
    # old advance-everything-every-step loop -- without the per-step
    # gather/scatter.
    step = 0
    while step < max_steps and active.any():
        run = min(check_every, max_steps - step)
        live = integrators.euler_clip_advance(
            batched.rhs_batch, states[active], dt, run, lower, upper)
        states[active] = live
        step += run
        unsat = batched.unsatisfied_counts(live)
        freshly_solved = unsat == 0
        if freshly_solved.any():
            active_indices = np.flatnonzero(active)
            solved_indices = active_indices[freshly_solved]
            solve_steps[solved_indices] = step
            active[solved_indices] = False
    return solve_steps


def _integrate_chunk(payload):
    """Worker entry point: integrate one trajectory block.

    Module-level (picklable) so :class:`repro.core.parallel.ParallelMap`
    can ship it to worker processes.
    """
    (formula, batch, dt, max_steps, check_every, params, x_l_max,
     rng) = payload
    return _integrate_batch(formula, batch, dt, max_steps, check_every,
                            params, x_l_max, rng)


def _chunk_no_nan(solve_steps):
    """Validate hook: a solve-step block may hold ``inf`` (the unsolved
    sentinel) but never NaN -- NaN means a corrupted worker result."""
    return not np.isnan(solve_steps).any()


def _encode_steps(solve_steps):
    return [float(step) for step in solve_steps]


def _decode_steps(values):
    return np.asarray(values, dtype=float)


def _ensemble_meta(formula, batch, dt, max_steps, check_every, params,
                   x_l_max, rng, sizes=None):
    """Workload fingerprint meta shared by the checkpoint and the cache.

    The cache additionally hashes the formula *content* (a checkpoint
    file is private to one run; a cache directory is shared across
    runs, so the key must distinguish different formulas with identical
    solver settings).
    """
    meta = {"batch": int(batch), "dt": dt, "max_steps": int(max_steps),
            "check_every": int(check_every), "params": params,
            "x_l_max": x_l_max, "rng": resilience.rng_fingerprint(rng),
            "formula": result_cache.formula_fingerprint(formula)}
    if sizes is not None:
        meta["sizes"] = sizes
    return meta


def solve_ensemble(formula, batch=32, dt=0.08, max_steps=100_000,
                   check_every=25, params=None, x_l_max=None, rng=None,
                   workers=None, chunk_size=None, timeout=None, retry=None,
                   checkpoint=None, resume_from=None, checkpoint_every=1,
                   cache=None):
    """Run ``batch`` trajectories; returns an :class:`EnsembleResult`.

    Solved trajectories are frozen (their state stops advancing) so the
    remaining work shrinks as the ensemble drains.

    Parameters (parallel execution)
    -------------------------------
    workers : int or None
        Worker processes for the trajectory blocks (None: the
        ``REPRO_WORKERS`` environment default, normally 1 == serial).
    chunk_size : int or None
        Trajectories per block.  ``workers=1`` with ``chunk_size=None``
        (and no resilience options) keeps the historical single-stream
        path (all ``batch`` trajectories drawn from one generator); any
        other combination uses the chunked path, whose chunking and
        per-chunk RNG spawning depend only on ``(batch, chunk_size,
        rng)`` -- results are bit-identical for every worker count (the
        determinism suite checks serial vs. 2 vs. 4 workers).

    Parameters (resilience)
    -----------------------
    timeout : float or None
        Per-block wall-clock budget (enforced on the process path).
    retry : None, int, or RetryPolicy
        Retry budget per failed block; retried blocks replay their
        original RNG stream, so results stay bit-identical to a
        fault-free run.
    checkpoint : str or None
        Path of a JSON checkpoint updated as blocks complete; an
        existing file is resumed (finished blocks are skipped).  The
        checkpoint records the workload fingerprint -- batch, chunking,
        physics parameters, RNG bookkeeping -- and refuses to resume a
        mismatched run.
    resume_from : str or None
        Explicit checkpoint to resume (must exist); defaults to
        ``checkpoint`` when that file exists.
    checkpoint_every : int
        Flush the checkpoint after this many newly finished blocks.
    cache : None, False, str, or ResultCache
        Content-addressed result reuse (:mod:`repro.core.cache`).
        ``None`` consults the active cache (``REPRO_CACHE_DIR`` or
        :func:`repro.core.cache.use_cache`); ``False`` disables.  The
        serial fast path caches the whole solve-step array (integer
        seeds only); the chunked path caches per trajectory block.
        Workloads with ``rng=None`` (fresh entropy) are never cached.
    """
    workers = parallel.resolve_workers(workers)
    resilient = (timeout is not None or retry is not None
                 or checkpoint is not None or resume_from is not None)
    if workers == 1 and chunk_size is None and not resilient:
        spec = None
        if result_cache.cacheable_seed(rng):
            spec = result_cache.spec_for(
                cache, "dmm-ensemble",
                _ensemble_meta(formula, batch, dt, max_steps, check_every,
                               params, x_l_max, rng))
        if spec is not None:
            hit, solve_steps = spec.lookup()
            if hit:
                return EnsembleResult(solve_steps, max_steps)
        start = time.perf_counter()
        solve_steps = _integrate_batch(formula, batch, dt, max_steps,
                                       check_every, params, x_l_max,
                                       make_rng(rng))
        result = EnsembleResult(solve_steps, max_steps)
        profiling.record_throughput("dmm.ensemble.traj_steps",
                                    result.total_trajectory_steps,
                                    time.perf_counter() - start)
        if spec is not None:
            spec.store(np.asarray(solve_steps, dtype=float))
        return result
    if batch < 1:
        raise MemcomputingError("batch must be positive")
    sizes = parallel.chunk_sizes(batch, chunk_size)
    # Fingerprint the RNG argument before spawn_rngs advances it.
    meta = _ensemble_meta(formula, batch, dt, max_steps, check_every,
                          params, x_l_max, rng, sizes=sizes)
    ckpt = None
    if checkpoint is not None or resume_from is not None:
        ckpt_meta = {key: value for key, value in meta.items()
                     if key != "formula"}
        ckpt = resilience.Checkpointer(
            checkpoint if checkpoint is not None else resume_from,
            "dmm-ensemble", meta=ckpt_meta, encode=_encode_steps,
            decode=_decode_steps, every=checkpoint_every,
            resume_from=resume_from)
    spec = result_cache.spec_for(cache, "dmm-ensemble-chunk", meta,
                                 encode=_encode_steps,
                                 decode=_decode_steps)
    rngs = spawn_rngs(rng, len(sizes))
    tasks = [(formula, size, dt, max_steps, check_every, params, x_l_max,
              chunk_rng) for size, chunk_rng in zip(sizes, rngs)]
    start = time.perf_counter()
    chunks = parallel.ParallelMap(workers=workers, timeout=timeout).map(
        _integrate_chunk, tasks, retry=retry, validate=_chunk_no_nan,
        checkpoint=ckpt, cache=spec)
    result = EnsembleResult(np.concatenate(chunks), max_steps)
    profiling.record_throughput("dmm.ensemble.traj_steps",
                                result.total_trajectory_steps,
                                time.perf_counter() - start)
    return result
