"""The DMM equations of motion (the paper's Eqs. 1-2, instantiated for SAT).

Section IV gives the generic form

    dv_i/dt = dg_M x dV_M + g_R dV_R           (Eq. 1)
    dx/dt   = h(dV_M, x),  x in [0, 1]          (Eq. 2)

"The first and second terms on the RHS of Eq. 1 represent the
contributions from resistors with memory and standard resistors" -- i.e. a
memory-weighted *gradient-like* drive and a memoryless *rigidity* drive.
The concrete, published instantiation of these equations for k-SAT (the
form used by the studies the paper cites: Traversa & Di Ventra 2017,
Bearden et al. 2018, Traversa et al., Complexity 2018) is implemented
here:

for every clause ``m`` over literals ``l_{m,i}`` on variables ``n(m, i)``
with continuous variable voltages ``v in [-1, 1]``:

    q_{m,i} = (1 - l_{m,i} v_{n}) / 2           in [0, 1]
    C_m     = min_i q_{m,i}                     clause constraint function

    G_{m,i} = (1/2) l_{m,i} min_{j != i} q_{m,j}     (gradient term)
    R_{m,i} = (1/2) (l_{m,i} - v_n)   if q_{m,i} == C_m else 0  (rigidity)

    dv_n/dt  = sum_m w_m [ x^l_m x^s_m G_{m,i} +
                           (1 + zeta x^l_m)(1 - x^s_m) R_{m,i} ]
    dx^s_m/dt = beta (x^s_m + eps)(C_m - gamma)      short-term memory
    dx^l_m/dt = alpha (C_m - delta)                  long-term memory

with ``x^s in [0, 1]`` (the bounded memristive state of Eq. 2), ``x^l in
[1, x^l_max]``, and optional per-clause weights ``w_m`` (used by the
MaxSAT solver).  A clause is digitally satisfied when ``C_m < 1/2``.

The memory variables are exactly the paper's "active elements ...
provide the necessary feedback": the short-term memory switches a clause
between gradient-driven and rigidity-driven behaviour; the long-term
memory accumulates how persistently a clause has been frustrated,
implementing the time non-locality that gives memcomputing its name.
"""

import numpy as np

from ..core import telemetry
from ..core.cnf import CnfFormula
from ..core.exceptions import MemcomputingError

#: Default dynamics parameters from the published DMM-SAT studies.
DEFAULT_PARAMS = {
    "alpha": 5.0,
    "beta": 20.0,
    "gamma": 0.25,
    "delta": 0.05,
    "epsilon": 1e-3,
    "zeta": 0.1,
}


class DmmSystem:
    """Vectorized DMM vector field for a (possibly weighted) CNF formula.

    State layout: ``[v (N), x_s (M), x_l (M)]``.

    Parameters
    ----------
    formula : CnfFormula
        Clauses over variables 1..N.  Clauses of width 1 and 2 are padded
        by literal repetition (a repeated literal leaves the min-structure
        of the dynamics unchanged).
    params : dict, optional
        Overrides for :data:`DEFAULT_PARAMS`.
    x_l_max : float, optional
        Upper clip for the long-term memory (default ``1e4 * M``).
    """

    def __init__(self, formula, params=None, x_l_max=None):
        if not isinstance(formula, CnfFormula):
            raise MemcomputingError("DmmSystem needs a CnfFormula")
        if formula.num_clauses == 0:
            raise MemcomputingError("formula has no clauses")
        self.formula = formula
        self.params = dict(DEFAULT_PARAMS)
        if params:
            unknown = set(params) - set(DEFAULT_PARAMS)
            if unknown:
                raise MemcomputingError("unknown parameters %r" % sorted(unknown))
            self.params.update(params)
        self.num_variables = formula.num_variables
        self.num_clauses = formula.num_clauses
        width = max(len(clause) for clause in formula.clauses)
        self.clause_width = max(2, width)
        var_index = np.zeros((self.num_clauses, self.clause_width), dtype=np.int64)
        sign = np.zeros((self.num_clauses, self.clause_width), dtype=float)
        weights = np.ones(self.num_clauses)
        for row, clause in enumerate(formula.clauses):
            literals = list(clause.literals)
            while len(literals) < self.clause_width:
                literals.append(literals[-1])  # pad by repetition
            for col, literal in enumerate(literals):
                var_index[row, col] = abs(literal) - 1
                sign[row, col] = 1.0 if literal > 0 else -1.0
            if clause.weight is not None:
                weights[row] = clause.weight
        self.var_index = var_index
        self.sign = sign
        self.weights = weights
        self.x_l_max = float(x_l_max) if x_l_max is not None \
            else 1e4 * self.num_clauses
        # mask marking padded duplicate slots so G/R sums do not double-count
        self._slot_mask = np.ones_like(sign)
        for row, clause in enumerate(formula.clauses):
            self._slot_mask[row, len(clause.literals):] = 0.0
        # Instruments are bound once against the registry active at
        # construction; when telemetry is disabled they are shared no-ops,
        # keeping the rhs hot path at a single extra method call.
        registry = telemetry.get_registry()
        registry.counter("dmm.dynamics.systems").inc()
        if registry.enabled:
            registry.histogram("dmm.dynamics.variables").observe(
                self.num_variables)
            registry.histogram("dmm.dynamics.clauses").observe(
                self.num_clauses)
        self._rhs_counter = registry.counter("dmm.dynamics.rhs_evals")

    # -- state helpers ---------------------------------------------------------

    @property
    def state_size(self):
        """Length of the packed state vector."""
        return self.num_variables + 2 * self.num_clauses

    def initial_state(self, rng):
        """Random initial state: v ~ U(-1,1), x_s = 0.5, x_l = 1."""
        v = rng.uniform(-1.0, 1.0, size=self.num_variables)
        x_s = np.full(self.num_clauses, 0.5)
        x_l = np.ones(self.num_clauses)
        return np.concatenate([v, x_s, x_l])

    def unpack(self, state):
        """Split a packed state into ``(v, x_s, x_l)`` views."""
        n, m = self.num_variables, self.num_clauses
        return state[:n], state[n:n + m], state[n + m:]

    def lower_bounds(self):
        """Per-component clipping floor (Eq. 2's bounded memory)."""
        return np.concatenate([
            np.full(self.num_variables, -1.0),
            np.zeros(self.num_clauses),
            np.ones(self.num_clauses),
        ])

    def upper_bounds(self):
        """Per-component clipping ceiling."""
        return np.concatenate([
            np.ones(self.num_variables),
            np.ones(self.num_clauses),
            np.full(self.num_clauses, self.x_l_max),
        ])

    # -- the vector field -----------------------------------------------------

    def clause_functions(self, v):
        """``(q, C)``: per-literal q values and per-clause constraint C."""
        q = 0.5 * (1.0 - self.sign * v[self.var_index])
        # padded duplicate slots repeat a real literal, so the min is safe
        return q, q.min(axis=1)

    def rhs(self, _t, state):
        """The full DMM vector field ``d(state)/dt``."""
        self._rhs_counter.inc()
        p = self.params
        v, x_s, x_l = self.unpack(state)
        q, big_c = self.clause_functions(v)
        m_rows, width = q.shape

        # gradient term: for slot i, min over the *other* slots
        order = np.argsort(q, axis=1)
        smallest = q[np.arange(m_rows), order[:, 0]]
        second = q[np.arange(m_rows), order[:, 1]]
        min_others = np.where(
            np.arange(width)[None, :] == order[:, 0:1],
            second[:, None], smallest[:, None])
        grad = 0.5 * self.sign * min_others

        # rigidity term: only the best-satisfying slot is driven
        best_slot = order[:, 0]
        rigid = np.zeros_like(q)
        rows = np.arange(m_rows)
        rigid[rows, best_slot] = 0.5 * (
            self.sign[rows, best_slot]
            - v[self.var_index[rows, best_slot]])

        clause_gain_g = (self.weights * x_l * x_s)[:, None]
        clause_gain_r = (self.weights
                         * (1.0 + p["zeta"] * x_l) * (1.0 - x_s))[:, None]
        contribution = (clause_gain_g * grad + clause_gain_r * rigid) \
            * self._slot_mask

        # np.bincount accumulates its weights in input order, exactly
        # like the np.add.at scatter it replaces (bit-identical sums),
        # but runs as a single C loop instead of a buffered ufunc --
        # this scatter was the RHS hot spot.
        dv = np.bincount(self.var_index.ravel(),
                         weights=contribution.ravel(),
                         minlength=self.num_variables)

        dx_s = p["beta"] * (x_s + p["epsilon"]) * (big_c - p["gamma"])
        dx_l = p["alpha"] * (big_c - p["delta"])
        return np.concatenate([dv, dx_s, dx_l])

    # -- digital readout --------------------------------------------------------

    def assignment_from_state(self, state):
        """Threshold the voltages into a DIMACS-style dict assignment."""
        v, _x_s, _x_l = self.unpack(state)
        return {n + 1: bool(v[n] > 0.0) for n in range(self.num_variables)}

    def unsatisfied_count(self, state):
        """Number of digitally unsatisfied clauses at this state."""
        v, _x_s, _x_l = self.unpack(state)
        _q, big_c = self.clause_functions(v)
        return int(np.sum(big_c >= 0.5))

    def is_solution(self, state):
        """True when the thresholded assignment satisfies every clause."""
        return self.unsatisfied_count(state) == 0
