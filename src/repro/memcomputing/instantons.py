"""Trajectory diagnostics: instantons, critical points, absence of chaos.

The paper (Section IV, citing [52], [53], [58]) makes three dynamical
claims about DMMs:

* the transient "proceeds via a succession of classical trajectories
  (instantons) that connect critical points ... with different stability"
  -- observable as *plateaus* in the number of unsatisfied clauses
  punctuated by fast jumps,
* "no periodic orbits or chaos can coexist" with a solution -- observable
  as a non-positive largest-Lyapunov estimate for trajectories that reach
  a solution, and as the trajectory terminating on a fixed point of the
  voltage dynamics,
* distant parts of the machine correlate (DLRO) -- quantified elsewhere
  by :func:`repro.memcomputing.ising.flip_cluster_sizes`.

This module measures the first two on recorded solver runs.
"""

import numpy as np

from ..core import telemetry
from ..core.rngs import make_rng
from .dynamics import DmmSystem


def instanton_census(unsat_trace):
    """Plateau/jump decomposition of an unsatisfied-clause trace.

    ``unsat_trace`` is the solver's list of ``(sim_time, unsat_count)``
    checkpoints.  Returns a dict:

    * ``jumps`` -- number of transitions where the count changed,
    * ``jump_sizes`` -- absolute count changes at those transitions,
    * ``plateaus`` -- number of maximal constant-count segments
      (critical-point visits: jumps + 1 when the trace is non-empty),
    * ``monotone_fraction`` -- fraction of jumps that *decrease* the
      count (instantons overwhelmingly descend toward the solution).
    """
    telemetry.counter("dmm.instantons.censuses").inc()
    counts = [count for _time, count in unsat_trace]
    if len(counts) < 2:
        return {"jumps": 0, "jump_sizes": [], "plateaus": len(counts),
                "monotone_fraction": 1.0}
    deltas = np.diff(counts)
    jump_positions = np.flatnonzero(deltas != 0)
    jump_sizes = [int(abs(deltas[p])) for p in jump_positions]
    descents = int(np.sum(deltas[jump_positions] < 0))
    total_jumps = len(jump_positions)
    telemetry.histogram("dmm.instantons.jumps_per_trace").observe(total_jumps)
    return {
        "jumps": total_jumps,
        "jump_sizes": jump_sizes,
        "plateaus": total_jumps + 1,
        "monotone_fraction": descents / total_jumps if total_jumps else 1.0,
    }


def lyapunov_estimate(formula, rng=None, steps=4_000, dt=0.08,
                      separation=1e-7, renormalize_every=20):
    """Largest-Lyapunov-exponent estimate for the DMM flow on a formula.

    Two trajectories launched ``separation`` apart are integrated side by
    side; their divergence is measured and renormalized every
    ``renormalize_every`` steps (the standard Benettin procedure, adapted
    to the clipped flow).  Returns the mean exponential rate in units of
    1/simulation-time.  For solvable instances the flow is point-
    dissipative, so the estimate is expected to be non-positive once the
    trajectory approaches the solution basin.
    """
    rng = make_rng(rng)
    with telemetry.span("dmm.instantons.lyapunov", steps=steps):
        return _lyapunov_estimate(formula, rng, steps, dt, separation,
                                  renormalize_every)


def _lyapunov_estimate(formula, rng, steps, dt, separation,
                       renormalize_every):
    system = DmmSystem(formula)
    lower, upper = system.lower_bounds(), system.upper_bounds()
    state_a = system.initial_state(rng)
    perturbation = rng.normal(size=state_a.shape)
    perturbation *= separation / np.linalg.norm(perturbation)
    state_b = np.clip(state_a + perturbation, lower, upper)

    rates = []
    for step in range(1, steps + 1):
        state_a = np.clip(state_a + dt * system.rhs(step * dt, state_a),
                          lower, upper)
        state_b = np.clip(state_b + dt * system.rhs(step * dt, state_b),
                          lower, upper)
        if step % renormalize_every == 0:
            distance = np.linalg.norm(state_b - state_a)
            if distance <= 0.0:
                # trajectories merged: strongly contracting segment
                rates.append(-np.inf)
                state_b = np.clip(state_a + perturbation, lower, upper)
                continue
            rates.append(np.log(distance / separation)
                         / (renormalize_every * dt))
            state_b = state_a + (state_b - state_a) * (separation / distance)
    finite = [r for r in rates if np.isfinite(r)]
    if not finite:
        return -np.inf
    return float(np.mean(finite))


def residual_at_solution(formula, rng=None, max_steps=300_000, dt=0.08):
    """Voltage-dynamics residual once the solver halts on a solution.

    Integrates to a solution, then reports the infinity-norm of dv/dt at
    the final state.  Small residuals confirm the halt state sits at (or
    heads into) an attracting critical point rather than a passing
    fluctuation.  Returns ``(residual, solved)``.
    """
    from .solver import DmmSolver

    rng = make_rng(rng)
    solver = DmmSolver(dt=dt, max_steps=max_steps)
    result = solver.solve(formula, rng=rng)
    if not result.satisfied:
        return float("inf"), False
    system = DmmSystem(formula)
    # rebuild the final state's voltages from the returned assignment;
    # memory variables at their satisfied-clause rest values
    voltages = np.array([1.0 if result.assignment[n + 1] else -1.0
                         for n in range(system.num_variables)])
    state = np.concatenate([
        voltages,
        np.zeros(system.num_clauses),      # x_s relaxed to 0 (satisfied)
        np.ones(system.num_clauses),       # x_l at floor
    ])
    derivative = system.rhs(0.0, state)
    dv = derivative[:system.num_variables]
    return float(np.max(np.abs(dv))), True
