"""Self-organizing logic circuits: Boolean circuits run in any direction.

Section IV: "When assembled together to form the full Boolean circuit
representing a given problem, these gates then define a physical
electronic circuit ...  The original problem is then solved by applying
the appropriate signals at specific input terminals, and then letting
the circuit reach a steady-state."

:class:`SolgCircuit` assembles :mod:`repro.memcomputing.solg` gates over
named wires, compiles the whole network to CNF (each gate contributes its
relation clauses; pinned wires contribute unit clauses), and relaxes the
DMM dynamics to a consistent steady state.  Because the gates are
terminal-agnostic the same circuit runs forward (inputs pinned) or
*backward* (outputs pinned) -- the paper's flagship example of the latter
is prime factorization via an inverted multiplier, provided here by
:func:`factorization_circuit` / :func:`factor_with_memcomputing`.
"""

from ..core.cnf import Clause, CnfFormula
from ..core.exceptions import SolgError
from ..core.rngs import make_rng
from .solg import GATE_TYPES, gate_clauses


class SolgCircuit:
    """A network of self-organizing gates over named wires."""

    def __init__(self, name="solg_circuit"):
        self.name = str(name)
        self._wire_ids = {}
        self._gates = []  # (gate_type, [input wires], output wire)

    # -- construction ----------------------------------------------------------

    def wire(self, name):
        """Declare (or fetch) a wire by name; returns the name."""
        if name not in self._wire_ids:
            self._wire_ids[name] = len(self._wire_ids) + 1
        return name

    def add_gate(self, gate_type, inputs, output):
        """Wire a gate of ``gate_type`` from ``inputs`` to ``output``."""
        if gate_type not in GATE_TYPES:
            raise SolgError("unknown gate type %r" % gate_type)
        input_names = [self.wire(w) for w in inputs]
        output_name = self.wire(output)
        self._gates.append((gate_type, input_names, output_name))
        return output_name

    # convenience builders used by the arithmetic circuits
    def gate_and(self, a, b, out):
        """AND gate."""
        return self.add_gate("and", [a, b], out)

    def gate_or(self, a, b, out):
        """OR gate."""
        return self.add_gate("or", [a, b], out)

    def gate_xor(self, a, b, out):
        """XOR gate."""
        return self.add_gate("xor", [a, b], out)

    def gate_not(self, a, out):
        """NOT gate."""
        return self.add_gate("not", [a], out)

    def constant_zero(self, seed_wire, name):
        """A wire forced to 0: AND(seed, NOT seed)."""
        inverted = self.wire(name + "_inv")
        self.gate_not(seed_wire, inverted)
        zero = self.wire(name)
        self.gate_and(seed_wire, inverted, zero)
        return zero

    def half_adder(self, a, b, sum_wire, carry_wire):
        """sum = a xor b; carry = a and b."""
        self.gate_xor(a, b, sum_wire)
        self.gate_and(a, b, carry_wire)

    def full_adder(self, a, b, carry_in, sum_wire, carry_out, scratch):
        """Standard 5-gate full adder; ``scratch`` prefixes helper wires."""
        ab_sum = self.wire(scratch + "_s1")
        ab_carry = self.wire(scratch + "_c1")
        cin_carry = self.wire(scratch + "_c2")
        self.half_adder(a, b, ab_sum, ab_carry)
        self.half_adder(ab_sum, carry_in, sum_wire, cin_carry)
        self.gate_or(ab_carry, cin_carry, carry_out)

    # -- compilation ------------------------------------------------------------

    @property
    def num_wires(self):
        """Number of declared wires."""
        return len(self._wire_ids)

    @property
    def num_gates(self):
        """Number of gates placed."""
        return len(self._gates)

    def to_cnf(self, pinned=None, extra_clauses=None):
        """Compile gate relations plus pinned wires into a CnfFormula.

        ``extra_clauses`` may add constraints expressed over wire names:
        iterables of ``(wire_name, bool polarity)`` pairs.
        """
        clauses = []
        for gate_type, inputs, output in self._gates:
            variables = [self._wire_ids[w] for w in inputs] \
                + [self._wire_ids[output]]
            clauses.extend(gate_clauses(gate_type, variables))
        for wire_name, value in (pinned or {}).items():
            if wire_name not in self._wire_ids:
                raise SolgError("pinned wire %r is not in the circuit"
                                % wire_name)
            variable = self._wire_ids[wire_name]
            clauses.append(Clause([variable if value else -variable]))
        for constraint in (extra_clauses or []):
            literals = []
            for wire_name, polarity in constraint:
                variable = self._wire_ids[wire_name]
                literals.append(variable if polarity else -variable)
            clauses.append(Clause(literals))
        return CnfFormula(clauses, num_variables=self.num_wires)

    def solve(self, pinned=None, extra_clauses=None, solver=None, rng=None):
        """Relax the circuit; returns wire name -> bool for every wire.

        Raises :class:`SolgError` when no steady state is found within
        the solver's budget (inconsistent pins or budget exhaustion).
        """
        from .solver import DmmSolver

        rng = make_rng(rng)
        solver = solver or DmmSolver(max_steps=1_500_000)
        formula = self.to_cnf(pinned=pinned, extra_clauses=extra_clauses)
        result = solver.solve(formula, rng=rng)
        if not result.satisfied:
            raise SolgError(
                "circuit %r found no steady state (%d gates, %d pinned)"
                % (self.name, self.num_gates, len(pinned or {})))
        return {name: result.assignment[index]
                for name, index in self._wire_ids.items()}

    def evaluate_forward(self, inputs):
        """Conventional topological evaluation (for verification).

        ``inputs`` maps wire names to booleans; gates are evaluated in
        insertion order, which is topological for circuits built by the
        helpers here.  Returns the full wire valuation.
        """
        from .solg import gate_truth

        values = dict(inputs)
        for gate_type, gate_inputs, output in self._gates:
            try:
                arguments = [values[w] for w in gate_inputs]
            except KeyError as missing:
                raise SolgError("wire %s not driven before use" % missing)
            values[output] = gate_truth(gate_type, arguments)
        return values

    def __repr__(self):
        return "SolgCircuit(%r, wires=%d, gates=%d)" % (
            self.name, self.num_wires, self.num_gates)


def ripple_adder_circuit(num_bits, prefix_a="a", prefix_b="b",
                         prefix_sum="s", circuit=None):
    """``num_bits``-wide ripple-carry adder; returns (circuit, sum_wires).

    The sum has ``num_bits + 1`` wires (final carry is the top bit).
    """
    circuit = circuit if circuit is not None else SolgCircuit("adder")
    carry = None
    sums = []
    for bit in range(num_bits):
        a = circuit.wire("%s%d" % (prefix_a, bit))
        b = circuit.wire("%s%d" % (prefix_b, bit))
        s = circuit.wire("%s%d" % (prefix_sum, bit))
        if carry is None:
            carry = circuit.wire("%s_carry%d" % (prefix_sum, bit))
            circuit.half_adder(a, b, s, carry)
        else:
            next_carry = circuit.wire("%s_carry%d" % (prefix_sum, bit))
            circuit.full_adder(a, b, carry, s, next_carry,
                               "%s_fa%d" % (prefix_sum, bit))
            carry = next_carry
        sums.append(s)
    sums.append(carry)
    return circuit, sums


def multiplier_circuit(num_bits):
    """Array multiplier: a (num_bits) x b (num_bits) -> p (2*num_bits).

    Returns ``(circuit, a_wires, b_wires, product_wires)``.  Built as the
    classic shift-and-add array: AND-gate partial products accumulated
    row by row with ripple adders.
    """
    if num_bits < 1:
        raise SolgError("multiplier needs at least one bit")
    circuit = SolgCircuit("multiplier%dx%d" % (num_bits, num_bits))
    a_wires = [circuit.wire("a%d" % i) for i in range(num_bits)]
    b_wires = [circuit.wire("b%d" % i) for i in range(num_bits)]
    # partial products pp[i][j] = a_i and b_j
    partial = {}
    for i in range(num_bits):
        for j in range(num_bits):
            wire = circuit.wire("pp_%d_%d" % (i, j))
            circuit.gate_and(a_wires[i], b_wires[j], wire)
            partial[(i, j)] = wire
    # accumulate row j shifted by j, rippling carries upward
    # running[k] holds the current bit of weight k
    running = {k: partial[(k, 0)] for k in range(num_bits)}
    for j in range(1, num_bits):
        carry = None
        for i in range(num_bits):
            weight = i + j
            addend = partial[(i, j)]
            current = running.get(weight)
            scratch = "m_%d_%d" % (i, j)
            sum_wire = circuit.wire("sum_%d_%d" % (i, j))
            carry_wire = circuit.wire("carry_%d_%d" % (i, j))
            if current is None and carry is None:
                running[weight] = addend
                continue
            if current is None:
                circuit.half_adder(addend, carry, sum_wire, carry_wire)
            elif carry is None:
                circuit.half_adder(current, addend, sum_wire, carry_wire)
            else:
                circuit.full_adder(current, addend, carry, sum_wire,
                                   carry_wire, scratch)
            running[weight] = sum_wire
            carry = carry_wire
        if carry is not None:
            weight = num_bits + j
            current = running.get(weight)
            if current is None:
                running[weight] = carry
            else:
                sum_wire = circuit.wire("sumc_%d" % j)
                carry_wire = circuit.wire("carryc_%d" % j)
                circuit.half_adder(current, carry, sum_wire, carry_wire)
                running[weight] = sum_wire
                running[weight + 1] = carry_wire
    product_wires = [running[k] if k in running
                     else circuit.constant_zero(a_wires[0], "pzero%d" % k)
                     for k in range(2 * num_bits)]
    return circuit, a_wires, b_wires, product_wires


def squarer_circuit(num_bits):
    """A squarer: the multiplier with both operand ports tied together.

    Returns ``(circuit, input_wires, output_wires)`` computing
    ``x -> x^2`` over ``num_bits``-wide x.  Built by equating the a and
    b ports of the array multiplier with XNOR-style tie constraints is
    unnecessary: the builder simply routes the same wires into both
    ports.
    """
    if num_bits < 1:
        raise SolgError("squarer needs at least one bit")
    circuit = SolgCircuit("squarer%d" % num_bits)
    x_wires = [circuit.wire("x%d" % i) for i in range(num_bits)]
    # partial products pp[i][j] = x_i and x_j
    partial = {}
    for i in range(num_bits):
        for j in range(num_bits):
            wire = circuit.wire("pp_%d_%d" % (i, j))
            circuit.gate_and(x_wires[i], x_wires[j], wire)
            partial[(i, j)] = wire
    running = {k: partial[(k, 0)] for k in range(num_bits)}
    for j in range(1, num_bits):
        carry = None
        for i in range(num_bits):
            weight = i + j
            addend = partial[(i, j)]
            current = running.get(weight)
            scratch = "m_%d_%d" % (i, j)
            sum_wire = circuit.wire("sum_%d_%d" % (i, j))
            carry_wire = circuit.wire("carry_%d_%d" % (i, j))
            if current is None and carry is None:
                running[weight] = addend
                continue
            if current is None:
                circuit.half_adder(addend, carry, sum_wire, carry_wire)
            elif carry is None:
                circuit.half_adder(current, addend, sum_wire, carry_wire)
            else:
                circuit.full_adder(current, addend, carry, sum_wire,
                                   carry_wire, scratch)
            running[weight] = sum_wire
            carry = carry_wire
        if carry is not None:
            weight = num_bits + j
            current = running.get(weight)
            if current is None:
                running[weight] = carry
            else:
                sum_wire = circuit.wire("sumc_%d" % j)
                carry_wire = circuit.wire("carryc_%d" % j)
                circuit.half_adder(current, carry, sum_wire, carry_wire)
                running[weight] = sum_wire
                running[weight + 1] = carry_wire
    output_wires = [running[k] if k in running
                    else circuit.constant_zero(x_wires[0], "pzero%d" % k)
                    for k in range(2 * num_bits)]
    return circuit, x_wires, output_wires


def integer_sqrt_memcomputing(square, solver=None, rng=None):
    """Recover x from x^2 by running the squarer backwards ([29]).

    The paper's [29] is "Memcomputing numerical inversion with
    self-organizing logic gates": fix a circuit's outputs and let the
    terminal-agnostic gates find consistent inputs.  Returns x with
    ``x * x == square``; raises :class:`SolgError` when ``square`` is
    not a perfect square (no steady state exists).
    """
    if square < 0:
        raise SolgError("need a non-negative square")
    if square == 0:
        return 0
    num_bits = max(1, (square.bit_length() + 1) // 2)
    circuit, x_wires, output_wires = squarer_circuit(num_bits)
    pinned = {}
    for position, wire in enumerate(output_wires):
        pinned[wire] = bool((square >> position) & 1)
    values = circuit.solve(pinned=pinned, solver=solver, rng=rng)
    x = sum((1 << i) for i, wire in enumerate(x_wires) if values[wire])
    if x * x != square:
        raise SolgError("steady state decoded to %d^2 != %d" % (x, square))
    return x


def factorization_circuit(product):
    """Inverted-multiplier factorization instance for ``product``.

    Returns ``(circuit, pinned, extra_clauses, a_wires, b_wires)`` ready
    for :meth:`SolgCircuit.solve`: the product wires are pinned to the
    binary representation of ``product`` and both operands are
    constrained non-trivial (> 1).
    """
    if product < 4:
        raise SolgError("need a composite >= 4")
    num_bits = max(2, (product.bit_length() + 1) // 2 + 1)
    circuit, a_wires, b_wires, product_wires = multiplier_circuit(num_bits)
    pinned = {}
    for position, wire in enumerate(product_wires):
        pinned[wire] = bool((product >> position) & 1)
    # a > 1 and b > 1: some bit above bit 0 must be set in each operand
    extra = [
        [(wire, True) for wire in a_wires[1:]],
        [(wire, True) for wire in b_wires[1:]],
    ]
    return circuit, pinned, extra, a_wires, b_wires


def factor_with_memcomputing(product, solver=None, rng=None):
    """Factor ``product`` by running the multiplier backwards.

    Returns ``(factor_a, factor_b)`` with ``factor_a * factor_b ==
    product``; raises :class:`SolgError` when the circuit finds no steady
    state (e.g. for primes, where none exists with both operands > 1).
    """
    rng = make_rng(rng)
    circuit, pinned, extra, a_wires, b_wires = factorization_circuit(product)
    values = circuit.solve(pinned=pinned, extra_clauses=extra,
                           solver=solver, rng=rng)
    factor_a = sum((1 << i) for i, wire in enumerate(a_wires)
                   if values[wire])
    factor_b = sum((1 << i) for i, wire in enumerate(b_wires)
                   if values[wire])
    if factor_a * factor_b != product:
        raise SolgError("steady state decoded to %d * %d != %d"
                        % (factor_a, factor_b, product))
    return factor_a, factor_b
