"""Noise robustness of DMM dynamics (the paper's [59]).

"the solution search of DMMs is very robust to external perturbations, a
fact that has also been shown explicitly by adding noise to Eqs. 1 and
2."  The argument is topological: critical points of the flow are
robust objects, so perturbing the trajectory does not destroy the
solution search until the noise competes with the deterministic drift.

:func:`success_vs_noise` reproduces the study: solve the same instances
under increasing additive white noise on the voltage dynamics and report
the success rate and work at each amplitude.  The expected shape is a
wide plateau of unimpaired solving followed by degradation only at large
amplitudes.
"""

import numpy as np

from ..core.rngs import make_rng, spawn_rngs
from .solver import DmmSolver


def solve_with_noise(formula, noise_sigma, rng=None, max_steps=300_000,
                     dt=0.08):
    """Solve one formula with additive voltage noise of the given sigma."""
    solver = DmmSolver(dt=dt, max_steps=max_steps, noise_sigma=noise_sigma)
    return solver.solve(formula, rng=rng)


def success_vs_noise(formulas, noise_sigmas, trials_per_sigma=3, rng=None,
                     max_steps=300_000):
    """Success rate and median steps across a noise-amplitude sweep.

    Parameters
    ----------
    formulas : list of CnfFormula
        Instances to solve (all should be satisfiable).
    noise_sigmas : sequence of float
        Additive noise amplitudes to test (0 included for the baseline).
    trials_per_sigma : int
        Independent initial conditions per (formula, sigma).

    Returns
    -------
    list of dict
        One row per sigma: ``{"sigma", "success_rate", "median_steps"}``
        where ``median_steps`` is over successful runs only (None when
        everything failed).
    """
    rng = make_rng(rng)
    rows = []
    for sigma in noise_sigmas:
        successes = 0
        steps = []
        total = 0
        for formula in formulas:
            for trial_rng in spawn_rngs(rng, trials_per_sigma):
                result = solve_with_noise(formula, sigma, rng=trial_rng,
                                          max_steps=max_steps)
                total += 1
                if result.satisfied:
                    successes += 1
                    steps.append(result.steps)
        rows.append({
            "sigma": float(sigma),
            "success_rate": successes / total if total else 0.0,
            "median_steps": float(np.median(steps)) if steps else None,
        })
    return rows
