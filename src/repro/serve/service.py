"""The ``repro serve`` job service: validation, dispatch, result store.

:class:`JobService` is the transport-independent core behind the HTTP
app (:mod:`repro.serve.app`): callers ``submit()`` jobs on the event
loop and await their futures; a small set of dispatcher coroutines pops
admitted jobs off the :class:`~repro.serve.admission.AdmissionQueue`
and runs the kernels in a thread pool, so the loop keeps serving while
kernels compute.  Kernel fan-out rides the library's persistent
:class:`~repro.core.parallel.WorkerPool` -- one pool reused across all
requests -- whose rounds are serialized internally, so concurrent jobs
are safe and the pool's crash/timeout recovery (plus the service's
default retry budget) keeps a killed worker from failing a request.

One submission takes at most one of these paths, in order:

1. **coalesce** -- an identical request (same workload fingerprint from
   :mod:`repro.core.cache`) is already in flight: join it as a
   follower, zero additional executions (``serve.coalesced``);
2. **result store** -- the content-addressed
   :class:`~repro.core.cache.ResultCache` holds the answer (memory or
   disk tier, shared across tenants -- the fingerprint, not the tenant,
   addresses results): finish immediately (``serve.cache_hits``, plus
   the cache's own ``cache.hits``);
3. **admit** -- enter the priority queue, subject to depth and tenant
   quota (:mod:`repro.serve.admission`); compatible queued distance
   jobs may later merge into one vectorized call
   (:mod:`repro.serve.coalesce`).

Results are plain JSON documents, so they cache, coalesce, and ship
over HTTP identically.  Failures are never cached and never shared
beyond the followers of the failed execution.
"""

import asyncio
import concurrent.futures
import copy
import time

import numpy as np

from ..core import backends as backends_module
from ..core import cache as result_cache
from ..core import telemetry, tracing
from ..core.exceptions import JobValidationError, ReproError
from ..core.parallel import resolve_workers
from . import slo as slo_module
from . import jobs as jobs_module
from .admission import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_PRIORITY,
    DEFAULT_TENANT_QUOTA,
    MAX_PRIORITY,
    MIN_PRIORITY,
    AdmissionQueue,
)
from .coalesce import Coalescer, DistanceBatcher
from .jobs import DONE, FAILED, RUNNING, JobTable

#: Request size caps -- admission control starts at validation: a
#: request the service would choke on is a 400, not a wedged worker.
MAX_DIMACS_CHARS = 200_000
MAX_FACTOR_N = 1_000_000
MAX_PAIRS_PER_REQUEST = 8192
MAX_IMAGE_PIXELS = 65_536
MAX_ATTEMPTS = 64
MAX_STEPS = 5_000_000

KINDS = ("solve", "factor", "distance", "detect")

#: Distinct tenants tracked individually in /v1/stats before new ones
#: fold into the "other" bucket (mirrors telemetry.MAX_LABEL_SETS).
MAX_STAT_TENANTS = 64


class ServeConfig:
    """Tunable knobs for one :class:`JobService`.

    Parameters
    ----------
    workers : int, "auto", or None
        Worker processes for each kernel's fan-out path (the shared
        persistent pool; see ``docs/parallelism.md``).
    timeout : float or None
        Per-chunk wall-clock budget handed to every kernel.  With the
        PR 8 fix this is enforced even at ``workers=1`` (the pool path
        kills a wedged chunk), which is exactly what a service needs.
    retries : int
        Attempts per failed chunk (the kernels' ``retry=``); the
        default 2 means one retry, so a crashed/killed worker recovers
        without caller involvement.
    cache : None, False, path, or ResultCache
        The multi-tenant result store.  ``None`` (default) uses the
        active cache (``REPRO_CACHE_DIR``) or, when there is none, a
        fresh memory-only :class:`~repro.core.cache.ResultCache`;
        ``False`` disables result reuse entirely.  Give the store a
        disk budget via ``ResultCache(max_disk_bytes=...)`` or
        ``REPRO_CACHE_DISK_BYTES`` (see ``docs/caching.md``).
    queue_depth, tenant_quota : int
        Admission bounds (:mod:`repro.serve.admission`).
    batch_pairs : int
        Budget for merging compatible distance jobs into one vectorized
        call (:class:`~repro.serve.coalesce.DistanceBatcher`).
    job_concurrency : int
        Dispatcher coroutines / kernel threads running jobs at once.
        Pool rounds are serialized internally, so this bounds queueing
        ahead of the pool, not parallelism inside it.
    retention : int
        Finished jobs kept for status polling.
    slo : None, path, or SloSpec
        Declarative latency/error objectives (:mod:`repro.serve.slo`);
        a path is loaded eagerly so a bad spec fails at startup, not at
        the first ``GET /v1/slo``.
    flight_dir : None or path
        Directory for flight-recorder dumps: a bounded ring of recent
        trace events written out when a job fails or a pool worker is
        restarted (:class:`repro.core.tracing.FlightRecorder`).
    flight_events : int
        Ring capacity for the flight recorder.
    backend : None, backend name, or ExecutionBackend
        Chunk execution backend for every kernel the service runs
        (``"serial"``, ``"pool"``, ``"remote"``, or an
        :class:`~repro.core.backends.ExecutionBackend` instance; see
        ``docs/backends.md``).  ``None`` keeps the library's automatic
        choice -- the shared persistent pool when fanning out.  The
        service installs this as an ambient
        :func:`~repro.core.backends.use_backend` scope for its whole
        lifetime, so all dispatcher threads inherit it.
    hosts : None, str, or iterable
        Worker hosts (``"host:port[:capacity]"`` entries, comma string
        or list) for ``backend="remote"``.
    """

    def __init__(self, workers=None, timeout=None, retries=2, cache=None,
                 queue_depth=DEFAULT_MAX_DEPTH,
                 tenant_quota=DEFAULT_TENANT_QUOTA,
                 batch_pairs=4096, job_concurrency=2,
                 retention=jobs_module.DEFAULT_RETENTION,
                 slo=None, flight_dir=None, flight_events=256,
                 backend=None, hosts=None):
        self.workers = resolve_workers(workers)
        self.timeout = timeout
        self.retries = int(retries)
        self.cache = cache
        self.queue_depth = int(queue_depth)
        self.tenant_quota = tenant_quota
        self.batch_pairs = int(batch_pairs)
        self.job_concurrency = max(1, int(job_concurrency))
        self.retention = int(retention)
        if isinstance(slo, (str, bytes)):
            slo = slo_module.load_slo(slo)
        self.slo = slo
        self.flight_dir = flight_dir
        self.flight_events = int(flight_events)
        if backend is not None and not isinstance(
                backend, (str, backends_module.ExecutionBackend)):
            raise ReproError(
                "backend must be one of %s or an ExecutionBackend, got %r"
                % (", ".join(backends_module.BACKEND_NAMES), backend))
        if isinstance(backend, str) \
                and backend.strip().lower() \
                not in backends_module.BACKEND_NAMES:
            raise ReproError(
                "unknown backend %r (expected one of %s)"
                % (backend, ", ".join(backends_module.BACKEND_NAMES)))
        self.backend = backend
        self.hosts = hosts


# -- request validation -----------------------------------------------------

def _require(condition, message):
    if not condition:
        raise JobValidationError(message)


def _int_param(params, name, default, low, high):
    value = params.get(name, default)
    _require(isinstance(value, int) and not isinstance(value, bool),
             "%r must be an integer" % name)
    _require(low <= value <= high,
             "%r must be in [%d, %d], got %d" % (name, low, high, value))
    return value


def _number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_request(kind, params):
    """Canonical parameters for ``(kind, params)``, or raise
    :class:`~repro.core.exceptions.JobValidationError`.

    The canonical form is what gets fingerprinted, so two requests that
    mean the same workload always share a cache key regardless of JSON
    spelling (e.g. ``2`` vs ``2.0`` intensities).
    """
    _require(kind in KINDS,
             "unknown job kind %r; expected one of %s" % (kind,
                                                          ", ".join(KINDS)))
    _require(isinstance(params, dict), "params must be an object")
    if kind == "solve":
        dimacs = params.get("dimacs")
        _require(isinstance(dimacs, str) and dimacs.strip(),
                 "'dimacs' must be a non-empty DIMACS CNF string")
        _require(len(dimacs) <= MAX_DIMACS_CHARS,
                 "'dimacs' exceeds %d characters" % MAX_DIMACS_CHARS)
        return {
            "dimacs": dimacs,
            "attempts": _int_param(params, "attempts", 4, 1, MAX_ATTEMPTS),
            "max_steps": _int_param(params, "max_steps", 500_000, 1,
                                    MAX_STEPS),
            "seed": _int_param(params, "seed", 0, 0, 2**63 - 1),
        }
    if kind == "factor":
        n = params.get("n")
        _require(isinstance(n, int) and not isinstance(n, bool),
                 "'n' must be an integer")
        _require(4 <= n <= MAX_FACTOR_N,
                 "'n' must be in [4, %d]" % MAX_FACTOR_N)
        return {"n": n,
                "seed": _int_param(params, "seed", 0, 0, 2**63 - 1)}
    if kind == "distance":
        pairs = params.get("pairs")
        _require(isinstance(pairs, list) and pairs,
                 "'pairs' must be a non-empty list of [a, b] pairs")
        _require(len(pairs) <= MAX_PAIRS_PER_REQUEST,
                 "'pairs' exceeds %d pairs" % MAX_PAIRS_PER_REQUEST)
        canonical = []
        for pair in pairs:
            _require(isinstance(pair, (list, tuple)) and len(pair) == 2
                     and all(_number(v) for v in pair),
                     "each pair must be [a, b] with numeric intensities")
            canonical.append([float(pair[0]), float(pair[1])])
        mode = params.get("mode", "behavioral")
        _require(mode in ("behavioral", "physical"),
                 "'mode' must be 'behavioral' or 'physical'")
        return {"pairs": canonical, "mode": mode}
    # detect
    image = params.get("image")
    _require(isinstance(image, list) and image
             and all(isinstance(row, list) and row for row in image),
             "'image' must be a non-empty 2-D list of intensities")
    width = len(image[0])
    _require(all(len(row) == width for row in image),
             "'image' rows must all have the same length")
    _require(len(image) * width <= MAX_IMAGE_PIXELS,
             "'image' exceeds %d pixels" % MAX_IMAGE_PIXELS)
    _require(all(_number(value) for row in image for value in row),
             "'image' values must be numeric")
    threshold = params.get("threshold", 30.0)
    _require(_number(threshold) and threshold > 0,
             "'threshold' must be a positive number")
    return {"image": [[float(v) for v in row] for row in image],
            "threshold": float(threshold),
            "n": _int_param(params, "n", 9, 1, 16)}


def _fingerprint_meta(kind, params):
    """Fingerprint meta: bulky payloads enter as content digests."""
    meta = dict(params)
    if kind == "solve":
        meta["dimacs"] = result_cache.digest(params["dimacs"])
    elif kind == "distance":
        meta["pairs"] = result_cache.digest(params["pairs"])
        meta["count"] = len(params["pairs"])
    elif kind == "detect":
        meta["image"] = result_cache.digest(params["image"])
        meta["shape"] = [len(params["image"]), len(params["image"][0])]
    return meta


# -- kernel runners (executed on the service's thread pool) -----------------

def _run_solve(params, config):
    from ..core.cnf import parse_dimacs
    from ..memcomputing.solver import solve_portfolio

    formula = parse_dimacs(params["dimacs"])
    portfolio = solve_portfolio(
        formula, attempts=params["attempts"], rng=params["seed"],
        workers=config.workers, timeout=config.timeout,
        retry=config.retries, cache=config.cache,
        max_steps=params["max_steps"])
    best = portfolio.best
    if best is None:
        raise ReproError("every portfolio member failed")
    assignment = None
    if best.satisfied:
        assignment = {str(var): bool(val)
                      for var, val in sorted(best.assignment.items())}
    return {"satisfied": bool(best.satisfied), "assignment": assignment,
            "steps": int(best.steps), "attempts": int(portfolio.attempts)}


def _run_factor(params, config):
    from ..quantum.algorithms.shor import shor_factor

    result = shor_factor(params["n"], rng=params["seed"],
                         workers=config.workers, timeout=config.timeout,
                         retry=config.retries, cache=config.cache)
    factors = None
    if result.succeeded:
        factors = sorted(int(factor) for factor in result.factors)
    return {"n": params["n"], "succeeded": bool(result.succeeded),
            "factors": factors, "method": str(result.method)}


def _run_detect(params, config):
    from ..oscillators.fast.oscillator_fast import OscillatorFastDetector

    image = np.asarray(params["image"], dtype=float)
    detector = OscillatorFastDetector(threshold=params["threshold"],
                                      n=params["n"])
    corners = detector.detect(image, workers=config.workers,
                              timeout=config.timeout,
                              retry=config.retries, cache=config.cache)
    return {"corners": [[int(row), int(col)] for row, col in corners],
            "count": len(corners)}


def _run_distance_single(params, config):
    from ..oscillators.distance import OscillatorDistanceUnit

    unit = OscillatorDistanceUnit(mode=params["mode"])
    measures = unit.measure_pairs(
        params["pairs"], workers=config.workers, timeout=config.timeout,
        retry=config.retries, cache=config.cache)
    return {"measures": [float(value) for value in measures],
            "count": len(measures), "mode": params["mode"]}


def _run_distance_batch(mode, pair_lists):
    """One vectorized ``measure_batch`` call covering every job's pairs.

    Bit-identical to per-job evaluation (the PR 7 equivalence tier
    guarantees ``measure_batch == measure`` element-wise), so batching
    never changes results -- only how many kernel invocations happen.
    """
    from ..oscillators.distance import OscillatorDistanceUnit

    unit = OscillatorDistanceUnit(mode=mode)
    flat = np.asarray([pair for pairs in pair_lists for pair in pairs],
                      dtype=float).reshape(-1, 2)
    values = unit.measure_batch(flat[:, 0], flat[:, 1])
    results, offset = [], 0
    for pairs in pair_lists:
        block = values[offset:offset + len(pairs)]
        results.append({"measures": [float(value) for value in block],
                        "count": len(pairs), "mode": mode})
        offset += len(pairs)
    return results


_RUNNERS = {"solve": _run_solve, "factor": _run_factor,
            "detect": _run_detect, "distance": _run_distance_single}


def _run_traced(trace_id, fn, *args):
    """Run ``fn`` on an executor thread under the request's trace id.

    ``run_in_executor`` does not copy the submitting task's context, so
    the id is re-installed explicitly; every span the kernel (and the
    worker pool beneath it) opens then carries the request's trace.
    """
    with tracing.use_trace(trace_id):
        return fn(*args)


class JobService:
    """The transport-independent core of ``repro serve``."""

    def __init__(self, config=None):
        self.config = config if config is not None else ServeConfig()
        self.table = JobTable(retention=self.config.retention)
        self.queue = AdmissionQueue(max_depth=self.config.queue_depth,
                                    tenant_quota=self.config.tenant_quota)
        self.coalescer = Coalescer()
        self.batcher = DistanceBatcher(max_pairs=self.config.batch_pairs)
        if self.config.cache is False:
            self.cache = None
        else:
            self.cache = result_cache.resolve_cache(self.config.cache)
            if self.cache is None:
                self.cache = result_cache.ResultCache()
        # Plain-int mirrors of the serve.* telemetry (always on, so
        # /v1/stats and the benchmarks work without a live registry).
        self.requests = 0
        self.coalesced = 0
        self.cache_hits = 0
        self.batched = 0
        self.executions = 0
        self.completed = 0
        self.failed = 0
        # Per-tenant mirrors for /v1/stats, bounded like the label
        # cardinality cap: past MAX_STAT_TENANTS distinct tenants, new
        # ones fold into the "other" bucket.
        self.tenant_stats = {}
        self._dispatchers = []
        self._executor = None
        self._own_registry = None
        self._flight = None
        self._backend_scope = None
        # History backing windowed SLO burn rates (only kept when some
        # objective actually declares a window).
        self._slo_window = None
        if self.config.slo is not None and any(
                objective.window_s is not None
                for objective in self.config.slo.objectives):
            self._slo_window = slo_module.SnapshotWindow()
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Install instruments, start the dispatcher coroutines."""
        if self._dispatchers:
            return
        if not telemetry.enabled():
            # The service is long-running and its observability
            # endpoints need numbers, so it installs its own registry
            # when the embedding process left telemetry off.
            self._own_registry = telemetry.MetricsRegistry()
            telemetry.set_registry(self._own_registry)
        registry = telemetry.get_registry()
        if self.config.flight_dir and registry.enabled \
                and hasattr(registry, "add_sink"):
            self._flight = tracing.FlightRecorder(
                self.config.flight_dir,
                capacity=self.config.flight_events)
            registry.add_sink(self._flight)
        if (self.config.backend is not None
                or self.config.hosts is not None) \
                and self._backend_scope is None:
            # Ambient for the service's lifetime: dispatcher threads
            # run kernels off the event loop, and the override stack
            # is cross-thread, so every kernel inherits the choice.
            self._backend_scope = backends_module.use_backend(
                self.config.backend, hosts=self.config.hosts)
            self._backend_scope.__enter__()
        self._closing = False
        loop = asyncio.get_running_loop()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.job_concurrency,
            thread_name_prefix="repro-serve")
        self._dispatchers = [loop.create_task(self._dispatch_loop())
                             for _ in range(self.config.job_concurrency)]

    async def close(self):
        """Stop dispatching; running kernels finish, queued jobs fail."""
        self._closing = True
        for task in self._dispatchers:
            task.cancel()
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        while self.queue.depth:
            job = self.queue.take_matching(lambda _job: True, 1)[0]
            self._fail(job, ReproError("service shut down"))
        if self._flight is not None:
            registry = telemetry.get_registry()
            if hasattr(registry, "remove_sink"):
                registry.remove_sink(self._flight)
            self._flight = None
        if self._backend_scope is not None:
            self._backend_scope.__exit__(None, None, None)
            self._backend_scope = None
        if self._own_registry is not None \
                and telemetry.get_registry() is self._own_registry:
            telemetry.set_registry(None)
            self._own_registry = None

    # -- submission (event-loop side) --------------------------------------

    def submit(self, kind, params, tenant="anon", priority=None,
               trace_id=None):
        """Accept one request; returns its :class:`Job`.

        Raises :class:`~repro.core.exceptions.JobValidationError` (bad
        request), :class:`~repro.core.exceptions.QueueFullError`, or
        :class:`~repro.core.exceptions.QuotaError` (backpressure).
        Must be called on the service's event loop.  ``trace_id`` is
        the request's end-to-end trace identity (the HTTP layer mints
        one per request); when absent the service mints its own, so
        every job always has one.
        """
        if priority is None:
            priority = DEFAULT_PRIORITY
        if not (isinstance(priority, int) and not isinstance(priority, bool)
                and MIN_PRIORITY <= priority <= MAX_PRIORITY):
            raise JobValidationError(
                "'priority' must be an integer in [%d, %d]"
                % (MIN_PRIORITY, MAX_PRIORITY))
        if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
            raise JobValidationError(
                "'tenant' must be a non-empty string of <= 64 characters")
        params = validate_request(kind, params)
        if trace_id is None:
            trace_id = tracing.new_trace_id()
        registry = telemetry.get_registry()
        labels = {"tenant": tenant, "kind": kind}
        self.requests += 1
        self._tenant_bucket(tenant)["requests"] += 1
        if registry.enabled:
            registry.counter("serve.requests").inc()
            registry.counter("serve.requests.%s" % kind).inc()
            registry.counter("serve.requests", labels=labels).inc()
        doc = result_cache.fingerprint("serve.%s" % kind,
                                       _fingerprint_meta(kind, params))
        key = result_cache.cache_key(doc)
        job = self.table.create(kind, params, tenant, priority, key, doc,
                                trace_id=trace_id)
        job.future = asyncio.get_event_loop().create_future()

        # submit() is synchronous on the event loop, so a real stack
        # span is safe here (it cannot interleave with another task's).
        with tracing.use_trace(trace_id), \
                telemetry.span("serve.admission", job=job.id, kind=kind,
                               tenant=tenant) as admission:
            primary = self.coalescer.primary_for(key)
            if primary is not None and not primary.finished:
                self.coalescer.join(primary, job)
                self.coalesced += 1
                self._tenant_bucket(tenant)["coalesced"] += 1
                if registry.enabled:
                    registry.counter("serve.coalesced").inc()
                    registry.counter("serve.coalesced", labels=labels).inc()
                    telemetry.event("serve.coalesce", job=job.id,
                                    primary=primary.id,
                                    primary_trace=primary.trace_id)
                if admission:
                    admission.set_attr("outcome", "coalesced")
                return job

            if self.cache is not None:
                hit, value = self.cache.lookup(key, doc)
                if hit:
                    job.cached = True
                    self.cache_hits += 1
                    self._tenant_bucket(tenant)["cache_hits"] += 1
                    if registry.enabled:
                        registry.counter("serve.cache_hits").inc()
                        registry.counter("serve.cache_hits",
                                         labels=labels).inc()
                    self._settle(job, DONE, result=value)
                    self.table.prune()
                    if admission:
                        admission.set_attr("outcome", "cache_hit")
                    return job

            try:
                self.queue.push(job)
            except ReproError:
                self.table.drop(job.id)
                if admission:
                    admission.set_attr("outcome", "rejected")
                raise
            self.coalescer.register(key, job)
            if admission:
                admission.set_attr("outcome", "queued")
            return job

    # -- dispatch (event-loop + thread-pool side) --------------------------

    async def _dispatch_loop(self):
        loop = asyncio.get_running_loop()
        while True:
            lead = await self.queue.pop()
            batch = self.batcher.gather(lead, self.queue)
            registry = telemetry.get_registry()
            if len(batch) > 1:
                self.batched += len(batch) - 1
                if registry.enabled:
                    registry.counter("serve.batched").inc(len(batch) - 1)
                    registry.histogram("serve.batch_pairs").observe(
                        sum(len(job.params["pairs"]) for job in batch))
                for rider in batch[1:]:
                    # The lead's trace is the one that executes; riders
                    # keep their own id but record whose ride they took.
                    rider.joined_trace = lead.trace_id
                    self._tenant_bucket(rider.tenant)["batched"] += 1
                    if registry.enabled:
                        registry.counter(
                            "serve.batched",
                            labels={"tenant": rider.tenant,
                                    "kind": rider.kind}).inc()
            for job in batch:
                job.state = RUNNING
                job.started_at = time.monotonic()
            self.executions += 1
            self._tenant_bucket(lead.tenant)["executions"] += 1
            if registry.enabled:
                registry.counter("serve.executions").inc()
                registry.counter("serve.executions",
                                 labels={"tenant": lead.tenant,
                                         "kind": lead.kind}).inc()
            dispatch_start = (time.time(), time.perf_counter())
            status = "ok"
            try:
                if len(batch) > 1:
                    results = await loop.run_in_executor(
                        self._executor, _run_traced, lead.trace_id,
                        _run_distance_batch, lead.params["mode"],
                        [job.params["pairs"] for job in batch])
                else:
                    results = [await loop.run_in_executor(
                        self._executor, _run_traced, lead.trace_id,
                        _RUNNERS[lead.kind], lead.params, self.config)]
            except asyncio.CancelledError:
                for job in batch:
                    self._fail(job, ReproError("service shut down"))
                raise
            except Exception as error:  # noqa: BLE001 -- jobs absorb it
                status = "error"
                for job in batch:
                    self._fail(job, error)
            else:
                for job, result in zip(batch, results):
                    self._finish(job, result)
            if registry.enabled:
                self._emit_dispatch_span(registry, lead, batch, status,
                                         dispatch_start)
            self.table.prune()

    def _emit_dispatch_span(self, registry, lead, batch, status, start):
        """Span event for one dispatch, under the lead job's trace.

        Built by hand rather than with a stack span: the dispatch
        straddles an ``await``, so other tasks' spans could interleave
        with a real per-thread span stack.
        """
        start_ts, start_perf = start
        duration = time.perf_counter() - start_perf
        registry.histogram("serve.dispatch.seconds").observe(duration)
        event = {
            "type": "span",
            "name": "serve.dispatch",
            "ts": start_ts,
            "duration_s": duration,
            "depth": 0,
            "parent": None,
            "status": status,
            "attrs": {"job": lead.id, "kind": lead.kind,
                      "jobs": len(batch)},
        }
        if lead.trace_id is not None:
            event["trace"] = lead.trace_id
        registry.emit(event)

    # -- completion --------------------------------------------------------

    def _finish(self, job, result):
        if self.cache is not None:
            self.cache.store(job.key, job.doc, result)
        self._settle(job, DONE, result=result)
        for follower in job.followers:
            self._settle(follower, DONE, result=copy.deepcopy(result))
        self.coalescer.resolve(job.key)
        self.queue.release(job.tenant)

    def _fail(self, job, error):
        detail = "%s: %s" % (type(error).__name__, error)
        self._settle(job, FAILED, error=detail)
        for follower in job.followers:
            self._settle(follower, FAILED, error=detail)
        self.coalescer.resolve(job.key)
        self.queue.release(job.tenant)
        if self._flight is not None and not self._closing:
            self._flight.dump("job-failed-%s" % job.id)

    def _settle(self, job, state, result=None, error=None):
        registry = telemetry.get_registry()
        job.state = state
        job.result = result
        job.error = error
        job.finished_at = time.monotonic()
        outcome = "ok" if state == DONE else "error"
        if state == DONE:
            self.completed += 1
            self._tenant_bucket(job.tenant)["completed"] += 1
            if registry.enabled:
                registry.counter("serve.completed").inc()
        else:
            self.failed += 1
            self._tenant_bucket(job.tenant)["failed"] += 1
            if registry.enabled:
                registry.counter("serve.failures").inc()
        if registry.enabled:
            registry.counter("serve.outcomes",
                             labels={"tenant": job.tenant,
                                     "kind": job.kind,
                                     "outcome": outcome}).inc()
            latency = job.finished_at - job.submitted_at
            registry.histogram("serve.latency_seconds").observe(latency)
            registry.histogram(
                "serve.latency.%s" % job.kind).observe(latency)
            registry.histogram("serve.latency_seconds",
                               labels={"tenant": job.tenant,
                                       "kind": job.kind}).observe(latency)
        if job.future is not None and not job.future.done():
            job.future.set_result(job)

    # -- introspection -----------------------------------------------------

    def _tenant_bucket(self, tenant):
        """The per-tenant stats dict, folding past the cardinality cap."""
        bucket = self.tenant_stats.get(tenant)
        if bucket is None:
            if len(self.tenant_stats) >= MAX_STAT_TENANTS \
                    and tenant != "other":
                return self._tenant_bucket("other")
            bucket = self.tenant_stats[tenant] = {
                "requests": 0, "coalesced": 0, "cache_hits": 0,
                "batched": 0, "executions": 0, "completed": 0,
                "failed": 0,
            }
        return bucket

    def stats(self):
        """JSON-able service statistics (the /v1/stats body)."""
        executed = max(1, self.executions)
        return {
            "requests": self.requests,
            "executions": self.executions,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "batched": self.batched,
            "completed": self.completed,
            "failed": self.failed,
            "queue_depth": self.queue.depth,
            "jobs": self.table.stats(),
            "coalesce_ratio": (self.coalesced + self.cache_hits
                               + self.batched) / max(1, self.requests),
            "requests_per_execution": self.requests / executed,
            "tenants": {tenant: dict(bucket)
                        for tenant, bucket
                        in sorted(self.tenant_stats.items())},
        }

    def slo_report(self):
        """Burn-rate report of the configured SLO spec (the /v1/slo body).

        Without a spec the report is trivially ok, with a note saying
        how to load one.
        """
        if self.config.slo is None:
            return {"ok": True, "objectives": [],
                    "counts": {"total": 0, "breached": 0},
                    "note": "no SLO spec loaded; start with --slo PATH"}
        snapshot = telemetry.get_registry().snapshot()
        report = slo_module.evaluate(self.config.slo, snapshot,
                                     window=self._slo_window)
        if self._slo_window is not None:
            # Recorded after evaluating: this poll's snapshot becomes a
            # candidate baseline for future windows, not its own.
            self._slo_window.record(snapshot)
        return report
