"""Declarative SLOs evaluated against a telemetry snapshot.

A spec is a list of objectives, each naming an optional ``kind`` /
``tenant`` filter plus a latency target (milliseconds at a quantile)
and/or an error-rate budget::

    [[objective]]
    name = "distance-p95"
    kind = "distance"       # omit or "*" to match every kind
    tenant = "*"            # omit or "*" to match every tenant
    latency_ms = 250.0
    quantile = 0.95         # default
    error_rate = 0.01       # optional error budget

JSON carries the same shape under an ``"objectives"`` key.  TOML specs
need :mod:`tomllib` (Python 3.11+); on older interpreters use JSON --
:func:`load_slo` raises :class:`SloError` with that advice.

Evaluation reads the labeled serving metrics
(``serve.latency_seconds{kind=...,tenant=...}`` histograms and the
``serve.outcomes{...}`` counters): matching series are merged with the
exact histogram-entry algebra, the requested quantile comes from the
streaming log buckets, and each objective reports a **burn rate** --
observed value divided by objective -- so 1.0 is the breach line.
Burn rates here are cumulative over the snapshot's lifetime, not
windowed; restart the registry (or serve process) to reset the clock.
"""

import json

from ..core import telemetry
from ..core.exceptions import SloError

try:
    import tomllib
except ImportError:  # pragma: no cover -- Python < 3.11
    tomllib = None

_WILDCARD = (None, "", "*")

#: Quantile keys the streaming histograms precompute.
_QUANTILES = {0.5: "p50", 0.95: "p95", 0.99: "p99"}


class Objective:
    """One SLO: filters plus a latency and/or error-rate target."""

    __slots__ = ("name", "kind", "tenant", "latency_ms", "quantile",
                 "error_rate")

    def __init__(self, name, kind=None, tenant=None, latency_ms=None,
                 quantile=0.95, error_rate=None):
        self.name = str(name)
        self.kind = None if kind in _WILDCARD else str(kind)
        self.tenant = None if tenant in _WILDCARD else str(tenant)
        self.latency_ms = None if latency_ms is None else float(latency_ms)
        self.quantile = float(quantile)
        self.error_rate = None if error_rate is None else float(error_rate)
        if self.latency_ms is None and self.error_rate is None:
            raise SloError(
                "objective %r needs latency_ms and/or error_rate"
                % self.name)
        if self.latency_ms is not None and self.latency_ms <= 0:
            raise SloError("objective %r: latency_ms must be positive"
                           % self.name)
        if not 0.0 < self.quantile < 1.0:
            raise SloError("objective %r: quantile must be in (0, 1)"
                           % self.name)
        if self.error_rate is not None and not 0.0 < self.error_rate <= 1.0:
            raise SloError("objective %r: error_rate must be in (0, 1]"
                           % self.name)

    @classmethod
    def from_dict(cls, doc):
        if not isinstance(doc, dict):
            raise SloError("objective must be a table/object, got %r"
                           % (doc,))
        unknown = set(doc) - {"name", "kind", "tenant", "latency_ms",
                              "quantile", "error_rate"}
        if unknown:
            raise SloError("objective has unknown fields: %s"
                           % ", ".join(sorted(unknown)))
        if "name" not in doc:
            raise SloError("objective is missing its name")
        return cls(**doc)

    def describe(self):
        return {
            "name": self.name,
            "kind": self.kind or "*",
            "tenant": self.tenant or "*",
            "latency_ms": self.latency_ms,
            "quantile": self.quantile,
            "error_rate": self.error_rate,
        }


class SloSpec:
    """A parsed spec: an ordered list of :class:`Objective`."""

    def __init__(self, objectives):
        self.objectives = list(objectives)
        if not self.objectives:
            raise SloError("SLO spec declares no objectives")

    @classmethod
    def from_dict(cls, doc):
        if not isinstance(doc, dict):
            raise SloError("SLO spec must be a table/object, got %r"
                           % (doc,))
        raw = doc.get("objectives", doc.get("objective"))
        if not isinstance(raw, list):
            raise SloError(
                'SLO spec needs an "objectives" (JSON) or "[[objective]]" '
                "(TOML) list")
        return cls(Objective.from_dict(entry) for entry in raw)


def load_slo(path):
    """Parse a TOML or JSON SLO spec file into an :class:`SloSpec`."""
    if str(path).endswith(".toml"):
        if tomllib is None:
            raise SloError(
                "TOML SLO specs need Python 3.11+ (tomllib); "
                "use a JSON spec instead: %s" % path)
        with open(path, "rb") as handle:
            try:
                doc = tomllib.load(handle)
            except tomllib.TOMLDecodeError as error:
                raise SloError("invalid TOML in %s: %s" % (path, error))
    else:
        with open(path) as handle:
            try:
                doc = json.load(handle)
            except json.JSONDecodeError as error:
                raise SloError("invalid JSON in %s: %s" % (path, error))
    return SloSpec.from_dict(doc)


def _matches(objective, labels):
    if objective.kind is not None and labels.get("kind") != objective.kind:
        return False
    if objective.tenant is not None \
            and labels.get("tenant") != objective.tenant:
        return False
    return True


def _merged_latency(objective, snapshot):
    """Exact merge of every labeled latency series the objective covers."""
    merged = None
    for name, entry in snapshot.items():
        base, labels = telemetry.parse_metric(name)
        if base != "serve.latency_seconds" or not labels:
            continue
        if entry.get("kind") != "histogram" or not _matches(objective,
                                                            labels):
            continue
        merged = entry if merged is None \
            else telemetry.merge_histogram_entries(merged, entry)
    if merged is None and objective.kind is None \
            and objective.tenant is None:
        entry = snapshot.get("serve.latency_seconds")
        if entry is not None and entry.get("kind") == "histogram":
            merged = entry
    return merged


def _outcome_counts(objective, snapshot):
    total = errors = 0
    for name, entry in snapshot.items():
        base, labels = telemetry.parse_metric(name)
        if base != "serve.outcomes" or entry.get("kind") != "counter":
            continue
        if not _matches(objective, labels):
            continue
        value = int(entry.get("value", 0))
        total += value
        if labels.get("outcome") == "error":
            errors += value
    return total, errors


def evaluate(spec, snapshot):
    """Burn-rate report of ``spec`` against a registry snapshot dict.

    Returns ``{"ok": bool, "objectives": [...], "counts": {...}}``;
    each objective entry carries the observed latency quantile and/or
    error rate, the target, and ``burn_rate`` (observed / objective,
    so values above 1.0 are breaches).  Objectives with no matching
    traffic evaluate as ok with null observations.
    """
    results = []
    for objective in spec.objectives:
        result = objective.describe()
        result["ok"] = True
        if objective.latency_ms is not None:
            entry = _merged_latency(objective, snapshot)
            observed_ms = None
            if entry is not None and entry.get("count"):
                key = _QUANTILES.get(objective.quantile)
                observed = entry.get(key) if key else None
                if observed is None:
                    observed = telemetry.histogram_quantile(
                        entry, objective.quantile)
                observed_ms = None if observed is None \
                    else observed * 1000.0
            burn = None if observed_ms is None \
                else observed_ms / objective.latency_ms
            ok = burn is None or burn <= 1.0
            result["latency"] = {
                "observed_ms": observed_ms,
                "objective_ms": objective.latency_ms,
                "quantile": objective.quantile,
                "burn_rate": burn,
                "ok": ok,
            }
            result["ok"] = result["ok"] and ok
        if objective.error_rate is not None:
            total, errors = _outcome_counts(objective, snapshot)
            rate = errors / total if total else None
            burn = None if rate is None else rate / objective.error_rate
            ok = burn is None or burn <= 1.0
            result["errors"] = {
                "observed_rate": rate,
                "objective_rate": objective.error_rate,
                "total": total,
                "errors": errors,
                "burn_rate": burn,
                "ok": ok,
            }
            result["ok"] = result["ok"] and ok
        results.append(result)
    breached = sum(1 for result in results if not result["ok"])
    return {
        "ok": breached == 0,
        "objectives": results,
        "counts": {"total": len(results), "breached": breached},
    }
