"""Declarative SLOs evaluated against a telemetry snapshot.

A spec is a list of objectives, each naming an optional ``kind`` /
``tenant`` filter plus a latency target (milliseconds at a quantile)
and/or an error-rate budget::

    [[objective]]
    name = "distance-p95"
    kind = "distance"       # omit or "*" to match every kind
    tenant = "*"            # omit or "*" to match every tenant
    latency_ms = 250.0
    quantile = 0.95         # default
    error_rate = 0.01       # optional error budget

JSON carries the same shape under an ``"objectives"`` key.  TOML specs
need :mod:`tomllib` (Python 3.11+); on older interpreters use JSON --
:func:`load_slo` raises :class:`SloError` with that advice.

Evaluation reads the labeled serving metrics
(``serve.latency_seconds{kind=...,tenant=...}`` histograms and the
``serve.outcomes{...}`` counters): matching series are merged with the
exact histogram-entry algebra, the requested quantile comes from the
streaming log buckets, and each objective reports a **burn rate** --
observed value divided by objective -- so 1.0 is the breach line.

By default burn rates are cumulative over the snapshot's lifetime.
Give an objective ``window_s = 300.0`` and it instead burns over a
sliding window: the evaluator keeps a ring of timestamped snapshots
(:class:`SnapshotWindow`), subtracts the newest snapshot at least
``window_s`` old from the current one (counters and histogram buckets
subtract exactly, so the delta is itself a valid snapshot), and rates
the delta.  Until a full window of history exists the report says so
(``mode="partial"`` with the actual ``span_s``, or ``"lifetime"``
before the first recorded sample) rather than silently rating the
wrong period.
"""

import json
import time

from ..core import telemetry
from ..core.exceptions import SloError

try:
    import tomllib
except ImportError:  # pragma: no cover -- Python < 3.11
    tomllib = None

_WILDCARD = (None, "", "*")

#: Quantile keys the streaming histograms precompute.
_QUANTILES = {0.5: "p50", 0.95: "p95", 0.99: "p99"}


class Objective:
    """One SLO: filters plus a latency and/or error-rate target."""

    __slots__ = ("name", "kind", "tenant", "latency_ms", "quantile",
                 "error_rate", "window_s")

    def __init__(self, name, kind=None, tenant=None, latency_ms=None,
                 quantile=0.95, error_rate=None, window_s=None):
        self.name = str(name)
        self.kind = None if kind in _WILDCARD else str(kind)
        self.tenant = None if tenant in _WILDCARD else str(tenant)
        self.latency_ms = None if latency_ms is None else float(latency_ms)
        self.quantile = float(quantile)
        self.error_rate = None if error_rate is None else float(error_rate)
        self.window_s = None if window_s is None else float(window_s)
        if self.latency_ms is None and self.error_rate is None:
            raise SloError(
                "objective %r needs latency_ms and/or error_rate"
                % self.name)
        if self.latency_ms is not None and self.latency_ms <= 0:
            raise SloError("objective %r: latency_ms must be positive"
                           % self.name)
        if not 0.0 < self.quantile < 1.0:
            raise SloError("objective %r: quantile must be in (0, 1)"
                           % self.name)
        if self.error_rate is not None and not 0.0 < self.error_rate <= 1.0:
            raise SloError("objective %r: error_rate must be in (0, 1]"
                           % self.name)
        if self.window_s is not None and self.window_s <= 0:
            raise SloError("objective %r: window_s must be positive"
                           % self.name)

    @classmethod
    def from_dict(cls, doc):
        if not isinstance(doc, dict):
            raise SloError("objective must be a table/object, got %r"
                           % (doc,))
        unknown = set(doc) - {"name", "kind", "tenant", "latency_ms",
                              "quantile", "error_rate", "window_s"}
        if unknown:
            raise SloError("objective has unknown fields: %s"
                           % ", ".join(sorted(unknown)))
        if "name" not in doc:
            raise SloError("objective is missing its name")
        return cls(**doc)

    def describe(self):
        return {
            "name": self.name,
            "kind": self.kind or "*",
            "tenant": self.tenant or "*",
            "latency_ms": self.latency_ms,
            "quantile": self.quantile,
            "error_rate": self.error_rate,
            "window_s": self.window_s,
        }


class SloSpec:
    """A parsed spec: an ordered list of :class:`Objective`."""

    def __init__(self, objectives):
        self.objectives = list(objectives)
        if not self.objectives:
            raise SloError("SLO spec declares no objectives")

    @classmethod
    def from_dict(cls, doc):
        if not isinstance(doc, dict):
            raise SloError("SLO spec must be a table/object, got %r"
                           % (doc,))
        raw = doc.get("objectives", doc.get("objective"))
        if not isinstance(raw, list):
            raise SloError(
                'SLO spec needs an "objectives" (JSON) or "[[objective]]" '
                "(TOML) list")
        return cls(Objective.from_dict(entry) for entry in raw)


def load_slo(path):
    """Parse a TOML or JSON SLO spec file into an :class:`SloSpec`."""
    if str(path).endswith(".toml"):
        if tomllib is None:
            raise SloError(
                "TOML SLO specs need Python 3.11+ (tomllib); "
                "use a JSON spec instead: %s" % path)
        with open(path, "rb") as handle:
            try:
                doc = tomllib.load(handle)
            except tomllib.TOMLDecodeError as error:
                raise SloError("invalid TOML in %s: %s" % (path, error))
    else:
        with open(path) as handle:
            try:
                doc = json.load(handle)
            except json.JSONDecodeError as error:
                raise SloError("invalid JSON in %s: %s" % (path, error))
    return SloSpec.from_dict(doc)


# -- sliding windows -------------------------------------------------------

class SnapshotWindow:
    """A bounded ring of timestamped registry snapshots.

    :meth:`record` each evaluation's snapshot; :meth:`baseline` hands
    back the newest sample at least ``window_s`` old, so
    ``subtract_snapshots(current, baseline)`` isolates roughly the last
    ``window_s`` seconds of traffic.  Counters and histogram buckets
    are monotone, which is what makes the subtraction exact; the
    reported span is the baseline's actual age, never a pretense that a
    partial history covers the full window.
    """

    def __init__(self, max_samples=256):
        self.max_samples = max(2, int(max_samples))
        self._samples = []  # (timestamp, snapshot), oldest first

    def __len__(self):
        return len(self._samples)

    def record(self, snapshot, now=None):
        """Append one snapshot (``now`` overrides the clock in tests)."""
        now = time.time() if now is None else float(now)
        self._samples.append((now, snapshot))
        if len(self._samples) > self.max_samples:
            del self._samples[:len(self._samples) - self.max_samples]

    def baseline(self, window_s, now=None):
        """``(snapshot, span_s, mode)`` for a ``window_s`` burn window.

        ``mode`` is ``"windowed"`` (a sample at least ``window_s`` old
        exists -- the newest such sample is the baseline),
        ``"partial"`` (history is younger than the window, so the
        oldest sample stands in and ``span_s`` reports the shortfall),
        or ``"lifetime"`` (no history yet; snapshot is ``None``).
        """
        now = time.time() if now is None else float(now)
        chosen = None
        for timestamp, snapshot in self._samples:
            if now - timestamp >= window_s:
                chosen = (timestamp, snapshot)  # newest qualifying wins
            else:
                break
        if chosen is not None:
            return chosen[1], now - chosen[0], "windowed"
        if self._samples:
            timestamp, snapshot = self._samples[0]
            return snapshot, max(0.0, now - timestamp), "partial"
        return None, None, "lifetime"


def _subtract_histogram(current, baseline):
    """``current - baseline`` for histogram snapshot entries.

    Bucket counts, totals, and zero counts subtract exactly (clamped at
    zero against registry resets); the delta's quantiles are recomputed
    from its own buckets.  ``min``/``max`` carry over from ``current``
    -- the window's true extremes are not recoverable from deltas --
    which only widens :func:`~repro.core.telemetry.histogram_quantile`'s
    clamp range, never the ranks.
    """
    count = max(0, int(current.get("count", 0))
                - int(baseline.get("count", 0)))
    total = max(0.0, float(current.get("total", 0.0))
                - float(baseline.get("total", 0.0)))
    sum_sq = max(0.0, float(current.get("sum_sq", 0.0))
                 - float(baseline.get("sum_sq", 0.0)))
    zeros = max(0, int(current.get("zeros") or 0)
                - int(baseline.get("zeros") or 0))
    delta = {
        "kind": "histogram",
        "count": count,
        "total": total,
        "sum_sq": sum_sq,
        "min": current.get("min"),
        "max": current.get("max"),
        "mean": total / count if count else None,
        "std": None,
        "zeros": zeros,
    }
    for key in ("buckets", "neg_buckets"):
        buckets = {}
        base = baseline.get(key) or {}
        for index, n in (current.get(key) or {}).items():
            left = int(n) - int(base.get(index, 0))
            if left > 0:
                buckets[index] = left
        delta[key] = buckets
    for key, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        delta[key] = telemetry.histogram_quantile(delta, q)
    return delta


def subtract_snapshots(current, baseline):
    """The snapshot of everything that happened after ``baseline``.

    Counters subtract (clamped at zero), gauges are levels so the
    current value stands, histograms go through
    :func:`_subtract_histogram`.  Metrics first seen after the baseline
    pass through unchanged; metrics that only exist in the baseline are
    dropped (snapshots grow monotonically, so that means a registry
    swap -- the delta would be meaningless).
    """
    delta = {}
    for name, entry in current.items():
        base = baseline.get(name)
        kind = entry.get("kind")
        if base is None or base.get("kind") != kind:
            delta[name] = entry
        elif kind == "counter":
            delta[name] = {
                "kind": "counter",
                "value": max(0, entry.get("value", 0)
                             - base.get("value", 0)),
            }
        elif kind == "histogram":
            delta[name] = _subtract_histogram(entry, base)
        else:
            delta[name] = entry
    return delta


def _matches(objective, labels):
    if objective.kind is not None and labels.get("kind") != objective.kind:
        return False
    if objective.tenant is not None \
            and labels.get("tenant") != objective.tenant:
        return False
    return True


def _merged_latency(objective, snapshot):
    """Exact merge of every labeled latency series the objective covers."""
    merged = None
    for name, entry in snapshot.items():
        base, labels = telemetry.parse_metric(name)
        if base != "serve.latency_seconds" or not labels:
            continue
        if entry.get("kind") != "histogram" or not _matches(objective,
                                                            labels):
            continue
        merged = entry if merged is None \
            else telemetry.merge_histogram_entries(merged, entry)
    if merged is None and objective.kind is None \
            and objective.tenant is None:
        entry = snapshot.get("serve.latency_seconds")
        if entry is not None and entry.get("kind") == "histogram":
            merged = entry
    return merged


def _outcome_counts(objective, snapshot):
    total = errors = 0
    for name, entry in snapshot.items():
        base, labels = telemetry.parse_metric(name)
        if base != "serve.outcomes" or entry.get("kind") != "counter":
            continue
        if not _matches(objective, labels):
            continue
        value = int(entry.get("value", 0))
        total += value
        if labels.get("outcome") == "error":
            errors += value
    return total, errors


def evaluate(spec, snapshot, window=None, now=None):
    """Burn-rate report of ``spec`` against a registry snapshot dict.

    Returns ``{"ok": bool, "objectives": [...], "counts": {...}}``;
    each objective entry carries the observed latency quantile and/or
    error rate, the target, and ``burn_rate`` (observed / objective,
    so values above 1.0 are breaches).  Objectives with no matching
    traffic evaluate as ok with null observations.

    Objectives declaring ``window_s`` are rated against
    ``subtract_snapshots(snapshot, window.baseline(...))`` when a
    :class:`SnapshotWindow` is passed; their report entry gains a
    ``"window"`` block with the requested ``window_s``, the actual
    ``span_s`` covered, and the ``mode`` (``windowed`` / ``partial`` /
    ``lifetime``).  The caller records ``snapshot`` into the window
    *after* evaluating, so consecutive polls build up the history.
    ``now`` overrides the clock (tests drive synthetic timelines).
    """
    deltas = {}  # window_s -> (scoped snapshot, window report block)

    def _scoped(objective):
        if objective.window_s is None:
            return snapshot, None
        cached = deltas.get(objective.window_s)
        if cached is not None:
            return cached
        info = {"window_s": objective.window_s, "span_s": None,
                "mode": "lifetime"}
        scoped = snapshot
        if window is not None:
            baseline, span, mode = window.baseline(objective.window_s,
                                                   now=now)
            if baseline is not None:
                scoped = subtract_snapshots(snapshot, baseline)
                info = {"window_s": objective.window_s,
                        "span_s": span, "mode": mode}
        deltas[objective.window_s] = (scoped, info)
        return scoped, info

    results = []
    for objective in spec.objectives:
        scoped, window_info = _scoped(objective)
        result = objective.describe()
        if window_info is not None:
            result["window"] = window_info
        result["ok"] = True
        if objective.latency_ms is not None:
            entry = _merged_latency(objective, scoped)
            observed_ms = None
            if entry is not None and entry.get("count"):
                key = _QUANTILES.get(objective.quantile)
                observed = entry.get(key) if key else None
                if observed is None:
                    observed = telemetry.histogram_quantile(
                        entry, objective.quantile)
                observed_ms = None if observed is None \
                    else observed * 1000.0
            burn = None if observed_ms is None \
                else observed_ms / objective.latency_ms
            ok = burn is None or burn <= 1.0
            result["latency"] = {
                "observed_ms": observed_ms,
                "objective_ms": objective.latency_ms,
                "quantile": objective.quantile,
                "burn_rate": burn,
                "ok": ok,
            }
            result["ok"] = result["ok"] and ok
        if objective.error_rate is not None:
            total, errors = _outcome_counts(objective, scoped)
            rate = errors / total if total else None
            burn = None if rate is None else rate / objective.error_rate
            ok = burn is None or burn <= 1.0
            result["errors"] = {
                "observed_rate": rate,
                "objective_rate": objective.error_rate,
                "total": total,
                "errors": errors,
                "burn_rate": burn,
                "ok": ok,
            }
            result["ok"] = result["ok"] and ok
        results.append(result)
    breached = sum(1 for result in results if not result["ok"])
    return {
        "ok": breached == 0,
        "objectives": results,
        "counts": {"total": len(results), "breached": breached},
    }
