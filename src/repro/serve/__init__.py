"""``repro serve``: an asyncio job service over the shared kernels.

The serving layer turns the library's paradigm kernels (DMM solve,
Shor factoring, oscillator distance/detect) into a long-running
multi-tenant service: jobs are validated, admitted through a bounded
priority queue, coalesced when identical, batched when compatible, and
executed on the one persistent worker pool -- with the
content-addressed :class:`~repro.core.cache.ResultCache` as the shared
result store.  See ``docs/serving.md``.
"""

from .admission import AdmissionQueue
from .app import ServeApp, run_app
from .coalesce import Coalescer, DistanceBatcher
from .jobs import DONE, FAILED, QUEUED, RUNNING, Job, JobTable
from .service import JobService, ServeConfig, validate_request
from .slo import Objective, SloSpec, evaluate, load_slo

__all__ = [
    "AdmissionQueue",
    "Coalescer",
    "DistanceBatcher",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "Job",
    "JobTable",
    "JobService",
    "Objective",
    "ServeApp",
    "ServeConfig",
    "SloSpec",
    "evaluate",
    "load_slo",
    "run_app",
    "validate_request",
]
