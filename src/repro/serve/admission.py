"""Priority queue with admission control for ``repro serve``.

Admission is where the service says *no* early instead of degrading
late -- the paper's host-plus-accelerators model (Fig. 1) puts many
callers behind a few shared accelerators, so the dispatch layer must
bound its backlog:

* **bounded depth** -- a queue past ``max_depth`` rejects new work with
  :class:`~repro.core.exceptions.QueueFullError` (the HTTP layer turns
  it into a 429 with ``Retry-After``), keeping latency bounded instead
  of letting the backlog grow without limit;
* **per-tenant quotas** -- one tenant may hold at most ``tenant_quota``
  jobs queued or running at once
  (:class:`~repro.core.exceptions.QuotaError`), so a single chatty
  caller cannot starve the rest.  Coalesced followers and cache hits
  never count against the quota -- they cost no execution;
* **priorities** -- lower number runs first (0 is most urgent, default
  5), FIFO within one priority level via a monotonic sequence number,
  so equal-priority jobs never starve each other.

The queue is single-event-loop only (all mutation happens on the
service's loop); ``pop()`` is the one awaiting side, woken by an
:class:`asyncio.Event` when work arrives.  ``serve.queue_depth`` tracks
the live depth as a gauge.
"""

import asyncio
import heapq

from ..core import telemetry
from ..core.exceptions import QueueFullError, QuotaError

#: Default bound on queued (not yet running) jobs.
DEFAULT_MAX_DEPTH = 64

#: Default per-tenant cap on jobs queued or running at once.
DEFAULT_TENANT_QUOTA = 16

#: Priorities span 0 (most urgent) .. 9; the default sits mid-range so
#: callers can both expedite and deprioritize relative to it.
DEFAULT_PRIORITY = 5
MIN_PRIORITY, MAX_PRIORITY = 0, 9


class AdmissionQueue:
    """Bounded, tenant-quota'd priority queue of jobs awaiting dispatch."""

    def __init__(self, max_depth=DEFAULT_MAX_DEPTH,
                 tenant_quota=DEFAULT_TENANT_QUOTA):
        if int(max_depth) < 1:
            raise ValueError("max_depth must be >= 1, got %r" % max_depth)
        if tenant_quota is not None and int(tenant_quota) < 1:
            raise ValueError("tenant_quota must be >= 1 or None, got %r"
                             % tenant_quota)
        self.max_depth = int(max_depth)
        self.tenant_quota = None if tenant_quota is None \
            else int(tenant_quota)
        self._heap = []         # (priority, seq, job)
        self._seq = 0
        self._active = {}       # tenant -> jobs queued or running
        self._depths = {}       # (tenant, kind) -> queued jobs
        self._wakeup = asyncio.Event()

    # -- admission ---------------------------------------------------------

    @property
    def depth(self):
        return len(self._heap)

    def active_for(self, tenant):
        """Jobs this tenant currently has queued or running."""
        return self._active.get(tenant, 0)

    def push(self, job):
        """Admit ``job`` or raise :class:`QueueFullError` /
        :class:`QuotaError`.

        An admitted job holds one unit of its tenant's quota until the
        service calls :meth:`release` at completion.
        """
        if len(self._heap) >= self.max_depth:
            raise QueueFullError(
                "queue is full (%d jobs queued); retry later"
                % len(self._heap))
        if self.tenant_quota is not None \
                and self.active_for(job.tenant) >= self.tenant_quota:
            raise QuotaError(
                "tenant %r is at its quota (%d jobs queued or running); "
                "retry later" % (job.tenant, self.tenant_quota))
        self._seq += 1
        heapq.heappush(self._heap, (job.priority, self._seq, job))
        self._active[job.tenant] = self.active_for(job.tenant) + 1
        self._adjust_depth(job, 1)
        self._record_depth()
        self._wakeup.set()

    def release(self, tenant):
        """Return one unit of ``tenant``'s quota (job finished)."""
        remaining = self.active_for(tenant) - 1
        if remaining > 0:
            self._active[tenant] = remaining
        else:
            self._active.pop(tenant, None)

    # -- dispatch ----------------------------------------------------------

    async def pop(self):
        """The highest-priority queued job; waits until one exists."""
        while True:
            if self._heap:
                _priority, _seq, job = heapq.heappop(self._heap)
                self._adjust_depth(job, -1)
                self._record_depth()
                return job
            self._wakeup.clear()
            await self._wakeup.wait()

    def take_matching(self, predicate, limit):
        """Remove and return up to ``limit`` queued jobs matching
        ``predicate``, in priority order (the batcher's drain).
        """
        if limit <= 0 or not self._heap:
            return []
        taken, kept = [], []
        for entry in sorted(self._heap):
            job = entry[2]
            if len(taken) < limit and predicate(job):
                taken.append(job)
            else:
                kept.append(entry)
        if taken:
            heapq.heapify(kept)
            self._heap = kept
            for job in taken:
                self._adjust_depth(job, -1)
            self._record_depth()
        return taken

    def _adjust_depth(self, job, delta):
        """Track and expose the queued depth of ``job``'s tenant/kind."""
        key = (job.tenant, job.kind)
        count = self._depths.get(key, 0) + delta
        if count > 0:
            self._depths[key] = count
        else:
            self._depths.pop(key, None)
            count = max(0, count)
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.gauge("serve.queue_depth",
                           labels={"tenant": job.tenant,
                                   "kind": job.kind}).set(count)

    def _record_depth(self):
        registry = telemetry.get_registry()
        if registry.enabled:
            registry.gauge("serve.queue_depth").set(len(self._heap))
