"""Request coalescing and small-request batching for ``repro serve``.

Two complementary mechanisms keep N callers from costing N kernel
executions:

* :class:`Coalescer` -- *identical* requests share one execution.  The
  workload fingerprint from :mod:`repro.core.cache` (kind + canonical
  parameters + code version) keys every in-flight primary job; a new
  submission with the same key joins the primary as a *follower*
  instead of queueing, and receives a copy of the primary's result the
  moment it lands (``serve.coalesced`` counts followers).  Combined
  with the result store, N identical requests -- concurrent or
  sequential -- perform exactly one kernel execution.

* :class:`DistanceBatcher` -- *compatible* (not identical) small
  distance requests are merged at dispatch time.  When the dispatcher
  pops a distance job it drains other queued distance jobs with the
  same ``mode`` (same unit calibration) until ``max_pairs`` pairs are
  gathered, and the whole batch runs as one vectorized
  ``measure_batch`` call.  The PR 7 equivalence tier guarantees the
  batched measures are bit-identical to scalar evaluation, so batching
  is invisible in the results (``serve.batched`` counts jobs that rode
  along; the ``serve.batch_pairs`` histogram records batch sizes).
  There is no artificial delay: a lone distance job dispatches
  immediately, batches only form from work that is already queued.
"""


class Coalescer:
    """In-flight primary jobs keyed by workload fingerprint."""

    def __init__(self):
        self._inflight = {}

    def primary_for(self, key):
        """The in-flight primary for ``key``, or None."""
        return self._inflight.get(key)

    def register(self, key, job):
        """Make ``job`` the in-flight primary for ``key``."""
        self._inflight[key] = job

    def join(self, primary, follower):
        """Attach ``follower`` to ``primary``'s in-flight execution.

        The follower records both which primary it joined and that
        primary's trace id, so a request that never executed still
        points at the trace that did the work.
        """
        follower.coalesced_with = primary.id
        follower.joined_trace = primary.trace_id
        primary.followers.append(follower)

    def resolve(self, key):
        """The computation for ``key`` finished; stop attracting joins."""
        self._inflight.pop(key, None)

    def __len__(self):
        return len(self._inflight)


class DistanceBatcher:
    """Dispatch-time merge of compatible queued distance jobs."""

    def __init__(self, max_pairs=4096):
        if int(max_pairs) < 1:
            raise ValueError("max_pairs must be >= 1, got %r" % max_pairs)
        self.max_pairs = int(max_pairs)

    def gather(self, lead, queue):
        """``[lead, ...compatible queued distance jobs]`` within budget.

        Compatibility: same kind (``distance``) and same ``mode`` --
        the unit calibration decides the response curve, so only
        same-mode measures may share one vectorized call.  The combined
        batch never exceeds ``max_pairs`` pairs (jobs are taken in
        priority order until the budget is spent).
        """
        if lead.kind != "distance":
            return [lead]
        budget = self.max_pairs - len(lead.params["pairs"])
        if budget <= 0:
            return [lead]
        state = {"budget": budget}
        mode = lead.params["mode"]

        def fits(job):
            if job.kind != "distance" or job.params["mode"] != mode:
                return False
            cost = len(job.params["pairs"])
            if cost > state["budget"]:
                return False
            state["budget"] -= cost
            return True

        return [lead] + queue.take_matching(fits, limit=queue.depth)
