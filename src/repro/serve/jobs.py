"""Job records and the in-memory job table for ``repro serve``.

A job is one accepted request: it gets a stable id, a lifecycle state
(``queued -> running -> done | failed``), and an :class:`asyncio.Future`
that resolves when the job finishes (the HTTP layer's long-poll and the
dispatcher's bookkeeping both await it).  Jobs that join an identical
in-flight computation (request coalescing, see
:mod:`repro.serve.coalesce`) carry ``coalesced_with`` naming the
primary job whose single execution produced their result.

The :class:`JobTable` keeps every live job plus a bounded tail of
finished ones (``retention``), so status polling works for a while
after completion without the table growing forever under sustained
traffic.
"""

import collections
import time

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Finished jobs kept around for status polling, oldest dropped first.
DEFAULT_RETENTION = 1024


class Job:
    """One accepted request and its lifecycle state."""

    __slots__ = ("id", "kind", "params", "tenant", "priority", "key",
                 "doc", "state", "result", "error", "cached",
                 "coalesced_with", "followers", "submitted_at",
                 "started_at", "finished_at", "future", "trace_id",
                 "joined_trace")

    def __init__(self, job_id, kind, params, tenant, priority, key, doc,
                 trace_id=None):
        self.id = job_id
        self.kind = kind
        self.params = params
        self.tenant = tenant
        self.priority = priority
        self.key = key          # workload fingerprint (cache key)
        self.doc = doc          # fingerprint document behind the key
        self.state = QUEUED
        self.result = None
        self.error = None
        self.cached = False
        self.coalesced_with = None
        self.followers = []
        self.submitted_at = time.monotonic()
        self.started_at = None
        self.finished_at = None
        self.future = None      # created by the service's event loop
        self.trace_id = trace_id
        # Trace of the execution this job's result actually came from:
        # set for coalesced followers (the primary's trace) and for
        # batch riders (the batch lead's trace); None when this job's
        # own trace did the work.
        self.joined_trace = None

    @property
    def finished(self):
        return self.state in (DONE, FAILED)

    def describe(self):
        """JSON-able status document (the GET /v1/jobs/<id> body)."""
        doc = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "tenant": self.tenant,
            "priority": self.priority,
            "cached": self.cached,
            "coalesced_with": self.coalesced_with,
            "trace_id": self.trace_id,
        }
        if self.joined_trace is not None:
            doc["joined_trace"] = self.joined_trace
        if self.state == DONE:
            doc["result"] = self.result
        if self.state == FAILED:
            doc["error"] = self.error
        return doc

    def __repr__(self):
        return "Job(id=%s, kind=%s, state=%s, tenant=%s)" % (
            self.id, self.kind, self.state, self.tenant)


class JobTable:
    """All live jobs plus a bounded tail of finished ones."""

    def __init__(self, retention=DEFAULT_RETENTION):
        if int(retention) < 0:
            raise ValueError("retention must be >= 0, got %r" % retention)
        self.retention = int(retention)
        self._jobs = collections.OrderedDict()
        self._counter = 0

    def create(self, kind, params, tenant, priority, key, doc,
               trace_id=None):
        """A fresh :class:`Job` registered under a new id."""
        self._counter += 1
        job = Job("job-%06d" % self._counter, kind, params, tenant,
                  priority, key, doc, trace_id=trace_id)
        self._jobs[job.id] = job
        return job

    def get(self, job_id):
        return self._jobs.get(job_id)

    def drop(self, job_id):
        """Remove a job that was never admitted (rejected at submit)."""
        self._jobs.pop(job_id, None)

    def prune(self):
        """Drop the oldest finished jobs beyond the retention cap."""
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.finished]
        excess = len(finished) - self.retention
        for job_id in finished[:max(0, excess)]:
            del self._jobs[job_id]

    def stats(self):
        """Job counts by lifecycle state."""
        counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def __len__(self):
        return len(self._jobs)
