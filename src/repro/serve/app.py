"""Stdlib-asyncio HTTP front end for the ``repro serve`` job service.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` --
no web framework, because the repo's only runtime dependency is numpy.
It speaks just enough HTTP for job submission and polling:

* ``POST /v1/jobs`` -- submit ``{"kind", "params", "tenant"?,
  "priority"?, "wait"?}``.  Returns 202 with the job document, or 200
  with the finished document when ``wait`` (seconds) is given and the
  job completes in time.  400 on validation errors, 429 (with
  ``Retry-After``) on backpressure.
* ``GET /v1/jobs/<id>`` -- job status; ``?wait=SECONDS`` long-polls
  until completion or the deadline.  404 for unknown ids.
* ``GET /v1/healthz`` -- liveness.
* ``GET /v1/metrics`` -- the telemetry registry snapshot;
  ``?format=prometheus`` renders the text exposition instead
  (:mod:`repro.core.exposition`).
* ``GET /v1/slo`` -- burn-rate report of the configured SLO spec.
* ``GET /v1/stats`` -- service counters (requests, coalesced, ...).

Connections are keep-alive; bodies are JSON (string payloads render as
``text/plain`` -- the Prometheus exposition) and capped at
``MAX_BODY_BYTES`` (413 beyond it).  All handling runs on the service's
single event loop -- kernels run in the service's thread pool, so slow
jobs never block new connections.

Every request is minted a ``trace_id`` before routing; it flows through
``submit()`` into the job, the dispatcher, and the worker pool, and the
request's handling itself is recorded as a ``serve.http`` span under
the same id (see ``docs/observability.md``).
"""

import asyncio
import json
import time

from ..core import exposition, telemetry, tracing
from ..core.exceptions import (
    JobValidationError,
    QueueFullError,
    QuotaError,
    ReproError,
)
from .service import JobService

#: Request-body cap; large enough for MAX_IMAGE_PIXELS / MAX_PAIRS
#: payloads with JSON overhead, small enough to bound per-request RAM.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Upper bound on ``wait`` long-polls so one client cannot pin a
#: connection (and its job-table entry) forever.
MAX_WAIT_SECONDS = 300.0

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            408: "Request Timeout", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error"}


class _HttpError(Exception):
    """Routed straight to an error response; never escapes the app."""

    def __init__(self, status, message, retry_after=None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class ServeApp:
    """Bind a :class:`~repro.serve.service.JobService` to a TCP port."""

    def __init__(self, service=None, host="127.0.0.1", port=8080):
        self.service = service if service is not None else JobService()
        self.host = host
        self.port = port
        self._server = None
        self._writers = set()

    async def start(self):
        """Start the service and begin accepting connections.

        With ``port=0`` the kernel picks a free port; read the bound
        one back from :attr:`port` (how the tests avoid collisions).
        """
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self, grace=1.0):
        """Stop accepting, shut the service down, reap connections.

        Ordered so an in-flight long-poll resolves instead of
        deadlocking: the listener closes first (no new work), then the
        service -- failing queued jobs resolves their futures, which is
        what answers pending long-polls -- and only then are connection
        handlers waited for.  The wait is bounded by ``grace`` because
        idle keep-alive clients hold their connections open
        indefinitely (and Python 3.12's ``Server.wait_closed`` waits
        for every handler); past the grace they are disconnected.
        """
        server, self._server = self._server, None
        if server is not None:
            server.close()
        await self.service.close()
        if server is not None:
            try:
                await asyncio.wait_for(server.wait_closed(), grace)
            except asyncio.TimeoutError:
                pass
        # Handlers woken by the futures the service just resolved need
        # a scheduling turn to write their responses (wait_closed does
        # not provide one before Python 3.12).
        await asyncio.sleep(0)
        await asyncio.sleep(0)
        for writer in list(self._writers):
            writer.close()

    async def serve_forever(self):
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer):
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as error:
                    # Parse errors lose request framing; answer and
                    # drop the connection rather than guess at resync.
                    await self._respond(writer, error.status,
                                        {"error": error.message})
                    break
                if request is None:
                    break
                method, path, body = request
                trace_id = tracing.new_trace_id()
                start_ts = time.time()
                start_perf = time.perf_counter()
                status = None
                try:
                    status, payload = await self._route(method, path, body,
                                                        trace_id)
                    await self._respond(writer, status, payload)
                except _HttpError as error:
                    status = error.status
                    extra = {}
                    if error.retry_after is not None:
                        extra["Retry-After"] = str(error.retry_after)
                    await self._respond(writer, error.status,
                                        {"error": error.message}, extra)
                except Exception as error:  # noqa: BLE001 -- keep serving
                    status = 500
                    await self._respond(
                        writer, 500,
                        {"error": "%s: %s" % (type(error).__name__, error)})
                finally:
                    self._emit_http_span(trace_id, method, path, status,
                                         start_ts, start_perf)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels live keep-alive handlers; ending
            # the task quietly avoids asyncio's "exception in callback"
            # log for a connection that is being torn down anyway.
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader):
        """One parsed request ``(method, path, body)``; None on EOF."""
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request headers too large") from None
        head, *header_lines = header_blob.decode(
            "latin-1").split("\r\n")
        parts = head.split(" ")
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, path, _version = parts
        content_length = 0
        for line in header_lines:
            if line.lower().startswith("content-length:"):
                try:
                    content_length = int(line.split(":", 1)[1].strip())
                except ValueError:
                    raise _HttpError(400,
                                     "malformed Content-Length") from None
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body exceeds %d bytes"
                             % MAX_BODY_BYTES)
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method, path, body

    def _emit_http_span(self, trace_id, method, path, status, start_ts,
                        start_perf):
        """Span event for one request's HTTP handling, under its trace.

        Built by hand rather than with a stack span: request handling
        straddles ``await``s, so concurrent connections' spans would
        corrupt a real per-thread span stack.
        """
        registry = telemetry.get_registry()
        if not registry.enabled:
            return
        duration = time.perf_counter() - start_perf
        registry.histogram("serve.http.seconds").observe(duration)
        registry.emit({
            "type": "span",
            "name": "serve.http",
            "ts": start_ts,
            "duration_s": duration,
            "depth": 0,
            "parent": None,
            "status": "ok" if status is not None and status < 500
            else "error",
            "trace": trace_id,
            "attrs": {"method": method, "path": path, "status": status},
        })

    async def _respond(self, writer, status, payload, extra_headers=None):
        # A pre-rendered string (the Prometheus exposition) ships as
        # text/plain; everything else is a JSON document.
        if isinstance(payload, str):
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        headers = ["HTTP/1.1 %d %s" % (status,
                                       _REASONS.get(status, "Unknown")),
                   "Content-Type: %s" % content_type,
                   "Content-Length: %d" % len(body),
                   "Connection: keep-alive"]
        for name, value in (extra_headers or {}).items():
            headers.append("%s: %s" % (name, value))
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------

    async def _route(self, method, path, body, trace_id):
        path, _, query = path.partition("?")
        if path == "/v1/jobs":
            if method != "POST":
                raise _HttpError(405, "use POST to submit jobs")
            return await self._submit(body, trace_id)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise _HttpError(405, "use GET to poll jobs")
            return await self._poll(path[len("/v1/jobs/"):], query)
        if method != "GET":
            raise _HttpError(405, "unsupported method %s" % method)
        if path == "/v1/healthz":
            return 200, {"status": "ok"}
        if path == "/v1/metrics":
            fmt = "json"
            for param in query.split("&"):
                name, _, value = param.partition("=")
                if name == "format" and value:
                    fmt = value
            snapshot = telemetry.get_registry().snapshot()
            if fmt == "prometheus":
                return 200, exposition.render_prometheus(snapshot)
            if fmt != "json":
                raise _HttpError(400, "unknown metrics format %r "
                                 "(expected 'json' or 'prometheus')" % fmt)
            return 200, snapshot
        if path == "/v1/slo":
            return 200, self.service.slo_report()
        if path == "/v1/stats":
            return 200, self.service.stats()
        raise _HttpError(404, "unknown path %r" % path)

    async def _submit(self, body, trace_id):
        try:
            request = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, "request body is not valid JSON: %s"
                             % error) from None
        if not isinstance(request, dict):
            raise _HttpError(400, "request body must be a JSON object")
        wait = self._wait_value(request.get("wait"))
        try:
            job = self.service.submit(
                request.get("kind"), request.get("params", {}),
                tenant=request.get("tenant", "anon"),
                priority=request.get("priority"),
                trace_id=trace_id)
        except JobValidationError as error:
            raise _HttpError(400, str(error)) from None
        except (QueueFullError, QuotaError) as error:
            raise _HttpError(429, str(error), retry_after=1) from None
        if wait:
            await self._await_job(job, wait)
        return (200 if job.finished else 202), job.describe()

    async def _poll(self, job_id, query):
        job = self.service.table.get(job_id)
        if job is None:
            raise _HttpError(404, "unknown job %r" % job_id)
        wait = None
        for param in query.split("&"):
            name, _, value = param.partition("=")
            if name == "wait":
                wait = self._wait_value(value)
        if wait and not job.finished:
            await self._await_job(job, wait)
        return 200, job.describe()

    @staticmethod
    def _wait_value(raw):
        if raw in (None, "", False):
            return None
        try:
            wait = float(raw)
        except (TypeError, ValueError):
            raise _HttpError(400, "'wait' must be a number of seconds"
                             ) from None
        if wait <= 0:
            return None
        return min(wait, MAX_WAIT_SECONDS)

    @staticmethod
    async def _await_job(job, wait):
        # shield(): a long-poll timeout must not cancel the job future
        # other waiters (and the dispatcher) still rely on.
        try:
            await asyncio.wait_for(asyncio.shield(job.future), wait)
        except asyncio.TimeoutError:
            pass


async def run_app(config=None, host="127.0.0.1", port=8080,
                  on_start=None):
    """Run a service until cancelled (the CLI entry point's core)."""
    app = ServeApp(JobService(config), host=host, port=port)
    await app.start()
    if on_start is not None:
        on_start(app)
    try:
        await app.serve_forever()
    except asyncio.CancelledError:
        raise
    finally:
        await app.close()


__all__ = ["ServeApp", "run_app", "MAX_BODY_BYTES", "MAX_WAIT_SECONDS"]
